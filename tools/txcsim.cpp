// txcsim — run the HTM simulator from the command line.
//
// The one-stop driver a downstream user reaches for first: pick a workload,
// a conflict-resolution policy, a core count, optionally the mesh NoC and
// the shared L2, and get either a human-readable report or a CSV row
// (--csv) suitable for scripted sweeps:
//
//   txcsim --workload txapp --policy RRW --cores 16 --commits 50000
//   txcsim --workload bimodal --policy ADAPTIVE --csv
//   for p in NO_DELAY DET RRW HYBRID; do txcsim --policy $p --csv; done
#include <cstdio>
#include <memory>
#include <string>

#include "cli_util.hpp"
#include "core/policy.hpp"
#include "ds/extended_workloads.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

constexpr const char* kUsage = R"(txcsim — discrete-event HTM simulator driver

  --workload W   stack queue txapp bimodal counter bank zipf readmostly list
                 (default txapp)
  --policy P     NO_DELAY DELAY_TUNED DET DET_ABORTS RRW RRW_MU RRW_OPT RRA
                 RRA_MU HYBRID ORACLE ADAPTIVE   (default RRW)
  --cores N      number of cores (default 8)
  --commits N    stop after N system-wide commits (default 20000)
  --seed N       RNG seed (default 1)
  --mode M       wins | aborts conflict resolution (default per policy)
  --tuned X      fixed delay for DELAY_TUNED, cycles (default 150)
  --skew S       Zipf exponent for --workload zipf (default 0.8)
  --noc          route remote accesses over a 2D mesh NoC
  --l2           enable the shared L2 + memory tier
  --profiler-mean  feed the committed-length mean to the policy
  --fallback N   non-transactional fallback after N aborts (0 = off)
  --csv          one CSV row on stdout (with a header line)
  --help         this text
)";

std::shared_ptr<Workload> make_workload(const std::string& name,
                                        std::uint32_t cores, double skew) {
  if (name == "stack") return std::make_shared<ds::StackWorkload>(cores);
  if (name == "queue") return std::make_shared<ds::QueueWorkload>(cores);
  if (name == "txapp") return std::make_shared<ds::TxAppWorkload>();
  if (name == "bimodal") {
    return std::make_shared<ds::BimodalTxAppWorkload>(cores);
  }
  if (name == "counter") return std::make_shared<ds::CounterWorkload>();
  if (name == "bank") return std::make_shared<ds::BankWorkload>();
  if (name == "zipf") {
    ds::ZipfTxAppWorkload::Params params;
    params.skew = skew;
    return std::make_shared<ds::ZipfTxAppWorkload>(params);
  }
  if (name == "readmostly") return std::make_shared<ds::ReadMostlyWorkload>();
  if (name == "list") return std::make_shared<ds::ListWorkload>();
  std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
  std::exit(2);
}

core::StrategyKind parse_policy(const std::string& name) {
  if (name == "NO_DELAY") return core::StrategyKind::kNoDelay;
  if (name == "DELAY_TUNED") return core::StrategyKind::kFixedTuned;
  if (name == "DET") return core::StrategyKind::kDetWins;
  if (name == "DET_ABORTS") return core::StrategyKind::kDetAborts;
  if (name == "RRW") return core::StrategyKind::kRandWins;
  if (name == "RRW_MU") return core::StrategyKind::kRandWinsMean;
  if (name == "RRW_OPT") return core::StrategyKind::kRandWinsPower;
  if (name == "RRA") return core::StrategyKind::kRandAborts;
  if (name == "RRA_MU") return core::StrategyKind::kRandAbortsMean;
  if (name == "HYBRID") return core::StrategyKind::kHybrid;
  if (name == "ORACLE") return core::StrategyKind::kOracle;
  if (name == "ADAPTIVE") return core::StrategyKind::kAdaptiveTuned;
  std::fprintf(stderr, "unknown policy: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args{argc, argv,
                 {"noc", "l2", "profiler-mean", "csv", "help"}};
  if (args.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  args.reject_unknown({"workload", "policy", "cores", "commits", "seed",
                       "mode", "tuned", "skew", "noc", "l2", "profiler-mean",
                       "fallback", "csv", "help"});

  const std::string workload_name = args.get("workload", "txapp");
  const std::string policy_name = args.get("policy", "RRW");
  const auto cores = static_cast<std::uint32_t>(args.get_u64("cores", 8));
  const std::uint64_t commits = args.get_u64("commits", 20000);

  HtmConfig config;
  config.cores = cores;
  config.seed = args.get_u64("seed", 1);
  const core::StrategyKind kind = parse_policy(policy_name);
  config.policy = core::make_policy(kind, args.get_double("tuned", 150.0));
  if (args.has("mode")) {
    const std::string mode = args.get("mode", "wins");
    config.mode = mode == "aborts" ? core::ResolutionMode::kRequestorAborts
                                   : core::ResolutionMode::kRequestorWins;
  } else {
    config.mode = config.policy->mode();
  }
  if (args.has("noc")) config.noc = noc::MeshConfig{};
  if (args.has("l2")) config.l2 = mem::L2Config{};
  config.use_profiler_mean = args.has("profiler-mean");
  config.oracle_hints = kind == core::StrategyKind::kOracle;
  config.max_attempts_before_fallback =
      static_cast<std::uint32_t>(args.get_u64("fallback", 0));

  HtmSystem system{
      config, make_workload(workload_name, cores, args.get_double("skew", 0.8))};
  const HtmStats stats = system.run(commits);

  if (args.has("csv")) {
    std::printf(
        "workload,policy,mode,cores,commits,aborts,abort_rate,conflicts,"
        "cycles,ops_per_sec,mean_tx_cycles\n");
    std::printf("%s,%s,%s,%u,%llu,%llu,%.4f,%llu,%llu,%.0f,%.1f\n",
                workload_name.c_str(), policy_name.c_str(),
                core::to_string(config.mode), cores,
                static_cast<unsigned long long>(stats.commits),
                static_cast<unsigned long long>(stats.aborts),
                stats.abort_rate(),
                static_cast<unsigned long long>(stats.conflicts),
                static_cast<unsigned long long>(stats.cycles),
                stats.ops_per_second(), stats.mean_tx_cycles);
    return 0;
  }

  std::printf("txcsim: %s on %u cores, policy %s (%s)\n",
              workload_name.c_str(), cores, config.policy->name().c_str(),
              core::to_string(config.mode));
  std::printf("  commits        %llu\n",
              static_cast<unsigned long long>(stats.commits));
  std::printf("  aborts         %llu  (%.1f%% of attempts)\n",
              static_cast<unsigned long long>(stats.aborts),
              100.0 * stats.abort_rate());
  std::printf("  conflicts      %llu\n",
              static_cast<unsigned long long>(stats.conflicts));
  std::printf("  cycles         %llu\n",
              static_cast<unsigned long long>(stats.cycles));
  std::printf("  throughput     %.3g ops/s @ 1 GHz\n",
              stats.ops_per_second());
  std::printf("  mean tx length %.1f cycles (committed)\n",
              stats.mean_tx_cycles);
  std::printf("  abort breakdown:");
  std::uint64_t by_reason[kAbortReasonCount] = {};
  for (const auto& per_core : stats.per_core) {
    for (std::size_t r = 0; r < kAbortReasonCount; ++r) {
      by_reason[r] += per_core.aborts_by_reason[r];
    }
  }
  for (std::size_t r = 0; r < kAbortReasonCount; ++r) {
    if (by_reason[r] == 0) continue;
    std::printf("  %s=%llu", to_string(static_cast<AbortReason>(r)),
                static_cast<unsigned long long>(by_reason[r]));
  }
  std::printf("\n");
  if (stats.noc.has_value()) {
    std::printf("  noc: %llu messages, mean hops %.2f, queueing %llu cycles\n",
                static_cast<unsigned long long>(stats.noc->total_messages()),
                stats.noc->mean_hops(),
                static_cast<unsigned long long>(stats.noc->queueing_cycles));
  }
  if (stats.l2.has_value()) {
    std::printf("  l2: hit rate %.1f%%, %llu back-invalidations\n",
                100.0 * stats.l2->hit_rate(),
                static_cast<unsigned long long>(
                    stats.l2->back_invalidations));
  }
  return 0;
}
