// txcdensity — tabulate the paper's optimal grace-period densities.
//
// Emits CSV (x, pdf, cdf, quantile) for any strategy family so the closed
// forms can be plotted or spot-checked against the paper:
//
//   txcdensity --family uniform-wins --B 100 --k 2
//   txcdensity --family exp-aborts --B 500 --k 4 --points 200
#include <cstdio>
#include <string>

#include "cli_util.hpp"
#include "core/densities.hpp"

namespace {

using namespace txc::core;

constexpr const char* kUsage = R"(txcdensity — density tables for the optimal strategies

  --family F   uniform-wins | power-wins | log-mean-wins | power-mean-wins |
               exp-aborts | exp-mean-aborts   (default uniform-wins)
  --B X        abort cost (default 100)
  --k N        conflict chain length >= 2 (default 2)
  --points N   table resolution (default 100)
  --help       this text

Output: CSV with x, pdf(x), cdf(x), and quantile(u) at u = i/points.
)";

template <typename Density>
void tabulate(const Density& density, int points) {
  std::printf("x,pdf,cdf,u,quantile\n");
  const double support = density.support_max();
  for (int i = 0; i <= points; ++i) {
    const double x = support * static_cast<double>(i) / points;
    const double u = static_cast<double>(i) / points;
    std::printf("%.6g,%.6g,%.6g,%.6g,%.6g\n", x, density.pdf(x),
                density.cdf(x), u, density.quantile(u));
  }
}

}  // namespace

int main(int argc, char** argv) {
  txc::cli::Args args{argc, argv, {"help"}};
  if (args.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  args.reject_unknown({"family", "B", "k", "points", "help"});

  const std::string family = args.get("family", "uniform-wins");
  const double B = args.get_double("B", 100.0);
  const int k = static_cast<int>(args.get_u64("k", 2));
  const int points = static_cast<int>(args.get_u64("points", 100));

  if (family == "uniform-wins") {
    tabulate(UniformWinsDensity{B, k}, points);
  } else if (family == "power-wins") {
    tabulate(PowerWinsDensity{B, k}, points);
  } else if (family == "log-mean-wins") {
    tabulate(LogMeanWinsDensity{B}, points);
  } else if (family == "power-mean-wins") {
    tabulate(PowerMeanWinsDensity{B, k}, points);
  } else if (family == "exp-aborts") {
    tabulate(ExpAbortsDensity{B, k}, points);
  } else if (family == "exp-mean-aborts") {
    tabulate(ExpMeanAbortsDensity{B, k}, points);
  } else {
    std::fprintf(stderr, "unknown family: %s\n", family.c_str());
    return 2;
  }
  return 0;
}
