// txconflict — multi-process worker pool for the repro driver.
//
// Each run is a fork/exec of one bench binary with its stdout+stderr
// captured to a file; the pool shards the queue across up to `workers`
// concurrent children, enforces a per-run wall-clock deadline (SIGKILL on
// expiry), and re-queues failed runs up to the spec's attempt budget.  No
// shell is involved, so bench paths and arguments are never reinterpreted.
//
// The pool is deliberately poll-based (waitpid WNOHANG + a short sleep): the
// runs it manages last seconds to minutes, so a 2 ms scheduling granularity
// is invisible, and it avoids signal-handler state entirely.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace txc::repro {

/// One process to run: program, arguments, extra environment, capture file.
struct RunSpec {
  std::string id;       // display / result name
  std::string program;  // path to the executable
  std::vector<std::string> args;
  /// Extra environment entries exported to the child (on top of the parent
  /// environment), e.g. {"TXC_BENCH_SMOKE", "1"}.
  std::vector<std::pair<std::string, std::string>> env;
  /// File receiving the child's stdout+stderr (truncated per attempt, so the
  /// surviving content is always the final attempt's output).  Empty keeps
  /// the parent's streams.
  std::string output_path;
  double timeout_seconds = 600.0;
  int max_attempts = 1;
};

struct RunResult {
  std::string id;
  int exit_code = -1;
  bool timed_out = false;
  int attempts = 0;
  double wall_ms = 0.0;  // wall time of the final attempt

  [[nodiscard]] bool ok() const noexcept {
    return exit_code == 0 && !timed_out;
  }
};

class ProcessPool {
 public:
  explicit ProcessPool(std::size_t workers)
      : workers_(workers == 0 ? 1 : workers) {}

  /// Runs every spec to completion (results in spec order).  `on_finish` is
  /// called once per final result, in completion order, for progress output.
  std::vector<RunResult> run_all(
      const std::vector<RunSpec>& specs,
      const std::function<void(const RunSpec&, const RunResult&)>& on_finish =
          {}) {
    using Clock = std::chrono::steady_clock;
    struct Active {
      std::size_t index;
      int attempt;
      Clock::time_point start;
      Clock::time_point deadline;
      bool killed = false;
    };

    std::vector<RunResult> results(specs.size());
    std::vector<std::pair<std::size_t, int>> queue;  // (spec index, attempt)
    queue.reserve(specs.size());
    for (std::size_t i = specs.size(); i > 0; --i) {
      queue.emplace_back(i - 1, 1);  // popped from the back, so spec order
    }
    std::map<pid_t, Active> active;
    peak_parallelism_ = 0;

    while (!queue.empty() || !active.empty()) {
      while (!queue.empty() && active.size() < workers_) {
        const auto [index, attempt] = queue.back();
        queue.pop_back();
        const pid_t pid = spawn(specs[index]);
        const auto now = Clock::now();
        auto deadline = Clock::time_point::max();
        if (specs[index].timeout_seconds > 0) {
          deadline = now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   specs[index].timeout_seconds));
        }
        if (pid < 0) {
          // fork failed (e.g. transient EAGAIN): spend an attempt like any
          // other failure, and only finalize once the budget is exhausted.
          if (attempt < specs[index].max_attempts) {
            queue.emplace_back(index, attempt + 1);
            continue;
          }
          results[index] = RunResult{specs[index].id, -1, false, attempt, 0.0};
          if (on_finish) on_finish(specs[index], results[index]);
          continue;
        }
        active.emplace(pid, Active{index, attempt, now, deadline});
        peak_parallelism_ = std::max(peak_parallelism_, active.size());
      }
      if (active.empty()) continue;

      // Reap only the pool's own children (waitpid per pid, never -1): a
      // wait on -1 could steal the status of an unrelated child the caller
      // owns (a popen pipe, another pool) and break its waitpid/pclose.
      int status = 0;
      pid_t reaped = 0;
      bool reap_failed = false;
      for (const auto& [pid, slot] : active) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r != 0) {
          reaped = pid;
          reap_failed = r < 0;  // ECHILD etc.: treat as a lost child
          break;
        }
      }
      if (reaped > 0) {
        const auto it = active.find(reaped);
        const Active slot = it->second;
        active.erase(it);
        const RunSpec& spec = specs[slot.index];

        RunResult result;
        result.id = spec.id;
        result.attempts = slot.attempt;
        // A kill was *attempted* at the deadline, but the child may have
        // exited cleanly in the race window before the SIGKILL landed — only
        // count a timeout when the wait status shows the kill took effect.
        result.timed_out = slot.killed && WIFSIGNALED(status);
        result.wall_ms = std::chrono::duration<double, std::milli>(
                             Clock::now() - slot.start)
                             .count();
        if (reap_failed) {
          result.exit_code = -1;  // child vanished; status is meaningless
          result.timed_out = false;
        } else if (WIFEXITED(status)) {
          result.exit_code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          result.exit_code = 128 + WTERMSIG(status);
        }
        if (!result.ok() && slot.attempt < spec.max_attempts) {
          queue.emplace_back(slot.index, slot.attempt + 1);
          continue;
        }
        results[slot.index] = result;
        if (on_finish) on_finish(spec, result);
        continue;
      }

      // No child ready: enforce deadlines, then yield briefly.
      const auto now = Clock::now();
      for (auto& [pid, slot] : active) {
        if (!slot.killed && now >= slot.deadline) {
          slot.killed = true;
          ::kill(pid, SIGKILL);
        }
      }
      ::usleep(2000);
    }
    return results;
  }

  /// Highest number of concurrently live children seen by the last run_all.
  [[nodiscard]] std::size_t peak_parallelism() const noexcept {
    return peak_parallelism_;
  }
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

 private:
  static pid_t spawn(const RunSpec& spec) {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;

    // Child.  Only async-signal-safe calls until exec.
    if (!spec.output_path.empty()) {
      const int fd = ::open(spec.output_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
    }
    for (const auto& [key, value] : spec.env) {
      ::setenv(key.c_str(), value.c_str(), /*overwrite=*/1);
    }
    std::vector<char*> argv;
    argv.reserve(spec.args.size() + 2);
    argv.push_back(const_cast<char*>(spec.program.c_str()));
    for (const auto& arg : spec.args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(spec.program.c_str(), argv.data());
    ::_exit(127);  // exec failed
  }

  std::size_t workers_;
  std::size_t peak_parallelism_ = 0;
};

}  // namespace txc::repro
