// txconflict — minimal recursive-descent JSON reader for the repro tooling.
//
// The repro driver only ever parses documents this repository itself emits
// (txc-bench/v1 reports and txc-bench-series/v1 tables), so this is a small,
// strict subset parser: UTF-8 passthrough, \uXXXX decoded only for ASCII,
// numbers via strtod.  Errors throw ParseError with a byte offset.
#pragma once

#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace txc::repro::json {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value.  Accessors throw std::runtime_error on kind mismatch so
/// schema drift in a report fails loudly instead of reading zeros.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }

  [[nodiscard]] bool as_bool() const {
    require(Kind::kBool, "bool");
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    require(Kind::kNumber, "number");
    return number_;
  }
  [[nodiscard]] const std::string& as_string() const {
    require(Kind::kString, "string");
    return string_;
  }
  [[nodiscard]] const Array& as_array() const {
    require(Kind::kArray, "array");
    return *array_;
  }
  [[nodiscard]] const Object& as_object() const {
    require(Kind::kObject, "object");
    return *object_;
  }

  /// Object member lookup; throws when missing.
  [[nodiscard]] const Value& at(const std::string& key) const {
    const Object& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) {
      throw std::runtime_error("missing JSON key \"" + key + "\"");
    }
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    const Object& obj = as_object();
    return obj.find(key) != obj.end();
  }
  /// Optional lookup with a fallback for absent keys.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const {
    return has(key) ? at(key).as_number() : fallback;
  }
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const {
    return has(key) ? at(key).as_string() : fallback;
  }

 private:
  void require(Kind kind, const char* what) const {
    if (kind_ != kind) {
      throw std::runtime_error(std::string("JSON value is not a ") + what);
    }
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ParseError("trailing content after JSON document", pos_);
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw ParseError("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw ParseError(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't':
        if (consume_literal("true")) return Value{true};
        throw ParseError("bad literal", pos_);
      case 'f':
        if (consume_literal("false")) return Value{false};
        throw ParseError("bad literal", pos_);
      case 'n':
        if (consume_literal("null")) return Value{};
        throw ParseError("bad literal", pos_);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(members)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{std::move(members)};
    }
  }

  Value parse_array() {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(items)};
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{std::move(items)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        throw ParseError("unterminated string", pos_);
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        throw ParseError("unterminated escape", pos_);
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            throw ParseError("short \\u escape", pos_);
          }
          const std::string digits = text_.substr(pos_, 4);
          char* end = nullptr;
          const unsigned long code = std::strtoul(digits.c_str(), &end, 16);
          if (end != digits.c_str() + 4) {
            throw ParseError("bad \\u escape \"" + digits + "\"", pos_);
          }
          pos_ += 4;
          if (code > 0x7f) {
            // The repro reports only ever escape control characters; keep
            // non-ASCII escapes visibly lossy rather than mis-decoded.
            out += '?';
          } else {
            out += static_cast<char>(code);
          }
          break;
        }
        default: throw ParseError("bad escape", pos_ - 1);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) throw ParseError("expected a value", start);
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      throw ParseError("bad number \"" + token + "\"", start);
    }
    return Value{value};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse one complete JSON document; throws ParseError on malformed input.
inline Value parse(const std::string& text) {
  return detail::Parser{text}.parse_document();
}

}  // namespace txc::repro::json
