// txconflict — shared I/O for the bench drivers (txcbench, txcrepro).
//
// Owns the txc-bench/v1 report schema end to end: the roster discovery that
// decides which bench binaries exist, the writer both drivers use to emit a
// report, and the reader txcrepro's --baseline mode uses to compare a fresh
// run against an archived report.  Keeping the schema in one header is what
// lets CI gate on perf drift between any two reports regardless of which
// driver produced them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "repro/minijson.hpp"
#include "sim/jsonio.hpp"

namespace txc::repro {

namespace fs = std::filesystem;

/// Outcome of one bench execution, as recorded in a txc-bench/v1 report.
struct BenchResult {
  std::string name;
  int exit_code = -1;
  bool timed_out = false;
  int attempts = 1;
  double wall_ms = 0.0;
  std::size_t output_lines = 0;
  std::string tail;  // last output lines, kept for failing benches

  [[nodiscard]] bool ok() const noexcept {
    return exit_code == 0 && !timed_out;
  }
};

/// Load the bench roster: the CMake-generated manifest.txt when present,
/// otherwise any executable regular file in the directory (sorted).
inline std::vector<std::string> load_roster(const fs::path& bench_dir) {
  std::vector<std::string> names;
  std::ifstream manifest(bench_dir / "manifest.txt");
  if (manifest) {
    std::string line;
    while (std::getline(manifest, line)) {
      if (!line.empty()) names.push_back(line);
    }
  }
  if (names.empty()) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(bench_dir, ec)) {
      if (!entry.is_regular_file()) continue;
      if (::access(entry.path().c_str(), X_OK) != 0) continue;
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
  }
  return names;
}

/// Single-quote a path for a shell so spaces and metacharacters in the build
/// directory cannot split or reinterpret the command.
inline std::string shell_quote(const std::string& raw) {
  std::string out = "'";
  for (const char c : raw) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

using txc::sim::json_escape;

inline std::size_t count_failed(const std::vector<BenchResult>& results) {
  std::size_t failed = 0;
  for (const auto& result : results) {
    if (!result.ok()) ++failed;
  }
  return failed;
}

/// Serialize a txc-bench/v1 report.  `generated_unix` is a parameter (not
/// time(nullptr)) so tests can produce byte-stable documents.
inline std::string render_report(bool smoke, const std::string& bench_dir,
                                 const std::vector<BenchResult>& results,
                                 std::time_t generated_unix) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"txc-bench/v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"generated_unix\": " << generated_unix << ",\n"
      << "  \"bench_dir\": \"" << json_escape(bench_dir) << "\",\n"
      << "  \"total\": " << results.size() << ",\n"
      << "  \"failed\": " << count_failed(results) << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    out << "    {\"name\": \"" << json_escape(result.name) << "\", "
        << "\"ok\": " << (result.ok() ? "true" : "false") << ", "
        << "\"exit_code\": " << result.exit_code << ", "
        << "\"timed_out\": " << (result.timed_out ? "true" : "false") << ", "
        << "\"attempts\": " << result.attempts << ", "
        << "\"wall_ms\": " << result.wall_ms << ", "
        << "\"output_lines\": " << result.output_lines;
    if (!result.tail.empty()) {
      out << ", \"output_tail\": \"" << json_escape(result.tail) << "\"";
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Write a txc-bench/v1 report; returns false when the path is unwritable.
inline bool write_report(const std::string& path, bool smoke,
                         const std::string& bench_dir,
                         const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_report(smoke, bench_dir, results, std::time(nullptr));
  return out.good();
}

/// Parse a txc-bench/v1 report back into results (for --baseline).  Throws
/// std::runtime_error / json::ParseError on malformed or mis-schema'd input.
inline std::vector<BenchResult> read_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read report " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value doc = json::parse(buffer.str());
  const std::string schema = doc.string_or("schema", "");
  if (schema != "txc-bench/v1") {
    throw std::runtime_error(path + " is not a txc-bench/v1 report (schema \"" +
                             schema + "\")");
  }
  std::vector<BenchResult> results;
  for (const json::Value& entry : doc.at("results").as_array()) {
    BenchResult result;
    result.name = entry.at("name").as_string();
    result.exit_code = static_cast<int>(entry.number_or("exit_code", -1));
    result.timed_out =
        entry.has("timed_out") && entry.at("timed_out").as_bool();
    result.attempts = static_cast<int>(entry.number_or("attempts", 1));
    result.wall_ms = entry.number_or("wall_ms", 0.0);
    result.output_lines =
        static_cast<std::size_t>(entry.number_or("output_lines", 0));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace txc::repro
