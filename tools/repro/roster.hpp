// txconflict — the declarative figure-reproduction roster.
//
// Maps every figure (and figure-adjacent experiment family) of the paper to
// the bench binaries that regenerate its panels, plus what the aggregator
// should expect back: how many data tables each panel emits and roughly how
// long it may run.  tools/txcrepro walks this roster; docs/REPRODUCING.md is
// the narrative twin and must stay in sync (the repro-smoke CI job runs one
// panel per figure straight off this table).
#pragma once

#include <string>
#include <vector>

namespace txc::repro {

/// One bench binary contributing one panel to a figure.
struct PanelSpec {
  std::string bench;        // binary name under <build>/bench
  std::string description;  // what the panel shows, legend-level
  /// Minimum number of captured tables the panel's series report must carry
  /// for the run to count as reproduced (0 = presence of the report only).
  std::size_t min_tables = 1;
  /// Full-run wall-clock budget in seconds (smoke runs share one short cap).
  double full_timeout_seconds = 1800.0;
  /// Attempt budget: >1 for panels with inherent run-to-run variance where a
  /// transient failure (e.g. an over-subscribed CI machine) merits a retry.
  int max_attempts = 2;
};

/// One figure: a named family of panels aggregated into one CSV/Markdown
/// table pair under docs/results/.
struct FigureSpec {
  std::string name;   // CLI name: --figure <name>
  std::string title;  // heading used in the generated Markdown
  std::vector<PanelSpec> panels;
};

/// The built-in experiment roster, in paper order.
inline const std::vector<FigureSpec>& builtin_roster() {
  static const std::vector<FigureSpec> roster = {
      {"fig2",
       "Figure 2 — synthetic conflict costs (Section 8.1)",
       {
           {"fig2a_synthetic_highB",
            "average conflict cost, high fixed cost (B=2000, mu=500)", 2},
           {"fig2b_synthetic_lowB",
            "average conflict cost, low fixed cost (B=200, mu=500)", 2},
           {"fig2c_adversarial_det",
            "worst-case remaining-time distribution for DET (B=2000)", 2},
       }},
      {"fig3",
       "Figure 3 — HTM data-structure throughput (Section 8.2)",
       {
           {"fig3_stack", "transactional stack throughput vs threads", 1},
           {"fig3_queue", "transactional queue throughput vs threads", 1},
           {"fig3_txapp", "mixed transactional application workload", 1},
           {"fig3_bimodal", "bimodal transaction-length workload", 1},
           {"fig3_extended",
            "extended data-structure panels beyond the paper's four", 1},
       }},
      {"ablations",
       "Ablations — simulator and policy sensitivity studies",
       {
           {"ablation_abort_probability",
            "commit/abort mix as the grace period varies", 1},
           {"ablation_backoff_progress",
            "Section 7 backoff decorator progress guarantee", 1},
           {"ablation_eager_vs_lazy", "eager vs lazy conflict detection", 1},
           {"ablation_memory_hierarchy",
            "sensitivity to cache/L2 latency parameters", 1},
           {"ablation_noc", "sensitivity to the mesh NoC geometry", 1},
           {"ablation_oracle_gap",
            "distance between online policies and the offline OPT", 1},
           {"ablation_rw_vs_ra",
            "requestor-wins vs requestor-aborts across chain lengths", 1},
       }},
      {"validation",
       "Validation — closed-form ratios vs measured behavior",
       {
           {"numeric_validation",
            "numeric minimax solver vs closed-form densities", 1},
           {"ratio_validation",
            "measured competitive ratios vs Theorems 1-6", 1},
           {"competitive_sum_runtimes",
            "sum-of-runtimes competitiveness (Section 6)", 1},
       }},
      {"stm",
       "STM — contention managers and substrates (Section 8.3)",
       {
           // First panel: the perf-sensitive fast-path microbench, so smoke
           // CI (--max-panels 1) and the perf-gate baseline both cover it.
           {"micro_stm_fastpath",
            "zero-allocation TxBuffers fast path vs pre-refactor hot path; "
            "read-only snapshot path vs the full instrumented path",
            4},
           {"cm_comparison",
            "grace-period policies vs classic contention managers", 1},
           {"stm_contention", "TL2 under variable contention", 1},
           {"stm_substrates", "TL2-style vs NOrec-style substrates", 1},
           {"baseline_structures",
            "locked / lock-free baseline structures", 1},
           {"trace_replay", "recorded-trace replay through the policies", 1},
       }},
      {"arbiter",
       "Cross-substrate — one arbiter roster on TL2, NOrec, HTM, and the "
       "fallback-lock path",
       {
           {"cross_substrate_arbiter",
            "the same ConflictArbiter instances arbitrating four substrates "
            "in one table, swept over thread/core counts (one table per "
            "point)",
            3},
       }},
      {"kv",
       "KV service — sharded transactional store under open-loop load "
       "(throughput + p99/p999 completion time per arbiter, TL2 and NOrec)",
       {
           {"kv_service",
            "one table per YCSB-style mix (read-heavy, update-heavy, "
            "rmw-swap); rows are arbiter x substrate with offered vs "
            "achieved Mops/s, drop%, and p50/p99/p999 microseconds",
            3, /*full_timeout_seconds=*/1200.0},
       }},
      {"stripe",
       "Lock-table placement — hashed vs deterministic region-scoped "
       "stripes at equal table size (false-conflict telemetry, KV "
       "register_regions A/B, per-node descriptor probe cost)",
       {
           {"stripe_geometry",
            "aliased-hot-cell sweep over table sizes (hashed vs region "
            "rows with false_conflicts and the reduction factor), the "
            "sharded KV store with register_regions off/on per mix, and "
            "the NUMA descriptor status-probe panel",
            3, /*full_timeout_seconds=*/1200.0},
       }},
      {"tail",
       "Tail latency under a scheduler adversary — the arbiter roster on "
       "TL2 and NOrec, oversubscribed with preemption fault injection "
       "(p50/p99/p999/max completion time plus kills, expired grants, and "
       "committer-stall recoveries)",
       {
           {"tail_adversary",
            "one table per oversubscription factor; rows are arbiter x "
            "substrate with p50/p99/p999/max microseconds, kills "
            "delivered, grace grants expired, committer recoveries, and "
            "the conservation-audit verdict",
            2, /*full_timeout_seconds=*/1200.0},
       }},
      {"alloc",
       "Transactional allocation — pool-backed tx queue/stack (TxPool "
       "tx_alloc/tx_free with epoch-based reclamation) vs the lock-free "
       "originals, across the arbiter roster on TL2 and NOrec",
       {
           {"tx_alloc",
            "one table per thread count; lock-free MS-queue/Treiber "
            "baseline rows, then arbiter x {TL2,NOrec} x {queue,stack} "
            "rows with Mops/s, commits, aborts, abort recycles, and "
            "grace-reclaimed nodes",
            3, /*full_timeout_seconds=*/1200.0},
       }},
  };
  return roster;
}

/// Find a figure by CLI name; returns nullptr when unknown.
inline const FigureSpec* find_figure(const std::string& name) {
  for (const FigureSpec& figure : builtin_roster()) {
    if (figure.name == name) return &figure;
  }
  return nullptr;
}

}  // namespace txc::repro
