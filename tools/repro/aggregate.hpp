// txconflict — aggregation of per-run bench series into figure tables.
//
// Consumes the txc-bench-series/v1 documents the bench binaries emit under
// --json-out (see bench/bench_util.hpp) and renders, per figure, the two
// artifacts docs/REPRODUCING.md points readers at:
//
//   docs/results/<figure>.md   — human-readable panel tables + run status
//   docs/results/<figure>.csv  — tidy (long-form) data: one value per line,
//                                keyed by panel / table / row / column
//
// Rendering is deliberately timestamp-free and byte-deterministic for fixed
// inputs — tests/test_repro_aggregate.cpp holds golden files against it.
// Baseline comparison (the CI perf-drift gate) lives here too, over the
// txc-bench/v1 reports from tools/repro/benchio.hpp.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "repro/benchio.hpp"
#include "repro/minijson.hpp"
#include "repro/roster.hpp"
#include "sim/stats.hpp"

namespace txc::repro {

/// One captured bench table (mirror of bench_util's CapturedTable).
struct SeriesTable {
  std::string section;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

/// One bench run's series report.
struct SeriesDoc {
  std::string bench;
  bool smoke = false;
  std::uint64_t seed = 0;
  std::vector<SeriesTable> tables;
};

/// Everything the renderer knows about one panel of a figure.
struct PanelData {
  PanelSpec spec;
  BenchResult run;        // exit code / timing, as a txc-bench/v1 row
  bool has_series = false;
  SeriesDoc series;
};

/// Parse a txc-bench-series/v1 document.  Throws on malformed input or a
/// wrong schema tag.
inline SeriesDoc parse_series(const std::string& text,
                              const std::string& origin) {
  const json::Value doc = json::parse(text);
  const std::string schema = doc.string_or("schema", "");
  if (schema != "txc-bench-series/v1") {
    throw std::runtime_error(origin + " is not a txc-bench-series/v1 report " +
                             "(schema \"" + schema + "\")");
  }
  SeriesDoc series;
  series.bench = doc.string_or("bench", "");
  series.smoke = doc.has("smoke") && doc.at("smoke").as_bool();
  series.seed = static_cast<std::uint64_t>(doc.number_or("seed", 0));
  for (const json::Value& entry : doc.at("tables").as_array()) {
    SeriesTable table;
    table.section = entry.string_or("section", "");
    for (const json::Value& header : entry.at("headers").as_array()) {
      table.headers.push_back(header.as_string());
    }
    for (const json::Value& row : entry.at("rows").as_array()) {
      std::vector<std::string> cells;
      for (const json::Value& cell : row.as_array()) {
        cells.push_back(cell.as_string());
      }
      table.rows.push_back(std::move(cells));
    }
    series.tables.push_back(std::move(table));
  }
  return series;
}

/// Read + parse a series report from disk.
inline SeriesDoc read_series(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read series report " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_series(buffer.str(), path);
}

namespace detail {

/// RFC-4180 style field quoting, applied only when needed.
inline std::string csv_field(const std::string& raw) {
  if (raw.find_first_of(",\"\n\r") == std::string::npos) return raw;
  std::string out = "\"";
  for (const char c : raw) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += "\"";
  return out;
}

/// Escape Markdown table-cell metacharacters.
inline std::string md_cell(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '|') out += "\\|";
    else if (c == '\n') out += ' ';
    else out += c;
  }
  return out;
}

/// Parse a cell as a number; returns false for labels / non-numeric cells.
inline bool numeric_cell(const std::string& cell, double* value) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(cell.c_str(), &end);
  if (end == nullptr || end == cell.c_str() || *end != '\0') return false;
  *value = parsed;
  return true;
}

inline std::string fmt_ms(double ms) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.0f", ms);
  return buffer;
}

inline std::string fmt_stat(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

}  // namespace detail

/// Tidy CSV: header + one line per (panel, table, row, column) value.  The
/// first column of every bench table is its row key; remaining columns are
/// emitted as (column, value) pairs against that key.
inline std::string render_figure_csv(const FigureSpec& figure,
                                     const std::vector<PanelData>& panels) {
  std::ostringstream out;
  out << "figure,panel,table,section,row,column,value\n";
  for (const PanelData& panel : panels) {
    if (!panel.has_series) continue;
    for (std::size_t t = 0; t < panel.series.tables.size(); ++t) {
      const SeriesTable& table = panel.series.tables[t];
      if (table.headers.empty()) continue;
      for (const auto& row : table.rows) {
        if (row.empty()) continue;
        const std::string& key = row[0];
        const std::size_t columns =
            std::min(row.size(), table.headers.size());
        for (std::size_t c = 1; c < columns; ++c) {
          out << detail::csv_field(figure.name) << ','
              << detail::csv_field(panel.spec.bench) << ',' << (t + 1) << ','
              << detail::csv_field(table.section) << ','
              << detail::csv_field(key) << ','
              << detail::csv_field(table.headers[c]) << ','
              << detail::csv_field(row[c]) << '\n';
        }
      }
    }
  }
  return out.str();
}

/// Figure Markdown: one section per panel with run status, every captured
/// table rendered as a Markdown table, and a per-column mean footer (via
/// sim::RunningStats) for quick cross-run eyeballing.
inline std::string render_figure_markdown(const FigureSpec& figure,
                                          const std::vector<PanelData>& panels,
                                          bool smoke) {
  std::ostringstream out;
  out << "# " << figure.title << "\n\n"
      << "_Generated by `txcrepro` (mode: " << (smoke ? "smoke" : "full")
      << "). Regenerate with `./build/tools/txcrepro --figure " << figure.name
      << (smoke ? " --smoke" : "") << "`; do not edit by hand._\n";
  for (const PanelData& panel : panels) {
    out << "\n## Panel `" << panel.spec.bench << "`\n\n"
        << panel.spec.description << "\n\n";
    if (panel.run.ok()) {
      out << "- status: ok (exit 0, " << panel.run.attempts
          << (panel.run.attempts == 1 ? " attempt, " : " attempts, ")
          << detail::fmt_ms(panel.run.wall_ms) << " ms)\n";
    } else {
      out << "- status: **FAILED** (exit " << panel.run.exit_code
          << (panel.run.timed_out ? ", timed out" : "") << ", "
          << panel.run.attempts
          << (panel.run.attempts == 1 ? " attempt, " : " attempts, ")
          << detail::fmt_ms(panel.run.wall_ms) << " ms)\n";
    }
    if (!panel.has_series) {
      out << "- no series report captured\n";
      continue;
    }
    out << "- seed: " << panel.series.seed << "\n";
    for (std::size_t t = 0; t < panel.series.tables.size(); ++t) {
      const SeriesTable& table = panel.series.tables[t];
      out << "\n### Table " << (t + 1);
      if (!table.section.empty()) {
        out << " — " << detail::md_cell(table.section);
      }
      out << "\n\n|";
      for (const auto& header : table.headers) {
        out << ' ' << detail::md_cell(header) << " |";
      }
      out << "\n|";
      for (std::size_t i = 0; i < table.headers.size(); ++i) {
        out << " --- |";
      }
      out << "\n";
      for (const auto& row : table.rows) {
        out << "|";
        for (std::size_t c = 0; c < table.headers.size(); ++c) {
          out << ' ' << (c < row.size() ? detail::md_cell(row[c]) : "")
              << " |";
        }
        out << "\n";
      }
      // Column means over the numeric cells, one summary line per table.
      std::vector<std::string> mean_notes;
      for (std::size_t c = 1; c < table.headers.size(); ++c) {
        sim::RunningStats stats;
        for (const auto& row : table.rows) {
          double value = 0.0;
          if (c < row.size() && detail::numeric_cell(row[c], &value)) {
            stats.add(value);
          }
        }
        const sim::StatsSummary summary = stats.summary();
        if (summary.count > 0) {
          mean_notes.push_back(table.headers[c] + "=" +
                               detail::fmt_stat(summary.mean));
        }
      }
      if (!mean_notes.empty()) {
        out << "\n_Column means: ";
        for (std::size_t i = 0; i < mean_notes.size(); ++i) {
          out << (i ? "; " : "") << mean_notes[i];
        }
        out << "_\n";
      }
    }
  }
  return out.str();
}

/// One detected perf/correctness regression against a baseline report.
struct Regression {
  std::string bench;
  std::string what;
};

struct BaselineConfig {
  /// Current wall time must exceed baseline * threshold to count.
  double wall_ratio_threshold = 1.5;
  /// A current run faster than this is noise, never a wall-time regression
  /// (the baseline side is NOT floored: regressing from a sub-floor baseline
  /// to a slow run must still trip the gate).
  double min_wall_ms = 10.0;
};

/// Compare a fresh run against an archived txc-bench/v1 report.  Only
/// benches present in both are compared; a bench that regressed from ok to
/// failed is always a regression, wall-time drift only above the config
/// thresholds.
inline std::vector<Regression> compare_to_baseline(
    const std::vector<BenchResult>& current,
    const std::vector<BenchResult>& baseline, const BaselineConfig& config) {
  std::vector<Regression> regressions;
  for (const BenchResult& now : current) {
    const BenchResult* base = nullptr;
    for (const BenchResult& candidate : baseline) {
      if (candidate.name == now.name) {
        base = &candidate;
        break;
      }
    }
    if (base == nullptr || !base->ok()) continue;
    if (!now.ok()) {
      regressions.push_back(
          {now.name, now.timed_out
                         ? "timed out (baseline passed)"
                         : "failed with exit " + std::to_string(now.exit_code) +
                               " (baseline passed)"});
      continue;
    }
    if (now.wall_ms < config.min_wall_ms) {
      continue;
    }
    if (now.wall_ms > base->wall_ms * config.wall_ratio_threshold) {
      char note[160];
      std::snprintf(note, sizeof(note),
                    "wall time %.0f ms vs baseline %.0f ms (%.2fx > %.2fx "
                    "threshold)",
                    now.wall_ms, base->wall_ms, now.wall_ms / base->wall_ms,
                    config.wall_ratio_threshold);
      regressions.push_back({now.name, note});
    }
  }
  return regressions;
}

/// Render the baseline comparison as a Markdown drift table — one row per
/// current bench with its wall time, the baseline's, the ratio, and a
/// verdict.  Written by `txcrepro --drift-out` and appended to the CI step
/// summary by the perf-gate job, pass or fail, so every run leaves a
/// human-readable perf trajectory.
inline std::string render_drift_markdown(
    const std::vector<BenchResult>& current,
    const std::vector<BenchResult>& baseline,
    const std::vector<Regression>& regressions, const BaselineConfig& config) {
  std::ostringstream out;
  out << "### Perf gate: drift vs baseline\n\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "Thresholds: wall-time ratio > %.2fx regresses; current runs "
                "under %.0f ms are noise.\n\n",
                config.wall_ratio_threshold, config.min_wall_ms);
  out << line;
  out << "| bench | current ms | baseline ms | ratio | verdict |\n"
      << "| --- | ---: | ---: | ---: | --- |\n";
  for (const BenchResult& now : current) {
    const BenchResult* base = nullptr;
    for (const BenchResult& candidate : baseline) {
      if (candidate.name == now.name) {
        base = &candidate;
        break;
      }
    }
    const Regression* regressed = nullptr;
    for (const Regression& regression : regressions) {
      if (regression.bench == now.name) {
        regressed = &regression;
        break;
      }
    }
    const char* verdict = "ok";
    if (regressed != nullptr) {
      verdict = "**REGRESSED**";
    } else if (base == nullptr) {
      verdict = "new (no baseline)";
    } else if (!base->ok()) {
      // Covers a currently-failing bench too: baseline-failed benches are
      // never regressions (base ok + now failed always regresses above).
      verdict = "skipped (baseline failed)";
    } else if (now.wall_ms < config.min_wall_ms) {
      verdict = "ok (under noise floor)";
    }
    if (base != nullptr && base->wall_ms > 0.0) {
      std::snprintf(line, sizeof(line),
                    "| %s | %.0f | %.0f | %.2fx | %s |\n", now.name.c_str(),
                    now.wall_ms, base->wall_ms, now.wall_ms / base->wall_ms,
                    verdict);
    } else {
      std::snprintf(line, sizeof(line), "| %s | %.0f | — | — | %s |\n",
                    now.name.c_str(), now.wall_ms, verdict);
    }
    out << line;
  }
  out << "\n";
  if (regressions.empty()) {
    out << "No regressions.\n";
  } else {
    out << regressions.size() << " regression(s):\n\n";
    for (const Regression& regression : regressions) {
      out << "- `" << regression.bench << "` — " << regression.what << "\n";
    }
  }
  return out.str();
}

}  // namespace txc::repro
