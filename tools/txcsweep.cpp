// txcsweep — batch parameter sweeps over the HTM simulator, CSV out.
//
// One invocation replaces a shell loop over txcsim: sweep thread counts and
// policies (optionally workloads) and emit a tidy CSV ready for pandas/R:
//
//   txcsweep --workloads txapp,bimodal --policies NO_DELAY,DET,RRW \
//            --threads 1,2,4,8,16 --commits-per-thread 3000
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "core/policy.hpp"
#include "ds/extended_workloads.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

constexpr const char* kUsage = R"(txcsweep — grid sweeps over the HTM simulator

  --workloads W1,W2   stack queue txapp bimodal counter bank zipf readmostly
                      list                      (default txapp)
  --policies P1,P2    NO_DELAY DELAY_TUNED DET DET_ABORTS RRW RRW_MU RRW_OPT
                      RRA RRA_MU HYBRID ORACLE ADAPTIVE (default NO_DELAY,DET,RRW)
  --threads T1,T2     core counts               (default 1,2,4,8,16)
  --commits-per-thread N                        (default 2000)
  --seed N                                      (default 1)
  --tuned X           DELAY_TUNED delay, cycles (default 150)
  --noc --l2          enable the substrate extensions for every run
  --help              this text

Output: CSV, one row per (workload, policy, threads) cell.
)";

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream{csv};
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

std::shared_ptr<Workload> make_workload(const std::string& name,
                                        std::uint32_t cores) {
  if (name == "stack") return std::make_shared<ds::StackWorkload>(cores);
  if (name == "queue") return std::make_shared<ds::QueueWorkload>(cores);
  if (name == "txapp") return std::make_shared<ds::TxAppWorkload>();
  if (name == "bimodal") {
    return std::make_shared<ds::BimodalTxAppWorkload>(cores);
  }
  if (name == "counter") return std::make_shared<ds::CounterWorkload>();
  if (name == "bank") return std::make_shared<ds::BankWorkload>();
  if (name == "zipf") return std::make_shared<ds::ZipfTxAppWorkload>();
  if (name == "readmostly") return std::make_shared<ds::ReadMostlyWorkload>();
  if (name == "list") return std::make_shared<ds::ListWorkload>();
  std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
  std::exit(2);
}

core::StrategyKind parse_policy(const std::string& name) {
  if (name == "NO_DELAY") return core::StrategyKind::kNoDelay;
  if (name == "DELAY_TUNED") return core::StrategyKind::kFixedTuned;
  if (name == "DET") return core::StrategyKind::kDetWins;
  if (name == "DET_ABORTS") return core::StrategyKind::kDetAborts;
  if (name == "RRW") return core::StrategyKind::kRandWins;
  if (name == "RRW_MU") return core::StrategyKind::kRandWinsMean;
  if (name == "RRW_OPT") return core::StrategyKind::kRandWinsPower;
  if (name == "RRA") return core::StrategyKind::kRandAborts;
  if (name == "RRA_MU") return core::StrategyKind::kRandAbortsMean;
  if (name == "HYBRID") return core::StrategyKind::kHybrid;
  if (name == "ORACLE") return core::StrategyKind::kOracle;
  if (name == "ADAPTIVE") return core::StrategyKind::kAdaptiveTuned;
  std::fprintf(stderr, "unknown policy: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args{argc, argv, {"noc", "l2", "help"}};
  if (args.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  args.reject_unknown({"workloads", "policies", "threads",
                       "commits-per-thread", "seed", "tuned", "noc", "l2",
                       "help"});

  const auto workloads = split(args.get("workloads", "txapp"));
  const auto policies = split(args.get("policies", "NO_DELAY,DET,RRW"));
  const auto thread_list = split(args.get("threads", "1,2,4,8,16"));
  const std::uint64_t per_thread = args.get_u64("commits-per-thread", 2000);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const double tuned = args.get_double("tuned", 150.0);

  std::printf(
      "workload,policy,threads,commits,aborts,abort_rate,conflicts,cycles,"
      "ops_per_sec,mean_tx_cycles\n");
  for (const std::string& workload_name : workloads) {
    for (const std::string& policy_name : policies) {
      const core::StrategyKind kind = parse_policy(policy_name);
      for (const std::string& threads_token : thread_list) {
        const auto threads =
            static_cast<std::uint32_t>(std::stoul(threads_token));
        HtmConfig config;
        config.cores = threads;
        config.seed = seed;
        config.policy = core::make_policy(kind, tuned);
        config.mode = config.policy->mode();
        config.oracle_hints = kind == core::StrategyKind::kOracle;
        config.use_profiler_mean =
            kind == core::StrategyKind::kRandWinsMean ||
            kind == core::StrategyKind::kRandAbortsMean;
        if (args.has("noc")) config.noc = noc::MeshConfig{};
        if (args.has("l2")) config.l2 = mem::L2Config{};
        HtmSystem system{config, make_workload(workload_name, threads)};
        const HtmStats stats = system.run(per_thread * threads);
        std::printf("%s,%s,%u,%llu,%llu,%.4f,%llu,%llu,%.0f,%.1f\n",
                    workload_name.c_str(), policy_name.c_str(), threads,
                    static_cast<unsigned long long>(stats.commits),
                    static_cast<unsigned long long>(stats.aborts),
                    stats.abort_rate(),
                    static_cast<unsigned long long>(stats.conflicts),
                    static_cast<unsigned long long>(stats.cycles),
                    stats.ops_per_second(), stats.mean_tx_cycles);
      }
    }
  }
  return 0;
}
