// txcrepro — parallel figure-reproduction driver.
//
// Bridges "the benches compile" to "the paper's figures regenerate with one
// command": walks the declarative roster in tools/repro/roster.hpp, runs
// every panel's bench binary in a multi-process worker pool (per-run
// timeouts, retries, deterministic seeds), aggregates the emitted
// txc-bench-series/v1 tables into per-figure CSV + Markdown under
// docs/results/, and optionally gates on perf drift against an archived
// txc-bench/v1 report.
//
//   ./build/tools/txcrepro --figure fig2 --smoke     # one figure, seconds
//   ./build/tools/txcrepro --figure all              # the full roster
//   ./build/tools/txcrepro --figure fig3 --smoke --baseline BENCH_smoke.json
//
// Exit codes: 0 reproduced, 1 panel failures / missing series, 2 usage,
// 3 baseline regression.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.hpp"
#include "repro/aggregate.hpp"
#include "repro/benchio.hpp"
#include "repro/pool.hpp"
#include "repro/roster.hpp"

namespace {

namespace fs = std::filesystem;
using namespace txc::repro;

void print_usage() {
  std::printf(
      "txcrepro — reproduce the paper's figures with a multi-process worker "
      "pool\n"
      "\n"
      "usage: txcrepro [--figure NAME[,NAME...]] [--smoke] [--jobs N]\n"
      "                [--bench-dir DIR] [--out-dir DIR] [--max-panels N]\n"
      "                [--timeout SECS] [--retries N] [--seed N]\n"
      "                [--trial-divisor N] [--baseline FILE]\n"
      "                [--regress-threshold X] [--min-wall-ms MS]\n"
      "                [--drift-out FILE] [--list]\n"
      "\n"
      "  --figure NAMES   comma-separated figures to reproduce, or 'all'\n"
      "                   (default).  See --list for the roster.\n"
      "  --smoke          tiny trial counts (--smoke per bench); seconds\n"
      "                   instead of hours, shapes only\n"
      "  --jobs N         worker processes (default: min(cores, runs),\n"
      "                   at least 2 when there are >= 2 runs)\n"
      "  --bench-dir DIR  bench binaries + manifest.txt (default: ./bench,\n"
      "                   falling back to ./build/bench)\n"
      "  --out-dir DIR    where <figure>.md/<figure>.csv land\n"
      "                   (default: docs/results)\n"
      "  --max-panels N   run only the first N panels of each figure\n"
      "                   (CI smoke: one panel per figure)\n"
      "  --timeout SECS   per-run wall clock override (default: 120 smoke,\n"
      "                   roster budget otherwise)\n"
      "  --retries N      attempt budget override per run\n"
      "  --seed N         base seed; run i gets seed N+i (default: 42)\n"
      "  --trial-divisor N  forwarded to benches: divide workload knobs by N\n"
      "  --baseline FILE  archived txc-bench/v1 report to gate against\n"
      "  --regress-threshold X  wall-time ratio counting as drift "
      "(default 1.5)\n"
      "  --min-wall-ms MS ignore runs faster than this in drift checks\n"
      "                   (default 10)\n"
      "  --drift-out FILE write the --baseline comparison as a Markdown\n"
      "                   drift table (pass or fail; CI step summaries)\n"
      "  --list           print the figure/panel roster and exit\n");
}

// Default bench dir: works from the build tree (./bench) and from the repo
// root (./build/bench).  The manifest distinguishes a binary dir from the
// bench *source* dir, which also exists at the repo root.
fs::path resolve_bench_dir(const std::string& requested) {
  if (!requested.empty()) return requested;
  for (const char* candidate : {"bench", "build/bench"}) {
    if (fs::exists(fs::path(candidate) / "manifest.txt")) {
      return candidate;
    }
  }
  return "bench";
}

std::vector<std::string> split_csv(const std::string& raw) {
  std::vector<std::string> out;
  std::stringstream stream(raw);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  txc::cli::Args args{argc, argv, {"smoke", "list", "help"}};
  args.reject_unknown({"smoke", "list", "help", "figure", "jobs", "bench-dir",
                       "out-dir", "max-panels", "timeout", "retries", "seed",
                       "trial-divisor", "baseline", "regress-threshold",
                       "min-wall-ms", "drift-out"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }
  if (args.has("list")) {
    for (const FigureSpec& figure : builtin_roster()) {
      std::printf("%-12s %s\n", figure.name.c_str(), figure.title.c_str());
      for (const PanelSpec& panel : figure.panels) {
        std::printf("  %-28s %s\n", panel.bench.c_str(),
                    panel.description.c_str());
      }
    }
    return 0;
  }

  const bool smoke = args.has("smoke");
  const fs::path bench_dir = resolve_bench_dir(args.get("bench-dir", ""));
  const fs::path out_dir{args.get("out-dir", "docs/results")};
  const fs::path run_dir = out_dir / "runs";
  const std::uint64_t base_seed = args.get_u64("seed", 42);
  const std::uint64_t max_panels = args.get_u64("max-panels", 0);
  const std::uint64_t trial_divisor = args.get_u64("trial-divisor", 0);
  const double timeout_override = args.get_double("timeout", 0.0);
  const std::uint64_t retries_override = args.get_u64("retries", 0);

  // Select figures.
  std::vector<const FigureSpec*> figures;
  const std::string figure_arg = args.get("figure", "all");
  if (figure_arg == "all") {
    for (const FigureSpec& figure : builtin_roster()) figures.push_back(&figure);
  } else {
    for (const std::string& name : split_csv(figure_arg)) {
      const FigureSpec* figure = find_figure(name);
      if (figure == nullptr) {
        std::fprintf(stderr,
                     "unknown figure \"%s\" (see txcrepro --list)\n",
                     name.c_str());
        return 2;
      }
      // Dedupe: a repeated figure would race two children onto the same
      // per-panel log/series paths.
      if (std::find(figures.begin(), figures.end(), figure) ==
          figures.end()) {
        figures.push_back(figure);
      }
    }
  }
  if (figures.empty()) {
    std::fprintf(stderr, "no figures selected\n");
    return 2;
  }

  std::error_code ec;
  fs::create_directories(run_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", run_dir.string().c_str(),
                 ec.message().c_str());
    return 2;
  }

  // Build the run list: one process per panel, deterministic per-run seeds.
  struct PlannedRun {
    const FigureSpec* figure;
    const PanelSpec* panel;
    std::string series_path;
  };
  std::vector<PlannedRun> planned;
  std::vector<RunSpec> specs;
  std::size_t missing_binaries = 0;
  for (const FigureSpec* figure : figures) {
    std::size_t taken = 0;
    for (const PanelSpec& panel : figure->panels) {
      if (max_panels > 0 && taken >= max_panels) break;
      ++taken;
      const fs::path binary = bench_dir / panel.bench;
      if (!fs::exists(binary)) {
        std::fprintf(stderr, "missing bench binary: %s\n",
                     binary.string().c_str());
        ++missing_binaries;
        continue;
      }
      RunSpec spec;
      spec.id = panel.bench;
      spec.program = binary.string();
      const std::string series_path =
          (run_dir / (panel.bench + ".series.json")).string();
      spec.args = {"--json-out", series_path, "--seed",
                   std::to_string(base_seed + specs.size())};
      if (smoke) spec.args.push_back("--smoke");
      if (trial_divisor > 0) {
        spec.args.push_back("--trial-divisor");
        spec.args.push_back(std::to_string(trial_divisor));
      }
      spec.output_path = (run_dir / (panel.bench + ".log")).string();
      spec.timeout_seconds = timeout_override > 0 ? timeout_override
                             : smoke              ? 120.0
                                     : panel.full_timeout_seconds;
      spec.max_attempts = retries_override > 0
                              ? static_cast<int>(retries_override)
                              : panel.max_attempts;
      planned.push_back({figure, &panel, series_path});
      specs.push_back(std::move(spec));
    }
  }
  if (specs.empty()) {
    std::fprintf(stderr,
                 "no runnable panels (bench dir: %s — build with "
                 "-DTXC_BUILD_BENCH=ON or pass --bench-dir)\n",
                 bench_dir.string().c_str());
    return 2;
  }

  std::size_t jobs = args.get_u64("jobs", 0);
  if (jobs == 0) {
    const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min(cores, specs.size());
    if (specs.size() >= 2) jobs = std::max<std::size_t>(jobs, 2);
  }
  std::printf("txcrepro: %zu run(s) across %zu figure(s), %zu worker "
              "process(es), mode=%s\n",
              specs.size(), figures.size(), jobs, smoke ? "smoke" : "full");

  ProcessPool pool(jobs);
  std::size_t done = 0;
  const std::vector<RunResult> run_results = pool.run_all(
      specs, [&](const RunSpec& spec, const RunResult& result) {
        ++done;
        std::printf("[%zu/%zu] %-28s %s (exit %d%s, %d attempt%s, %.0f ms)\n",
                    done, specs.size(), spec.id.c_str(),
                    result.ok() ? "ok" : "FAILED", result.exit_code,
                    result.timed_out ? ", timed out" : "", result.attempts,
                    result.attempts == 1 ? "" : "s", result.wall_ms);
        std::fflush(stdout);
      });
  std::printf("peak parallelism: %zu process(es)\n", pool.peak_parallelism());

  // Aggregate: per figure, collect panel data and render CSV + Markdown.
  std::size_t failed_panels = missing_binaries;
  std::vector<BenchResult> current_report;
  for (const FigureSpec* figure : figures) {
    std::vector<PanelData> panels;
    for (std::size_t i = 0; i < planned.size(); ++i) {
      if (planned[i].figure != figure) continue;
      const RunResult& run = run_results[i];
      PanelData data;
      data.spec = *planned[i].panel;
      data.run.name = run.id;
      data.run.exit_code = run.exit_code;
      data.run.timed_out = run.timed_out;
      data.run.attempts = run.attempts;
      data.run.wall_ms = run.wall_ms;
      current_report.push_back(data.run);
      if (!run.ok()) {
        ++failed_panels;
      } else {
        try {
          data.series = read_series(planned[i].series_path);
          data.has_series = true;
          if (data.series.tables.size() < data.spec.min_tables) {
            std::fprintf(stderr,
                         "%s: expected >= %zu series table(s), got %zu\n",
                         data.spec.bench.c_str(), data.spec.min_tables,
                         data.series.tables.size());
            ++failed_panels;
          }
        } catch (const std::exception& error) {
          std::fprintf(stderr, "%s: %s\n", data.spec.bench.c_str(),
                       error.what());
          ++failed_panels;
        }
      }
      panels.push_back(std::move(data));
    }
    if (panels.empty()) continue;

    const std::string csv = render_figure_csv(*figure, panels);
    const std::string md = render_figure_markdown(*figure, panels, smoke);
    const fs::path csv_path = out_dir / (figure->name + ".csv");
    const fs::path md_path = out_dir / (figure->name + ".md");
    for (const auto& [path, text] :
         {std::pair{csv_path, &csv}, std::pair{md_path, &md}}) {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
        return 2;
      }
      out << *text;
    }
    std::printf("wrote %s and %s\n", md_path.string().c_str(),
                csv_path.string().c_str());
  }

  // Archive the run outcomes as a txc-bench/v1 report (baseline input for
  // future invocations and the CI artifact).
  const std::string report_path =
      (run_dir / (smoke ? "REPRO_smoke.json" : "REPRO_full.json")).string();
  if (!write_report(report_path, smoke, bench_dir.string(), current_report)) {
    std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
    return 2;
  }
  std::printf("run report: %s\n", report_path.c_str());

  // Baseline gate.
  if (args.has("baseline")) {
    BaselineConfig config;
    config.wall_ratio_threshold = args.get_double("regress-threshold", 1.5);
    config.min_wall_ms = args.get_double("min-wall-ms", 10.0);
    std::vector<BenchResult> baseline;
    try {
      baseline = read_report(args.get("baseline", ""));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "baseline: %s\n", error.what());
      return 2;
    }
    const std::vector<Regression> regressions =
        compare_to_baseline(current_report, baseline, config);
    const std::string drift_path = args.get("drift-out", "");
    if (!drift_path.empty()) {
      std::ofstream drift(drift_path);
      if (!drift) {
        std::fprintf(stderr, "cannot write %s\n", drift_path.c_str());
        return 2;
      }
      drift << render_drift_markdown(current_report, baseline, regressions,
                                     config);
      std::printf("drift table: %s\n", drift_path.c_str());
    }
    if (!regressions.empty()) {
      for (const Regression& regression : regressions) {
        std::fprintf(stderr, "REGRESSION: %s — %s\n",
                     regression.bench.c_str(), regression.what.c_str());
      }
      return 3;
    }
    std::printf("baseline: no regressions against %s\n",
                args.get("baseline", "").c_str());
  }

  if (failed_panels > 0) {
    std::fprintf(stderr, "%zu panel(s) failed to reproduce\n", failed_panels);
    return 1;
  }
  std::printf("all %zu panel(s) reproduced\n", specs.size());
  return 0;
}
