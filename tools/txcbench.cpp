// txcbench — unified bench runner and perf-trajectory reporter.
//
// Runs every bench binary produced under <build>/bench (the roster comes
// from the CMake-generated bench/manifest.txt, with a directory scan as
// fallback), times each one, and writes a machine-readable JSON report.
// `--smoke` exports TXC_BENCH_SMOKE=1 so every bench shrinks its trial
// counts (see bench_util.hpp) — the whole suite then finishes in seconds,
// which is what CI archives as the perf trajectory:
//
//   cd build && ./tools/txcbench --smoke                 # BENCH_smoke.json
//   ./tools/txcbench --bench-dir build/bench --filter fig3
//   ./tools/txcbench --list
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "cli_util.hpp"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

struct BenchResult {
  std::string name;
  int exit_code = -1;
  double wall_ms = 0.0;
  std::size_t output_lines = 0;
  std::string tail;  // last output lines, kept for failing benches
};

void print_usage() {
  std::printf(
      "txcbench — run the bench suite and emit a JSON perf report\n"
      "\n"
      "usage: txcbench [--smoke] [--bench-dir DIR] [--out FILE]\n"
      "                [--filter SUBSTR] [--timeout SECONDS] [--list]\n"
      "\n"
      "  --smoke          run every bench in smoke mode (TXC_BENCH_SMOKE=1):\n"
      "                   tiny trial counts, seconds instead of minutes\n"
      "  --bench-dir DIR  directory holding the bench binaries and\n"
      "                   manifest.txt (default: ./bench)\n"
      "  --out FILE       JSON report path (default: BENCH_smoke.json in\n"
      "                   smoke mode, BENCH_full.json otherwise)\n"
      "  --filter SUBSTR  only run benches whose name contains SUBSTR\n"
      "  --timeout SECS   per-bench wall-clock limit, enforced via the\n"
      "                   `timeout` utility when present (default: 600)\n"
      "  --list           print the roster and exit without running\n");
}

std::vector<std::string> load_roster(const fs::path& bench_dir) {
  std::vector<std::string> names;
  std::ifstream manifest(bench_dir / "manifest.txt");
  if (manifest) {
    std::string line;
    while (std::getline(manifest, line)) {
      if (!line.empty()) names.push_back(line);
    }
  }
  if (names.empty()) {
    // Fallback: any executable regular file in the directory.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(bench_dir, ec)) {
      if (!entry.is_regular_file()) continue;
      if (::access(entry.path().c_str(), X_OK) != 0) continue;
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
  }
  return names;
}

// Single-quote a path for the popen shell so spaces and metacharacters in
// the build directory cannot split or reinterpret the command.
std::string shell_quote(const std::string& raw) {
  std::string out = "'";
  for (const char c : raw) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

BenchResult run_bench(const fs::path& bench_dir, const std::string& name,
                      bool smoke, std::uint64_t timeout_seconds) {
  BenchResult result;
  result.name = name;

  // Resolve the coreutils `timeout` wrapper through PATH once; warn once if
  // the documented --timeout limit cannot be enforced.
  static const bool has_timeout_util = [] {
    const bool found =
        std::system("command -v timeout >/dev/null 2>&1") == 0;
    if (!found) {
      std::fprintf(stderr,
                   "warning: `timeout` utility not found; --timeout is not "
                   "enforced\n");
    }
    return found;
  }();

  std::string command;
  if (timeout_seconds > 0 && has_timeout_util) {
    command = "timeout " + std::to_string(timeout_seconds) + " ";
  }
  command += shell_quote((bench_dir / name).string());
  // google-benchmark binaries ignore TXC_BENCH_SMOKE; shorten them by flag.
  if (smoke && name.rfind("micro_", 0) == 0) {
    command += " --benchmark_min_time=0.01";
  }
  command += " 2>&1";

  const auto start = std::chrono::steady_clock::now();
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    result.tail = "popen failed";
    return result;
  }
  constexpr std::size_t kTailLines = 20;
  std::vector<std::string> tail_ring;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    ++result.output_lines;
    if (tail_ring.size() == kTailLines) {
      tail_ring.erase(tail_ring.begin());
    }
    tail_ring.emplace_back(buffer);
  }
  const int status = ::pclose(pipe);
  const auto end = std::chrono::steady_clock::now();

  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
  }
  if (result.exit_code != 0) {
    for (const auto& line : tail_ring) result.tail += line;
  }
  return result;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_report(const std::string& path, bool smoke,
                  const fs::path& bench_dir,
                  const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::size_t failed = 0;
  for (const auto& result : results) {
    if (result.exit_code != 0) ++failed;
  }
  out << "{\n"
      << "  \"schema\": \"txc-bench/v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"generated_unix\": " << std::time(nullptr) << ",\n"
      << "  \"bench_dir\": \"" << json_escape(bench_dir.string()) << "\",\n"
      << "  \"total\": " << results.size() << ",\n"
      << "  \"failed\": " << failed << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    out << "    {\"name\": \"" << json_escape(result.name) << "\", "
        << "\"ok\": " << (result.exit_code == 0 ? "true" : "false") << ", "
        << "\"exit_code\": " << result.exit_code << ", "
        << "\"wall_ms\": " << result.wall_ms << ", "
        << "\"output_lines\": " << result.output_lines;
    if (!result.tail.empty()) {
      out << ", \"output_tail\": \"" << json_escape(result.tail) << "\"";
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  txc::cli::Args args{argc, argv, {"smoke", "list", "help"}};
  args.reject_unknown(
      {"smoke", "list", "help", "bench-dir", "out", "filter", "timeout"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  const bool smoke = args.has("smoke");
  const fs::path bench_dir{args.get("bench-dir", "bench")};
  const std::string filter = args.get("filter", "");
  std::uint64_t timeout_seconds = 600;
  try {
    timeout_seconds = args.get_u64("timeout", timeout_seconds);
  } catch (const std::exception&) {
    std::fprintf(stderr, "--timeout needs a number of seconds, got \"%s\"\n",
                 args.get("timeout", "").c_str());
    return 2;
  }
  const std::string out_path =
      args.get("out", smoke ? "BENCH_smoke.json" : "BENCH_full.json");

  std::vector<std::string> roster = load_roster(bench_dir);
  if (roster.empty()) {
    std::fprintf(stderr,
                 "no bench binaries found under %s (build with "
                 "-DTXC_BUILD_BENCH=ON, or pass --bench-dir)\n",
                 bench_dir.string().c_str());
    return 2;
  }
  if (!filter.empty()) {
    const std::size_t before = roster.size();
    std::erase_if(roster, [&](const std::string& name) {
      return name.find(filter) == std::string::npos;
    });
    if (roster.empty()) {
      std::fprintf(stderr, "--filter %s matches none of the %zu benches\n",
                   filter.c_str(), before);
      return 2;
    }
  }
  if (args.has("list")) {
    for (const auto& name : roster) std::printf("%s\n", name.c_str());
    return 0;
  }

  if (smoke) {
    ::setenv("TXC_BENCH_SMOKE", "1", /*overwrite=*/1);
  }

  std::vector<BenchResult> results;
  results.reserve(roster.size());
  for (const auto& name : roster) {
    std::printf("[%zu/%zu] %s ...", results.size() + 1, roster.size(),
                name.c_str());
    std::fflush(stdout);
    BenchResult result = run_bench(bench_dir, name, smoke, timeout_seconds);
    std::printf(" %s (%.0f ms)\n", result.exit_code == 0 ? "ok" : "FAILED",
                result.wall_ms);
    results.push_back(std::move(result));
  }

  write_report(out_path, smoke, bench_dir, results);

  std::size_t failed = 0;
  for (const auto& result : results) {
    if (result.exit_code != 0) {
      std::fprintf(stderr, "FAILED: %s (exit %d)\n%s", result.name.c_str(),
                   result.exit_code, result.tail.c_str());
      ++failed;
    }
  }
  std::printf("%zu/%zu benches ok; report: %s\n", results.size() - failed,
              results.size(), out_path.c_str());
  return failed == 0 ? 0 : 1;
}
