// txcbench — unified bench runner and perf-trajectory reporter.
//
// Runs every bench binary produced under <build>/bench (the roster comes
// from the CMake-generated bench/manifest.txt, with a directory scan as
// fallback), times each one, and writes a machine-readable JSON report.
// `--smoke` exports TXC_BENCH_SMOKE=1 so every bench shrinks its trial
// counts (see bench_util.hpp) — the whole suite then finishes in seconds,
// which is what CI archives as the perf trajectory:
//
//   cd build && ./tools/txcbench --smoke                 # BENCH_smoke.json
//   ./tools/txcbench --bench-dir build/bench --filter fig3
//   ./tools/txcbench --list
//
// Exit code: 0 when every bench passed, 1 when any bench failed or timed
// out (the failure is also recorded in the JSON report), 2 on usage errors.
// Roster/report plumbing is shared with tools/txcrepro via repro/benchio.hpp.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "repro/benchio.hpp"

#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;
using txc::repro::BenchResult;

void print_usage() {
  std::printf(
      "txcbench — run the bench suite and emit a JSON perf report\n"
      "\n"
      "usage: txcbench [--smoke] [--bench-dir DIR] [--out FILE]\n"
      "                [--filter SUBSTR] [--timeout SECONDS] [--list]\n"
      "\n"
      "  --smoke          run every bench in smoke mode (TXC_BENCH_SMOKE=1):\n"
      "                   tiny trial counts, seconds instead of minutes\n"
      "  --bench-dir DIR  directory holding the bench binaries and\n"
      "                   manifest.txt (default: ./bench)\n"
      "  --out FILE       JSON report path (default: BENCH_smoke.json in\n"
      "                   smoke mode, BENCH_full.json otherwise)\n"
      "  --filter SUBSTR  only run benches whose name contains SUBSTR\n"
      "  --timeout SECS   per-bench wall-clock limit, enforced via the\n"
      "                   `timeout` utility when present (default: 600)\n"
      "  --list           print the roster and exit without running\n"
      "\n"
      "exit code: 0 all benches ok, 1 any bench failed or timed out,\n"
      "2 usage error\n");
}

BenchResult run_bench(const fs::path& bench_dir, const std::string& name,
                      bool smoke, std::uint64_t timeout_seconds) {
  BenchResult result;
  result.name = name;

  // Resolve the coreutils `timeout` wrapper through PATH once; warn once if
  // the documented --timeout limit cannot be enforced.
  static const bool has_timeout_util = [] {
    const bool found =
        std::system("command -v timeout >/dev/null 2>&1") == 0;
    if (!found) {
      std::fprintf(stderr,
                   "warning: `timeout` utility not found; --timeout is not "
                   "enforced\n");
    }
    return found;
  }();

  const bool timeout_wrapped = timeout_seconds > 0 && has_timeout_util;
  std::string command;
  if (timeout_wrapped) {
    command = "timeout " + std::to_string(timeout_seconds) + " ";
  }
  command += txc::repro::shell_quote((bench_dir / name).string());
  // google-benchmark binaries ignore TXC_BENCH_SMOKE; shorten them by flag.
  // Only micro_policy_overhead links google-benchmark (bench/CMakeLists.txt);
  // other micro_* benches speak the bench_util CLI and would reject this.
  if (smoke && name == "micro_policy_overhead") {
    command += " --benchmark_min_time=0.01";
  }
  command += " 2>&1";

  const auto start = std::chrono::steady_clock::now();
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    result.tail = "popen failed";
    return result;
  }
  constexpr std::size_t kTailLines = 20;
  std::vector<std::string> tail_ring;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    ++result.output_lines;
    if (tail_ring.size() == kTailLines) {
      tail_ring.erase(tail_ring.begin());
    }
    tail_ring.emplace_back(buffer);
  }
  const int status = ::pclose(pipe);
  const auto end = std::chrono::steady_clock::now();

  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
  }
  // `timeout` exits 124 on expiry.  137 (128+SIGKILL) is deliberately NOT
  // mapped here: without --kill-after it can only come from an external
  // kill (e.g. the OOM killer), which must surface as a failure, not as a
  // timeout.
  result.timed_out = timeout_wrapped && result.exit_code == 124;
  if (!result.ok()) {
    for (const auto& line : tail_ring) result.tail += line;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  txc::cli::Args args{argc, argv, {"smoke", "list", "help"}};
  args.reject_unknown(
      {"smoke", "list", "help", "bench-dir", "out", "filter", "timeout"});
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  const bool smoke = args.has("smoke");
  const fs::path bench_dir{args.get("bench-dir", "bench")};
  const std::string filter = args.get("filter", "");
  std::uint64_t timeout_seconds = 600;
  try {
    timeout_seconds = args.get_u64("timeout", timeout_seconds);
  } catch (const std::exception&) {
    std::fprintf(stderr, "--timeout needs a number of seconds, got \"%s\"\n",
                 args.get("timeout", "").c_str());
    return 2;
  }
  const std::string out_path =
      args.get("out", smoke ? "BENCH_smoke.json" : "BENCH_full.json");

  std::vector<std::string> roster = txc::repro::load_roster(bench_dir);
  if (roster.empty()) {
    std::fprintf(stderr,
                 "no bench binaries found under %s (build with "
                 "-DTXC_BUILD_BENCH=ON, or pass --bench-dir)\n",
                 bench_dir.string().c_str());
    return 2;
  }
  if (!filter.empty()) {
    const std::size_t before = roster.size();
    std::erase_if(roster, [&](const std::string& name) {
      return name.find(filter) == std::string::npos;
    });
    if (roster.empty()) {
      std::fprintf(stderr, "--filter %s matches none of the %zu benches\n",
                   filter.c_str(), before);
      return 2;
    }
  }
  if (args.has("list")) {
    for (const auto& name : roster) std::printf("%s\n", name.c_str());
    return 0;
  }

  if (smoke) {
    ::setenv("TXC_BENCH_SMOKE", "1", /*overwrite=*/1);
  }

  std::vector<BenchResult> results;
  results.reserve(roster.size());
  for (const auto& name : roster) {
    std::printf("[%zu/%zu] %s ...", results.size() + 1, roster.size(),
                name.c_str());
    std::fflush(stdout);
    BenchResult result = run_bench(bench_dir, name, smoke, timeout_seconds);
    std::printf(" %s (%.0f ms)\n",
                result.ok() ? "ok"
                : result.timed_out ? "TIMED OUT"
                                   : "FAILED",
                result.wall_ms);
    results.push_back(std::move(result));
  }

  if (!txc::repro::write_report(out_path, smoke, bench_dir.string(),
                                results)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }

  std::size_t failed = 0;
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "FAILED: %s (exit %d%s)\n%s", result.name.c_str(),
                   result.exit_code, result.timed_out ? ", timed out" : "",
                   result.tail.c_str());
      ++failed;
    }
  }
  std::printf("%zu/%zu benches ok; report: %s\n", results.size() - failed,
              results.size(), out_path.c_str());
  return failed == 0 ? 0 : 1;
}
