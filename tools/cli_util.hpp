// txconflict — minimal command-line parsing for the tools.
//
// Flags are --name value or --name (boolean).  Unknown flags are an error so
// typos fail loudly; every tool prints a usage block on --help.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace txc::cli {

class Args {
 public:
  /// `boolean_flags`: names that take no value.
  Args(int argc, char** argv, std::set<std::string> boolean_flags)
      : program_(argv[0]), booleans_(std::move(boolean_flags)) {
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected positional argument: %s\n",
                     token.c_str());
        std::exit(2);
      }
      const std::string name = token.substr(2);
      if (booleans_.count(name) != 0) {
        values_[name] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        std::exit(2);
      }
      values_[name] = argv[++i];
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) != 0;
  }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  /// Exits with an error naming any flag that is not in `known`.
  void reject_unknown(const std::set<std::string>& known) const {
    for (const auto& [name, value] : values_) {
      if (known.count(name) == 0) {
        std::fprintf(stderr, "unknown flag --%s (see --help)\n", name.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::string program_;
  std::set<std::string> booleans_;
  std::map<std::string, std::string> values_;
};

}  // namespace txc::cli
