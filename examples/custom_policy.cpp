// Example — writing your own grace-period policy.
//
// The library's extension point is core::GracePeriodPolicy: implement
// grace_period() (and optionally observe() for outcome feedback) and hand
// the policy to any substrate — the HTM simulator, TL2, or NOrec.
//
// The policy built here waits for the *95th percentile* of the remaining
// times it has observed receivers to need, learned online with the P²
// streaming quantile estimator: more conservative than the mean-based
// DELAY_ADAPTIVE, it almost never expires a grace period once calibrated.
#include <cstdio>
#include <memory>

#include "core/estimators.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;

/// Grace period = learned P95 of observed remaining times, capped at the
/// deterministic optimum B/(k-1) so the competitive guarantee of Theorem 4
/// is never forfeited by more than the cap.
class QuantilePolicy final : public core::GracePeriodPolicy {
 public:
  double grace_period(const core::ConflictContext& context,
                      sim::Rng&) const override {
    const double cap = context.abort_cost / (context.chain_length - 1.0);
    if (quantile_.count() < 16) return cap;  // bootstrap: be generous
    return std::min(quantile_.value(), cap);
  }

  core::ResolutionMode mode() const noexcept override {
    return core::ResolutionMode::kRequestorWins;
  }

  std::string name() const override { return "P95_QUANTILE"; }

  void observe(const core::ConflictOutcome& outcome) const noexcept override {
    // Exact sample when the receiver committed; the expired grace period is
    // a lower bound, logged as 2x to keep the tail honest.
    quantile_.add(outcome.committed ? outcome.waited : 2.0 * outcome.grace);
  }

  double learned_p95() const noexcept { return quantile_.value(); }

 private:
  mutable core::P2Quantile quantile_{0.95};
};

}  // namespace

int main() {
  std::printf("custom_policy — a user-defined P95-quantile grace policy\n\n");

  const auto policy = std::make_shared<QuantilePolicy>();
  htm::HtmConfig config;
  config.cores = 16;
  config.policy = policy;
  config.seed = 7;
  htm::HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const htm::HtmStats stats = system.run(30000);

  std::printf("ran %llu commits on %u cores with policy %s\n",
              static_cast<unsigned long long>(stats.commits), config.cores,
              policy->name().c_str());
  std::printf("  abort rate      %.1f%%\n", 100.0 * stats.abort_rate());
  std::printf("  learned P95     %.0f cycles\n", policy->learned_p95());
  std::printf("  mean tx length  %.0f cycles\n", stats.mean_tx_cycles);
  std::printf("\nCompare against the paper's strategies with:\n"
              "  txcsim --workload txapp --policy RRW --cores 16\n");
  return 0;
}
