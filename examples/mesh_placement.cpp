// Example — exploring conflict timing on the mesh NoC.
//
// On a tiled multicore the abort cost B (elapsed running time at conflict
// detection) depends on where a transaction's lines live: far-away home
// tiles stretch every access, so the same workload presents the policies
// with systematically different conflict parameters.  This example runs the
// transactional application on growing meshes and prints how distance
// changes transaction length, conflict counts, and the traffic mix —
// the placement noise a real machine injects into the paper's decision
// problem.
#include <cstdio>
#include <memory>

#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;

htm::HtmStats run_mesh(std::uint32_t side, std::uint64_t link_latency) {
  htm::HtmConfig config;
  config.cores = 16;
  noc::MeshConfig mesh;
  mesh.width = side;
  mesh.height = side;
  mesh.link_latency = link_latency;
  config.noc = mesh;
  config.policy = core::make_policy(core::StrategyKind::kRandWins);
  config.seed = 5;
  htm::HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  return system.run(20000);
}

}  // namespace

int main() {
  std::printf("mesh_placement — how NoC geometry shapes the conflict "
              "problem (txapp, 16 cores, RRW)\n\n");
  std::printf("%-10s %-10s %-12s %-12s %-12s %-12s\n", "mesh", "link-lat",
              "mean-tx-cyc", "conflicts", "abort%", "mean-hops");
  for (const auto& [side, link] :
       {std::pair<std::uint32_t, std::uint64_t>{4, 1},
        {4, 4},
        {8, 1},
        {8, 4}}) {
    const htm::HtmStats stats = run_mesh(side, link);
    std::printf("%ux%-8u %-10llu %-12.0f %-12llu %-12.1f %-12.2f\n", side,
                side, static_cast<unsigned long long>(link),
                stats.mean_tx_cycles,
                static_cast<unsigned long long>(stats.conflicts),
                100.0 * stats.abort_rate(), stats.noc->mean_hops());
  }
  std::printf(
      "\nLonger wires and bigger meshes stretch transactions (higher "
      "mean-tx-cyc),\nraising the abort cost B each conflict presents to the "
      "policy — the grace\nperiods scale with it automatically, no retuning "
      "needed.  That robustness\nto the latency model is the point of an "
      "online strategy.\n");
  return 0;
}
