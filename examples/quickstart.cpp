// Quickstart — the 60-second tour of the txconflict public API.
//
// A transactional system detects a conflict and must choose the grace period
// Delta.  Build a policy, describe the conflict, get Delta.  Build:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "core/cost_model.hpp"
#include "core/policy.hpp"

int main() {
  using namespace txc;

  // 1. Pick a strategy.  The uniform randomized requestor-wins strategy is
  //    2-competitive and trivial to implement in hardware (Theorem 5).
  const auto policy = core::make_policy(core::StrategyKind::kRandWins);

  // 2. Describe the conflict: the receiver has been running 150 cycles and
  //    cleanup costs 50, so aborting it now wastes B = 200; two transactions
  //    are involved (k = 2).
  core::ConflictContext context;
  context.abort_cost = 200.0;
  context.chain_length = 2;

  // 3. Decide.  The policy is local, immediate and unchangeable — exactly
  //    the regime the paper analyzes.
  sim::Rng rng{2024};
  const double grace = policy->grace_period(context, rng);
  std::printf("%s grants a grace period of %.1f cycles (support [0, %.0f])\n",
              policy->name().c_str(), grace,
              context.abort_cost / (context.chain_length - 1));

  // 4. What does that decision cost?  Suppose the receiver actually needed
  //    80 more cycles.
  const double remaining = 80.0;
  const double cost =
      core::conflict_cost(policy->mode(), grace, remaining,
                          context.chain_length, context.abort_cost);
  const double optimal = core::offline_optimal_cost(
      policy->mode(), remaining, context.chain_length, context.abort_cost);
  std::printf("conflict cost %.1f vs offline optimum %.1f (ratio %.2f; "
              "guarantee: 2.00 in expectation)\n",
              cost, optimal, cost / optimal);

  // 5. A profiler that knows the mean transaction length does better
  //    (Section 5.2): competitive ratio 1 + mu/(2B(ln4-1)) when mu/B is
  //    below the threshold.
  context.mean_hint = 60.0;
  const auto informed = core::make_policy(core::StrategyKind::kRandWinsMean);
  std::printf("with mean hint %.0f: ratio guarantee improves to %.3f\n",
              *context.mean_hint,
              core::ratio_rand_wins_mean(context.chain_length,
                                         context.abort_cost,
                                         *context.mean_hint));
  const double informed_grace = informed->grace_period(context, rng);
  std::printf("%s grants %.1f cycles\n", informed->name().c_str(),
              informed_grace);
  return 0;
}
