// Adversary explorer — play the Section 6 adversarial conflict game and
// watch Corollary 1's bound in action as contention rises.
//
//   ./build/examples/adversary_explorer [transactions]
#include <cstdio>
#include <cstdlib>

#include "core/policy.hpp"
#include "workload/adversary.hpp"

int main(int argc, char** argv) {
  using namespace txc;
  using namespace txc::workload;
  const std::size_t transactions =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 3000;

  std::printf("Section 6 adversarial game, %zu transactions per point\n\n",
              transactions);
  std::printf("%-12s %-8s %-8s %-10s %-10s %-10s\n", "conflict-p", "w(S)",
              "bound", "RRW", "RRW(mu)", "NO_DELAY");

  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    GameConfig config;
    config.transactions = transactions;
    config.conflict_probability = p;
    config.provide_mean_hint = true;
    const auto schedule = plan_adversary(config);
    const auto offline = play_offline_optimum(
        schedule, core::ResolutionMode::kRequestorWins, config);
    const double waste = offline.sum_conflict_cost / offline.sum_commit_cost;
    const auto ratio = [&](core::StrategyKind kind) {
      const auto policy = core::make_policy(kind);
      return play_game(schedule, *policy, config).sum_running_time() /
             offline.sum_running_time();
    };
    std::printf("%-12.2f %-8.3f %-8.3f %-10.3f %-10.3f %-10.3f\n", p, waste,
                corollary1_bound(offline),
                ratio(core::StrategyKind::kRandWins),
                ratio(core::StrategyKind::kRandWinsMean),
                ratio(core::StrategyKind::kNoDelay));
  }
  std::printf("\nThe RRW column stays below the bound column at every row — "
              "that is Corollary 1.\n");
  return 0;
}
