// STM bank — a real multi-threaded application on the TL2 STM with the
// paper's grace-period contention manager: concurrent transfers between
// accounts plus transactional audits that must always see a conserved total.
//
//   ./build/examples/stm_bank [threads] [transfers]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "stm/tl2.hpp"

int main(int argc, char** argv) {
  using namespace txc;
  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int transfers = argc > 2 ? std::atoi(argv[2]) : 20000;

  constexpr int kAccounts = 32;
  constexpr std::uint64_t kInitialBalance = 1000;
  std::vector<stm::Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value.store(kInitialBalance);

  // The requestor-aborts randomized strategy is the natural fit for an STM:
  // a blocked transaction can only sacrifice itself, not the lock holder.
  stm::Stm bank{core::make_policy(core::StrategyKind::kRandAborts)};

  std::atomic<std::uint64_t> audits_ok{0};
  std::atomic<std::uint64_t> audits_bad{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sim::Rng rng{t + 7};
      for (int i = 0; i < transfers; ++i) {
        const auto from = static_cast<int>(rng.uniform_below(kAccounts));
        auto to = static_cast<int>(rng.uniform_below(kAccounts - 1));
        if (to >= from) ++to;
        const std::uint64_t amount = rng.uniform_below(20);
        bank.atomically([&](stm::Tx& tx) {
          const std::uint64_t balance = tx.read(accounts[from]);
          const std::uint64_t moved = std::min(balance, amount);
          tx.write(accounts[from], balance - moved);
          tx.write(accounts[to], tx.read(accounts[to]) + moved);
        });
        if (i % 100 == 0) {
          // Transactional audit: a consistent snapshot of all accounts.
          std::uint64_t total = 0;
          bank.atomically([&](stm::Tx& tx) {
            total = 0;
            for (const auto& account : accounts) total += tx.read(account);
          });
          (total == kAccounts * kInitialBalance ? audits_ok : audits_bad)
              .fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  std::uint64_t final_total = 0;
  for (const auto& account : accounts) {
    final_total += stm::Stm::read_committed(account);
  }
  std::printf("threads=%u transfers=%d\n", threads, transfers * threads);
  std::printf("commits=%llu aborts=%llu contention-manager waits=%llu\n",
              static_cast<unsigned long long>(bank.stats().commits.load()),
              static_cast<unsigned long long>(bank.stats().aborts.load()),
              static_cast<unsigned long long>(bank.stats().lock_waits.load()));
  std::printf("audits: %llu consistent, %llu inconsistent\n",
              static_cast<unsigned long long>(audits_ok.load()),
              static_cast<unsigned long long>(audits_bad.load()));
  std::printf("final total: %llu (expected %llu) — %s\n",
              static_cast<unsigned long long>(final_total),
              static_cast<unsigned long long>(kAccounts * kInitialBalance),
              final_total == kAccounts * kInitialBalance ? "OK" : "BROKEN");
  return final_total == kAccounts * kInitialBalance && audits_bad.load() == 0
             ? 0
             : 1;
}
