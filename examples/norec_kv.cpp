// Example — the sharded transactional key-value service (src/kv) on the
// NOrec STM, exercised by real threads.
//
// The hand-rolled table this example used to carry was promoted into the
// kv subsystem: kv::ShardedKvStore is the same open-addressing design
// (buckets are transactional cells packing (key << 32) | value), now
// sharded, substrate-generic, and fronted by kv::KvService — per-shard
// worker threads draining bounded request queues into *batched*
// transactions.  This example shows both layers on NOrec:
//
//   1. direct store access: composed multi-key transactions (two-key
//      swaps) from application threads, with a conservation audit;
//   2. the service front-end: fire-and-forget swap requests through the
//      per-shard queues, completion-time percentiles from the service's
//      latency histograms.
//
// Swapping stm::Norec for stm::Stm below is the entire porting effort —
// that is the unified substrate API at work.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "kv/service.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"

namespace {

using namespace txc;

constexpr std::uint32_t kKeys = 64;

std::uint64_t expected_sum() {
  std::uint64_t sum = 0;
  for (std::uint32_t v = 1; v <= kKeys; ++v) sum += v;
  return sum;
}

}  // namespace

int main() {
  std::printf("norec_kv — sharded transactional KV service on NOrec\n\n");

  kv::KvService<stm::Norec>::Config config;
  config.store.shards = 4;
  config.store.capacity_per_shard = 256;
  config.max_batch = 8;
  kv::KvService<stm::Norec> service{
      config, core::make_policy(core::StrategyKind::kRandAborts)};
  kv::ShardedKvStore<stm::Norec>& store = service.store();

  // Seed keys 1..64 with value = key.
  for (std::uint32_t key = 1; key <= kKeys; ++key) {
    store.put_sync(key, key);
  }

  // Layer 1 — direct store access: 4 threads shuffle values with atomic
  // two-key swaps on the transactional API; the value multiset is
  // invariant, even when the two keys live on different shards.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&store, t] {
      sim::Rng rng{static_cast<std::uint64_t>(t) + 99};
      for (int i = 0; i < 5000; ++i) {
        const auto a = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
        auto b = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
        if (a == b) b = (b % kKeys) + 1;
        if (store.swap_sync(a, b) != kv::OpStatus::kOk) {
          std::fprintf(stderr, "unexpected shard-full\n");
          std::abort();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const std::uint64_t direct_sum = store.value_sum_sync();
  std::printf("after 20000 direct swaps:   value-sum %llu (expected %llu) %s\n",
              static_cast<unsigned long long>(direct_sum),
              static_cast<unsigned long long>(expected_sum()),
              direct_sum == expected_sum() ? "OK" : "CORRUPT");

  // Layer 2 — the batching service front-end: the same swap traffic as
  // queued requests, drained by per-shard workers in batched transactions.
  service.start();
  sim::Rng rng{7};
  for (int i = 0; i < 20000; ++i) {
    kv::Request request;
    request.op = kv::OpKind::kSwap;
    request.key_a = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
    request.key_b = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
    if (request.key_b == request.key_a) {
      request.key_b = (request.key_a % kKeys) + 1;
    }
    while (!service.submit(request)) {
      std::this_thread::yield();  // closed-loop here: wait out a full queue
    }
  }
  service.stop();

  const std::uint64_t service_sum = store.value_sum_sync();
  core::LatencyHistogram latency;
  service.merge_latency(latency);
  const auto& stats = service.service_stats();
  std::printf("after 20000 queued swaps:   value-sum %llu (expected %llu) %s\n",
              static_cast<unsigned long long>(service_sum),
              static_cast<unsigned long long>(expected_sum()),
              service_sum == expected_sum() ? "OK" : "CORRUPT");
  std::printf("  completed %llu in %llu batches; completion p50 %llu / "
              "p99 %llu cycles\n",
              static_cast<unsigned long long>(stats.completed.load()),
              static_cast<unsigned long long>(stats.batches.load()),
              static_cast<unsigned long long>(latency.quantile(0.50)),
              static_cast<unsigned long long>(latency.quantile(0.99)));
  std::printf("  stm commits %llu, aborts %llu, lock waits %llu\n",
              static_cast<unsigned long long>(store.stats().commits.load()),
              static_cast<unsigned long long>(store.stats().aborts.load()),
              static_cast<unsigned long long>(
                  store.stats().lock_waits.load()));
  return direct_sum == expected_sum() && service_sum == expected_sum() ? 0
                                                                       : 1;
}
