// Example — a transactional key-value store on the NOrec STM, exercised by
// real threads.
//
// The store is a fixed-capacity open-addressing hash table whose buckets are
// transactional cells; lookups, inserts, and a two-key "swap" (the
// operation that actually needs a transaction) run under Norec::atomically.
// Demonstrates composing multi-cell invariants on the STM public API with a
// grace-period policy handling commit-lock contention.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "stm/norec.hpp"

namespace {

using namespace txc;
using namespace txc::stm;

/// Keys are nonzero; a bucket holds (key << 32) | value packed in one cell.
class TxKvStore {
 public:
  explicit TxKvStore(std::size_t capacity,
                     std::shared_ptr<const core::GracePeriodPolicy> policy)
      : stm_(std::move(policy)), buckets_(capacity) {}

  void put(std::uint32_t key, std::uint32_t value) {
    stm_.atomically([&](NorecTx& tx) {
      const std::size_t slot = find_slot(tx, key);
      tx.write(buckets_[slot], pack(key, value));
    });
  }

  std::uint32_t get(std::uint32_t key) {
    std::uint32_t result = 0;
    stm_.atomically([&](NorecTx& tx) {
      const std::size_t slot = find_slot(tx, key);
      const std::uint64_t packed = tx.read(buckets_[slot]);
      result = packed == 0 ? 0 : unpack_value(packed);
    });
    return result;
  }

  /// Atomically exchange the values stored under two keys.
  void swap(std::uint32_t a, std::uint32_t b) {
    stm_.atomically([&](NorecTx& tx) {
      const std::size_t slot_a = find_slot(tx, a);
      const std::size_t slot_b = find_slot(tx, b);
      const std::uint64_t packed_a = tx.read(buckets_[slot_a]);
      const std::uint64_t packed_b = tx.read(buckets_[slot_b]);
      tx.write(buckets_[slot_a], pack(a, unpack_value(packed_b)));
      tx.write(buckets_[slot_b], pack(b, unpack_value(packed_a)));
    });
  }

  [[nodiscard]] const StmStats& stats() const noexcept { return stm_.stats(); }

 private:
  static std::uint64_t pack(std::uint32_t key, std::uint32_t value) {
    return (static_cast<std::uint64_t>(key) << 32) | value;
  }
  static std::uint32_t unpack_key(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed >> 32);
  }
  static std::uint32_t unpack_value(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed & 0xFFFFFFFFu);
  }

  /// Linear probing inside the transaction: the probe reads participate in
  /// validation, so a concurrent insert into the probe path aborts us.
  std::size_t find_slot(NorecTx& tx, std::uint32_t key) {
    std::size_t slot = (key * 2654435761u) % buckets_.size();
    for (std::size_t probes = 0; probes < buckets_.size(); ++probes) {
      const std::uint64_t packed = tx.read(buckets_[slot]);
      if (packed == 0 || unpack_key(packed) == key) return slot;
      slot = (slot + 1) % buckets_.size();
    }
    std::fprintf(stderr, "kv store full\n");
    std::abort();
  }

  Norec stm_;
  std::vector<Cell> buckets_;
};

}  // namespace

int main() {
  std::printf("norec_kv — transactional key-value store on NOrec\n\n");
  TxKvStore store{1024,
                  core::make_policy(core::StrategyKind::kRandAborts)};

  // Seed 64 keys with value = key.
  for (std::uint32_t key = 1; key <= 64; ++key) store.put(key, key);

  // 4 threads shuffle values around with atomic two-key swaps; the multiset
  // of values is invariant.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&store, t] {
      sim::Rng rng{static_cast<std::uint64_t>(t) + 99};
      for (int i = 0; i < 5000; ++i) {
        const auto a = 1 + static_cast<std::uint32_t>(rng.uniform_below(64));
        auto b = 1 + static_cast<std::uint32_t>(rng.uniform_below(64));
        if (a == b) b = (b % 64) + 1;
        store.swap(a, b);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // Audit: the 64 values are still exactly {1..64}.
  std::uint64_t sum = 0;
  std::uint64_t xor_fold = 0;
  for (std::uint32_t key = 1; key <= 64; ++key) {
    const std::uint32_t value = store.get(key);
    sum += value;
    xor_fold ^= value;
  }
  std::uint64_t expected_sum = 0;
  std::uint64_t expected_xor = 0;
  for (std::uint32_t v = 1; v <= 64; ++v) {
    expected_sum += v;
    expected_xor ^= v;
  }
  std::printf("after 20000 concurrent swaps:\n");
  std::printf("  value-sum  %llu (expected %llu)  %s\n",
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(expected_sum),
              sum == expected_sum ? "OK" : "CORRUPT");
  std::printf("  value-xor  %llu (expected %llu)  %s\n",
              static_cast<unsigned long long>(xor_fold),
              static_cast<unsigned long long>(expected_xor),
              xor_fold == expected_xor ? "OK" : "CORRUPT");
  std::printf("  commits %llu, aborts %llu, lock waits %llu\n",
              static_cast<unsigned long long>(store.stats().commits.load()),
              static_cast<unsigned long long>(store.stats().aborts.load()),
              static_cast<unsigned long long>(
                  store.stats().lock_waits.load()));
  return sum == expected_sum && xor_fold == expected_xor ? 0 : 1;
}
