// HTM stack demo — run the discrete-event HTM simulator on the contended
// transactional stack of Section 8.2 and compare conflict policies.
//
//   ./build/examples/htm_stack_demo [threads] [ops]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

int main(int argc, char** argv) {
  using namespace txc;
  const std::uint32_t threads =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const std::uint64_t ops =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 40000;

  std::printf("transactional stack, %u cores, %llu operations\n\n", threads,
              static_cast<unsigned long long>(ops));
  std::printf("%-14s %12s %10s %10s %12s\n", "policy", "ops/sec", "aborts",
              "abort-rate", "mean tx len");

  for (const auto kind :
       {core::StrategyKind::kNoDelay, core::StrategyKind::kDetWins,
        core::StrategyKind::kRandWins, core::StrategyKind::kRandWinsMean,
        core::StrategyKind::kRandAborts}) {
    htm::HtmConfig config;
    config.cores = threads;
    config.policy = core::make_policy(kind);
    if (kind == core::StrategyKind::kRandAborts) {
      config.mode = core::ResolutionMode::kRequestorAborts;
    }
    if (kind == core::StrategyKind::kRandWinsMean) {
      config.use_profiler_mean = true;  // Section 5.2's profiler
    }
    config.seed = 42;
    htm::HtmSystem system{config, std::make_shared<ds::StackWorkload>(threads)};
    const auto stats = system.run(ops);
    std::printf("%-14s %12.3g %10llu %9.1f%% %12.1f\n",
                core::to_string(kind), stats.ops_per_second(),
                static_cast<unsigned long long>(stats.aborts),
                100.0 * stats.abort_rate(), stats.mean_tx_cycles);
  }
  std::printf("\nEvery run is deterministic for a fixed seed; rerun with a "
              "different thread count to explore the contention curve.\n");
  return 0;
}
