#!/usr/bin/env bash
# Regenerate the checked-in txc-bench/v1 baselines the CI `perf-gate` job
# compares every push against:
#   docs/results/baseline.smoke.json — one smoke panel per figure (cheap
#       correctness gate; wall times mostly under the gate's noise floor)
#   docs/results/baseline.stm.json   — the STM fast-path microbench at full
#       depth (~0.5 s), so the zero-allocation refactor's win is actually
#       wall-time-gated, not noise-floored away
#
# Run this (and commit the results) whenever:
#   * a bench is added to / removed from the repro roster,
#   * a deliberate perf change shifts wall times (faster OR slower), or
#   * the gate's invocations below change.
#
# The invocations must stay in lock-step with the perf-gate job in
# .github/workflows/ci.yml: same figures, same --max-panels, same --jobs
# (sequential — parallel panels inflate each other's wall time), same
# depth.  The gate tolerates machine-to-machine variance via a generous
# --regress-threshold and a --min-wall-ms noise floor (set in ci.yml, not
# here: thresholds gate, the baseline just records).
#
# Usage: scripts/regen_baseline.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if [ ! -x "$build_dir/tools/txcrepro" ]; then
  echo "building $build_dir (Release) ..."
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" --target txcrepro >/dev/null
  # Bench binaries are what txcrepro actually runs.
  cmake --build "$build_dir" -j "$(nproc)" >/dev/null
fi

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

"./$build_dir/tools/txcrepro" --figure all --smoke --max-panels 1 --jobs 1 \
  --out-dir "$out_dir/smoke"
cp "$out_dir/smoke/runs/REPRO_smoke.json" docs/results/baseline.smoke.json

"./$build_dir/tools/txcrepro" --figure stm --max-panels 1 --jobs 1 \
  --trial-divisor 1 --out-dir "$out_dir/stm"
cp "$out_dir/stm/runs/REPRO_full.json" docs/results/baseline.stm.json

for baseline in baseline.smoke.json baseline.stm.json; do
  echo "wrote docs/results/$baseline:"
  python3 -m json.tool "docs/results/$baseline"
done
echo "review the wall_ms deltas and commit both files."
