#!/usr/bin/env python3
"""Check that relative Markdown links in the docs resolve to real files.

Scans README.md and docs/**/*.md for inline links/images.  External links
(http/https/mailto) are not fetched — CI must not depend on the network —
but every relative target must exist in the tree, and heading anchors into
Markdown files are validated against the target's headings.

Usage: scripts/check_doc_links.py [ROOT]     (default: repo root)
Exit codes: 0 all links resolve, 1 broken links, 2 usage error.
"""

import pathlib
import re
import sys

# Inline [text](target) and ![alt](target); stops at the first unescaped ')'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's anchor algorithm, to the precision the docs need."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[`*_]", "", anchor)
    anchor = re.sub(r"[^\w\- ]", "", anchor, flags=re.UNICODE)
    return anchor.replace(" ", "-")


def anchors_of(markdown_path: pathlib.Path) -> set:
    text = markdown_path.read_text(encoding="utf-8")
    # `# comment` lines inside fenced code blocks are not headings.
    text = CODE_FENCE_RE.sub("", text)
    return {github_anchor(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(md_file: pathlib.Path, root: pathlib.Path) -> list:
    errors = []
    text = md_file.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    text = CODE_FENCE_RE.sub("", text)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_anchor(target[1:]) not in anchors_of(md_file):
                errors.append(f"{md_file}: broken anchor {target}")
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_file}: broken link {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if github_anchor(anchor) not in anchors_of(resolved):
                errors.append(f"{md_file}: broken anchor {target}")
    return errors


def main() -> int:
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = pathlib.Path(sys.argv[1] if len(sys.argv) == 2 else ".").resolve()
    files = [root / "README.md"] + sorted((root / "docs").rglob("*.md"))
    files = [f for f in files if f.exists()]
    if not files:
        print(f"no Markdown files found under {root}", file=sys.stderr)
        return 2
    errors = []
    for md_file in files:
        errors.extend(check_file(md_file, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
