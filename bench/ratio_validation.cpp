// Competitive-ratio validation — analytic vs measured.
//
// For every strategy family and chain length, sweep the adversary's remaining
// time over a fine grid and report the worst measured E[cost]/OPT next to the
// paper's closed form (Theorems 1-6).  This is the "table" behind every ratio
// claim in the paper.
#include "bench_util.hpp"
#include "core/cost_model.hpp"

namespace {

using namespace txc;
using namespace txc::core;

// One table for the whole sweep so --json-out captures every (strategy, k)
// ratio as a series row; the row key combines both.
const bench::Table& table() {
  static const bench::Table t{
      {"strategy@k", "measured", "analytic", "abs_diff"}, 20};
  return t;
}

void report(const char* name, int k, double measured, double analytic) {
  table().print_row({std::string(name) + "@k=" + std::to_string(k),
                     bench::fmt(measured, 4), bench::fmt(analytic, 4),
                     bench::fmt(std::abs(measured - analytic), 5)});
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  bench::banner("Competitive-ratio validation (Theorems 1-6)",
                "measured worst-case ratios match the closed forms to grid "
                "resolution");
  const double B = 500.0;
  table().print_header();
  for (const int k : {2, 3, 4, 8, 16}) {
    {
      const auto view = make_view(UniformWinsDensity{B, k});
      report("RRW uniform (Thm 5)", k,
             worst_case_ratio(ResolutionMode::kRequestorWins, view, k, B),
             ratio_rand_wins_uniform(k));
    }
    {
      const auto view = make_view(PowerWinsDensity{B, k});
      report("RRW power (Thm 6)", k,
             worst_case_ratio(ResolutionMode::kRequestorWins, view, k, B),
             ratio_rand_wins_power(k));
    }
    {
      const auto view = make_view(ExpAbortsDensity{B, k});
      report("RRA exponential (Thm 1/3)", k,
             worst_case_ratio(ResolutionMode::kRequestorAborts, view, k, B),
             ratio_rand_aborts(k));
    }
    // Deterministic wins: adversary plays D = x = B/(k-1).
    {
      const double grace = B / (k - 1.0);
      const double cost =
          conflict_cost(ResolutionMode::kRequestorWins, grace, grace, k, B);
      const double optimal =
          offline_optimal_cost(ResolutionMode::kRequestorWins, grace, k, B);
      report("DET wins (Thm 4)", k, cost / optimal, ratio_det_wins(k));
    }
    // Mean-constrained corners: ratio at D = mu equals C2.
    {
      const double mu = 0.4 * B * mean_threshold_wins(k);
      const DensityView view =
          k == 2 ? make_view(LogMeanWinsDensity{B})
                 : make_view(PowerMeanWinsDensity{B, k});
      report("RRW(mu) corner (Thm 5/6)", k,
             pointwise_ratio(ResolutionMode::kRequestorWins, view, mu, k, B),
             ratio_rand_wins_mean(k, B, mu));
    }
    {
      const double mu = 0.4 * B * mean_threshold_aborts(k);
      const auto view = make_view(ExpMeanAbortsDensity{B, k});
      report("RRA(mu) corner (Thm 2/3)", k,
             pointwise_ratio(ResolutionMode::kRequestorAborts, view, mu, k, B),
             ratio_rand_aborts_mean(k, B, mu));
    }
    std::printf("\n");
  }
  return 0;
}
