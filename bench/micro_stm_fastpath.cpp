// STM fast-path microbenchmark — the zero-allocation refactor, before vs
// after.
//
// `legacy` below is a frozen copy of the pre-refactor TL2 hot path: a
// std::function transaction body plus a fresh std::vector read set /
// std::unordered_map write set per *attempt* — exactly what every
// transaction paid before stm/tx_buffers.hpp existed.  The live txc::stm::Stm
// runs the same TL2 algorithm on reusable per-thread TxBuffers with a
// template atomically().  Comparing the two on one binary isolates the cost
// of allocator traffic and type erasure from everything else (same compiler,
// same flags, same cells, same contention manager).
//
// The headline series is single-thread commit throughput: with no conflicts
// and no aborts, the gap is pure substrate overhead.  The acceptance bar for
// the refactor is fast/legacy >= 2.0 on the counter workload.  Mean commit
// cycles come from the core::AttemptProfile hook (rdtsc-grade timing).
// A second before/after pair covers the NOrec committer-descriptor
// protocol: `legacy_norec` (bench/norec_legacy.{hpp,cpp}) is the
// anonymous-seqlock NOrec frozen verbatim at PR 4 — arbitration wait path
// intact, no descriptor publication, no kill window — with the live
// substrate's translation-unit structure, so the ratio isolates exactly
// what the committer-descriptor protocol added to the commit path.
// A third pair covers the read-only snapshot fast path (PR 8): a read-only
// body on the plain instrumented atomically() pays the full machinery
// (read-set/read-log accrual, descriptor publication, commit-time
// validation), while atomically_read() runs the declared read-only snapshot
// protocol (TL2: per-read lock-word recheck against a pinned clock sample;
// NOrec: seqlock recheck per read, no value log).  The StmStats columns
// prove which ledger each side ran on.  (The kReadOnlyTx hint that used to
// sit between the two was removed once every read-only caller migrated to
// atomically_read.)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "norec_legacy.hpp"
#include "conflict/grace.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace legacy {

// ---------------------------------------------------------------------------
// Pre-refactor TL2 (frozen at PR 2): std::function bodies, per-attempt heap
// containers.  Kept verbatim minus renames so the "before" column keeps
// measuring the real thing as the live implementation evolves.  Reuses the
// shared conflict-arbitration machinery (descriptors, a requestor-aborts
// GraceArbiter — the contract the retired stm/cm.hpp GracePolicyCm pinned).
// ---------------------------------------------------------------------------

using txc::conflict::ConflictView;
using txc::conflict::Decision;
using txc::conflict::GraceArbiter;
using txc::conflict::TxDescriptor;
using txc::conflict::TxStatus;
using txc::stm::Cell;
using txc::stm::StmStats;
using txc::stm::TxAbort;

constexpr std::uint64_t kLockBit = 1;

thread_local txc::sim::Rng tl_rng{0xC0FFEE ^
                                  std::hash<std::thread::id>{}(
                                      std::this_thread::get_id())};
thread_local TxDescriptor tl_descriptor;

inline bool locked(std::uint64_t versioned_lock) noexcept {
  return (versioned_lock & kLockBit) != 0;
}
inline std::uint64_t version_of(std::uint64_t versioned_lock) noexcept {
  return versioned_lock >> 1;
}

class LegacyStm;

class LegacyTx {
 public:
  [[nodiscard]] std::uint64_t read(const Cell& cell);
  void write(Cell& cell, std::uint64_t value) { write_set_[&cell] = value; }

 private:
  friend class LegacyStm;
  LegacyTx(LegacyStm& stm, std::uint32_t attempt, std::uint64_t read_version)
      : stm_(stm), attempt_(attempt), read_version_(read_version) {}

  LegacyStm& stm_;
  std::uint32_t attempt_;
  std::uint64_t read_version_;
  TxDescriptor* descriptor_ = nullptr;
  std::vector<const Cell*> read_set_;
  std::unordered_map<Cell*, std::uint64_t> write_set_;
};

class LegacyStm {
 public:
  explicit LegacyStm(std::shared_ptr<const txc::core::GracePeriodPolicy> policy,
                     std::size_t stripes = 1 << 16)
      : cm_(std::make_shared<GraceArbiter>(
            std::move(policy), txc::core::ResolutionMode::kRequestorAborts)),
        stripes_(stripes) {}

  void atomically(const std::function<void(LegacyTx&)>& body) {
    TxDescriptor& descriptor = tl_descriptor;
    descriptor.start_time.store(
        start_ticket_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    descriptor.priority.store(0, std::memory_order_relaxed);
    for (std::uint32_t attempt = 0;; ++attempt) {
      descriptor.status.store(static_cast<std::uint32_t>(TxStatus::kActive),
                              std::memory_order_release);
      LegacyTx tx{*this, attempt, clock_.load(std::memory_order_acquire)};
      tx.descriptor_ = &descriptor;
      try {
        body(tx);
      } catch (const TxAbort&) {
        stats_.aborts.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (try_commit(tx)) {
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] const StmStats& stats() const noexcept { return stats_; }

 private:
  friend class LegacyTx;

  struct Stripe {
    std::atomic<std::uint64_t> versioned_lock{0};
    std::atomic<TxDescriptor*> holder{nullptr};
  };

  Stripe& stripe_for(const void* address) noexcept {
    auto mixed = reinterpret_cast<std::uintptr_t>(address) >> 3;
    mixed ^= mixed >> 16;
    mixed *= 0x9E3779B97F4A7C15ULL;
    mixed ^= mixed >> 32;
    return stripes_[mixed % stripes_.size()];
  }

  bool resolve_conflict(Stripe& stripe, LegacyTx& tx) {
    stats_.lock_waits.fetch_add(1, std::memory_order_relaxed);
    double scratch = -1.0;
    std::uint64_t waits = 0;
    while (true) {
      if (!locked(stripe.versioned_lock.load(std::memory_order_acquire))) {
        return true;
      }
      if (tx.descriptor_->load_status() == TxStatus::kAborted) return false;
      ConflictView view;
      view.self = tx.descriptor_;
      view.enemy = stripe.holder.load(std::memory_order_acquire);
      view.context.attempt = tx.attempt_;
      view.waits_so_far = waits;
      view.scratch = &scratch;
      switch (cm_->decide(view, tl_rng)) {
        case Decision::kAbortSelf:
          return false;
        case Decision::kAbortEnemy: {
          TxDescriptor* enemy = stripe.holder.load(std::memory_order_acquire);
          if (enemy != nullptr && enemy->try_kill()) {
            stats_.remote_kills.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case Decision::kWait:
          break;
      }
      const std::uint64_t quantum = cm_->wait_quantum(view);
      for (std::uint64_t spin = 0; spin < quantum; ++spin) {
        if (!locked(stripe.versioned_lock.load(std::memory_order_acquire))) {
          return true;
        }
      }
      ++waits;
    }
  }

  bool try_commit(LegacyTx& tx) {
    if (tx.write_set_.empty()) {
      auto active = static_cast<std::uint32_t>(TxStatus::kActive);
      return tx.descriptor_->status.compare_exchange_strong(
          active, static_cast<std::uint32_t>(TxStatus::kCommitted),
          std::memory_order_acq_rel);
    }
    std::vector<Stripe*> acquired;
    acquired.reserve(tx.write_set_.size());
    const auto release_all = [&] {
      for (Stripe* stripe : acquired) {
        stripe->holder.store(nullptr, std::memory_order_release);
        const std::uint64_t current =
            stripe->versioned_lock.load(std::memory_order_relaxed);
        stripe->versioned_lock.store(version_of(current) << 1,
                                     std::memory_order_release);
      }
    };
    for (auto& [cell, value] : tx.write_set_) {
      Stripe& stripe = stripe_for(cell);
      bool already_ours = false;
      for (Stripe* held : acquired) already_ours |= (held == &stripe);
      if (already_ours) continue;
      while (true) {
        if (tx.descriptor_->load_status() == TxStatus::kAborted) {
          release_all();
          return false;
        }
        std::uint64_t expected =
            stripe.versioned_lock.load(std::memory_order_relaxed);
        if (!locked(expected) && version_of(expected) <= tx.read_version_) {
          if (stripe.versioned_lock.compare_exchange_weak(
                  expected, expected | kLockBit, std::memory_order_acquire)) {
            stripe.holder.store(tx.descriptor_, std::memory_order_release);
            acquired.push_back(&stripe);
            break;
          }
          continue;
        }
        if (locked(expected)) {
          if (resolve_conflict(stripe, tx)) continue;
        }
        release_all();
        return false;
      }
    }
    auto active = static_cast<std::uint32_t>(TxStatus::kActive);
    if (!tx.descriptor_->status.compare_exchange_strong(
            active, static_cast<std::uint32_t>(TxStatus::kCommitting),
            std::memory_order_acq_rel)) {
      release_all();
      return false;
    }
    const std::uint64_t write_version =
        clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (write_version != tx.read_version_ + 1) {
      for (const Cell* cell : tx.read_set_) {
        const Stripe& stripe = stripe_for(cell);
        const std::uint64_t state =
            stripe.versioned_lock.load(std::memory_order_acquire);
        bool ours = false;
        for (Stripe* held : acquired) ours |= (held == &stripe);
        if ((locked(state) && !ours) || version_of(state) > tx.read_version_) {
          tx.descriptor_->status.store(
              static_cast<std::uint32_t>(TxStatus::kAborted),
              std::memory_order_release);
          release_all();
          return false;
        }
      }
    }
    for (auto& [cell, value] : tx.write_set_) {
      cell->value.store(value, std::memory_order_release);
    }
    for (Stripe* stripe : acquired) {
      stripe->holder.store(nullptr, std::memory_order_release);
      stripe->versioned_lock.store(write_version << 1,
                                   std::memory_order_release);
    }
    tx.descriptor_->status.store(
        static_cast<std::uint32_t>(TxStatus::kCommitted),
        std::memory_order_release);
    return true;
  }

  std::shared_ptr<const txc::conflict::ConflictArbiter> cm_;
  std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> start_ticket_{0};
  StmStats stats_;
};

std::uint64_t LegacyTx::read(const Cell& cell) {
  if (descriptor_->load_status() == TxStatus::kAborted) throw TxAbort{};
  const auto buffered = write_set_.find(const_cast<Cell*>(&cell));
  if (buffered != write_set_.end()) return buffered->second;
  LegacyStm::Stripe& stripe = stm_.stripe_for(&cell);
  const std::uint64_t before =
      stripe.versioned_lock.load(std::memory_order_acquire);
  const std::uint64_t value = cell.value.load(std::memory_order_acquire);
  const std::uint64_t after =
      stripe.versioned_lock.load(std::memory_order_acquire);
  if (locked(before) || before != after ||
      version_of(before) > read_version_) {
    if (locked(before) && stm_.resolve_conflict(stripe, *this)) {
      return read(cell);
    }
    throw TxAbort{};
  }
  read_set_.push_back(&cell);  // pre-dedupe: duplicates and all
  descriptor_->priority.fetch_add(1, std::memory_order_relaxed);
  return value;
}

}  // namespace legacy

namespace {

using namespace txc;
using namespace txc::stm;

std::shared_ptr<const core::GracePeriodPolicy> bench_policy() {
  return core::make_policy(core::StrategyKind::kFixedTuned,
                           /*tuned_delay=*/512.0);
}

/// One workload shape, expressed against both substrates.
struct Workload {
  const char* name;
  int cells;        // working-set size
  int reads;        // transactional reads per transaction
  int writes;       // transactional writes per transaction (<= reads)
};

constexpr Workload kWorkloads[] = {
    {"counter (1r/1w)", 1, 1, 1},
    {"transfer (2r/2w)", 16, 2, 2},
    {"scan (16r/1w)", 64, 16, 1},
    {"read-only (16r)", 64, 16, 0},
};

template <typename TxT>
void run_body(TxT& tx, std::vector<Cell>& cells, const Workload& w,
              std::uint64_t round) {
  // Deterministic cell walk: same sequence on both substrates.
  std::uint64_t sum = 0;
  for (int r = 0; r < w.reads; ++r) {
    sum += tx.read(cells[(round + r) % w.cells]);
  }
  for (int wr = 0; wr < w.writes; ++wr) {
    tx.write(cells[(round + wr) % w.cells], sum + wr);
  }
}

double ops_per_second(std::uint64_t ops,
                      std::chrono::steady_clock::time_point start) {
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return static_cast<double>(ops) / elapsed;
}

double run_legacy(const Workload& w, int ops) {
  legacy::LegacyStm stm{bench_policy()};
  std::vector<Cell> cells(w.cells);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    stm.atomically([&](legacy::LegacyTx& tx) {
      run_body(tx, cells, w, static_cast<std::uint64_t>(i));
    });
  }
  return ops_per_second(ops, start);
}

double run_fast(const Workload& w, int ops, core::AttemptProfile* profile) {
  Stm stm{bench_policy()};
  if (profile != nullptr) stm.attach_profile(profile);
  std::vector<Cell> cells(w.cells);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    stm.atomically([&](Tx& tx) {
      run_body(tx, cells, w, static_cast<std::uint64_t>(i));
    });
  }
  return ops_per_second(ops, start);
}

double run_norec_anon(const Workload& w, int ops) {
  legacy_norec::AnonNorec norec{bench_policy()};
  std::vector<Cell> cells(w.cells);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    norec.atomically([&](legacy_norec::AnonNorecTx& tx) {
      run_body(tx, cells, w, static_cast<std::uint64_t>(i));
    });
  }
  return ops_per_second(ops, start);
}

double run_norec_live(const Workload& w, int ops) {
  Norec norec{bench_policy()};
  std::vector<Cell> cells(w.cells);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    norec.atomically([&](NorecTx& tx) {
      run_body(tx, cells, w, static_cast<std::uint64_t>(i));
    });
  }
  return ops_per_second(ops, start);
}

// Accumulator the optimizer cannot discard: read-only bodies have no store
// side effects, so their sums land here.
std::atomic<std::uint64_t> g_read_sink{0};

/// Read-only workload shapes for the snapshot-path panel.
struct ReadWorkload {
  const char* name;
  int cells;
  int reads;
};

constexpr ReadWorkload kReadWorkloads[] = {
    {"point read (1r)", 64, 1},
    {"sum (16r)", 64, 16},
    {"scan (256r)", 256, 256},
};

/// Instrumented path: full transaction machinery on a read-only body.
template <typename Substrate>
double run_instrumented_reads(Substrate& stm, const ReadWorkload& w,
                              int ops) {
  std::vector<Cell> cells(w.cells);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (int i = 0; i < ops; ++i) {
    stm.atomically([&](typename Substrate::TxContext& tx) {
      std::uint64_t sum = 0;
      for (int r = 0; r < w.reads; ++r) {
        sum += tx.read(cells[(i + r) % w.cells]);
      }
      sink += sum;
    });
  }
  g_read_sink.fetch_add(sink, std::memory_order_relaxed);
  return ops_per_second(ops, start);
}

/// Declared read-only path: snapshot reads, no read set, no descriptor.
template <typename Substrate>
double run_snapshot_reads(Substrate& stm, const ReadWorkload& w, int ops) {
  std::vector<Cell> cells(w.cells);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (int i = 0; i < ops; ++i) {
    stm.atomically_read([&](typename Substrate::ReadTxContext& tx) {
      std::uint64_t sum = 0;
      for (int r = 0; r < w.reads; ++r) {
        sum += tx.read(cells[(i + r) % w.cells]);
      }
      sink += sum;
    });
  }
  g_read_sink.fetch_add(sink, std::memory_order_relaxed);
  return ops_per_second(ops, start);
}

template <typename Substrate>
void read_panel_rows(const char* substrate_name, int ops,
                     txc::bench::Table& table) {
  for (const ReadWorkload& w : kReadWorkloads) {
    // Fresh substrate per side so the stats columns isolate each ledger.
    Substrate instr_stm{bench_policy()};
    (void)run_instrumented_reads(instr_stm, w, ops / 10 + 1);
    const double instr_ops = run_instrumented_reads(instr_stm, w, ops);
    Substrate snap_stm{bench_policy()};
    (void)run_snapshot_reads(snap_stm, w, ops / 10 + 1);
    const double snap_ops = run_snapshot_reads(snap_stm, w, ops);
    table.print_row(
        {std::string(substrate_name) + " " + w.name,
         txc::bench::fmt_sci(instr_ops), txc::bench::fmt_sci(snap_ops),
         txc::bench::fmt(snap_ops / instr_ops, 2),
         std::to_string(
             instr_stm.stats().instrumented_reads.load(std::memory_order_relaxed)),
         std::to_string(
             snap_stm.stats().snapshot_reads.load(std::memory_order_relaxed))});
  }
}

/// Read-mostly contention context: readers race one committing writer.  The
/// instrumented path pays commit-time validation / read-log replay against
/// the writer's clock bumps; the snapshot path restarts only when a read
/// races the writer's in-flight commit window.
template <typename Substrate, bool kSnapshot>
double run_readers_vs_writer(unsigned readers, int ops_per_reader) {
  Substrate stm{bench_policy()};
  std::vector<Cell> cells(64);
  std::atomic<bool> stop{false};
  std::thread writer{[&] {
    std::uint64_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      stm.atomically([&](typename Substrate::TxContext& tx) {
        Cell& cell = cells[round % cells.size()];
        tx.write(cell, tx.read(cell) + 1);
      });
      ++round;
    }
  }};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < readers; ++t) {
    pool.emplace_back([&] {
      std::uint64_t sink = 0;
      for (int i = 0; i < ops_per_reader; ++i) {
        if constexpr (kSnapshot) {
          stm.atomically_read([&](typename Substrate::ReadTxContext& tx) {
            std::uint64_t sum = 0;
            for (int r = 0; r < 16; ++r) sum += tx.read(cells[(i + r) % 64]);
            sink += sum;
          });
        } else {
          stm.atomically([&](typename Substrate::TxContext& tx) {
            std::uint64_t sum = 0;
            for (int r = 0; r < 16; ++r) {
              sum += tx.read(cells[(i + r) % 64]);
            }
            sink += sum;
          });
        }
      }
      g_read_sink.fetch_add(sink, std::memory_order_relaxed);
    });
  }
  for (auto& reader : pool) reader.join();
  const double result = ops_per_second(
      static_cast<std::uint64_t>(readers) * ops_per_reader, start);
  stop.store(true, std::memory_order_release);
  writer.join();
  return result;
}

/// Multi-thread hot-counter context: the fast path under real contention.
double run_fast_threads(unsigned threads, int ops_per_thread) {
  Stm stm{bench_policy()};
  Cell hot;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < ops_per_thread; ++i) {
        stm.atomically([&](Tx& tx) { tx.write(hot, tx.read(hot) + 1); });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return ops_per_second(static_cast<std::uint64_t>(threads) * ops_per_thread,
                        start);
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "STM fast path — zero-allocation TxBuffers vs the pre-refactor "
      "hot path (single thread)",
      "reusable flat read/write sets + template atomically beat per-attempt "
      "std::vector/std::unordered_map + std::function by >= 2x on commit "
      "throughput; mean commit cycles drop accordingly");

  const int kOps = txc::bench::scaled(200000);

  txc::bench::Table table{{"workload", "legacy ops/s", "fast ops/s",
                           "speedup", "commit cyc"},
                          18};
  table.print_header();
  for (const Workload& w : kWorkloads) {
    // Warm-up pass per side, then the measured pass (same allocator and
    // cache state for both).  Throughput runs carry no profiler: the two
    // rdtsc stamps per attempt would tax exactly the path under test.
    (void)run_legacy(w, kOps / 10 + 1);
    const double legacy_ops = run_legacy(w, kOps);
    (void)run_fast(w, kOps / 10 + 1, nullptr);
    const double fast_ops = run_fast(w, kOps, nullptr);
    // Separate, shorter profiled pass for the cycle column.
    core::AttemptProfile profile;
    (void)run_fast(w, kOps / 10 + 1, &profile);
    table.print_row({w.name, txc::bench::fmt_sci(legacy_ops),
                     txc::bench::fmt_sci(fast_ops),
                     txc::bench::fmt(fast_ops / legacy_ops, 2),
                     txc::bench::fmt(profile.mean_commit_cycles(), 0)});
  }
  std::printf("\n");

  txc::bench::banner(
      "NOrec committer descriptor — anonymous seqlock vs published "
      "committer (single thread)",
      "publishing the committing thread's descriptor (descriptor "
      "publish/clear stores, the kill-window status CAS, per-attempt status "
      "and credit stores) buys NOrec the whole arbiter roster incl. "
      "kAbortEnemy; the uncontended tax is expected around 10-30% on the "
      "tightest commit-bound workloads and shrinks as transactions do real "
      "work");
  txc::bench::Table norec_table{
      {"workload", "anon ops/s", "live ops/s", "live/anon"}, 18};
  norec_table.print_header();
  for (const Workload& w : kWorkloads) {
    (void)run_norec_anon(w, kOps / 10 + 1);
    const double anon_ops = run_norec_anon(w, kOps);
    (void)run_norec_live(w, kOps / 10 + 1);
    const double live_ops = run_norec_live(w, kOps);
    norec_table.print_row({w.name, txc::bench::fmt_sci(anon_ops),
                           txc::bench::fmt_sci(live_ops),
                           txc::bench::fmt(live_ops / anon_ops, 2)});
  }
  std::printf("\n");

  txc::bench::banner(
      "Read-only snapshot fast path — atomically_read vs the instrumented "
      "path (single thread)",
      "a read-only body on plain atomically() pays the full instrumented "
      "machinery (read-set / read-log accrual, descriptor publication, TL2 "
      "commit-time validation); atomically_read pins a clock/seqlock sample "
      "and validates per read with no log at all — the reads land on the "
      "snapshot ledger, the instrumented side's on the instrumented ledger");
  txc::bench::Table read_table{{"workload", "instr ops/s", "snapshot ops/s",
                                "speedup", "instr reads", "snap reads"},
                               18};
  read_table.print_header();
  read_panel_rows<Stm>("tl2", kOps, read_table);
  read_panel_rows<Norec>("norec", kOps, read_table);
  std::printf("\n");

  txc::bench::banner(
      "Read-only snapshot fast path — readers racing one writer "
      "(read-mostly mix)",
      "aggregate reader throughput, 16-cell sums against a round-robin "
      "writer; the snapshot path restarts only on a racing commit window "
      "instead of validating every read at commit");
  txc::bench::Table read_mt_table{
      {"substrate", "readers", "instr ops/s", "snapshot ops/s", "speedup"},
      18};
  read_mt_table.print_header();
  const int kReaderOps = txc::bench::scaled(50000);
  for (const unsigned readers : {2u, 4u}) {
    const double tl2_instr =
        run_readers_vs_writer<Stm, /*kSnapshot=*/false>(readers, kReaderOps);
    const double tl2_snap =
        run_readers_vs_writer<Stm, /*kSnapshot=*/true>(readers, kReaderOps);
    read_mt_table.print_row({"tl2", std::to_string(readers),
                             txc::bench::fmt_sci(tl2_instr),
                             txc::bench::fmt_sci(tl2_snap),
                             txc::bench::fmt(tl2_snap / tl2_instr, 2)});
  }
  for (const unsigned readers : {2u, 4u}) {
    const double norec_instr =
        run_readers_vs_writer<Norec, /*kSnapshot=*/false>(readers, kReaderOps);
    const double norec_snap =
        run_readers_vs_writer<Norec, /*kSnapshot=*/true>(readers, kReaderOps);
    read_mt_table.print_row({"norec", std::to_string(readers),
                             txc::bench::fmt_sci(norec_instr),
                             txc::bench::fmt_sci(norec_snap),
                             txc::bench::fmt(norec_snap / norec_instr, 2)});
  }
  std::printf("\n");

  txc::bench::banner(
      "STM fast path — hot counter with real threads (context)",
      "the fast path keeps its throughput lead under contention; absolute "
      "numbers are host-dependent");
  txc::bench::Table threads_table{{"threads", "fast ops/s"}, 18};
  threads_table.print_header();
  const int kThreadOps = txc::bench::scaled(50000);
  for (const unsigned threads : {1u, 2u, 4u}) {
    threads_table.print_row(
        {std::to_string(threads),
         txc::bench::fmt_sci(run_fast_threads(threads, kThreadOps))});
  }
  return 0;
}
