// Ablation — eager vs lazy write acquisition (DESIGN.md decision 1).
//
// The simulator follows the paper's Graphite HTM in using lazy validation:
// stores are buffered and exclusive ownership is acquired only in the
// commit phase.  The eager_writes knob flips that, acquiring ownership at
// execution time.  The measured trade-off: eager surfaces conflicts before
// the work is invested (fewer wasted cycles per abort, fewer commit-phase
// crossing cycles), lazy shortens the exclusive-ownership window (fewer
// conflicts detected overall).  Which wins depends on where writes sit in
// the transaction — this bench sweeps the three archetypes.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

/// Writes first, then the payload work — the shape that maximally separates
/// the two acquisition disciplines.
class WriteEarlyWorkload final : public Workload {
 public:
  Transaction next_transaction(CoreId, sim::Rng& rng) override {
    const LineId a = 16 + rng.uniform_below(64);
    LineId b = 16 + rng.uniform_below(64);
    if (b == a) b = 16 + ((a - 16 + 1) % 64);
    return {{TxOp::Kind::kRmw, a, 1, 0},
            {TxOp::Kind::kRmw, b, 1, 0},
            {TxOp::Kind::kWork, 0, 0, 150}};
  }
  std::uint64_t think_time(CoreId, sim::Rng&) override { return 10; }
  std::string name() const override { return "write-early"; }
};

/// Crossing RMW pairs: the deadlock-prone pattern.
class CrossingWorkload final : public Workload {
 public:
  Transaction next_transaction(CoreId core, sim::Rng&) override {
    const LineId first = core % 2 == 0 ? 40 : 41;
    const LineId second = core % 2 == 0 ? 41 : 40;
    return {{TxOp::Kind::kRmw, first, 1, 0},
            {TxOp::Kind::kWork, 0, 0, 25},
            {TxOp::Kind::kRmw, second, 1, 0}};
  }
  std::string name() const override { return "crossing"; }
};

struct Measured {
  double ops = 0.0;
  double abort_rate = 0.0;
  std::uint64_t conflicts = 0;
  std::uint64_t cycle_aborts = 0;
};

Measured run_one(std::shared_ptr<Workload> workload, bool eager,
                 std::uint64_t target) {
  HtmConfig config;
  config.cores = 16;
  config.policy = core::make_policy(core::StrategyKind::kRandWins);
  config.eager_writes = eager;
  config.seed = 60606;
  HtmSystem system{config, std::move(workload)};
  const auto stats = system.run(target, /*max_cycles=*/300'000'000);
  Measured measured;
  measured.ops = stats.ops_per_second();
  measured.abort_rate = stats.abort_rate();
  measured.conflicts = stats.conflicts;
  for (const auto& per_core : stats.per_core) {
    measured.cycle_aborts += per_core.aborts_by_reason[
        static_cast<std::size_t>(AbortReason::kCycle)];
  }
  return measured;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Ablation — eager vs lazy write acquisition (RRW, 16 cores)",
      "write-late transactions (txapp): identical — acquisition timing "
      "coincides; write-early and crossing shapes: eager detects before the "
      "work is invested (fewer cycle aborts, better or equal throughput) "
      "but holds ownership longer (more conflicts).  The simulator defaults "
      "to lazy for fidelity to the paper's Graphite HTM, not because eager "
      "loses here");

  struct Panel {
    const char* label;
    std::shared_ptr<Workload> (*make)();
    std::uint64_t target;
  };
  const Panel panels[] = {
      {"txapp (write-late)",
       [] { return std::shared_ptr<Workload>(new ds::TxAppWorkload()); },
       30000},
      {"write-early",
       [] { return std::shared_ptr<Workload>(new WriteEarlyWorkload()); },
       30000},
      {"crossing RMW",
       [] { return std::shared_ptr<Workload>(new CrossingWorkload()); },
       8000},
  };

  txc::bench::Table table{{"workload", "mode", "ops/s", "abort%",
                           "conflicts", "cycle-aborts"}};
  table.print_header();
  for (const Panel& panel : panels) {
    for (const bool eager : {false, true}) {
      const Measured measured = run_one(panel.make(), eager, txc::bench::scaled(panel.target));
      table.print_row({panel.label, eager ? "eager" : "lazy",
                       txc::bench::fmt_sci(measured.ops),
                       txc::bench::fmt(100.0 * measured.abort_rate, 1),
                       txc::bench::fmt_sci(
                           static_cast<double>(measured.conflicts)),
                       txc::bench::fmt_sci(
                           static_cast<double>(measured.cycle_aborts))});
    }
  }
  return 0;
}
