// Lock-table placement — the stripe figure family: hashed (anonymous,
// pointer-mixed) stripe placement vs deterministic region-scoped placement
// (stm::RegionSpec), at EQUAL table size, under workloads built to alias
// maximally on the hashed table.
//
// The experiment the figure exists for: TL2's classic lock table hashes
// addresses into 2^k stripes, so two transactions touching *disjoint* cells
// can still collide on one lock word — a false conflict the programmer can
// neither predict nor avoid (the aliasing depends on runtime addresses).
// Region registration replaces the hash with arithmetic: stripe =
// (element_index * odd_stride) mod table_size, a bijection on a power-of-two
// table, so distinct elements are provably on distinct stripes up to table
// capacity.  Panel 1 constructs hash-aliased cell sets (disjoint cells, one
// hashed stripe) and shows StmStats::false_conflicts collapsing to zero —
// and throughput recovering — when the same cells run under a registered
// region of the same table size.  Panel 2 replays the contrast through the
// sharded KV store (Config::register_regions on/off), including an
// aliased-hot-key mix where each worker owns a distinct key that the hashed
// table nevertheless serializes.  Panel 3 prices the NUMA seam the
// placement work leans on: the cost of spinning on a remote thread's
// descriptor status word, per node (on a single-node host it degrades to
// the local row, which is the point of measuring rather than assuming).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "conflict/descriptor.hpp"
#include "core/numa.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "kv/store.hpp"
#include "sim/rng.hpp"
#include "stm/tl2.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace txc;
using stm::Cell;
using stm::Stm;
using stm::Tx;

constexpr std::size_t kWorkers = 4;

std::shared_ptr<const core::GracePeriodPolicy> bench_policy() {
  return core::make_policy(core::StrategyKind::kNoDelay);
}

// ---------------------------------------------------------------------------
// Panel 1 — aliased hot cells: disjoint cells, one hashed stripe.
// ---------------------------------------------------------------------------

/// Cells from `pool` that the `stm` instance places on one (maximally
/// occupied) stripe.  Hash placement depends on runtime addresses, so the
/// set is discovered, not constructed; at pool size == table size the
/// occupancy is Poisson(1) and a >=4-way aliased stripe is plentiful.
std::vector<Cell*> aliased_cells(Stm& stm, std::vector<Cell>& pool,
                                 std::size_t want) {
  std::unordered_map<const void*, std::vector<Cell*>> by_stripe;
  const std::vector<Cell*>* best = nullptr;
  for (Cell& cell : pool) {
    auto& mates = by_stripe[stm.debug_stripe_of(&cell)];
    mates.push_back(&cell);
    if (best == nullptr || mates.size() > best->size()) best = &mates;
    if (mates.size() >= want) break;
  }
  std::vector<Cell*> result = *best;
  if (result.size() > want) result.resize(want);
  return result;
}

struct HotRunResult {
  double ops_per_sec = 0.0;
  std::uint64_t aborts = 0;
  std::uint64_t false_conflicts = 0;
  std::uint64_t setup_collisions = 0;  // already-ours dedup hits, setup tx
  bool conserved = false;
};

/// `workers` threads, each incrementing its OWN cell — disjoint data, so
/// every abort and every false conflict is placement-induced.  The yield
/// inside the body forces sibling commits into each open read window even
/// on a single-CPU host (where pure racing would hide the aliasing).
HotRunResult run_hot_cells(Stm& stm, const std::vector<Cell*>& hot,
                           std::uint64_t ops) {
  // Setup transaction: touch every hot cell in ONE write set.  On the
  // hashed table the cells share a stripe, so the lock-acquisition dedup
  // fires |hot|-1 times (StmStats::stripe_collisions); on a registered
  // region it must not fire at all.
  const std::uint64_t collisions_before =
      stm.stats().stripe_collisions.load(std::memory_order_relaxed);
  stm.atomically([&](Tx& tx) {
    for (Cell* cell : hot) tx.write(*cell, tx.read(*cell));
  });
  HotRunResult result;
  result.setup_collisions =
      stm.stats().stripe_collisions.load(std::memory_order_relaxed) -
      collisions_before;

  const std::uint64_t aborts_before =
      stm.stats().aborts.load(std::memory_order_relaxed);
  const std::uint64_t false_before =
      stm.stats().false_conflicts.load(std::memory_order_relaxed);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(hot.size());
  for (Cell* mine : hot) {
    workers.emplace_back([&, mine] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t op = 0; op < ops; ++op) {
        stm.atomically([&](Tx& tx) {
          const std::uint64_t value = tx.read(*mine);
          // Hold the read window open across a scheduling point so sibling
          // commits land inside it.
          std::this_thread::yield();
          tx.write(*mine, value + 1);
        });
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  result.ops_per_sec =
      static_cast<double>(ops) * static_cast<double>(hot.size()) / seconds;
  result.aborts =
      stm.stats().aborts.load(std::memory_order_relaxed) - aborts_before;
  result.false_conflicts =
      stm.stats().false_conflicts.load(std::memory_order_relaxed) -
      false_before;
  // Each worker's cell must hold exactly its committed increment count.
  result.conserved = true;
  for (Cell* cell : hot) {
    if (Stm::read_committed(*cell) != ops) result.conserved = false;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Panel 2 — the KV store with Config::register_regions on/off.
// ---------------------------------------------------------------------------

using Store = kv::ShardedKvStore<Stm>;

constexpr std::size_t kKvShards = 4;
// 4 x 16384 buckets = 65536 cells against the 65536-stripe default hashed
// table: Poisson(1) occupancy, so 4-way aliased stripes are plentiful.  The
// registered side gets one 16384-stripe table per shard — the same 65536
// total lock words, arranged so distinct buckets cannot collide.
constexpr std::size_t kKvCapacity = 16384;
constexpr std::uint32_t kKeyUniverse = 2048;
constexpr double kZipfExponent = 0.9;
// Aliased hot keys are searched above the zipf universe so the two key
// populations never collide.
constexpr kv::Key kHotKeySearchBase = 100000;

Store::Config store_config(bool register_regions) {
  Store::Config config;
  config.shards = kKvShards;
  config.capacity_per_shard = kKvCapacity;
  config.register_regions = register_regions;
  return config;
}

/// Keys whose home buckets are DISTINCT cells on ONE hashed stripe of
/// `store`'s substrate.  Stripe placement hashes runtime bucket ADDRESSES,
/// so the set must be discovered on the exact store instance that will run
/// it — it does not transfer to another allocation.  (On a registered
/// store any distinct-bucket key set is stripe-disjoint by construction,
/// so the hashed-side set doubles as the region-side workload.)
std::vector<kv::Key> aliased_hot_keys(Store& store, std::size_t want) {
  std::unordered_map<const void*, std::vector<kv::Key>> by_stripe;
  std::unordered_map<const void*, bool> bucket_taken;
  const std::vector<kv::Key>* best = nullptr;
  for (kv::Key key = kHotKeySearchBase; key < kHotKeySearchBase + 400000;
       ++key) {
    const stm::Cell* bucket = store.debug_bucket_of(key);
    if (bucket == nullptr) continue;
    if (bucket_taken[bucket]) continue;  // one key per bucket: disjoint data
    bucket_taken[bucket] = true;
    auto& mates = by_stripe[store.substrate().debug_stripe_of(bucket)];
    mates.push_back(key);
    if (best == nullptr || mates.size() > best->size()) best = &mates;
    if (mates.size() >= want) break;
  }
  std::vector<kv::Key> result = *best;
  if (result.size() > want) result.resize(want);
  return result;
}

struct KvMix {
  const char* name;
  const char* legend;
  bool aliased;  // workers own one aliased hot key each (no zipf traffic)
  int get_pct;   // remainder is rmw_add
};

constexpr KvMix kKvMixes[] = {
    {"aliased-hot rmw", "each worker rmw-adds its OWN hot key; the keys "
                        "share a hashed stripe",
     true, 20},
    {"read-heavy zipf", "95% get / 5% rmw over the zipf universe", false, 95},
    {"update-heavy zipf", "50% get / 50% rmw over the zipf universe", false,
     50},
};

struct KvRunResult {
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t aborts = 0;
  std::uint64_t false_conflicts = 0;
};

KvRunResult run_kv(Store& store, const KvMix& mix,
                   const std::vector<kv::Key>& hot_keys, std::uint64_t ops,
                   double cycles_per_us) {
  if (mix.aliased) {
    for (const kv::Key key : hot_keys) store.put_sync(key, 1);
  } else {
    for (kv::Key key = 1; key <= kKeyUniverse; ++key) store.put_sync(key, key);
  }

  const std::uint64_t aborts_before = store.stats().aborts.load();
  const std::uint64_t false_before = store.stats().false_conflicts.load();
  std::vector<core::LatencyHistogram> latencies(kWorkers);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      sim::Rng rng{txc::bench::seed(13) * 7919 + w};
      const workload::ZipfSampler zipf{kKeyUniverse, kZipfExponent};
      const kv::Key my_hot = hot_keys[w % hot_keys.size()];
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t op = 0; op < ops; ++op) {
        const kv::Key key =
            mix.aliased ? my_hot : 1 + static_cast<kv::Key>(zipf.sample(rng));
        const bool is_get =
            static_cast<int>(rng.uniform_below(100)) < mix.get_pct;
        const std::uint64_t begin = core::cycle_now();
        if (is_get) {
          (void)store.get_sync(key);
        } else {
          store.substrate().atomically([&](Tx& tx) {
            kv::Value out = 0;
            (void)store.rmw_add(tx, key, 1, out);
            if (mix.aliased) std::this_thread::yield();  // hold window open
          });
        }
        latencies[w].record(core::cycle_now() - begin);
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  core::LatencyHistogram merged;
  for (const auto& histogram : latencies) merged.merge(histogram);

  KvRunResult result;
  result.ops_per_sec =
      static_cast<double>(ops) * static_cast<double>(kWorkers) / seconds;
  result.p50_us = static_cast<double>(merged.quantile(0.50)) / cycles_per_us;
  result.p99_us = static_cast<double>(merged.quantile(0.99)) / cycles_per_us;
  result.aborts = store.stats().aborts.load() - aborts_before;
  result.false_conflicts =
      store.stats().false_conflicts.load() - false_before;
  return result;
}

// ---------------------------------------------------------------------------
// Panel 3 — remote-descriptor probe cost per node.
// ---------------------------------------------------------------------------

/// Cost of one conflict::thread_descriptor() status probe when the owning
/// thread first touched its descriptor on `node` — the load every
/// arbitration spin (enemy status, kill checks) pays per iteration.  The
/// descriptor slab is node-local (src/conflict/descriptor.hpp), so on a
/// multi-node host the non-local rows price the remote-spin tax the
/// per-node slabs exist to avoid; on a single-node host the table is one
/// local row.
double probe_ns(const conflict::TxDescriptor* victim, std::uint64_t probes,
                double cycles_per_us) {
  std::uint64_t sink = 0;
  const std::uint64_t begin = core::cycle_now();
  for (std::uint64_t i = 0; i < probes; ++i) {
    sink += static_cast<std::uint64_t>(victim->load_status());
  }
  const std::uint64_t cycles = core::cycle_now() - begin;
  if (sink == ~std::uint64_t{0}) std::printf("unreachable\n");
  return static_cast<double>(cycles) / static_cast<double>(probes) /
         cycles_per_us * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  const double cycles_per_us = txc::bench::calibrate_cycles_per_us();

  // -- Panel 1 --------------------------------------------------------------
  txc::bench::banner(
      "Lock-table placement — hashed vs deterministic region placement at "
      "equal table size, on hash-aliased hot cells",
      "disjoint cells that alias on the hashed table serialize on one lock "
      "word: false_conflicts counts every such collision and throughput "
      "drops to lock-convoy speed; registering the pool as a region "
      "(bijective index placement, collision shell 1) drives "
      "false_conflicts and placement aborts to zero at the SAME table "
      "size — the >=5x reduction is the figure's acceptance bar");
  txc::bench::Table hot_table{{"placement", "table", "ops/s", "aborts",
                               "falseconf", "setupcoll", "fc reduce",
                               "conserved"},
                              12};
  hot_table.print_header();
  const std::uint64_t kHotOps = txc::bench::scaled(std::uint64_t{20000});
  for (const std::size_t table_size : {1024u, 4096u, 16384u}) {
    std::vector<Cell> pool(table_size);

    Stm hashed{bench_policy(), table_size};
    const std::vector<Cell*> hot =
        aliased_cells(hashed, pool, kWorkers);
    const HotRunResult hashed_run = run_hot_cells(hashed, hot, kHotOps);

    for (Cell& cell : pool) cell.value.store(0, std::memory_order_relaxed);
    Stm regioned{bench_policy(), table_size};
    stm::RegionSpec spec;
    spec.base = pool.data();
    spec.elements = pool.size();
    spec.stride_bytes = sizeof(Cell);
    spec.stripes = table_size;  // equal table size on both sides
    regioned.register_region(spec);
    const HotRunResult region_run = run_hot_cells(regioned, hot, kHotOps);

    const auto fc_reduce =
        static_cast<double>(hashed_run.false_conflicts) /
        static_cast<double>(std::max<std::uint64_t>(
            std::uint64_t{1}, region_run.false_conflicts));
    const auto row = [&](const char* placement, const HotRunResult& run,
                         const std::string& reduce) {
      hot_table.print_row(
          {placement, std::to_string(table_size),
           txc::bench::fmt_sci(run.ops_per_sec),
           txc::bench::fmt_sci(static_cast<double>(run.aborts)),
           std::to_string(run.false_conflicts),
           std::to_string(run.setup_collisions), reduce,
           run.conserved ? "yes" : "NO"});
    };
    row("hashed", hashed_run, "-");
    row("region", region_run, txc::bench::fmt(fc_reduce, 1) + "x");
    std::printf("  geometry: %s\n", regioned.describe_geometry().c_str());
  }
  std::printf("\n");

  // -- Panel 2 --------------------------------------------------------------
  txc::bench::banner(
      "Sharded KV store — Config::register_regions off vs on (per-shard "
      "bucket regions, collision shell 1)",
      "the aliased-hot-key mix gives each worker a private key that the "
      "hashed table serializes anyway — registration recovers throughput "
      "and compresses p99; the zipf mixes bound the cost of registration "
      "on workloads whose conflicts are mostly TRUE (same-key) conflicts: "
      "expect parity there, with false_conflicts near zero on the "
      "registered side by construction");
  txc::bench::Table kv_table{{"mix", "placement", "ops/s", "p50us", "p99us",
                              "aborts", "falseconf"},
                             18};
  kv_table.print_header();
  const std::uint64_t kKvOps = txc::bench::scaled(std::uint64_t{20000});
  // Zipf mixes never touch the hot keys; any nonzero placeholders work.
  const std::vector<kv::Key> unused_keys = {1, 2, 3, 4};
  for (const KvMix& mix : kKvMixes) {
    // Hashed store first: the aliased key set must be discovered on the
    // very instance that runs it (placement hashes runtime addresses).
    Store hashed{store_config(/*register_regions=*/false), bench_policy()};
    const std::vector<kv::Key> hot_keys =
        mix.aliased ? aliased_hot_keys(hashed, kWorkers) : unused_keys;
    if (mix.aliased) {
      std::printf("aliased hot keys found: %zu (want %zu)\n",
                  hot_keys.size(), kWorkers);
    }
    Store regioned{store_config(/*register_regions=*/true), bench_policy()};
    const auto row = [&](const char* placement, const KvRunResult& run) {
      kv_table.print_row({mix.name, placement,
                          txc::bench::fmt_sci(run.ops_per_sec),
                          txc::bench::fmt(run.p50_us, 1),
                          txc::bench::fmt(run.p99_us, 1),
                          txc::bench::fmt_sci(static_cast<double>(run.aborts)),
                          std::to_string(run.false_conflicts)});
    };
    row("hashed", run_kv(hashed, mix, hot_keys, kKvOps, cycles_per_us));
    row("region", run_kv(regioned, mix, hot_keys, kKvOps, cycles_per_us));
  }
  std::printf("\n");

  // -- Panel 3 --------------------------------------------------------------
  txc::bench::banner(
      "Descriptor status-spin probe cost per NUMA node",
      "arbitration spins poll the enemy's descriptor status word every "
      "iteration; with node-local descriptor slabs the local row is the "
      "common case and any remote rows price what anonymous (single-slab) "
      "placement would have cost every cross-node conflict.  A single-node "
      "host prints one local row — measured, not assumed");
  const std::vector<int>& nodes = core::numa::online_nodes();
  std::printf("host: %zu NUMA node(s); probing thread on node %zu\n",
              nodes.size(), core::numa::current_node());
  txc::bench::Table numa_table{{"owner node", "pinned", "ns/probe"}, 14};
  numa_table.print_header();
  const std::uint64_t kProbes = txc::bench::scaled(std::uint64_t{2000000});
  for (const int node : nodes) {
    conflict::TxDescriptor* victim = nullptr;
    bool pinned = false;
    std::thread owner{[&] {
      pinned = core::numa::pin_current_thread_to_node(node);
      victim = &conflict::thread_descriptor();
    }};
    owner.join();
    numa_table.print_row(
        {std::to_string(node), pinned ? "yes" : "no",
         txc::bench::fmt(probe_ns(victim, kProbes, cycles_per_us), 2)});
  }
  return 0;
}
