// Ablation — the same grace-period policies across two structurally
// different STM substrates: striped-version-lock TL2 vs single-seqlock
// NOrec.  TL2 conflicts are per-stripe (many independent wait points); NOrec
// conflicts all funnel through one global commit lock.  The paper's policy
// question — how long to wait at a held lock before self-aborting — appears
// in both, so the comparison shows whether the policy conclusions are
// substrate-specific.
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using namespace txc::stm;

struct RunResult {
  double mops = 0.0;
  std::uint64_t aborts = 0;
  std::uint64_t lock_waits = 0;
};

template <typename StmT, typename TxT>
RunResult run_bank(StmT& stm, int threads, int ops) {
  constexpr int kAccounts = 32;
  std::vector<Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value = 1000;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sim::Rng rng{static_cast<std::uint64_t>(t) * 31 + 7};
      for (int i = 0; i < ops; ++i) {
        const auto from = rng.uniform_below(kAccounts);
        auto to = rng.uniform_below(kAccounts - 1);
        if (to >= from) ++to;
        stm.atomically([&](TxT& tx) {
          const std::uint64_t a = tx.read(accounts[from]);
          const std::uint64_t b = tx.read(accounts[to]);
          tx.write(accounts[from], a - 1);
          tx.write(accounts[to], b + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  RunResult result;
  result.mops = static_cast<double>(stm.stats().commits.load()) /
                (seconds * 1e6);
  result.aborts = stm.stats().aborts.load();
  result.lock_waits = stm.stats().lock_waits.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Ablation — TL2 vs NOrec under the same grace policies (bank, 4 "
      "threads)",
      "both substrates conserve money under every policy (enforced by the "
      "test suite); NOrec serializes commits on one lock so its policy "
      "sensitivity concentrates there, while TL2 spreads conflicts across "
      "stripes — the RRA-family ordering carries over to both");

  constexpr int kThreads = 4;
  const int kOps = txc::bench::scaled(20000);
  txc::bench::Table table{{"substrate", "policy", "Mops/s", "aborts",
                           "lock-waits"}};
  table.print_header();
  for (const auto kind :
       {core::StrategyKind::kNoDelay, core::StrategyKind::kDetAborts,
        core::StrategyKind::kRandAborts}) {
    {
      Stm tl2{core::make_policy(kind)};
      const RunResult result = run_bank<Stm, Tx>(tl2, kThreads, kOps);
      table.print_row({"TL2", core::to_string(kind),
                       txc::bench::fmt(result.mops, 2),
                       txc::bench::fmt_sci(static_cast<double>(result.aborts)),
                       txc::bench::fmt_sci(
                           static_cast<double>(result.lock_waits))});
    }
    {
      Norec norec{core::make_policy(kind)};
      const RunResult result = run_bank<Norec, NorecTx>(norec, kThreads, kOps);
      table.print_row({"NOrec", core::to_string(kind),
                       txc::bench::fmt(result.mops, 2),
                       txc::bench::fmt_sci(static_cast<double>(result.aborts)),
                       txc::bench::fmt_sci(
                           static_cast<double>(result.lock_waits))});
    }
  }
  return 0;
}
