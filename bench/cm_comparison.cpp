// Ablation — the paper's local policies vs classic global-knowledge
// contention managers, inside the real-thread TL2 STM.
//
// Section 1 (Implications): "contention managers ... are usually assumed to
// have global knowledge about the set of running transactions ... by
// contrast, in our setting, decisions are entirely local."  Here both
// regimes run on identical workloads: Polite/Karma/Timestamp/Greedy/Polka
// (which inspect and may kill the lock holder) against Grace(RRA)/Grace(DET)
// (which see nothing and may only self-abort after a drawn grace period).
//
// On this container thread overlap depends on the host scheduler, so the
// load-bearing assertions (atomicity, conservation) live in the test suite;
// the bench reports throughput-side numbers: wall time, aborts, lock waits,
// and remote kills.
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using namespace txc::stm;

struct Contender {
  std::string label;
  std::shared_ptr<const conflict::ConflictArbiter> cm;
};

std::vector<Contender> contenders() {
  std::vector<Contender> result;
  for (const auto kind :
       {conflict::CmKind::kPolite, conflict::CmKind::kKarma,
        conflict::CmKind::kTimestamp, conflict::CmKind::kGreedy,
        conflict::CmKind::kPolka}) {
    result.push_back({conflict::to_string(kind), conflict::make_cm(kind)});
  }
  result.push_back(
      {"Grace(RRA)",
       std::make_shared<conflict::GraceArbiter>(
           core::make_policy(core::StrategyKind::kRandAborts),
           core::ResolutionMode::kRequestorAborts)});
  result.push_back(
      {"Grace(DET_A)",
       std::make_shared<conflict::GraceArbiter>(
           core::make_policy(core::StrategyKind::kDetAborts),
           core::ResolutionMode::kRequestorAborts)});
  result.push_back(
      {"Grace(NONE)",
       std::make_shared<conflict::GraceArbiter>(
           core::make_policy(core::StrategyKind::kNoDelay),
           core::ResolutionMode::kRequestorAborts)});
  return result;
}

struct RunResult {
  double seconds = 0.0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t kills = 0;
};

RunResult run_counter(const std::shared_ptr<const conflict::ConflictArbiter>& cm,
                      int threads, int increments) {
  Stm stm{cm};
  Cell counter;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < increments; ++i) {
        stm.atomically([&](Tx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto end = std::chrono::steady_clock::now();
  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.commits = stm.stats().commits.load();
  result.aborts = stm.stats().aborts.load();
  result.lock_waits = stm.stats().lock_waits.load();
  result.kills = stm.stats().remote_kills.load();
  return result;
}

RunResult run_array(const std::shared_ptr<const conflict::ConflictArbiter>& cm,
                    int threads, int ops) {
  Stm stm{cm};
  constexpr int kCells = 32;
  std::vector<Cell> cells(kCells);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sim::Rng rng{static_cast<std::uint64_t>(t) + 1};
      for (int i = 0; i < ops; ++i) {
        stm.atomically([&](Tx& tx) {
          // Read a window of 4, update 2 — the txapp shape.
          const auto base = rng.uniform_below(kCells - 4);
          std::uint64_t sum = 0;
          for (int j = 0; j < 4; ++j) {
            sum += tx.read(cells[base + static_cast<std::uint64_t>(j)]);
          }
          tx.write(cells[base], sum + 1);
          tx.write(cells[base + 3], sum + 2);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto end = std::chrono::steady_clock::now();
  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.commits = stm.stats().commits.load();
  result.aborts = stm.stats().aborts.load();
  result.lock_waits = stm.stats().lock_waits.load();
  result.kills = stm.stats().remote_kills.load();
  return result;
}

void report(const char* title, RunResult (*runner)(
                                   const std::shared_ptr<const conflict::ConflictArbiter>&,
                                   int, int),
            int threads, int ops) {
  std::printf("\n%s (%d threads x %d ops):\n", title, threads, ops);
  txc::bench::Table table{{"manager", "Mops/s", "aborts", "lock-waits",
                           "kills"}};
  table.print_header();
  for (const auto& contender : contenders()) {
    const RunResult result = runner(contender.cm, threads, ops);
    table.print_row(
        {contender.label,
         txc::bench::fmt(static_cast<double>(result.commits) /
                             (result.seconds * 1e6),
                         2),
         txc::bench::fmt_sci(static_cast<double>(result.aborts)),
         txc::bench::fmt_sci(static_cast<double>(result.lock_waits)),
         txc::bench::fmt_sci(static_cast<double>(result.kills))});
  }
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Ablation — classic contention managers vs local grace policies (TL2)",
      "global-knowledge managers (Karma/Greedy) resolve conflicts by killing "
      "the loser and avoid wasted waiting; the paper's local Grace(...) "
      "policies concede that information and stay within their competitive "
      "bound — comparable throughput at these scales, zero remote kills by "
      "construction");

  report("Hot counter", run_counter, 4, txc::bench::scaled(20000));
  report("Array window txapp", run_array, 4, txc::bench::scaled(20000));
  return 0;
}
