#include "norec_legacy.hpp"

#include <functional>
#include <thread>

#include "conflict/grace.hpp"

namespace legacy_norec {

using txc::stm::Cell;
using txc::stm::ReadLogEntry;
using txc::stm::TxAbort;
using txc::stm::TxBuffers;

namespace {

thread_local txc::sim::Rng tl_rng{0x4E0EECULL ^
                                  std::hash<std::thread::id>{}(
                                      std::this_thread::get_id())};

}  // namespace

AnonNorec::AnonNorec(
    std::shared_ptr<const txc::core::GracePeriodPolicy> policy)
    : arbiter_(std::make_shared<txc::conflict::GraceArbiter>(
          std::move(policy), txc::core::ResolutionMode::kRequestorAborts)) {}

TxBuffers& AnonNorec::thread_buffers() noexcept {
  thread_local TxBuffers buffers;
  return buffers;
}

std::optional<std::uint64_t> AnonNorec::await_even(std::uint32_t attempt) {
  std::uint64_t state = seqlock_.load(std::memory_order_acquire);
  if ((state & 1) == 0) return state;
  stats_.lock_waits.fetch_add(1, std::memory_order_relaxed);
  double scratch = -1.0;
  txc::conflict::ConflictView view;
  // The seqlock holder is anonymous: no descriptors, no kill.
  view.scratch = &scratch;
  view.can_abort_enemy = false;
  view.context.abort_cost = kAbortCostEstimate;
  view.context.chain_length = 2;
  view.context.attempt = attempt;
  double spun = 0.0;
  const auto report = [&](bool enemy_finished) {
    txc::core::ConflictOutcome outcome;
    outcome.committed = enemy_finished;
    outcome.grace = scratch >= 0.0 ? scratch : spun;
    outcome.waited = spun;
    outcome.chain_length = view.context.chain_length;
    arbiter_->feedback(outcome);
  };
  while (true) {
    switch (arbiter_->decide(view, tl_rng)) {
      case txc::conflict::Decision::kAbortSelf:
        state = seqlock_.load(std::memory_order_acquire);
        if ((state & 1) == 0) {
          report(/*enemy_finished=*/true);
          return state;
        }
        report(/*enemy_finished=*/false);
        return std::nullopt;
      case txc::conflict::Decision::kAbortEnemy:  // cannot kill: wait
      case txc::conflict::Decision::kWait:
        break;
    }
    const std::uint64_t quantum = arbiter_->wait_quantum(view);
    for (std::uint64_t spin = 0; spin < quantum; ++spin) {
      state = seqlock_.load(std::memory_order_acquire);
      if ((state & 1) == 0) {
        spun += static_cast<double>(spin);
        report(/*enemy_finished=*/true);
        return state;
      }
    }
    spun += static_cast<double>(quantum);
    ++view.waits_so_far;
  }
}

std::optional<std::uint64_t> AnonNorec::validate(AnonNorecTx& tx) {
  while (true) {
    const auto even = await_even(tx.attempt_);
    if (!even.has_value()) return std::nullopt;
    const std::uint64_t base = *even;
    bool consistent = true;
    for (const ReadLogEntry& logged : tx.buffers_->read_log) {
      if (logged.cell->value.load(std::memory_order_acquire) !=
          logged.value) {
        consistent = false;
        break;
      }
    }
    if (seqlock_.load(std::memory_order_acquire) != base) continue;
    if (!consistent) return std::nullopt;
    return base;
  }
}

std::uint64_t AnonNorecTx::read(const Cell& cell) {
  if (const std::uint64_t* buffered =
          buffers_->write_set.find(const_cast<Cell*>(&cell))) {
    return *buffered;
  }
  while (true) {
    const auto even = stm_.await_even(attempt_);
    if (!even.has_value()) throw TxAbort{};
    const std::uint64_t base = *even;
    const std::uint64_t value = cell.value.load(std::memory_order_acquire);
    if (stm_.seqlock_.load(std::memory_order_acquire) != base) continue;
    if (base != snapshot_) {
      const auto validated = stm_.validate(*this);
      if (!validated.has_value()) throw TxAbort{};
      snapshot_ = *validated;
      continue;
    }
    buffers_->read_log.push_back(ReadLogEntry{&cell, value});
    return value;
  }
}

void AnonNorecTx::write(Cell& cell, std::uint64_t value) {
  buffers_->write_set.upsert(&cell) = value;
}

bool AnonNorec::try_commit(AnonNorecTx& tx) {
  TxBuffers& buffers = *tx.buffers_;
  if (buffers.write_set.empty()) return true;
  std::uint64_t base = tx.snapshot_;
  while (!seqlock_.compare_exchange_weak(base, base + 1,
                                         std::memory_order_acq_rel)) {
    const auto validated = validate(tx);
    if (!validated.has_value()) return false;
    tx.snapshot_ = *validated;
    base = tx.snapshot_;
  }
  for (const auto& entry : buffers.write_set) {
    entry.key->value.store(entry.value, std::memory_order_release);
  }
  seqlock_.store(base + 2, std::memory_order_release);
  return true;
}

}  // namespace legacy_norec
