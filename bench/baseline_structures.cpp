// Baseline comparison — the three implementation families for a contended
// stack: coarse lock-based (TTAS / ticket / MCS), lock-free (Treiber, the
// paper's slow-path design), and transactional (TL2 with the paper's
// grace-period contention management).  Real threads, wall-clock throughput.
//
// This is the context for the paper's Figure 3: the transactional versions
// it studies compete against exactly these alternatives, and the lock-free
// design here is the "slow path backup" its stack and queue fall back to.
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "lockfree/stack.hpp"
#include "stm/containers.hpp"
#include "sync/locked_containers.hpp"
#include "sync/locks.hpp"

namespace {

using namespace txc;

constexpr int kThreads = 4;
const int kOpsPerThread = txc::bench::scaled(10000);

template <typename PushPop>
double run_stack(PushPop&& ops) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ops] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        ops.push(static_cast<std::uint64_t>(i) + 1);
        if (i % 2 == 1) (void)ops.pop();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(kThreads) * kOpsPerThread * 1.5 /
         (seconds * 1e6);  // pushes + half pops
}

struct LockfreeAdapter {
  lockfree::TreiberStack stack{1 << 16};
  void push(std::uint64_t value) { (void)stack.push(value); }
  std::optional<std::uint64_t> pop() { return stack.pop(); }
};

struct StmAdapter {
  stm::Stm stm{core::make_policy(core::StrategyKind::kRandAborts)};
  stm::TxStack stack{stm, 1 << 16};
  void push(std::uint64_t value) { (void)stack.push(value); }
  std::optional<std::uint64_t> pop() { return stack.pop(); }
};

template <typename Lock>
struct LockedAdapter {
  sync::LockedStack<Lock> stack{1 << 16};
  void push(std::uint64_t value) { (void)stack.push(value); }
  std::optional<std::uint64_t> pop() { return stack.pop(); }
};

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Baselines — stack throughput by implementation family (4 threads)",
      "lock-free and coarse-locked variants lead on a single hot structure "
      "(one CAS / one handoff per op); the STM pays validation overhead — "
      "the price transactional composability buys, and the gap HTM (Fig 3) "
      "closes in hardware");

  txc::bench::Table table{{"implementation", "Mops/s"}};
  table.print_header();
  {
    LockedAdapter<sync::TtasSpinlock> adapter;
    table.print_row({"lock: TTAS", txc::bench::fmt(run_stack(adapter), 2)});
  }
  {
    LockedAdapter<sync::TicketLock> adapter;
    table.print_row({"lock: ticket", txc::bench::fmt(run_stack(adapter), 2)});
  }
  {
    LockedAdapter<sync::McsLock> adapter;
    table.print_row({"lock: MCS", txc::bench::fmt(run_stack(adapter), 2)});
  }
  {
    LockfreeAdapter adapter;
    table.print_row(
        {"lock-free: Treiber", txc::bench::fmt(run_stack(adapter), 2)});
  }
  {
    StmAdapter adapter;
    table.print_row(
        {"STM: TL2 + Grace(RRA)", txc::bench::fmt(run_stack(adapter), 2)});
  }
  return 0;
}
