// Ablation — network-on-chip substrate sensitivity.
//
// The paper's Graphite testbed is a tiled multicore: coherence messages cross
// a 2D mesh, so conflict-detection timing (and the abort cost B) depends on
// placement.  The base simulator flattens that into one remote latency; this
// ablation turns the mesh model on and asks whether the paper's conclusions
// (delays cut aborts; the uniform randomized strategy is the robust choice)
// survive distance-dependent latencies and link contention — and reports the
// traffic mix (requests/data/invalidations/NACKs) that the grace-period
// mechanism trades.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

enum class Substrate { kFlat, kMesh, kMeshContended };

const char* to_label(Substrate substrate) {
  switch (substrate) {
    case Substrate::kFlat: return "flat";
    case Substrate::kMesh: return "mesh";
    case Substrate::kMeshContended: return "mesh+queue";
  }
  return "?";
}

HtmStats run_one(std::uint32_t threads, core::StrategyKind kind,
                 Substrate substrate, std::uint64_t target) {
  HtmConfig config;
  config.cores = threads;
  config.policy = core::make_policy(kind);
  config.seed = 4242;
  if (substrate != Substrate::kFlat) {
    noc::MeshConfig mesh = noc::MeshNoc::fit(threads);
    mesh.link_latency = 2;
    mesh.router_latency = 1;
    mesh.model_contention = substrate == Substrate::kMeshContended;
    config.noc = mesh;
  }
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  return system.run(target);
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Ablation — mesh NoC vs flat remote latency (txapp, 16 cores)",
      "strategy ordering is substrate-independent: delays cut the abort rate "
      "on the mesh exactly as they do with flat latency; NACK traffic scales "
      "with conflicts, and longer wires raise B (elapsed time), lengthening "
      "grace periods without changing who wins");

  txc::bench::Table table{{"substrate", "strategy", "ops/s", "abort%",
                           "mean-hops", "queue-cyc", "nacks", "invals"}};
  table.print_header();
  for (const auto substrate :
       {Substrate::kFlat, Substrate::kMesh, Substrate::kMeshContended}) {
    for (const auto kind :
         {txc::core::StrategyKind::kNoDelay, txc::core::StrategyKind::kDetWins,
          txc::core::StrategyKind::kRandWins}) {
      const auto stats = run_one(16, kind, substrate, txc::bench::scaled(40000));
      std::vector<std::string> row{to_label(substrate),
                                   txc::core::to_string(kind)};
      row.push_back(txc::bench::fmt_sci(stats.ops_per_second()));
      row.push_back(txc::bench::fmt(100.0 * stats.abort_rate(), 1));
      if (stats.noc.has_value()) {
        row.push_back(txc::bench::fmt(stats.noc->mean_hops(), 2));
        row.push_back(txc::bench::fmt_sci(
            static_cast<double>(stats.noc->queueing_cycles)));
        row.push_back(txc::bench::fmt_sci(static_cast<double>(
            stats.noc->messages[static_cast<std::size_t>(
                txc::noc::MessageClass::kNack)])));
        row.push_back(txc::bench::fmt_sci(static_cast<double>(
            stats.noc->messages[static_cast<std::size_t>(
                txc::noc::MessageClass::kInvalidation)])));
      } else {
        row.insert(row.end(), {"-", "-", "-", "-"});
      }
      table.print_row(row);
    }
  }

  // Scaling view: does the mesh change the threads-vs-throughput shape?
  std::printf("\nThroughput scaling (RRW), flat vs contended mesh:\n");
  txc::bench::Table scaling{{"threads", "flat-ops/s", "mesh-ops/s",
                             "flat-abort%", "mesh-abort%"}};
  scaling.print_header();
  for (const std::uint32_t threads : {1u, 4u, 9u, 16u, 25u}) {
    if (threads > txc::bench::capped(25u, 9u)) continue;
    const auto flat = run_one(threads, txc::core::StrategyKind::kRandWins,
                              Substrate::kFlat,
                              txc::bench::scaled(3000ull) * threads);
    const auto mesh = run_one(threads, txc::core::StrategyKind::kRandWins,
                              Substrate::kMeshContended,
                              txc::bench::scaled(3000ull) * threads);
    scaling.print_row({std::to_string(threads),
                       txc::bench::fmt_sci(flat.ops_per_second()),
                       txc::bench::fmt_sci(mesh.ops_per_second()),
                       txc::bench::fmt(100.0 * flat.abort_rate(), 1),
                       txc::bench::fmt(100.0 * mesh.abort_rate(), 1)});
  }
  return 0;
}
