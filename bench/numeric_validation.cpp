// Theorem cross-validation — the numeric minimax solver vs the closed forms.
//
// The solver (core/numeric_opt) knows only the Section-4 cost model and
// finds the optimal grace-period distribution by fictitious play on the
// discretized policy-vs-adversary game.  This bench prints, for both
// resolution modes and a sweep of chain lengths k, the game value the
// solver reaches, the paper's analytic competitive ratio, and the worst-case
// ratio of the discretized closed form on the same grid — three numbers
// that must agree for the Lagrangian derivations to be right.
#include <cmath>

#include "bench_util.hpp"
#include "core/cost_model.hpp"
#include "core/numeric_opt.hpp"

namespace {

using namespace txc::core;

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Theorem cross-validation — numeric minimax vs closed forms",
      "numeric game value == analytic ratio == discretized closed-form "
      "score, for every k and both modes (Theorems 1, 3, 5, 6); residuals "
      "are grid + fictitious-play error, O(1e-2)");

  txc::bench::Table table{{"mode", "k", "analytic", "numeric", "closed@grid",
                           "|num-ana|"}};
  table.print_header();
  for (const auto mode :
       {ResolutionMode::kRequestorWins, ResolutionMode::kRequestorAborts}) {
    for (const int k : {2, 3, 4, 8, 16}) {
      MinimaxConfig config;
      config.mode = mode;
      config.chain_length = k;
      const MinimaxSolution numeric = solve_minimax(config);
      double analytic;
      double closed_on_grid;
      if (mode == ResolutionMode::kRequestorWins) {
        analytic = ratio_rand_wins_power(k);
        closed_on_grid = grid_worst_ratio(
            config, discretize(PowerWinsDensity{config.abort_cost, k},
                               config));
      } else {
        analytic = ratio_rand_aborts(k);
        closed_on_grid = grid_worst_ratio(
            config,
            discretize(ExpAbortsDensity{config.abort_cost, k}, config));
      }
      table.print_row({to_string(mode), std::to_string(k),
                       txc::bench::fmt(analytic, 4),
                       txc::bench::fmt(numeric.game_value, 4),
                       txc::bench::fmt(closed_on_grid, 4),
                       txc::bench::fmt(
                           std::abs(numeric.game_value - analytic), 4)});
    }
  }

  std::printf(
      "\nShape check (requestor wins, k = 3): numeric CDF vs Theorem 6 "
      "power density\n");
  txc::bench::Table shape{{"x/support", "numeric-CDF", "closed-CDF"}};
  shape.print_header();
  MinimaxConfig config;
  config.chain_length = 3;
  const MinimaxSolution solution = solve_minimax(config);
  const PowerWinsDensity closed{config.abort_cost, 3};
  for (const double frac : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double x = frac * closed.support_max();
    shape.print_row({txc::bench::fmt(frac, 2),
                     txc::bench::fmt(solution.cdf_at(x), 4),
                     txc::bench::fmt(closed.cdf(x), 4)});
  }
  return 0;
}
