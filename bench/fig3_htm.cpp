// Figure 3 — throughput of HTM data structures vs thread count under four
// conflict-resolution strategies, on the discrete-event HTM simulator
// (substituting for Graphite; DESIGN.md §7).
//
// One binary per panel (TXC_FIG3_VARIANT):
//   0 fig3_stack    : transactional stack, alternating push/pop
//   1 fig3_queue    : transactional queue, alternating enqueue/dequeue
//   2 fig3_txapp    : 2-of-64-objects transactional application
//   3 fig3_bimodal  : same app, alternating short / very long transactions
//
// Columns are the paper's legend: NO_DELAY, DELAY_TUNED (fixed delay set to
// the measured 1-thread mean transaction length), DELAY_DET (Theorem 4) and
// DELAY_RAND (Theorem 5 uniform).  Rows: thread counts 1..16.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

std::shared_ptr<Workload> make_workload(std::uint32_t cores) {
#if TXC_FIG3_VARIANT == 0
  return std::make_shared<ds::StackWorkload>(cores);
#elif TXC_FIG3_VARIANT == 1
  return std::make_shared<ds::QueueWorkload>(cores);
#elif TXC_FIG3_VARIANT == 2
  (void)cores;
  return std::make_shared<ds::TxAppWorkload>();
#else
  return std::make_shared<ds::BimodalTxAppWorkload>(cores);
#endif
}

HtmStats run_one(std::uint32_t threads,
                 std::shared_ptr<const core::GracePeriodPolicy> policy,
                 std::uint64_t target_commits) {
  HtmConfig config;
  config.cores = threads;
  config.policy = std::move(policy);
  config.seed = 1234;
  HtmSystem system{config, make_workload(threads)};
  return system.run(target_commits);
}

/// DELAY_TUNED calibration: the operator measures the uncontended fast-path
/// transaction length and fixes the delay to it (Section 8.2: "decides on the
/// amount of delay based on knowledge of the dataset and implementation").
double calibrate_tuned_delay() {
  const auto stats = run_one(1, core::make_policy(core::StrategyKind::kNoDelay),
                             txc::bench::scaled(4000));
  return stats.mean_tx_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  const char* titles[] = {"Stack Throughput", "Queue Throughput",
                          "Transactional Application Throughput",
                          "Bimodal Transactional Application Throughput"};
  const char* expectations[] = {
      "all DELAY_* beat NO_DELAY under contention (paper: up to ~4x); "
      "DELAY_TUNED best (stable short transactions), online strategies close",
      "same as stack, slightly lower absolute throughput (head/tail split)",
      "same ordering for uniform transaction lengths",
      "DELAY_TUNED loses its edge (unpredictable lengths); NO_DELAY "
      "competitive (aborting long txns favors short ones); DELAY_RAND best "
      "at high contention/variance"};
  txc::bench::banner(std::string("Figure 3 — ") + titles[TXC_FIG3_VARIANT] +
                         " (ops/second at 1 GHz, simulator cycles)",
                     expectations[TXC_FIG3_VARIANT]);

  const double tuned_delay = calibrate_tuned_delay();
  std::printf("calibrated DELAY_TUNED fixed delay: %.0f cycles\n\n",
              tuned_delay);

  struct Column {
    core::StrategyKind kind;
    const char* label;
  };
  const Column columns[] = {
      {core::StrategyKind::kNoDelay, "NO_DELAY"},
      {core::StrategyKind::kFixedTuned, "DELAY_TUNED"},
      {core::StrategyKind::kDetWins, "DELAY_DET"},
      {core::StrategyKind::kRandWins, "DELAY_RAND"},
  };

  txc::bench::Table table{{"threads", "NO_DELAY", "DELAY_TUNED", "DELAY_DET",
                           "DELAY_RAND", "abort%(ND)", "abort%(RND)"}};
  table.print_header();
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u, 12u, 16u}) {
    if (threads > txc::bench::capped(16u, 4u)) continue;
    const std::uint64_t target = txc::bench::scaled(6000ull) * threads;
    std::vector<std::string> row{std::to_string(threads)};
    double abort_nd = 0.0;
    double abort_rnd = 0.0;
    for (const auto& column : columns) {
      const auto stats =
          run_one(threads, core::make_policy(column.kind, tuned_delay), target);
      row.push_back(txc::bench::fmt_sci(stats.ops_per_second()));
      if (column.kind == core::StrategyKind::kNoDelay) {
        abort_nd = stats.abort_rate();
      }
      if (column.kind == core::StrategyKind::kRandWins) {
        abort_rnd = stats.abort_rate();
      }
    }
    row.push_back(txc::bench::fmt(100.0 * abort_nd, 1));
    row.push_back(txc::bench::fmt(100.0 * abort_rnd, 1));
    table.print_row(row);
  }
  return 0;
}
