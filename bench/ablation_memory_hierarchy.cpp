// Ablation — shared-L2 memory hierarchy.
//
// Graphite's configuration is private-L1 / shared-L2; the base simulator
// flattens everything past the L1 into one latency.  With the L2 enabled,
// (a) the latency ladder becomes L1 < L2 < memory, stretching transactions
// whose working set misses, and (b) inclusive back-invalidations add a
// second capacity-abort source that no grace period can prevent.  The
// question for the paper's result: do the delay strategies still order the
// same way when some aborts are not conflict aborts at all?
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "ds/extended_workloads.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

HtmStats run_one(core::StrategyKind kind, bool with_l2,
                 std::uint32_t l2_sets, std::shared_ptr<Workload> workload,
                 std::uint64_t target) {
  HtmConfig config;
  config.cores = 16;
  config.policy = core::make_policy(kind);
  config.seed = 9090;
  if (with_l2) {
    mem::L2Config l2;
    l2.banks = 4;
    l2.sets_per_bank = l2_sets;
    l2.ways = 4;
    config.l2 = l2;
    config.memory_latency = 80;
  }
  HtmSystem system{config, std::move(workload)};
  // The undersized-L2 configurations thrash (that is the point); cap the
  // simulated time so the bench reports the thrash instead of grinding
  // through it.
  return system.run(target, /*max_cycles=*/30'000'000);
}

std::uint64_t l2_capacity_aborts(const HtmStats& stats) {
  std::uint64_t total = 0;
  for (const auto& per_core : stats.per_core) {
    total += per_core.aborts_by_reason[static_cast<std::size_t>(
        AbortReason::kCapacityL2)];
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Ablation — shared L2 hierarchy (16 cores)",
      "with an ample L2 the strategy ordering matches the flat model (hits "
      "dominate); shrinking the L2 adds back-invalidation capacity aborts "
      "that no delay policy can remove, compressing — but not inverting — "
      "the gap between NO_DELAY and the delay strategies");

  std::printf("Read-mostly workload (256-line array), L2 size sweep:\n");
  txc::bench::Table table{{"L2-lines", "strategy", "ops/s", "abort%",
                           "l2-hit%", "back-inv", "l2-cap-aborts"}};
  table.print_header();
  for (const std::uint32_t sets : {0u, 4u, 16u, 256u}) {  // 0 = no L2
    for (const auto kind :
         {txc::core::StrategyKind::kNoDelay,
          txc::core::StrategyKind::kRandWins}) {
      ds::ReadMostlyWorkload::Params params;
      params.objects = 256;
      const auto stats =
          run_one(kind, sets > 0, sets,
                  std::make_shared<ds::ReadMostlyWorkload>(params),
                  txc::bench::scaled(30000));
      std::vector<std::string> row{
          sets == 0 ? "flat" : std::to_string(4 * sets * 4),
          txc::core::to_string(kind),
          txc::bench::fmt_sci(stats.ops_per_second()),
          txc::bench::fmt(100.0 * stats.abort_rate(), 1)};
      if (stats.l2.has_value()) {
        row.push_back(txc::bench::fmt(100.0 * stats.l2->hit_rate(), 1));
        row.push_back(txc::bench::fmt_sci(
            static_cast<double>(stats.l2->back_invalidations)));
        row.push_back(txc::bench::fmt_sci(
            static_cast<double>(l2_capacity_aborts(stats))));
      } else {
        row.insert(row.end(), {"-", "-", "-"});
      }
      table.print_row(row);
    }
  }

  std::printf("\nContended txapp, full hierarchy vs flat (strategy sweep):\n");
  txc::bench::Table app_table{{"model", "NO_DELAY", "DELAY_DET", "DELAY_RAND",
                               "HYBRID"}};
  app_table.print_header();
  for (const bool with_l2 : {false, true}) {
    std::vector<std::string> row{with_l2 ? "L1+L2+mem" : "flat"};
    for (const auto kind :
         {txc::core::StrategyKind::kNoDelay, txc::core::StrategyKind::kDetWins,
          txc::core::StrategyKind::kRandWins,
          txc::core::StrategyKind::kHybrid}) {
      const auto stats = run_one(kind, with_l2, 256,
                                 std::make_shared<ds::TxAppWorkload>(),
                                 txc::bench::scaled(40000));
      row.push_back(txc::bench::fmt_sci(stats.ops_per_second()));
    }
    app_table.print_row(row);
  }
  return 0;
}
