// Cross-substrate conflict arbitration — the roster figure of the
// src/conflict refactor: ONE arbiter instance per row runs unmodified on
// four substrates with genuinely different conflict anatomies, swept over
// parallelism (one comparison table per thread/core count):
//
//   TL2     striped write locks, kill protocol, real threads (wall clock);
//   NOrec   one anonymous global seqlock, no kills, real threads;
//   HTM     the discrete-event simulator's transactional conflict events
//           (simulated clock, mixed transactional application);
//   HTM-FB  the same simulator with the fallback-lock path engaged after
//           repeated aborts — the arbiter also chooses the grace a receiver
//           gets before the non-transactional slow path clobbers it.
//
// Each arbiter instance is shared across its four runs (adaptive arbiters
// keep learning across substrates — exactly the deployment story of the
// conflict layer).  Throughput is Mops/s of wall clock for the threaded
// substrates and Mops/s of *simulated* time for the simulator ones, so
// compare down columns (policies within a substrate), not across substrate
// rows.
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "conflict/adaptive.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using conflict::ConflictArbiter;

struct CellResult {
  double mops = 0.0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
};

template <typename StmT, typename TxT>
CellResult run_threaded(StmT& stm, int threads, int ops_per_thread) {
  constexpr int kAccounts = 32;
  std::vector<stm::Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value = 1000;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sim::Rng rng{txc::bench::seed(7) * 131 + static_cast<std::uint64_t>(t)};
      for (int i = 0; i < ops_per_thread; ++i) {
        const auto from = rng.uniform_below(kAccounts);
        auto to = rng.uniform_below(kAccounts - 1);
        if (to >= from) ++to;
        stm.atomically([&](TxT& tx) {
          const std::uint64_t a = tx.read(accounts[from]);
          const std::uint64_t b = tx.read(accounts[to]);
          tx.write(accounts[from], a - 1);
          tx.write(accounts[to], b + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  CellResult result;
  result.commits = stm.stats().commits.load();
  result.aborts = stm.stats().aborts.load();
  result.mops = static_cast<double>(result.commits) / (seconds * 1e6);
  return result;
}

CellResult run_simulated(const std::shared_ptr<const ConflictArbiter>& arbiter,
                         int cores, std::uint64_t commits,
                         std::uint32_t max_attempts_before_fallback) {
  htm::HtmConfig config;
  config.cores = static_cast<std::uint32_t>(cores);
  config.arbiter = arbiter;
  config.max_attempts_before_fallback = max_attempts_before_fallback;
  config.seed = txc::bench::seed(42);
  htm::HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(commits);
  CellResult result;
  result.commits = stats.commits;
  result.aborts = stats.aborts;
  result.mops = stats.ops_per_second() / 1e6;  // simulated clock at 1 GHz
  return result;
}

struct Contender {
  std::string label;
  std::shared_ptr<const ConflictArbiter> arbiter;
};

std::vector<Contender> roster() {
  using core::StrategyKind;
  const auto grace = [](StrategyKind kind) {
    return std::make_shared<conflict::GraceArbiter>(core::make_policy(kind));
  };
  std::vector<Contender> result;
  result.push_back({"Grace(NONE)", grace(StrategyKind::kNoDelay)});
  result.push_back({"Grace(DET_A)", grace(StrategyKind::kDetAborts)});
  result.push_back({"Grace(RRA)", grace(StrategyKind::kRandAborts)});
  result.push_back({"Grace(DET_W)", grace(StrategyKind::kDetWins)});
  result.push_back({"Grace(HYBRID)", grace(StrategyKind::kHybrid)});
  result.push_back({"Karma", conflict::make_cm(conflict::CmKind::kKarma)});
  result.push_back({"Greedy", conflict::make_cm(conflict::CmKind::kGreedy)});
  result.push_back({"Polka", conflict::make_cm(conflict::CmKind::kPolka)});
  result.push_back({"ADAPTIVE",
                    std::make_shared<conflict::AdaptiveArbiter>()});
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Cross-substrate arbitration — one arbiter instance on TL2, NOrec, "
      "the HTM simulator, and its fallback-lock path",
      "the conflict layer's contract: the same decision procedure (grace "
      "policies, classic managers, the adaptive learner) arbitrates every "
      "substrate; requestor-aborts graces rank consistently on the spin "
      "substrates, seniority managers only differentiate where descriptors "
      "exist (TL2 and the simulator), and the adaptive arbiter tracks the "
      "workload on all four.  Swept over parallelism: the gap between "
      "arbiters widens with threads as conflicts densify.  Compare within a "
      "substrate column at one sweep point; wall-clock and simulated Mops/s "
      "are different clocks");

  // Parallelism sweep: threads for the real-thread substrates, cores for
  // the simulated ones.  One table per point (the roster expects one panel
  // table per sweep point, smoke and full alike — only the per-run work
  // shrinks in smoke).
  const int kSweep[] = {2, 4, 8};
  const int kOpsPerThread = txc::bench::scaled(20000);
  const std::uint64_t kSimCommits = txc::bench::scaled(12000);

  for (const int parallelism : kSweep) {
    std::printf("\n--- %d threads (threaded) / %d cores (simulated) ---\n",
                parallelism, parallelism);
    txc::bench::Table table{
        {"arbiter", "substrate", "threads", "Mops/s", "commits", "aborts"}};
    table.print_header();
    for (const Contender& contender : roster()) {
      const auto print = [&](const char* substrate, const CellResult& cell) {
        table.print_row(
            {contender.label, substrate, std::to_string(parallelism),
             txc::bench::fmt(cell.mops, 2),
             txc::bench::fmt_sci(static_cast<double>(cell.commits)),
             txc::bench::fmt_sci(static_cast<double>(cell.aborts))});
      };
      {
        stm::Stm tl2{contender.arbiter};
        print("TL2", run_threaded<stm::Stm, stm::Tx>(tl2, parallelism,
                                                     kOpsPerThread));
      }
      {
        stm::Norec norec{contender.arbiter};
        print("NOrec", run_threaded<stm::Norec, stm::NorecTx>(
                           norec, parallelism, kOpsPerThread));
      }
      print("HTM", run_simulated(contender.arbiter, parallelism, kSimCommits,
                                 /*max_attempts_before_fallback=*/0));
      print("HTM-FB",
            run_simulated(contender.arbiter, parallelism, kSimCommits,
                          /*max_attempts_before_fallback=*/4));
    }
  }
  return 0;
}
