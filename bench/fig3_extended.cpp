// Extended Figure-3-style panels: the paper's four strategies on the four
// workloads the paper does not cover — bank transfers, Zipf-skewed hotspots,
// read-mostly scans, and linked-list traversals.  These probe regimes the
// paper's Implications paragraph predicts: skew lengthens conflict chains
// (where requestor-wins should shine), read-mostly minimizes conflicts
// (delays must not hurt), and lists mix short and long transactions.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "ds/extended_workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

std::shared_ptr<Workload> make_workload(int panel) {
  switch (panel) {
    case 0: return std::make_shared<ds::BankWorkload>();
    case 1: {
      ds::ZipfTxAppWorkload::Params params;
      params.skew = 1.0;
      return std::make_shared<ds::ZipfTxAppWorkload>(params);
    }
    case 2: return std::make_shared<ds::ReadMostlyWorkload>();
    default: return std::make_shared<ds::ListWorkload>();
  }
}

HtmStats run_one(std::uint32_t threads, core::StrategyKind kind,
                 double tuned, int panel, std::uint64_t target) {
  HtmConfig config;
  config.cores = threads;
  config.policy = core::make_policy(kind, tuned);
  config.seed = 31337;
  HtmSystem system{config, make_workload(panel)};
  return system.run(target, /*max_cycles=*/60'000'000);
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  const char* titles[] = {"Bank transfers (2-of-128 accounts)",
                          "Zipf-skewed txapp (s = 1.0)",
                          "Read-mostly scans (10% writers)",
                          "Sorted-list insertion (32 nodes)"};
  const char* expectations[] = {
      "like the paper's txapp: delays cut aborts, every strategy close at "
      "128 accounts (low conflict probability)",
      "skew concentrates conflicts: bigger delay benefit, DELAY_RAND robust",
      "conflicts are rare: all strategies within noise of each other "
      "(delays must not hurt the uncontended case)",
      "mixed lengths from random insertion points: static tuning mediocre, "
      "randomized delay degrades gracefully"};

  for (int panel = 0; panel < 4; ++panel) {
    txc::bench::banner(std::string("Extended panel — ") + titles[panel],
                       expectations[panel]);
    // Calibrate DELAY_TUNED from a 1-thread run, as in fig3.
    const auto solo = run_one(1, txc::core::StrategyKind::kNoDelay, 0.0,
                              panel, txc::bench::scaled(3000));
    const double tuned = solo.mean_tx_cycles;
    std::printf("calibrated DELAY_TUNED: %.0f cycles\n\n", tuned);

    txc::bench::Table table{{"threads", "NO_DELAY", "DELAY_TUNED",
                             "DELAY_DET", "DELAY_RAND", "ADAPTIVE",
                             "abort%(ND)", "abort%(RND)"}};
    table.print_header();
    for (const std::uint32_t threads : {1u, 4u, 8u, 16u}) {
      if (threads > txc::bench::capped(16u, 4u)) continue;
      const std::uint64_t target = txc::bench::scaled(1500ull) * threads;
      std::vector<std::string> row{std::to_string(threads)};
      double abort_nd = 0.0;
      double abort_rnd = 0.0;
      for (const auto kind :
           {txc::core::StrategyKind::kNoDelay,
            txc::core::StrategyKind::kFixedTuned,
            txc::core::StrategyKind::kDetWins,
            txc::core::StrategyKind::kRandWins,
            txc::core::StrategyKind::kAdaptiveTuned}) {
        const auto stats = run_one(threads, kind, tuned, panel, target);
        row.push_back(txc::bench::fmt_sci(stats.ops_per_second()));
        if (kind == txc::core::StrategyKind::kNoDelay) {
          abort_nd = stats.abort_rate();
        }
        if (kind == txc::core::StrategyKind::kRandWins) {
          abort_rnd = stats.abort_rate();
        }
      }
      row.push_back(txc::bench::fmt(100.0 * abort_nd, 1));
      row.push_back(txc::bench::fmt(100.0 * abort_rnd, 1));
      table.print_row(row);
    }
  }
  return 0;
}
