// Frozen pre-committer-descriptor NOrec (verbatim at PR 4, minus renames),
// for bench/micro_stm_fastpath.cpp's before/after comparison.
//
// This is the anonymous-seqlock substrate exactly as it stood before the
// committer-descriptor protocol landed: the arbitration wait path is intact
// (same GraceArbiter plumbing, optional-returning await_even consulted on
// every read), but the seqlock holder publishes no descriptor, cannot be
// killed, and the commit path carries no kill window — one CAS, the
// write-back loop, one release store.  Comparing it against the live
// txc::stm::Norec therefore isolates exactly what the committer-descriptor
// protocol added: the descriptor publish/clear stores, the kill-window
// status CAS, the per-attempt status store, and the seniority/credit
// plumbing.
//
// The translation-unit structure deliberately mirrors the live substrate
// (template atomically() here, protocol methods out-of-line in
// norec_legacy.cpp) so the ratio measures the protocol, not inlining luck.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "conflict/arbiter.hpp"
#include "core/policy.hpp"
#include "stm/tl2.hpp"  // Cell, TxAbort, StmStats
#include "stm/tx_buffers.hpp"

namespace legacy_norec {

class AnonNorec;

class AnonNorecTx {
 public:
  [[nodiscard]] std::uint64_t read(const txc::stm::Cell& cell);
  void write(txc::stm::Cell& cell, std::uint64_t value);

 private:
  friend class AnonNorec;
  AnonNorecTx(AnonNorec& stm, std::uint32_t attempt, std::uint64_t snapshot,
              txc::stm::TxBuffers* buffers) noexcept
      : stm_(stm), attempt_(attempt), snapshot_(snapshot), buffers_(buffers) {}

  AnonNorec& stm_;
  std::uint32_t attempt_;
  std::uint64_t snapshot_;
  txc::stm::TxBuffers* buffers_;
};

class AnonNorec {
 public:
  explicit AnonNorec(
      std::shared_ptr<const txc::core::GracePeriodPolicy> policy);

  template <typename Body>
  void atomically(Body&& body) {
    txc::stm::TxBuffers& buffers = thread_buffers();
    txc::stm::TxBuffersScope scope{buffers};
    for (std::uint32_t attempt = 0;; ++attempt) {
      buffers.clear();
      std::uint64_t snapshot = seqlock_.load(std::memory_order_acquire);
      while (snapshot & 1) {
        snapshot = seqlock_.load(std::memory_order_acquire);
      }
      AnonNorecTx tx{*this, attempt, snapshot, &buffers};
      bool unwound = false;
      try {
        body(tx);
      } catch (const txc::stm::TxAbort&) {
        unwound = true;
      }
      if (!unwound && try_commit(tx)) {
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] static std::uint64_t read_committed(
      const txc::stm::Cell& cell) {
    return cell.value.load(std::memory_order_relaxed);
  }

 private:
  friend class AnonNorecTx;

  static txc::stm::TxBuffers& thread_buffers() noexcept;
  [[nodiscard]] std::optional<std::uint64_t> await_even(std::uint32_t attempt);
  [[nodiscard]] std::optional<std::uint64_t> validate(AnonNorecTx& tx);
  [[nodiscard]] bool try_commit(AnonNorecTx& tx);

  static constexpr double kAbortCostEstimate = 256.0;

  std::shared_ptr<const txc::conflict::ConflictArbiter> arbiter_;
  std::atomic<std::uint64_t> seqlock_{0};
  txc::stm::StmStats stats_;
};

}  // namespace legacy_norec
