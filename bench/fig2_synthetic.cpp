// Figures 2a/2b/2c — the synthetic conflict-cost experiment of Section 8.1.
//
// One binary per figure (selected by TXC_FIG2_VARIANT at compile time) so the
// `for b in build/bench/*` loop regenerates each panel separately:
//   fig2a_synthetic_highB : B = 2000, mu = 500 (Figure 2a)
//   fig2b_synthetic_lowB  : B = 200,  mu = 500 (Figure 2b)
//   fig2c_adversarial_det : worst-case remaining-time distribution for DET
//                           (Figure 2c)
//
// Rows: the five length distributions.  Columns: the strategies of the
// paper's legend plus the offline optimum.  Cells: average conflict cost.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace txc;
using namespace txc::workload;

struct StrategyColumn {
  core::StrategyKind kind;
  const char* label;
};

constexpr StrategyColumn kColumns[] = {
    {core::StrategyKind::kRandWinsMean, "RRW(mu)"},
    {core::StrategyKind::kRandAbortsMean, "RRA(mu)"},
    {core::StrategyKind::kRandWins, "RRW"},
    {core::StrategyKind::kRandAborts, "RRA"},
    {core::StrategyKind::kDetWins, "DET"},
};

void run_figure(const SyntheticConfig& config, bool det_worst_case) {
  bench::Table table{{"distribution", "RRW(mu)", "RRA(mu)", "RRW", "RRA",
                      "DET", "OPT(RW)", "OPT(RA)"}};
  table.print_header();

  const LengthShape shapes[] = {LengthShape::kGeometric, LengthShape::kNormal,
                                LengthShape::kUniform,
                                LengthShape::kExponential,
                                LengthShape::kPoisson};
  for (const auto shape : shapes) {
    const LengthDistribution lengths{shape, config.mean};
    std::vector<std::string> row{to_string(shape)};
    double opt_rw = 0.0;
    double opt_ra = 0.0;
    for (const auto& column : kColumns) {
      const auto policy = core::make_policy(column.kind);
      const SyntheticResult result =
          det_worst_case ? run_synthetic_det_worst_case(*policy, config)
                         : run_synthetic(*policy, lengths, config);
      row.push_back(bench::fmt(result.strategy_cost.mean(), 1));
      if (column.kind == core::StrategyKind::kRandWins) {
        opt_rw = result.optimal_cost.mean();
      }
      if (column.kind == core::StrategyKind::kRandAborts) {
        opt_ra = result.optimal_cost.mean();
      }
    }
    row.push_back(bench::fmt(opt_rw, 1));
    row.push_back(bench::fmt(opt_ra, 1));
    table.print_row(row);
    if (det_worst_case) break;  // Figure 2c has a single adversarial row
  }

  std::printf("\nAverage cost / OPT ratios:\n");
  bench::Table ratios{{"distribution", "RRW(mu)", "RRA(mu)", "RRW", "RRA",
                       "DET"}};
  ratios.print_header();
  for (const auto shape : shapes) {
    const LengthDistribution lengths{shape, config.mean};
    std::vector<std::string> row{to_string(shape)};
    for (const auto& column : kColumns) {
      const auto policy = core::make_policy(column.kind);
      const SyntheticResult result =
          det_worst_case ? run_synthetic_det_worst_case(*policy, config)
                         : run_synthetic(*policy, lengths, config);
      row.push_back(bench::fmt(result.average_ratio(), 3));
    }
    ratios.print_row(row);
    if (det_worst_case) break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
#if TXC_FIG2_VARIANT == 0
  txc::bench::banner(
      "Figure 2a — average conflict cost, HIGH fixed cost (B=2000, mu=500)",
      "DET ~ OPT (never aborts); RRW(mu)/RRA(mu) < RRW/RRA; "
      "RRW ~ 2x OPT, RRA ~ e/(e-1) x OPT");
  SyntheticConfig config;
  config.abort_cost = 2000.0;
  config.mean = 500.0;
  config.trials = txc::bench::scaled(200000);
  run_figure(config, /*det_worst_case=*/false);
#elif TXC_FIG2_VARIANT == 1
  txc::bench::banner(
      "Figure 2b — average conflict cost, LOW fixed cost (B=200, mu=500)",
      "DET degrades (frequent aborts); constrained ~ unconstrained "
      "(threshold violated); RA variants beat RW variants");
  SyntheticConfig config;
  config.abort_cost = 200.0;
  config.mean = 500.0;
  config.trials = txc::bench::scaled(200000);
  run_figure(config, /*det_worst_case=*/false);
#else
  txc::bench::banner(
      "Figure 2c — adversarial (worst-case for DET) remaining-time "
      "distribution (B=2000)",
      "DET pays 3x OPT (= 2 + 1/(k-1), k=2); randomized strategies keep "
      "their guarantees (RRW <= 2, RRA <= e/(e-1))");
  SyntheticConfig config;
  config.abort_cost = 2000.0;
  config.mean = 500.0;
  config.trials = txc::bench::scaled(100000);
  run_figure(config, /*det_worst_case=*/true);
#endif
  return 0;
}
