// STM ablation — the conflict policies inside a real multi-threaded TL2 STM
// (the paper's future-work direction: "investigate the practicality of our
// designs through a more precise [TM] implementation").
//
// Workload: threads increment a shared counter (maximum contention) and a
// striped array (moderate contention) under different contention-manager
// policies.  Note: wall-clock throughput depends on the host; the interesting
// series is the relative ordering and the abort counts.
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using namespace txc::stm;

struct Result {
  double ops_per_second = 0.0;
  std::uint64_t aborts = 0;
  std::uint64_t lock_waits = 0;
};

Result run(core::StrategyKind kind, unsigned threads, bool striped) {
  Stm stm{core::make_policy(kind, /*tuned_delay=*/512.0)};
  const int kOpsPerThread = txc::bench::scaled(20000);
  std::vector<Cell> cells(striped ? 64 : 1);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sim::Rng rng{t + 1};
      for (int i = 0; i < kOpsPerThread; ++i) {
        Cell& cell = cells[striped ? rng.uniform_below(cells.size()) : 0];
        stm.atomically([&](Tx& tx) { tx.write(cell, tx.read(cell) + 1); });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  Result result;
  result.ops_per_second =
      static_cast<double>(threads) * kOpsPerThread / elapsed;
  result.aborts = stm.stats().aborts.load();
  result.lock_waits = stm.stats().lock_waits.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "STM ablation — TL2 with grace-period contention management "
      "(real threads)",
      "grace periods (RRA / tuned) reduce aborts vs NO_DELAY under "
      "contention; all policies preserve atomicity (checked by unit tests)");

  for (const bool striped : {false, true}) {
    std::printf("%s workload:\n",
                striped ? "striped 64-cell array" : "single hot counter");
    txc::bench::Table table{{"threads", "policy", "ops/s", "aborts",
                             "lock-waits"}};
    table.print_header();
    for (const unsigned threads : {1u, 2u, 4u}) {
      for (const auto kind :
           {core::StrategyKind::kNoDelay, core::StrategyKind::kFixedTuned,
            core::StrategyKind::kRandAborts,
            core::StrategyKind::kRandAbortsMean}) {
        const Result result = run(kind, threads, striped);
        table.print_row({std::to_string(threads), core::to_string(kind),
                         txc::bench::fmt_sci(result.ops_per_second),
                         std::to_string(result.aborts),
                         std::to_string(result.lock_waits)});
      }
    }
    std::printf("\n");
  }
  return 0;
}
