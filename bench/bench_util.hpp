// txconflict — shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one figure (or ablation) from the paper and
// prints the same rows/series the paper plots, plus the paper's qualitative
// expectation so a reader can compare shapes at a glance (absolute numbers
// differ: our substrate is a from-scratch simulator, see DESIGN.md §7).
//
// Benches accept a tiny common CLI, parsed by `init(argc, argv)`:
//
//   --smoke            same effect as TXC_BENCH_SMOKE=1 (tiny trial counts)
//   --trial-divisor N  divide every scaled() workload knob by N (overrides
//                      the smoke default of 200; N=1 forces full size)
//   --seed N           base RNG seed, recorded in the series report and
//                      readable via seed() for benches that thread it through
//   --json-out FILE    write every printed table as a machine-readable
//                      txc-bench-series/v1 JSON document on exit
//
// `tools/txcrepro` drives benches through these flags (one process per
// panel, deterministic seeds, per-run JSON) instead of ad-hoc env vars; the
// TXC_BENCH_SMOKE env path remains for `txcbench --smoke` and hand runs.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "sim/jsonio.hpp"

namespace txc::bench {

/// Flags shared by every bench binary; populated by init().
struct Options {
  bool smoke_flag = false;
  /// 0 = no --seed given; seed() then returns its caller's fallback.
  std::uint64_t seed = 0;
  /// 0 = no override (smoke divides by 200, full runs by 1).
  std::uint64_t trial_divisor = 0;
  std::string json_out;
  std::string bench_name = "bench";
};

inline Options& options() {
  static Options opts;
  return opts;
}

/// True when the bench should run a fast, tiny-workload smoke pass
/// (`--smoke`, or `TXC_BENCH_SMOKE=1` in the environment — set by
/// `txcbench --smoke`).  Smoke runs only prove the bench executes end to
/// end; the printed numbers are statistically meaningless.
inline bool smoke_mode() {
  if (options().smoke_flag) return true;
  const char* env = std::getenv("TXC_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Scale a workload-size knob (trials, commits, ops) down for smoke runs.
/// Full runs return `full`; smoke runs return `full / 200`, floored at 1.
/// `--trial-divisor N` overrides both (full / N, floored at 1).
template <typename T>
inline T scaled(T full) {
  const std::uint64_t divisor_override = options().trial_divisor;
  if (divisor_override > 0) {
    // Divide in long double: casting the divisor to a narrower T could
    // truncate it to 0 (SIGFPE) and overflow the knob's range.
    const long double quotient = static_cast<long double>(full) /
                                 static_cast<long double>(divisor_override);
    return quotient < 1 ? T{1} : static_cast<T>(quotient);
  }
  if (!smoke_mode()) return full;
  return std::max<T>(T{1}, full / T{200});
}

/// Cap a sweep bound (e.g. max thread count) for smoke runs.
template <typename T>
inline T capped(T full, T smoke_cap) {
  return smoke_mode() ? std::min(full, smoke_cap) : full;
}

/// Measured core::cycle_now() rate, for reporting latencies in microseconds
/// regardless of what the hardware counter ticks in.  One 20ms busy-wait
/// (not a sleep, so a frequency-scaling governor sees load) per call —
/// calibrate once per process and thread the value through.  Shared by
/// every latency-reporting bench (kv_service, tail_adversary,
/// stripe_geometry).
inline double calibrate_cycles_per_us() {
  const std::uint64_t cycles_begin = core::cycle_now();
  const auto wall_begin = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - wall_begin <
         std::chrono::milliseconds(20)) {
  }
  const std::uint64_t cycles = core::cycle_now() - cycles_begin;
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - wall_begin)
                        .count();
  return static_cast<double>(cycles) / us;
}

/// Base RNG seed for benches that thread determinism through: the --seed
/// value when one was given, the bench's own fallback otherwise (seed 0 is
/// reserved as "unset" — drivers pass nonzero seeds).
inline std::uint64_t seed(std::uint64_t fallback = 1) {
  return options().seed != 0 ? options().seed : fallback;
}

namespace detail {

/// One printed table, captured for the --json-out series report.
struct CapturedTable {
  std::string section;  // last banner() title when the table was created
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

struct SeriesReport {
  std::string section;
  std::vector<CapturedTable> tables;

  static SeriesReport& instance() {
    static SeriesReport report;
    return report;
  }
};

using txc::sim::json_escape;

/// Emit the captured tables as a txc-bench-series/v1 document.  Consumed by
/// tools/txcrepro's aggregator (tools/repro/aggregate.hpp).
inline void write_series_report() {
  const Options& opts = options();
  if (opts.json_out.empty()) return;
  std::ofstream out(opts.json_out);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", opts.json_out.c_str());
    return;
  }
  const SeriesReport& report = SeriesReport::instance();
  out << "{\n"
      << "  \"schema\": \"txc-bench-series/v1\",\n"
      << "  \"bench\": \"" << json_escape(opts.bench_name) << "\",\n"
      << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n"
      << "  \"seed\": " << opts.seed << ",\n"
      << "  \"tables\": [\n";
  for (std::size_t t = 0; t < report.tables.size(); ++t) {
    const CapturedTable& table = report.tables[t];
    out << "    {\n"
        << "      \"section\": \"" << json_escape(table.section) << "\",\n"
        << "      \"headers\": [";
    for (std::size_t i = 0; i < table.headers.size(); ++i) {
      out << (i ? ", " : "") << "\"" << json_escape(table.headers[i]) << "\"";
    }
    out << "],\n      \"rows\": [\n";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      out << "        [";
      for (std::size_t i = 0; i < table.rows[r].size(); ++i) {
        out << (i ? ", " : "") << "\"" << json_escape(table.rows[r][i])
            << "\"";
      }
      out << "]" << (r + 1 < table.rows.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }"
        << (t + 1 < report.tables.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace detail

/// Parse the common bench CLI.  Call first thing in main(); safe to skip for
/// flag-less runs (txcbench and hand invocations pass no arguments).
inline void init(int argc, char** argv) {
  Options& opts = options();
  if (argc > 0) {
    const char* slash = std::strrchr(argv[0], '/');
    opts.bench_name = slash != nullptr ? slash + 1 : argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag %s needs a value\n",
                     opts.bench_name.c_str(), name);
        std::exit(2);
      }
      return argv[++i];
    };
    // Strict decimal parse: a typo'd seed must fail loudly, not silently
    // run a differently-seeded (hence irreproducible) experiment.
    const auto need_u64 = [&](const char* name,
                              std::uint64_t min_value) -> std::uint64_t {
      const std::string raw = need_value(name);
      char* end = nullptr;
      const std::uint64_t value = std::strtoull(raw.c_str(), &end, 10);
      if (raw.empty() || raw[0] == '-' || end != raw.c_str() + raw.size() ||
          value < min_value) {
        std::fprintf(stderr,
                     "%s: %s needs an integer >= %llu, got \"%s\"\n",
                     opts.bench_name.c_str(), name,
                     static_cast<unsigned long long>(min_value), raw.c_str());
        std::exit(2);
      }
      return value;
    };
    if (flag == "--smoke") {
      opts.smoke_flag = true;
    } else if (flag == "--seed") {
      opts.seed = need_u64("--seed", 1);  // 0 is the "unset" sentinel
    } else if (flag == "--trial-divisor") {
      opts.trial_divisor = need_u64("--trial-divisor", 1);
    } else if (flag == "--json-out") {
      opts.json_out = need_value("--json-out");
    } else if (flag == "--help") {
      std::printf(
          "%s — figure-reproduction bench (see bench/bench_util.hpp)\n"
          "usage: %s [--smoke] [--seed N] [--trial-divisor N] "
          "[--json-out FILE]\n",
          opts.bench_name.c_str(), opts.bench_name.c_str());
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s (see --help)\n",
                   opts.bench_name.c_str(), flag.c_str());
      std::exit(2);
    }
  }
  if (!opts.json_out.empty()) {
    // Construct the report singleton BEFORE registering the atexit hook:
    // exit runs handlers and static destructors in reverse registration
    // order, so anything constructed after the registration would already be
    // destroyed when the hook fires.
    detail::SeriesReport::instance();
    std::atexit(detail::write_series_report);
  }
}

/// Fixed-width table printer.  Every printed table is also captured so
/// --json-out can replay it as a machine-readable series.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {
    auto& report = detail::SeriesReport::instance();
    capture_index_ = report.tables.size();
    report.tables.push_back(
        detail::CapturedTable{report.section, headers_, {}});
  }

  void print_header() const {
    for (const auto& header : headers_) {
      std::printf("%-*s", width_, header.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%-*s", width_, std::string(width_ - 2, '-').c_str());
    }
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& cell : cells) {
      std::printf("%-*s", width_, cell.c_str());
    }
    std::printf("\n");
    detail::SeriesReport::instance().tables[capture_index_].rows.push_back(
        cells);
  }

 private:
  std::vector<std::string> headers_;
  int width_;
  std::size_t capture_index_ = 0;
};

inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string fmt_sci(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

inline void banner(const std::string& title, const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("----------------------------------------------------------------\n");
  std::printf("Paper expectation: %s\n\n", expectation.c_str());
  detail::SeriesReport::instance().section = title;
}

}  // namespace txc::bench
