// txconflict — shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one figure (or ablation) from the paper and
// prints the same rows/series the paper plots, plus the paper's qualitative
// expectation so a reader can compare shapes at a glance (absolute numbers
// differ: our substrate is a from-scratch simulator, see DESIGN.md §7).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace txc::bench {

/// True when the bench should run a fast, tiny-workload smoke pass
/// (`TXC_BENCH_SMOKE=1` in the environment — set by `txcbench --smoke`).
/// Smoke runs only prove the bench executes end to end; the printed numbers
/// are statistically meaningless.
inline bool smoke_mode() {
  const char* env = std::getenv("TXC_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Scale a workload-size knob (trials, commits, ops) down for smoke runs.
/// Full runs return `full`; smoke runs return `full / 200`, floored at 1.
template <typename T>
inline T scaled(T full) {
  if (!smoke_mode()) return full;
  return std::max<T>(T{1}, full / T{200});
}

/// Cap a sweep bound (e.g. max thread count) for smoke runs.
template <typename T>
inline T capped(T full, T smoke_cap) {
  return smoke_mode() ? std::min(full, smoke_cap) : full;
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void print_header() const {
    for (const auto& header : headers_) {
      std::printf("%-*s", width_, header.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%-*s", width_, std::string(width_ - 2, '-').c_str());
    }
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& cell : cells) {
      std::printf("%-*s", width_, cell.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string fmt_sci(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

inline void banner(const std::string& title, const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("----------------------------------------------------------------\n");
  std::printf("Paper expectation: %s\n\n", expectation.c_str());
}

}  // namespace txc::bench
