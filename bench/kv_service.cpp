// Sharded transactional KV service under open-loop load — the kv figure
// family: the src/kv service (sharded store + batching workers, generic
// over the STM substrate) driven by an open-loop generator at a fixed
// offered rate, reporting throughput AND completion-time tail latency
// (p50/p99/p999) per arbiter on both substrates.
//
// Open-loop means the generator submits on a fixed arrival schedule
// (next = start + i * interarrival) regardless of how fast the service
// drains — the honest way to measure tail latency: a closed-loop driver
// self-throttles exactly when the system is slow, hiding the queueing
// delay that real clients would observe (coordinated omission).  When a
// shard falls behind, its bounded queue rejects and the drop is counted;
// offered vs achieved Mops/s plus drop% shows where each arbiter's
// service capacity sits relative to the schedule.
//
// Completion time = enqueue tick -> batch-commit tick, recorded in cycles
// by the service's per-shard core::LatencyHistogram and calibrated to
// microseconds here.  One table per YCSB-style mix; rows are arbiter x
// substrate, so compare arbiters within a substrate (TL2's striped locks
// and NOrec's global seqlock give the same roster structurally different
// conflict anatomies — that contrast is the point of the figure).
//
// Since PR 8 the service runs each batch's kGet runs as read segments on
// the substrate snapshot fast path (atomically_read); the `snapcommit`
// column counts those snapshot commits, so on the read-heavy mix it should
// dwarf `aborts` and track the get fraction of completed requests.
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "conflict/adaptive.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "kv/service.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace txc;
using conflict::ConflictArbiter;

// Service shape: 4 shards (one worker each), 2 generator threads.
constexpr std::size_t kShards = 4;
constexpr std::size_t kClients = 2;
constexpr std::size_t kCapacityPerShard = 4096;
constexpr std::size_t kQueueCapacity = 4096;
constexpr std::size_t kMaxBatch = 16;
constexpr std::uint32_t kKeyUniverse = 2048;  // nonzero keys 1..2048
constexpr double kZipfExponent = 0.9;

/// Operation percentages; the remainder (to 100) is two-key swaps, the
/// cross-shard op that exercises multi-shard transaction footprints.
struct Mix {
  const char* name;
  const char* legend;
  int get_pct;
  int put_pct;
  int rmw_pct;
};

constexpr Mix kMixes[] = {
    {"read-heavy", "95% get / 5% put (YCSB-B shape)", 95, 5, 0},
    {"update-heavy", "50% get / 50% put (YCSB-A shape)", 50, 50, 0},
    {"rmw-swap", "40% get / 20% put / 20% rmw / 20% two-key swap", 40, 20,
     20},
};

struct RunResult {
  double offered_mops = 0.0;
  double achieved_mops = 0.0;
  double drop_pct = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t aborts = 0;
  std::uint64_t snapshot_commits = 0;  // read segments on the snapshot path
};

/// One open-loop run: `total_requests` submitted across kClients generator
/// threads on a fixed schedule of `offered_ops_per_sec`, then drained.
template <typename Substrate>
RunResult run_service(const std::shared_ptr<const ConflictArbiter>& arbiter,
                      const Mix& mix, std::uint64_t total_requests,
                      double offered_ops_per_sec, double cycles_per_us) {
  typename kv::KvService<Substrate>::Config config;
  config.store.shards = kShards;
  config.store.capacity_per_shard = kCapacityPerShard;
  config.queue_capacity = kQueueCapacity;
  config.max_batch = kMaxBatch;
  kv::KvService<Substrate> service{config, arbiter};

  // Prepopulate every key (value = key) so gets hit and swaps conserve.
  for (std::uint32_t key = 1; key <= kKeyUniverse; ++key) {
    service.store().put_sync(key, key);
  }

  const workload::ZipfSampler zipf{kKeyUniverse, kZipfExponent};
  const double interarrival_cycles =
      cycles_per_us * 1e6 / offered_ops_per_sec;

  service.start();
  const auto wall_begin = std::chrono::steady_clock::now();
  const std::uint64_t start_tick = core::cycle_now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      sim::Rng rng{txc::bench::seed(11) * 1013 + c};
      // Client c owns every kClients-th slot of the global schedule.
      for (std::uint64_t i = c; i < total_requests; i += kClients) {
        const auto due = start_tick + static_cast<std::uint64_t>(
                                          static_cast<double>(i) *
                                          interarrival_cycles);
        while (core::cycle_now() < due) {
        }
        kv::Request request;
        const auto roll = static_cast<int>(rng.uniform_below(100));
        request.key_a =
            1 + zipf.sample(rng);  // sampler draws [0, n), keys are nonzero
        if (roll < mix.get_pct) {
          request.op = kv::OpKind::kGet;
        } else if (roll < mix.get_pct + mix.put_pct) {
          request.op = kv::OpKind::kPut;
          request.value = static_cast<kv::Value>(rng.uniform_below(1 << 20));
        } else if (roll < mix.get_pct + mix.put_pct + mix.rmw_pct) {
          request.op = kv::OpKind::kRmwAdd;
          request.value = 1;
        } else {
          request.op = kv::OpKind::kSwap;
          request.key_b = 1 + zipf.sample(rng);
          if (request.key_b == request.key_a) {
            request.key_b = 1 + (request.key_a % kKeyUniverse);
          }
        }
        (void)service.submit(request);  // full queue = counted drop
      }
    });
  }
  for (auto& client : clients) client.join();
  service.stop();  // drains the queues before joining workers
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wall_begin)
                             .count();

  core::LatencyHistogram merged;
  service.merge_latency(merged);
  const auto& stats = service.service_stats();
  RunResult result;
  result.offered_mops = offered_ops_per_sec / 1e6;
  result.achieved_mops =
      static_cast<double>(stats.completed.load()) / (seconds * 1e6);
  result.drop_pct = 100.0 *
                    static_cast<double>(stats.rejected.load()) /
                    static_cast<double>(total_requests);
  result.p50_us =
      static_cast<double>(merged.quantile(0.50)) / cycles_per_us;
  result.p99_us =
      static_cast<double>(merged.quantile(0.99)) / cycles_per_us;
  result.p999_us =
      static_cast<double>(merged.quantile(0.999)) / cycles_per_us;
  result.aborts = service.store().stats().aborts.load();
  result.snapshot_commits = service.store().stats().snapshot_commits.load();
  return result;
}

struct Contender {
  std::string label;
  std::shared_ptr<const ConflictArbiter> arbiter;
};

/// The cross-substrate roster (mirrors bench/cross_substrate_arbiter.cpp):
/// grace policies, classic seniority managers, the adaptive learner.
std::vector<Contender> roster() {
  using core::StrategyKind;
  const auto grace = [](StrategyKind kind) {
    return std::make_shared<conflict::GraceArbiter>(core::make_policy(kind));
  };
  std::vector<Contender> result;
  result.push_back({"Grace(NONE)", grace(StrategyKind::kNoDelay)});
  result.push_back({"Grace(DET_A)", grace(StrategyKind::kDetAborts)});
  result.push_back({"Grace(RRA)", grace(StrategyKind::kRandAborts)});
  result.push_back({"Grace(DET_W)", grace(StrategyKind::kDetWins)});
  result.push_back({"Grace(HYBRID)", grace(StrategyKind::kHybrid)});
  result.push_back({"Karma", conflict::make_cm(conflict::CmKind::kKarma)});
  result.push_back({"Greedy", conflict::make_cm(conflict::CmKind::kGreedy)});
  result.push_back({"Polka", conflict::make_cm(conflict::CmKind::kPolka)});
  result.push_back({"ADAPTIVE",
                    std::make_shared<conflict::AdaptiveArbiter>()});
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Sharded transactional KV service under open-loop load — throughput "
      "and completion-time tails per arbiter, TL2 and NOrec from one "
      "substrate-generic store",
      "grace periods trade a little throughput for much shorter abort "
      "chains, which shows up as compressed p99/p999 completion times "
      "relative to Grace(NONE); seniority managers (Karma, Greedy, Polka) "
      "differentiate mostly on NOrec, where every batch serializes on the "
      "one commit seqlock and the committer-descriptor kill protocol gives "
      "them something to decide.  Compare arbiters within a substrate; "
      "drop% > 0 marks runs whose service capacity fell below the offered "
      "schedule");

  const std::uint64_t kRequests = txc::bench::scaled(std::uint64_t{240000});
  const double kOfferedOpsPerSec = 2.0e6;  // total across all shards
  const double cycles_per_us = txc::bench::calibrate_cycles_per_us();
  std::printf("calibration: %.1f cycles/us; %llu requests per run at "
              "%.1f Mops/s offered\n",
              cycles_per_us, static_cast<unsigned long long>(kRequests),
              kOfferedOpsPerSec / 1e6);

  for (const Mix& mix : kMixes) {
    std::printf("\n--- mix %s: %s ---\n", mix.name, mix.legend);
    txc::bench::Table table{{"arbiter", "substrate", "offered", "achieved",
                             "drop%", "p50us", "p99us", "p999us", "aborts",
                             "snapcommit"},
                            12};
    table.print_header();
    for (const Contender& contender : roster()) {
      const auto print = [&](const char* substrate, const RunResult& run) {
        table.print_row(
            {contender.label, substrate, txc::bench::fmt(run.offered_mops, 2),
             txc::bench::fmt(run.achieved_mops, 2),
             txc::bench::fmt(run.drop_pct, 1), txc::bench::fmt(run.p50_us, 1),
             txc::bench::fmt(run.p99_us, 1), txc::bench::fmt(run.p999_us, 1),
             txc::bench::fmt_sci(static_cast<double>(run.aborts)),
             txc::bench::fmt_sci(static_cast<double>(run.snapshot_commits))});
      };
      print("TL2", run_service<stm::Stm>(contender.arbiter, mix, kRequests,
                                         kOfferedOpsPerSec, cycles_per_us));
      print("NOrec", run_service<stm::Norec>(contender.arbiter, mix,
                                             kRequests, kOfferedOpsPerSec,
                                             cycles_per_us));
    }
  }
  return 0;
}
