// Ablation — abort probability comparison (Section 5.3 "Abort probability"):
// under the same conditions the requestor-aborts optimal strategy is less
// likely to abort a transaction than the requestor-wins one.
#include "bench_util.hpp"
#include "core/densities.hpp"
#include "sim/rng.hpp"

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  using namespace txc;
  using namespace txc::core;
  bench::banner(
      "Ablation — P(abort | remaining time D) for the mean-constrained "
      "densities (k = 2, B = 1000)",
      "requestor aborts is less likely to abort: its density mass sits "
      "later (p_RA(B) ~ 2.4/B > p_RW(B) ~ 1.8/B)");

  const double B = 1000.0;
  const LogMeanWinsDensity rw{B};
  const ExpMeanAbortsDensity ra{B, 2};

  std::printf("density at the end of the support (x B):\n");
  std::printf("  requestor wins : p(B) * B = %.4f (paper: ln2/(ln4-1) = 1.794)\n",
              rw.pdf(B) * B);
  std::printf("  requestor aborts: p(B) * B = %.4f (paper: (e-1)/(e-2) = 2.392)\n\n",
              ra.pdf(B) * B);

  bench::Table table{{"D/B", "P(abort) RW", "P(abort) RA", "RA advantage"}};
  table.print_header();
  for (const double frac : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double D = frac * B;
    // Abort iff the drawn grace period x <= D.
    const double rw_abort = rw.cdf(D);
    const double ra_abort = ra.cdf(D);
    table.print_row({bench::fmt(frac, 2), bench::fmt(rw_abort, 4),
                     bench::fmt(ra_abort, 4),
                     bench::fmt(rw_abort - ra_abort, 4)});
  }

  // Monte-Carlo cross-check at D = 0.9 B.
  sim::Rng rng{5};
  int rw_aborts = 0;
  int ra_aborts = 0;
  const int trials = txc::bench::scaled(200000);
  const double D = 0.9 * B;
  for (int i = 0; i < trials; ++i) {
    rw_aborts += (rw.sample(rng) <= D);
    ra_aborts += (ra.sample(rng) <= D);
  }
  std::printf("\nMonte-Carlo at D = 0.9B: RW %.4f, RA %.4f (match the CDF "
              "columns above)\n",
              static_cast<double>(rw_aborts) / trials,
              static_cast<double>(ra_aborts) / trials);
  return 0;
}
