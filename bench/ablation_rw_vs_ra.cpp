// Ablation — requestor wins vs requestor aborts as the conflict chain grows
// (Section 5.3 and the "Implications" discussion in Section 1: "requestor
// aborts is more efficient under low contention, whereas requestor wins is
// more efficient when conflicts involve more than two transactions"; a
// hybrid should alternate between the two).
#include "bench_util.hpp"
#include "core/densities.hpp"

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  using namespace txc;
  using namespace txc::core;
  bench::banner(
      "Ablation — RW vs RA competitive ratios across chain length k",
      "RA wins at k = 2 (e/(e-1) < 2); RW's optimal power density "
      "overtakes as k grows (r/(r-1) -> e/(e-1) from 1.8 at k=3, while "
      "RA's q/(q-1) ~ k); the hybrid takes the min");

  bench::Table table{{"k", "RW uniform", "RW power", "RA exp", "DET RW",
                      "hybrid", "winner"}};
  table.print_header();
  for (const int k : {2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    const double rw_uniform = ratio_rand_wins_uniform(k);
    const double rw_power = ratio_rand_wins_power(k);
    const double ra = ratio_rand_aborts(k);
    const double det = ratio_det_wins(k);
    const double hybrid = std::min(rw_power, ra);
    table.print_row({std::to_string(k), bench::fmt(rw_uniform, 4),
                     bench::fmt(rw_power, 4), bench::fmt(ra, 4),
                     bench::fmt(det, 4), bench::fmt(hybrid, 4),
                     ra <= rw_power ? "RA" : "RW"});
  }

  std::printf(
      "\nMean-constrained comparison at mu/B = 0.1 (both thresholds hold):\n");
  bench::Table constrained{{"k", "RRW(mu)", "RRA(mu)", "winner"}};
  constrained.print_header();
  const double B = 1000.0;
  const double mu = 100.0;
  for (const int k : {2, 3, 4, 8, 16}) {
    const double rw = ratio_rand_wins_mean(k, B, mu);
    const double ra = ratio_rand_aborts_mean(k, B, mu);
    constrained.print_row({std::to_string(k), bench::fmt(rw, 4),
                           bench::fmt(ra, 4), ra <= rw ? "RA" : "RW"});
  }
  return 0;
}
