// Scheduler-adversarial tail latency — the tail figure family: the full
// arbiter roster on both STM substrates, oversubscribed (threads >> the
// cpuset the whole pool is pinned to) while src/adversary's preemption
// adversary injects faults: targeted dwells inside the commit-time kill
// windows (TL2 with its write set locked, NOrec holding the odd seqlock),
// SIGUSR1 pulses that deschedule victim threads at arbitrary points, and
// forced stalls in the arbitration spin loop.
//
// This is the regime the paper's "practically wait-free" argument is
// actually about: under a cooperative scheduler the protocol's vulnerable
// windows are nanoseconds wide and every policy looks alike; a real
// (adversarial) scheduler parks a committer *inside* the window, and the
// policy decides who eats the stall — waiters sit it out (Grace(NONE)
// waits forever), sacrifice themselves (DET_A/RRA after their grace
// period), or kill the stalled committer and recover the substrate
// (requestor-wins flavors, the seniority managers).  That choice is
// invisible in throughput and dominant in the completion-time tail, so the
// figure reports p50/p99/p999/max per arbiter x substrate x
// oversubscription factor, plus the interventions that produced them:
// kills delivered, grace grants expired, and committer-stall recoveries.
//
// Completion time = one full atomically() call (all retries included),
// recorded in cycles into core::LatencyHistogram and calibrated to
// microseconds.  Every run ends with a conservation audit: the workload is
// pure two-cell swaps, so the cell-value sum and xor are invariants — a
// run that breaks them under fault injection is a correctness bug, not a
// performance data point.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adversary/preempt.hpp"
#include "bench_util.hpp"
#include "conflict/adaptive.hpp"
#include "conflict/grace.hpp"
#include "conflict/injection.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using conflict::ConflictArbiter;

// Workload shape: a small hot cell array (every transaction is a two-cell
// swap, so conflicts are the norm, not the exception) on a deliberately
// tiny cpuset.
constexpr std::size_t kCells = 64;
constexpr std::size_t kCpus = 1;  // pool cpuset; oversubscription = threads/1
constexpr std::size_t kOversubscription[] = {4, 16};

struct RunResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  std::uint64_t txs = 0;
  std::uint64_t kills = 0;       // kills delivered (StmStats::remote_kills)
  std::uint64_t expired = 0;     // grace grants expired (ArbiterProbe)
  std::uint64_t recoveries = 0;  // committer-stall recoveries (StmStats)
  std::uint64_t stalls = 0;      // adversary dwells (hook + signal)
  bool conserved = false;
};

/// One adversarial run: `threads` workers (all inheriting a kCpus-wide
/// cpuset) each complete `ops` swap transactions while the preemption
/// adversary runs; every worker is a signal-storm victim.
template <typename Substrate>
RunResult run_tail(const std::shared_ptr<const ConflictArbiter>& inner,
                   std::size_t threads, std::uint64_t ops,
                   double cycles_per_us) {
  const auto probe = std::make_shared<adversary::ArbiterProbe>(inner);
  Substrate stm{probe};
  std::vector<stm::Cell> cells(kCells);
  std::uint64_t sum_before = 0;
  std::uint64_t xor_before = 0;
  for (std::size_t index = 0; index < kCells; ++index) {
    cells[index].value.store(index + 1, std::memory_order_relaxed);
    sum_before += index + 1;
    xor_before ^= index + 1;
  }

  adversary::AdversaryConfig config;
  config.seed = txc::bench::seed(7) * 2654435761ULL + threads;
  config.yield_storm_threads = 1;
  adversary::PreemptionAdversary preempt{config};
  core::LatencyHistogram histogram;

  // Workers inherit the restricted mask from the spawning thread: restrict,
  // spawn, restore.  On a machine with fewer CPUs than kCpus the cpuset
  // clamps and the oversubscription factor simply grows.
  adversary::ScopedCpuset cpuset{kCpus};
  preempt.start();
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t worker = 0; worker < threads; ++worker) {
    workers.emplace_back([&, worker] {
      adversary::PreemptionAdversary::ScopedVictim victim{preempt};
      sim::Rng rng{config.seed ^ (0x9E3779B97F4A7C15ULL * (worker + 1))};
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (std::uint64_t op = 0; op < ops; ++op) {
        const std::size_t a = rng.uniform_below(kCells);
        std::size_t b = rng.uniform_below(kCells);
        if (b == a) b = (a + 1) % kCells;
        const std::uint64_t begin = core::cycle_now();
        stm.atomically([&](typename Substrate::TxContext& tx) {
          const std::uint64_t value_a = tx.read(cells[a]);
          const std::uint64_t value_b = tx.read(cells[b]);
          tx.write(cells[a], value_b);
          tx.write(cells[b], value_a);
        });
        histogram.record(core::cycle_now() - begin);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  preempt.stop();

  std::uint64_t sum_after = 0;
  std::uint64_t xor_after = 0;
  for (const stm::Cell& cell : cells) {
    const std::uint64_t value = Substrate::read_committed(cell);
    sum_after += value;
    xor_after ^= value;
  }

  const auto& stats = stm.stats();
  const auto& injected = preempt.stats();
  RunResult result;
  result.p50_us = static_cast<double>(histogram.quantile(0.50)) / cycles_per_us;
  result.p99_us = static_cast<double>(histogram.quantile(0.99)) / cycles_per_us;
  result.p999_us =
      static_cast<double>(histogram.quantile(0.999)) / cycles_per_us;
  result.max_us =
      static_cast<double>(histogram.max_recorded()) / cycles_per_us;
  result.txs = histogram.count();
  result.kills = stats.remote_kills.load(std::memory_order_relaxed);
  result.expired = probe->grants_expired();
  result.recoveries = stats.kill_recoveries.load(std::memory_order_relaxed);
  result.stalls = injected.hook_stalls.load(std::memory_order_relaxed) +
                  injected.signal_stalls.load(std::memory_order_relaxed);
  result.conserved = sum_after == sum_before && xor_after == xor_before;
  return result;
}

struct Contender {
  std::string label;
  std::function<std::shared_ptr<const ConflictArbiter>()> make;
};

/// The standard 9-arbiter roster (mirrors bench/kv_service.cpp), as
/// factories: each run gets a *fresh* arbiter so learned state and probe
/// counters never leak between runs.
std::vector<Contender> roster() {
  using core::StrategyKind;
  const auto grace = [](StrategyKind kind) {
    return [kind]() -> std::shared_ptr<const ConflictArbiter> {
      return std::make_shared<conflict::GraceArbiter>(core::make_policy(kind));
    };
  };
  const auto manager = [](conflict::CmKind kind) {
    return [kind]() -> std::shared_ptr<const ConflictArbiter> {
      return conflict::make_cm(kind);
    };
  };
  std::vector<Contender> result;
  result.push_back({"Grace(NONE)", grace(StrategyKind::kNoDelay)});
  result.push_back({"Grace(DET_A)", grace(StrategyKind::kDetAborts)});
  result.push_back({"Grace(RRA)", grace(StrategyKind::kRandAborts)});
  result.push_back({"Grace(DET_W)", grace(StrategyKind::kDetWins)});
  result.push_back({"Grace(HYBRID)", grace(StrategyKind::kHybrid)});
  result.push_back({"Karma", manager(conflict::CmKind::kKarma)});
  result.push_back({"Greedy", manager(conflict::CmKind::kGreedy)});
  result.push_back({"Polka", manager(conflict::CmKind::kPolka)});
  result.push_back({"ADAPTIVE", [] {
                      return std::make_shared<conflict::AdaptiveArbiter>();
                    }});
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Completion-time tails under a scheduler adversary — the arbiter "
      "roster on TL2 and NOrec, oversubscribed on a restricted cpuset with "
      "preemption fault injection (commit-window dwells, SIGUSR1 "
      "deschedule pulses, yield churn)",
      "Grace(NONE) never gives up on a stalled committer, so its p999/max "
      "stretch toward the injected stall lengths; bounded-grace arbiters "
      "(DET_A/RRA) cap the wait by sacrificing the waiter, and "
      "requestor-wins flavors plus the seniority managers (DET_W, HYBRID, "
      "Karma, Greedy, Polka) kill the stalled committer outright — their "
      "kills and recoveries columns are nonzero and their tails compress.  "
      "Conservation must hold for every row; `conserved=no` is a bug");

  if (!conflict::injection_hooks_compiled()) {
    std::printf(
        "injection hooks compiled out (TXC_ADVERSARY_HOOKS=OFF): the "
        "adversary can only oversubscribe, not target protocol windows\n");
  }
  const std::uint64_t kOps = txc::bench::scaled(std::uint64_t{1200});
  const double cycles_per_us = txc::bench::calibrate_cycles_per_us();
  const std::size_t online = adversary::online_cpus();
  std::printf(
      "calibration: %.1f cycles/us; cpuset %zu of %zu online CPUs; %llu "
      "swap transactions per worker\n",
      cycles_per_us, std::min<std::size_t>(kCpus, online), online,
      static_cast<unsigned long long>(kOps));

  for (const std::size_t factor : kOversubscription) {
    const std::size_t threads =
        factor * std::min<std::size_t>(kCpus, online);
    std::printf("\n--- oversubscription %zux: %zu workers on a %zu-CPU "
                "cpuset ---\n",
                factor, threads, std::min<std::size_t>(kCpus, online));
    txc::bench::Table table{{"arbiter", "substrate", "threads", "p50us",
                             "p99us", "p999us", "maxus", "kills", "expired",
                             "recov", "conserved"},
                            12};
    table.print_header();
    for (const Contender& contender : roster()) {
      const auto print = [&](const char* substrate, const RunResult& run) {
        table.print_row({contender.label, substrate, std::to_string(threads),
                         txc::bench::fmt(run.p50_us, 1),
                         txc::bench::fmt(run.p99_us, 1),
                         txc::bench::fmt(run.p999_us, 1),
                         txc::bench::fmt(run.max_us, 1),
                         txc::bench::fmt_sci(static_cast<double>(run.kills)),
                         txc::bench::fmt_sci(static_cast<double>(run.expired)),
                         txc::bench::fmt_sci(
                             static_cast<double>(run.recoveries)),
                         run.conserved ? "yes" : "NO"});
        if (!run.conserved) {
          std::fprintf(stderr,
                       "tail_adversary: conservation audit FAILED "
                       "(%s, %s, %zu threads)\n",
                       contender.label.c_str(), substrate, threads);
          std::exit(1);
        }
      };
      print("TL2", run_tail<stm::Stm>(contender.make(), threads, kOps,
                                      cycles_per_us));
      print("NOrec", run_tail<stm::Norec>(contender.make(), threads, kOps,
                                          cycles_per_us));
    }
  }
  return 0;
}
