// Transactional allocation — the alloc roster figure: the pool-backed
// transactional structures (ds/tx_queue, ds/tx_stack — nodes from a TxPool
// registered as a region, tx_alloc/tx_free with speculative semantics and
// epoch-based reclamation) against the lock-free originals they wrap
// (lockfree::MichaelScottQueue, lockfree::TreiberStack), across the full
// arbiter roster on both STM substrates, swept over parallelism (one
// comparison table per thread count).
//
// What to read off the table: the lock-free baselines bound what a
// CAS-per-op structure does without transactional composability; the
// transactional rows price that composability (every op is a full
// transaction whose node alloc/free commits or vanishes with it) and show
// how much of the gap the arbiter choice recovers under contention.  The
// recycles column counts aborted attempts' allocations taken back without
// ever entering reclamation; reclaimed counts freed nodes that completed
// the epoch grace and returned to the free lists — a healthy run keeps
// both moving without ever touching the process heap (the zero-allocation
// gate lives in tests/test_stm_alloc.cpp).
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "conflict/adaptive.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "ds/tx_queue.hpp"
#include "ds/tx_stack.hpp"
#include "lockfree/queue.hpp"
#include "lockfree/stack.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using conflict::ConflictArbiter;

struct CellResult {
  double mops = 0.0;           // successful structure ops per wall second
  std::uint64_t commits = 0;   // substrate commits ("-" rows: 0)
  std::uint64_t aborts = 0;
  std::uint64_t recycles = 0;  // aborted attempts' allocs taken back
  std::uint64_t reclaimed = 0; // frees that completed the epoch grace
};

/// Mixed enqueue/dequeue (or push/pop) pairs from every thread; ops that
/// fail cleanly (exhaustion while the grace drains, pop on empty) are not
/// counted.  Returns successful ops and the elapsed wall clock.
template <typename Structure>
std::pair<std::uint64_t, double> run_pairs(Structure& structure, int threads,
                                           int pairs_per_thread) {
  std::vector<std::uint64_t> ok_ops(static_cast<std::size_t>(threads), 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&structure, &ok_ops, t, pairs_per_thread] {
      std::uint64_t ok = 0;
      for (int i = 0; i < pairs_per_thread; ++i) {
        if (structure.produce(static_cast<std::uint64_t>(i) + 1)) ++ok;
        if (structure.consume()) ++ok;
      }
      ok_ops[static_cast<std::size_t>(t)] = ok;
    });
  }
  for (auto& worker : workers) worker.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::uint64_t total = 0;
  for (const std::uint64_t ok : ok_ops) total += ok;
  return {total, seconds};
}

// Thin produce/consume adapters so one driver runs all six structures.
template <typename Substrate>
struct TxQueueAdapter {
  ds::TxMichaelScottQueue<Substrate> queue;
  TxQueueAdapter(Substrate& stm, std::size_t capacity)
      : queue{stm, capacity} {}
  bool produce(std::uint64_t value) { return queue.enqueue(value); }
  bool consume() { return queue.dequeue().has_value(); }
  mem::TxPool& pool() { return queue.pool(); }
};

template <typename Substrate>
struct TxStackAdapter {
  ds::TxTreiberStack<Substrate> stack;
  TxStackAdapter(Substrate& stm, std::size_t capacity)
      : stack{stm, capacity} {}
  bool produce(std::uint64_t value) { return stack.push(value); }
  bool consume() { return stack.pop().has_value(); }
  mem::TxPool& pool() { return stack.pool(); }
};

struct LockfreeQueueAdapter {
  lockfree::MichaelScottQueue queue;
  explicit LockfreeQueueAdapter(std::size_t capacity) : queue{capacity} {}
  bool produce(std::uint64_t value) { return queue.enqueue(value); }
  bool consume() { return queue.dequeue().has_value(); }
};

struct LockfreeStackAdapter {
  lockfree::TreiberStack stack;
  explicit LockfreeStackAdapter(std::size_t capacity) : stack{capacity} {}
  bool produce(std::uint64_t value) { return stack.push(value); }
  bool consume() { return stack.pop().has_value(); }
};

template <typename Substrate, typename Adapter>
CellResult run_transactional(
    const std::shared_ptr<const ConflictArbiter>& arbiter, int threads,
    int pairs_per_thread, std::size_t capacity) {
  Substrate stm{arbiter};
  Adapter adapter{stm, capacity};
  const auto [ops, seconds] = run_pairs(adapter, threads, pairs_per_thread);
  CellResult result;
  result.mops = static_cast<double>(ops) / (seconds * 1e6);
  result.commits = stm.stats().commits.load();
  result.aborts = stm.stats().aborts.load();
  result.recycles = adapter.pool().stats().abort_recycles.load();
  result.reclaimed = adapter.pool().stats().reclaimed.load();
  return result;
}

template <typename Adapter>
CellResult run_lockfree(int threads, int pairs_per_thread,
                        std::size_t capacity) {
  Adapter adapter{capacity};
  const auto [ops, seconds] = run_pairs(adapter, threads, pairs_per_thread);
  CellResult result;
  result.mops = static_cast<double>(ops) / (seconds * 1e6);
  return result;
}

struct Contender {
  std::string label;
  std::shared_ptr<const ConflictArbiter> arbiter;
};

std::vector<Contender> roster() {
  using core::StrategyKind;
  const auto grace = [](StrategyKind kind) {
    return std::make_shared<conflict::GraceArbiter>(core::make_policy(kind));
  };
  std::vector<Contender> result;
  result.push_back({"Grace(NONE)", grace(StrategyKind::kNoDelay)});
  result.push_back({"Grace(RRA)", grace(StrategyKind::kRandAborts)});
  result.push_back({"Grace(HYBRID)", grace(StrategyKind::kHybrid)});
  result.push_back({"Karma", conflict::make_cm(conflict::CmKind::kKarma)});
  result.push_back({"Greedy", conflict::make_cm(conflict::CmKind::kGreedy)});
  result.push_back({"Polka", conflict::make_cm(conflict::CmKind::kPolka)});
  result.push_back({"ADAPTIVE",
                    std::make_shared<conflict::AdaptiveArbiter>()});
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Transactional allocation — pool-backed tx queue/stack vs the "
      "lock-free originals, across the arbiter roster on TL2 and NOrec",
      "every transactional op allocates or frees a node inside its "
      "transaction: tx_alloc recycles on abort, tx_free publishes only "
      "after commit write-back, and reclamation waits out the epoch grace "
      "so no in-flight reader can dereference a recycled node.  The "
      "lock-free rows are the composability-free upper bound; the "
      "transactional rows price atomic multi-op composition on top of the "
      "same arena.  Compare within a sweep point; recycles/reclaimed show "
      "the abort and grace traffic the pool absorbed without heap calls");

  const int kSweep[] = {2, 4, 8};
  const int kPairsPerThread = txc::bench::scaled(15000);
  constexpr std::size_t kCapacity = 4096;

  for (const int threads : kSweep) {
    std::printf("\n--- %d threads ---\n", threads);
    txc::bench::Table table{{"arbiter", "structure", "threads", "Mops/s",
                             "commits", "aborts", "recycles", "reclaimed"}};
    table.print_header();
    const auto print = [&](const std::string& arbiter, const char* structure,
                           const CellResult& cell) {
      table.print_row(
          {arbiter, structure, std::to_string(threads),
           txc::bench::fmt(cell.mops, 2),
           txc::bench::fmt_sci(static_cast<double>(cell.commits)),
           txc::bench::fmt_sci(static_cast<double>(cell.aborts)),
           txc::bench::fmt_sci(static_cast<double>(cell.recycles)),
           txc::bench::fmt_sci(static_cast<double>(cell.reclaimed))});
    };
    print("(lock-free)", "MS-queue",
          run_lockfree<LockfreeQueueAdapter>(threads, kPairsPerThread,
                                             kCapacity));
    print("(lock-free)", "Treiber",
          run_lockfree<LockfreeStackAdapter>(threads, kPairsPerThread,
                                             kCapacity));
    for (const Contender& contender : roster()) {
      print(contender.label, "TL2-queue",
            run_transactional<stm::Stm, TxQueueAdapter<stm::Stm>>(
                contender.arbiter, threads, kPairsPerThread, kCapacity));
      print(contender.label, "TL2-stack",
            run_transactional<stm::Stm, TxStackAdapter<stm::Stm>>(
                contender.arbiter, threads, kPairsPerThread, kCapacity));
      print(contender.label, "NOrec-queue",
            run_transactional<stm::Norec, TxQueueAdapter<stm::Norec>>(
                contender.arbiter, threads, kPairsPerThread, kCapacity));
      print(contender.label, "NOrec-stack",
            run_transactional<stm::Norec, TxStackAdapter<stm::Norec>>(
                contender.arbiter, threads, kPairsPerThread, kCapacity));
    }
  }
  return 0;
}
