// Micro-benchmark (google-benchmark) — per-conflict decision latency of each
// policy.  The paper notes the uniform requestor-wins strategy "may lend
// itself to simple implementation in real systems"; this quantifies the
// sampling cost of every strategy so implementers can compare.
#include <benchmark/benchmark.h>

#include "core/policy.hpp"

namespace {

using namespace txc::core;

void bench_policy(benchmark::State& state, StrategyKind kind, int chain,
                  bool with_mean) {
  const auto policy = make_policy(kind, 100.0);
  txc::sim::Rng rng{42};
  ConflictContext context;
  context.abort_cost = 2000.0;
  context.chain_length = chain;
  if (with_mean) context.mean_hint = 300.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->grace_period(context, rng));
  }
}

}  // namespace

BENCHMARK_CAPTURE(bench_policy, no_delay, StrategyKind::kNoDelay, 2, false);
BENCHMARK_CAPTURE(bench_policy, det_wins, StrategyKind::kDetWins, 2, false);
BENCHMARK_CAPTURE(bench_policy, rand_wins_uniform_k2, StrategyKind::kRandWins,
                  2, false);
BENCHMARK_CAPTURE(bench_policy, rand_wins_uniform_k8, StrategyKind::kRandWins,
                  8, false);
BENCHMARK_CAPTURE(bench_policy, rand_wins_power_k8,
                  StrategyKind::kRandWinsPower, 8, false);
BENCHMARK_CAPTURE(bench_policy, rand_wins_mean_k2_numeric_inverse,
                  StrategyKind::kRandWinsMean, 2, true);
BENCHMARK_CAPTURE(bench_policy, rand_aborts_closed_form,
                  StrategyKind::kRandAborts, 2, false);
BENCHMARK_CAPTURE(bench_policy, rand_aborts_mean_numeric_inverse,
                  StrategyKind::kRandAbortsMean, 2, true);
BENCHMARK_CAPTURE(bench_policy, hybrid_k2, StrategyKind::kHybrid, 2, true);
BENCHMARK_CAPTURE(bench_policy, hybrid_k8, StrategyKind::kHybrid, 8, true);

BENCHMARK_MAIN();
