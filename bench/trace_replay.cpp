// Ablation — offline policy replay on recorded conflict traces.
//
// Records the grace-decision points (B, k, D) of contended simulator runs,
// then evaluates every strategy on the *identical* conflict sequence with
// the Section-4 cost model.  Unlike the live Figure-3 runs — where each
// policy steers the system into different conflicts — replay isolates pure
// decision quality, and the exact per-record OPT turns the competitive
// ratios into directly measurable regret.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"
#include "workload/replay.hpp"

namespace {

using namespace txc;
using workload::ConflictSample;

std::vector<ConflictSample> record(std::shared_ptr<htm::Workload> workload,
                                   std::uint64_t commits) {
  htm::HtmConfig config;
  config.cores = 16;
  config.policy = core::make_policy(core::StrategyKind::kRandWins);
  config.record_conflicts = true;
  config.seed = 2024;
  htm::HtmSystem system{config, std::move(workload)};
  (void)system.run(commits);
  std::vector<ConflictSample> trace;
  trace.reserve(system.conflict_trace().size());
  for (const htm::ConflictRecord& rec : system.conflict_trace()) {
    trace.push_back({rec.abort_cost, rec.chain_length, rec.remaining});
  }
  return trace;
}

void report(const char* title, const std::vector<ConflictSample>& trace) {
  std::printf("\n%s — %zu recorded conflicts\n", title, trace.size());
  txc::bench::Table table{{"strategy", "mean-cost", "cost/OPT",
                           "guarantee"}};
  table.print_header();
  struct Row {
    core::StrategyKind kind;
    const char* bound;
  };
  const Row rows[] = {
      {core::StrategyKind::kNoDelay, "-"},
      {core::StrategyKind::kDetWins, "<= 3"},
      {core::StrategyKind::kRandWins, "<= 2"},
      {core::StrategyKind::kRandWinsPower, "<= r/(r-1)"},
      {core::StrategyKind::kHybrid, "min(RW,RA)"},
  };
  for (const Row& row : rows) {
    const auto policy = core::make_policy(row.kind);
    const workload::ReplayResult result =
        workload::replay_trace(*policy, trace, 99, 48);
    table.print_row({core::to_string(row.kind),
                     txc::bench::fmt(result.mean_cost(), 1),
                     txc::bench::fmt(result.ratio_vs_optimal(), 3),
                     row.bound});
  }
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Ablation — offline replay of recorded conflict traces (16 cores)",
      "on identical conflict sequences every strategy respects its analytic "
      "bound (RRW <= 2x OPT, DET <= 3x OPT); delays beat NO_DELAY whenever "
      "recorded remaining times are short relative to B, which is the "
      "common case for the stable-length workloads");

  report("Transactional application (uniform lengths)",
         record(std::make_shared<ds::TxAppWorkload>(),
                txc::bench::scaled(30000)));
  report("Bimodal application (short/very long)",
         record(std::make_shared<ds::BimodalTxAppWorkload>(16),
                txc::bench::scaled(8000)));
  report("Stack (short, stable)",
         record(std::make_shared<ds::StackWorkload>(16),
                txc::bench::scaled(30000)));
  return 0;
}
