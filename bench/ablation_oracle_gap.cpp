// Ablation — the price of being online.
//
// The paper's competitive ratios bound the gap between the online grace-
// period decisions and the offline optimum that knows each transaction's
// remaining time (Sections 4-6).  This ablation measures that gap end to
// end in the HTM simulator: ORACLE (remaining-time hints), the online
// strategies, the profiler-fed mean-constrained strategy, and the
// self-calibrating DELAY_ADAPTIVE — on stable-length and bimodal workloads.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

struct Row {
  const char* label;
  core::StrategyKind kind;
  bool oracle_hints = false;
  bool profiler_mean = false;
};

HtmStats run_one(const Row& row, bool bimodal, std::uint64_t target) {
  HtmConfig config;
  config.cores = 16;
  config.policy = core::make_policy(row.kind);
  config.oracle_hints = row.oracle_hints;
  config.use_profiler_mean = row.profiler_mean;
  config.seed = 777;
  std::shared_ptr<Workload> workload;
  if (bimodal) {
    workload = std::make_shared<ds::BimodalTxAppWorkload>(config.cores);
  } else {
    workload = std::make_shared<ds::TxAppWorkload>();
  }
  HtmSystem system{config, std::move(workload)};
  return system.run(target);
}

}  // namespace

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  txc::bench::banner(
      "Ablation — oracle vs online policies (16 cores)",
      "ORACLE sets the ceiling; RRW stays within its 2x conflict-cost "
      "guarantee of it in throughput terms; the profiler-fed RRW(mu) and the "
      "self-calibrating DELAY_ADAPTIVE close part of the gap on stable "
      "lengths, while on bimodal lengths adaptivity degrades gracefully and "
      "static tuning collapses (Figure 3's bimodal story)");

  const Row rows[] = {
      {"ORACLE", core::StrategyKind::kOracle, /*oracle=*/true, false},
      {"NO_DELAY", core::StrategyKind::kNoDelay, false, false},
      {"DELAY_DET", core::StrategyKind::kDetWins, false, false},
      {"DELAY_RAND", core::StrategyKind::kRandWins, false, false},
      {"RRW(mu)", core::StrategyKind::kRandWinsMean, false, /*mean=*/true},
      {"DELAY_ADAPTIVE", core::StrategyKind::kAdaptiveTuned, false, false},
  };

  for (const bool bimodal : {false, true}) {
    std::printf("\n%s transaction lengths:\n",
                bimodal ? "Bimodal (short/very long)" : "Uniform (stable)");
    txc::bench::Table table{{"strategy", "ops/s", "vs-oracle", "abort%",
                             "mean-tx-cyc"}};
    table.print_header();
    double oracle_ops = 0.0;
    for (const Row& row : rows) {
      const auto stats = run_one(row, bimodal, txc::bench::scaled(40000));
      const double ops = stats.ops_per_second();
      if (row.kind == core::StrategyKind::kOracle) oracle_ops = ops;
      table.print_row({row.label, txc::bench::fmt_sci(ops),
                       oracle_ops > 0.0
                           ? txc::bench::fmt(ops / oracle_ops, 3)
                           : "-",
                       txc::bench::fmt(100.0 * stats.abort_rate(), 1),
                       txc::bench::fmt(stats.mean_tx_cycles, 0)});
    }
  }
  return 0;
}
