// Corollary 1 — global competitiveness of the sum of running times under the
// Section 6 adversarial conflict game: the online ratio must stay below
// (2w + 1)/(w + 1), where w is the offline waste.
#include "bench_util.hpp"
#include "core/policy.hpp"
#include "workload/adversary.hpp"

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  using namespace txc;
  using namespace txc::workload;
  bench::banner(
      "Corollary 1 — sum-of-running-times ratio vs the offline optimum",
      "online/offline <= (2w+1)/(w+1) <= 2 for the randomized requestor-wins "
      "strategy, across contention levels and chain lengths");

  bench::Table table{{"conflict-p", "chains", "w(S)", "bound", "RRW ratio",
                      "DET ratio", "NO_DELAY"}};
  table.print_header();
  for (const double conflict_probability : {0.2, 0.5, 0.8, 0.95}) {
    for (const int max_chain : {2, 4}) {
      GameConfig config;
      config.transactions = txc::bench::scaled(4000);
      config.conflict_probability = conflict_probability;
      config.min_chain = 2;
      config.max_chain = max_chain;
      const auto schedule = plan_adversary(config);
      const auto offline = play_offline_optimum(
          schedule, core::ResolutionMode::kRequestorWins, config);
      const double waste =
          offline.sum_conflict_cost / offline.sum_commit_cost;
      const double bound = corollary1_bound(offline);
      const auto ratio_for = [&](core::StrategyKind kind) {
        const auto policy = core::make_policy(kind);
        const auto online = play_game(schedule, *policy, config);
        return online.sum_running_time() / offline.sum_running_time();
      };
      table.print_row({bench::fmt(conflict_probability, 2),
                       "2-" + std::to_string(max_chain), bench::fmt(waste, 3),
                       bench::fmt(bound, 3),
                       bench::fmt(ratio_for(core::StrategyKind::kRandWins), 3),
                       bench::fmt(ratio_for(core::StrategyKind::kDetWins), 3),
                       bench::fmt(ratio_for(core::StrategyKind::kNoDelay), 3)});
    }
  }
  std::printf("\nNote: the Corollary 1 guarantee covers the randomized RW "
              "strategy; DET and NO_DELAY columns are shown for contrast and "
              "may exceed the bound.\n");
  return 0;
}
