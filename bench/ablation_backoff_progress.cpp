// Corollary 2 — probabilistic progress with multiplicative backoff of the
// abort cost (Section 7): a transaction of run time y suffering gamma
// conflicts per attempt commits within
//   log2 y + log2 gamma + log2 k - log2 B + 2
// attempts with probability at least 1/2.
#include "bench_util.hpp"
#include "workload/adversary.hpp"

int main(int argc, char** argv) {
  txc::bench::init(argc, argv);
  using namespace txc;
  using namespace txc::workload;
  bench::banner(
      "Corollary 2 — attempts to commit under doubling abort cost",
      "the fraction committing within the corollary's attempt budget is "
      ">= 0.5 in every configuration");

  bench::Table table{{"y", "gamma", "B0", "budget", "mean att.", "p95 att.",
                      "P(within)"}};
  table.print_header();
  for (const double run_time : {100.0, 400.0, 1600.0}) {
    for (const std::size_t gamma : {std::size_t{2}, std::size_t{8}}) {
      for (const double initial_cost : {8.0, 64.0}) {
        ProgressConfig config;
        config.run_time = run_time;
        config.conflicts_per_attempt = gamma;
        config.initial_abort_cost = initial_cost;
        config.trials = txc::bench::scaled(4000);
        const auto result = run_progress_experiment(config);
        table.print_row({bench::fmt(run_time, 0), std::to_string(gamma),
                         bench::fmt(initial_cost, 0),
                         bench::fmt(result.corollary_budget, 2),
                         bench::fmt(result.attempts_mean, 2),
                         bench::fmt(result.attempts_p95, 1),
                         bench::fmt(result.within_budget_fraction, 3)});
      }
    }
  }
  return 0;
}
