// Cross-validation of the paper's closed forms by the numeric minimax
// solver: the solver knows only the Section-4 cost model, so agreement on
// game value and distribution shape independently confirms Theorems 1, 3,
// 5 and 6 (unconstrained corners).
#include "core/numeric_opt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.hpp"

namespace {

using namespace txc::core;

MinimaxConfig config_for(ResolutionMode mode, int k, double B = 100.0) {
  MinimaxConfig config;
  config.mode = mode;
  config.chain_length = k;
  config.abort_cost = B;
  return config;
}

TEST(Minimax, SolutionIsADistribution) {
  const MinimaxSolution solution =
      solve_minimax(config_for(ResolutionMode::kRequestorWins, 2));
  double total = 0.0;
  for (std::size_t i = 0; i < solution.pdf.size(); ++i) {
    EXPECT_GE(solution.pdf[i], 0.0);
    total += solution.pdf[i] * solution.cell_width;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(solution.cdf.back(), 1.0, 1e-9);
}

TEST(Minimax, RequestorWinsK2ValueIsTwo) {
  // Theorem 5: the optimal requestor-wins strategy at k = 2 is uniform on
  // [0, B] with competitive ratio 2.
  const MinimaxSolution solution =
      solve_minimax(config_for(ResolutionMode::kRequestorWins, 2));
  EXPECT_NEAR(solution.game_value, 2.0, 0.08);
}

TEST(Minimax, RequestorWinsK2ShapeIsUniform) {
  const MinimaxConfig config = config_for(ResolutionMode::kRequestorWins, 2);
  const MinimaxSolution solution = solve_minimax(config);
  const UniformWinsDensity closed{config.abort_cost, config.chain_length};
  // Sup-distance between CDFs at the quartiles of the support.
  for (const double frac : {0.25, 0.5, 0.75}) {
    const double x = frac * closed.support_max();
    EXPECT_NEAR(solution.cdf_at(x), closed.cdf(x), 0.08)
        << "at x = " << x;
  }
}

TEST(Minimax, RequestorAbortsK2ValueIsEOverEMinusOne) {
  // Theorem 1: classic ski rental, e/(e-1) ~ 1.582.
  const MinimaxSolution solution =
      solve_minimax(config_for(ResolutionMode::kRequestorAborts, 2));
  EXPECT_NEAR(solution.game_value, std::exp(1.0) / (std::exp(1.0) - 1.0),
              0.06);
}

TEST(Minimax, RequestorAbortsK2ShapeIsExponential) {
  const MinimaxConfig config = config_for(ResolutionMode::kRequestorAborts, 2);
  const MinimaxSolution solution = solve_minimax(config);
  const ExpAbortsDensity closed{config.abort_cost, config.chain_length};
  for (const double frac : {0.25, 0.5, 0.75}) {
    const double x = frac * closed.support_max();
    EXPECT_NEAR(solution.cdf_at(x), closed.cdf(x), 0.08) << "at x = " << x;
  }
}

class MinimaxChains : public ::testing::TestWithParam<int> {};

TEST_P(MinimaxChains, RequestorWinsValueMatchesTheorem6) {
  const int k = GetParam();
  const MinimaxSolution solution =
      solve_minimax(config_for(ResolutionMode::kRequestorWins, k));
  EXPECT_NEAR(solution.game_value, ratio_rand_wins_power(k), 0.08)
      << "k = " << k;
}

TEST_P(MinimaxChains, RequestorWinsShapeMatchesPowerDensity) {
  const int k = GetParam();
  if (k == 2) GTEST_SKIP() << "k = 2 covered by the uniform-shape test";
  const MinimaxConfig config = config_for(ResolutionMode::kRequestorWins, k);
  const MinimaxSolution solution = solve_minimax(config);
  const PowerWinsDensity closed{config.abort_cost, k};
  for (const double frac : {0.25, 0.5, 0.75}) {
    const double x = frac * closed.support_max();
    EXPECT_NEAR(solution.cdf_at(x), closed.cdf(x), 0.09)
        << "k = " << k << ", x = " << x;
  }
}

TEST_P(MinimaxChains, RequestorAbortsValueMatchesTheorem3) {
  const int k = GetParam();
  const MinimaxSolution solution =
      solve_minimax(config_for(ResolutionMode::kRequestorAborts, k));
  EXPECT_NEAR(solution.game_value, ratio_rand_aborts(k), 0.08) << "k = " << k;
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, MinimaxChains,
                         ::testing::Values(2, 3, 4, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(Minimax, ClosedFormScoresNoWorseThanNumericOnTheSameGrid) {
  // The discretized closed form must achieve (up to grid error) the same
  // worst-case ratio the solver found — i.e. the solver did not discover a
  // better strategy than the paper's.
  for (const int k : {2, 3, 4}) {
    const MinimaxConfig config = config_for(ResolutionMode::kRequestorWins, k);
    const MinimaxSolution numeric = solve_minimax(config);
    const PowerWinsDensity closed{config.abort_cost, k};
    const double closed_ratio =
        grid_worst_ratio(config, discretize(closed, config));
    EXPECT_NEAR(closed_ratio, numeric.game_value, 0.1) << "k = " << k;
  }
}

TEST(Minimax, ValueInvariantToAbortCostScale) {
  // The competitive ratio is scale-free in B; the solver must agree.
  const MinimaxSolution small =
      solve_minimax(config_for(ResolutionMode::kRequestorWins, 3, 10.0));
  const MinimaxSolution large =
      solve_minimax(config_for(ResolutionMode::kRequestorWins, 3, 5000.0));
  EXPECT_NEAR(small.game_value, large.game_value, 0.05);
}

TEST(Minimax, DeterministicAcrossRuns) {
  const MinimaxConfig config = config_for(ResolutionMode::kRequestorWins, 2);
  const MinimaxSolution a = solve_minimax(config);
  const MinimaxSolution b = solve_minimax(config);
  EXPECT_EQ(a.game_value, b.game_value);
  EXPECT_EQ(a.pdf, b.pdf);
}

TEST(Minimax, FinerGridsDoNotDegrade) {
  MinimaxConfig coarse = config_for(ResolutionMode::kRequestorAborts, 2);
  coarse.policy_points = 60;
  coarse.adversary_points = 60;
  MinimaxConfig fine = coarse;
  fine.policy_points = 240;
  fine.adversary_points = 240;
  fine.rounds = 240000;
  const double target = std::exp(1.0) / (std::exp(1.0) - 1.0);
  const double coarse_err =
      std::abs(solve_minimax(coarse).game_value - target);
  const double fine_err = std::abs(solve_minimax(fine).game_value - target);
  EXPECT_LE(fine_err, coarse_err + 0.02);
}

}  // namespace
