// Scheduler-adversary machinery: the injection-hook gate, the preemption
// adversary, and the kill-protocol-under-preemption proofs the tail figure
// rests on.  The centerpiece is the staged-committer test: a *real* NOrec
// committer thread is parked inside its odd-seqlock window by a gate hook
// (the deterministic stand-in for "the scheduler preempted the committer
// mid-commit" — per-thread SIGSTOP does not exist on Linux, see
// docs/REPRODUCING.md), a waiter's arbiter kills it from outside, and the
// victim provably recovers: seqlock restored, kill_recoveries counted, the
// retry commits.  The stochastic tests then run the full adversary
// (SIGUSR1 storms, hook dwells, yield churn) over oversubscribed swap
// workloads on both substrates and re-assert the conservation audits.
//
// Scale the stochastic depth with TXC_STRESS_DEPTH (default 1), alongside
// test_spin_stress and test_kv.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/preempt.hpp"
#include "conflict/injection.hpp"
#include "conflict/managers.hpp"
#include "kv/service.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

// White-box access to NOrec's seqlock / committer slot (declared a friend
// of Norec and NorecTx by *name*, so this binary may define its own peek —
// same pattern as tests/test_conflict_arbiter.cpp).
namespace txc::stm {
struct NorecTestPeek {
  static std::atomic<std::uint64_t>& seqlock(Norec& norec) {
    return norec.seqlock_;
  }
  static std::atomic<TxDescriptor*>& committer(Norec& norec) {
    return norec.committer_;
  }
  static NorecTx make_tx(Norec& norec, std::uint32_t attempt,
                         std::uint64_t snapshot, TxDescriptor* descriptor,
                         TxBuffers* buffers) {
    return NorecTx{norec, attempt, snapshot, descriptor, buffers};
  }
  static std::optional<std::uint64_t> await_even(Norec& norec, NorecTx& tx) {
    return norec.await_even(tx);
  }
};
}  // namespace txc::stm

namespace {

using namespace txc;
using adversary::AdversaryConfig;
using adversary::ArbiterProbe;
using adversary::PreemptionAdversary;
using adversary::ScopedCpuset;
using conflict::ConflictArbiter;
using conflict::ConflictView;
using conflict::Decision;
using conflict::HookPoint;
using stm::NorecTestPeek;
using stm::TxDescriptor;
using stm::TxStatus;

int stress_depth() {
  if (const char* env = std::getenv("TXC_STRESS_DEPTH")) {
    const int depth = std::atoi(env);
    if (depth > 0) return depth;
  }
  return 1;
}

constexpr auto kDeadline = std::chrono::seconds(30);

// ---------------------------------------------------------------------------
// The hook gate
// ---------------------------------------------------------------------------

class CountingHook final : public conflict::InjectionHook {
 public:
  void on_hook(HookPoint point) noexcept override {
    calls[static_cast<std::size_t>(point)].fetch_add(
        1, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t> calls[conflict::kHookPointCount] = {};
};

TEST(InjectionGate, InstallFireUninstall) {
  CountingHook hook;
  ASSERT_EQ(conflict::exchange_injection_hook(&hook), nullptr)
      << "another test leaked an installed hook";
  conflict::maybe_hook(HookPoint::kSpinWait);
  conflict::maybe_hook(HookPoint::kNorecOddWindow);
  conflict::uninstall_injection_hook();
  // After the quiescing uninstall nothing fires.
  conflict::maybe_hook(HookPoint::kSpinWait);
  if (conflict::injection_hooks_compiled()) {
    EXPECT_EQ(hook.calls[0].load(), 1u);
    EXPECT_EQ(hook.calls[2].load(), 1u);
  } else {
    EXPECT_EQ(hook.calls[0].load(), 0u);
  }
  EXPECT_EQ(hook.calls[1].load(), 0u);
}

TEST(InjectionGate, UninstalledGateIsInert) {
  // No hook installed: the call sites must be no-ops, not crashes.
  conflict::maybe_hook(HookPoint::kTl2CommitLocked);
  conflict::maybe_hook(HookPoint::kNorecOddWindow);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// ArbiterProbe
// ---------------------------------------------------------------------------

/// Scripted inner arbiter: kill once, then always give up; every feedback
/// is forwarded.
class ScriptedArbiter final : public ConflictArbiter {
 public:
  [[nodiscard]] Decision decide(const ConflictView&,
                                sim::Rng&) const override {
    if (!kill_spent_.exchange(true)) return Decision::kAbortEnemy;
    return Decision::kAbortSelf;
  }
  void feedback(const core::ConflictOutcome&) const noexcept override {
    feedbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::string name() const override { return "Scripted"; }
  mutable std::atomic<bool> kill_spent_{false};
  mutable std::atomic<std::uint64_t> feedbacks_{0};
};

TEST(ArbiterProbe, CountsVerdictsAndExpiredGrants) {
  const auto inner = std::make_shared<ScriptedArbiter>();
  ArbiterProbe probe{inner};
  ConflictView view;
  sim::Rng rng{42};
  EXPECT_EQ(probe.decide(view, rng), Decision::kAbortEnemy);
  EXPECT_EQ(probe.decide(view, rng), Decision::kAbortSelf);
  EXPECT_EQ(probe.decide(view, rng), Decision::kAbortSelf);
  EXPECT_EQ(probe.kills_requested(), 1u);
  EXPECT_EQ(probe.self_sacrifices(), 2u);
  // Expired grants are feedbacks with committed == false; successful waits
  // do not count.
  probe.feedback({/*committed=*/true, 100.0, 50.0, 2});
  probe.feedback({/*committed=*/false, 100.0, 100.0, 2});
  probe.feedback({/*committed=*/false, 100.0, 100.0, 2});
  EXPECT_EQ(probe.grants_expired(), 2u);
  EXPECT_EQ(inner->feedbacks_.load(), 3u) << "probe must forward feedback";
  EXPECT_EQ(probe.name(), "Scripted");
}

// ---------------------------------------------------------------------------
// Cpuset helpers
// ---------------------------------------------------------------------------

TEST(ScopedCpuset, ClampsAndRestores) {
  const std::size_t before = adversary::online_cpus();
  ASSERT_GE(before, 1u);
  {
    ScopedCpuset cpuset{1};
    EXPECT_EQ(cpuset.effective(), 1u);
    EXPECT_EQ(adversary::online_cpus(), 1u);
    // Requests beyond the restricted mask clamp to it.
    ScopedCpuset nested{1024};
    EXPECT_EQ(nested.effective(), 1u);
  }
  EXPECT_EQ(adversary::online_cpus(), before) << "mask must restore on exit";
  // A zero request is treated as one CPU, never an empty mask.
  ScopedCpuset zero{0};
  EXPECT_EQ(zero.effective(), 1u);
}

// ---------------------------------------------------------------------------
// The staged committer: killed inside the odd window under "preemption",
// recovers, retries, commits.
// ---------------------------------------------------------------------------

/// Parks the first thread that reaches kNorecOddWindow until released —
/// the deterministic emulation of the scheduler descheduling a committer
/// inside its kill window.
class GateHook final : public conflict::InjectionHook {
 public:
  void on_hook(HookPoint point) noexcept override {
    if (point != HookPoint::kNorecOddWindow) return;
    if (armed_.exchange(false, std::memory_order_acq_rel)) {
      parked_.store(true, std::memory_order_release);
      while (!released_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  }
  [[nodiscard]] bool parked() const noexcept {
    return parked_.load(std::memory_order_acquire);
  }
  void release() noexcept {
    released_.store(true, std::memory_order_release);
  }

 private:
  std::atomic<bool> armed_{true};
  std::atomic<bool> parked_{false};
  std::atomic<bool> released_{false};
};

TEST(PreemptedCommitter, NorecOddWindowKillRecoversAndRetries) {
  if (!conflict::injection_hooks_compiled()) {
    GTEST_SKIP() << "built with TXC_ADVERSARY_HOOKS=OFF";
  }
  // Karma kills the lower-credit party: the committer earns ~1 credit from
  // its single read, the waiter below claims 10.
  stm::Norec norec{conflict::make_cm(conflict::CmKind::kKarma)};
  stm::Cell cell;

  GateHook gate;
  ASSERT_EQ(conflict::exchange_injection_hook(&gate), nullptr);

  std::thread committer{[&] {
    norec.atomically([&](stm::NorecTx& tx) {
      tx.write(cell, tx.read(cell) + 1);
    });
  }};

  // Wait until the committer is provably parked inside the window: seqlock
  // odd, descriptor published, kill window still open.
  const auto deadline = std::chrono::steady_clock::now() + kDeadline;
  while (!gate.parked() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "committer never reached the odd window";
  ASSERT_EQ(NorecTestPeek::seqlock(norec).load() & 1, 1u);
  TxDescriptor* const victim = NorecTestPeek::committer(norec).load();
  ASSERT_NE(victim, nullptr);
  ASSERT_EQ(victim->load_status(), TxStatus::kActive)
      << "kill window must still be open while parked";

  // A waiter arbitrates against the parked committer; Karma's credit
  // comparison grants the kill with zero cooperation from the victim.
  TxDescriptor self;
  self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  self.priority.store(10);
  std::optional<std::uint64_t> resumed;
  std::thread waiter{[&] {
    stm::TxBuffers buffers;
    stm::NorecTx tx = NorecTestPeek::make_tx(norec, /*attempt=*/0,
                                             /*snapshot=*/0, &self, &buffers);
    resumed = NorecTestPeek::await_even(norec, tx);
  }};
  bool kill_landed = true;
  while (victim->load_status() != TxStatus::kAborted) {
    if (std::chrono::steady_clock::now() > deadline) {
      kill_landed = false;
      break;
    }
    std::this_thread::yield();
  }

  // Un-preempt the victim: it must observe the kill at its status CAS,
  // unwind the odd excursion, and retry to a commit.
  gate.release();
  committer.join();
  waiter.join();
  conflict::uninstall_injection_hook();

  ASSERT_TRUE(kill_landed) << "waiter's arbiter never killed the committer";
  ASSERT_TRUE(resumed.has_value())
      << "waiter must resume once the victim restores the seqlock";
  EXPECT_EQ(*resumed % 2, 0u);
  EXPECT_EQ(norec.stats().remote_kills.load(), 1u);
  EXPECT_EQ(norec.stats().kill_recoveries.load(), 1u)
      << "the killed committer must recover from inside the odd window";
  EXPECT_EQ(norec.stats().commits.load(), 1u);
  EXPECT_EQ(norec.stats().aborts.load(), 1u);
  EXPECT_EQ(stm::Norec::read_committed(cell), 1u)
      << "the retry after recovery must land exactly one increment";
  EXPECT_EQ(NorecTestPeek::seqlock(norec).load() & 1, 0u);
  EXPECT_EQ(NorecTestPeek::committer(norec).load(), nullptr);
}

// ---------------------------------------------------------------------------
// Full-adversary conservation runs
// ---------------------------------------------------------------------------

/// Oversubscribed swap workload on `stm` with the full adversary running;
/// returns whether the cell sum/xor invariants held.
template <typename Substrate>
void run_adversarial_swaps() {
  constexpr std::size_t kCells = 32;
  const std::size_t threads = 8;
  const int ops = 150 * stress_depth();

  Substrate stm{conflict::make_cm(conflict::CmKind::kKarma)};
  std::vector<stm::Cell> cells(kCells);
  std::uint64_t sum_before = 0;
  std::uint64_t xor_before = 0;
  for (std::size_t index = 0; index < kCells; ++index) {
    cells[index].value.store(index + 1);
    sum_before += index + 1;
    xor_before ^= index + 1;
  }

  AdversaryConfig config;
  config.seed = 0xADBE5ULL;
  config.stall_us = 100;         // keep the suite snappy
  config.signal_stall_us = 100;
  config.yield_storm_threads = 1;
  PreemptionAdversary preempt{config};
  ScopedCpuset cpuset{1};  // workers inherit: everything lands on one CPU
  preempt.start();
  std::vector<std::thread> workers;
  for (std::size_t worker = 0; worker < threads; ++worker) {
    workers.emplace_back([&, worker] {
      PreemptionAdversary::ScopedVictim victim{preempt};
      sim::Rng rng{0xFEEDULL * (worker + 1)};
      for (int op = 0; op < ops; ++op) {
        const std::size_t a = rng.uniform_below(kCells);
        std::size_t b = rng.uniform_below(kCells);
        if (b == a) b = (a + 1) % kCells;
        stm.atomically([&](typename Substrate::TxContext& tx) {
          const std::uint64_t value_a = tx.read(cells[a]);
          const std::uint64_t value_b = tx.read(cells[b]);
          tx.write(cells[a], value_b);
          tx.write(cells[b], value_a);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  preempt.stop();

  std::uint64_t sum_after = 0;
  std::uint64_t xor_after = 0;
  for (const stm::Cell& cell : cells) {
    sum_after += Substrate::read_committed(cell);
    xor_after ^= Substrate::read_committed(cell);
  }
  EXPECT_EQ(sum_after, sum_before) << "swaps must conserve the value sum";
  EXPECT_EQ(xor_after, xor_before) << "swaps must conserve the value xor";
  EXPECT_EQ(stm.stats().commits.load(),
            static_cast<std::uint64_t>(threads) * ops);
  // Kills landing on committers inside their windows unwound cleanly; on a
  // single substrate recoveries never exceed kills.
  EXPECT_LE(stm.stats().kill_recoveries.load(),
            stm.stats().remote_kills.load());
  if (conflict::injection_hooks_compiled()) {
    std::uint64_t hook_calls = 0;
    for (const auto& counter : preempt.stats().hook_calls) {
      hook_calls += counter.load(std::memory_order_relaxed);
    }
    EXPECT_GT(hook_calls, 0u)
        << "a contended oversubscribed run must cross the hook seams";
  }
}

TEST(AdversarialSwaps, Tl2ConservesUnderPreemption) {
  run_adversarial_swaps<stm::Stm>();
}

TEST(AdversarialSwaps, NorecConservesUnderPreemption) {
  run_adversarial_swaps<stm::Norec>();
}

// ---------------------------------------------------------------------------
// KvService under adversarial scheduling
// ---------------------------------------------------------------------------

template <typename Substrate>
void run_adversarial_kv_service() {
  using Service = kv::KvService<Substrate>;
  constexpr std::uint32_t kKeys = 64;
  typename Service::Config config;
  config.store.shards = 4;
  config.store.capacity_per_shard = 64;
  config.queue_capacity = 1024;
  config.max_batch = 8;
  Service service{config,
                  conflict::make_cm(conflict::CmKind::kKarma)};
  for (std::uint32_t key = 1; key <= kKeys; ++key) {
    ASSERT_EQ(service.store().put_sync(key, key), kv::OpStatus::kOk);
  }

  AdversaryConfig adversary_config;
  adversary_config.seed = 0x5E41CEULL;
  adversary_config.stall_us = 100;
  adversary_config.signal_stall_us = 100;
  PreemptionAdversary preempt{adversary_config};
  preempt.start();

  // Restrict, start the service (workers inherit the one-CPU mask: the
  // shard workers are now oversubscribed 4-to-1), restore for the clients.
  {
    ScopedCpuset cpuset{1};
    service.start();
  }
  const int kClients = 2;
  const int requests_each = 300 * stress_depth();
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &accepted, &preempt, c, requests_each] {
      PreemptionAdversary::ScopedVictim victim{preempt};
      sim::Rng rng{0xD15Cull * (c + 1)};
      for (int i = 0; i < requests_each; ++i) {
        kv::Request request;
        request.op = kv::OpKind::kSwap;
        request.key_a = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
        request.key_b = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
        if (request.key_b == request.key_a) {
          request.key_b = (request.key_a % kKeys) + 1;
        }
        if (service.submit(request)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  service.stop();  // must drain every accepted request despite injection
  preempt.stop();

  const auto& stats = service.service_stats();
  EXPECT_EQ(stats.submitted.load(), accepted.load());
  EXPECT_EQ(stats.completed.load(), accepted.load())
      << "stop() must drain under the adversary too";
  EXPECT_EQ(stats.submitted.load() + stats.rejected.load(),
            static_cast<std::uint64_t>(kClients) * requests_each);
  core::LatencyHistogram merged;
  service.merge_latency(merged);
  EXPECT_EQ(merged.count(), stats.completed.load());

  // Conservation through the service path: swaps only permute values.
  std::uint64_t expected_sum = 0;
  for (std::uint32_t v = 1; v <= kKeys; ++v) expected_sum += v;
  EXPECT_EQ(service.store().value_sum_sync(), expected_sum);
  EXPECT_EQ(service.store().size_sync(), kKeys);
}

TEST(AdversarialKvService, Tl2DrainsAndConserves) {
  run_adversarial_kv_service<stm::Stm>();
}

TEST(AdversarialKvService, NorecDrainsAndConserves) {
  run_adversarial_kv_service<stm::Norec>();
}

}  // namespace
