// Unit tests for the deterministic RNG: reproducibility, range contracts, and
// the first two moments of every distribution the workloads rely on.
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/stats.hpp"

namespace {

using txc::sim::Rng;
using txc::sim::RunningStats;

TEST(Rng, SameSeedSameSequence) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a{77};
  const auto first = a();
  a.reseed(77);
  EXPECT_EQ(a(), first);
}

TEST(Rng, Uniform01InRange) {
  Rng rng{5};
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng{6};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 9.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 9.0);
  }
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng{8};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformBelowZeroAndOne) {
  Rng rng{9};
  EXPECT_EQ(rng.uniform_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{10};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng{11};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(42.0));
  EXPECT_NEAR(stats.mean(), 42.0, 0.5);
  // Exponential variance = mean^2.
  EXPECT_NEAR(stats.variance(), 42.0 * 42.0, 42.0 * 42.0 * 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng{12};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, GeometricMeanMatchesInverseP) {
  Rng rng{13};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i)
    stats.add(static_cast<double>(rng.geometric(0.02)));
  EXPECT_NEAR(stats.mean(), 50.0, 1.0);
  EXPECT_GE(stats.min(), 1.0);
}

TEST(Rng, GeometricDegenerateP) {
  Rng rng{14};
  EXPECT_EQ(rng.geometric(1.0), 1u);
  EXPECT_EQ(rng.geometric(1.5), 1u);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng{15};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i)
    stats.add(static_cast<double>(rng.poisson(4.0)));
  EXPECT_NEAR(stats.mean(), 4.0, 0.05);
  EXPECT_NEAR(stats.variance(), 4.0, 0.2);
}

TEST(Rng, PoissonLargeMeanUsesSplitPath) {
  Rng rng{16};
  RunningStats stats;
  for (int i = 0; i < 50000; ++i)
    stats.add(static_cast<double>(rng.poisson(500.0)));
  EXPECT_NEAR(stats.mean(), 500.0, 2.0);
  EXPECT_NEAR(stats.variance(), 500.0, 25.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng{17};
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{18};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent{19};
  Rng child_a = parent.split();
  Rng child_b = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (child_a() == child_b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
