// Unit tests for the L1 cache (transactional bits, LRU, eviction reporting)
// and the MSI directory (state transitions and protocol invariants).
#include "mem/cache.hpp"
#include "mem/directory.hpp"

#include <gtest/gtest.h>

namespace {

using namespace txc::mem;

TEST(L1Cache, MissThenHit) {
  L1Cache cache;
  EXPECT_EQ(cache.find(42), nullptr);
  auto inserted = cache.insert(42);
  ASSERT_NE(inserted.slot, nullptr);
  EXPECT_FALSE(inserted.evicted_valid);
  inserted.slot->state = LineState::kShared;
  ASSERT_NE(cache.find(42), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(L1Cache, LruEvictionWithinSet) {
  L1Cache cache{CacheConfig{.sets = 1, .ways = 2}};
  cache.insert(1).slot->state = LineState::kShared;
  auto second = cache.insert(2);
  second.slot->state = LineState::kShared;
  (void)cache.find(1);  // touch 1 so 2 becomes LRU
  const auto third = cache.insert(3);
  EXPECT_TRUE(third.evicted_valid);
  EXPECT_EQ(third.evicted_line, 2u);
  EXPECT_FALSE(third.evicted_transactional);
}

TEST(L1Cache, TransactionalEvictionReported) {
  L1Cache cache{CacheConfig{.sets = 1, .ways = 1}};
  auto first = cache.insert(1);
  first.slot->state = LineState::kModified;
  first.slot->tx_write = true;
  const auto second = cache.insert(2);
  EXPECT_TRUE(second.evicted_transactional);
  EXPECT_EQ(second.evicted_line, 1u);
  EXPECT_EQ(cache.stats().tx_evictions, 1u);
}

TEST(L1Cache, CommitClearsBitsKeepsData) {
  L1Cache cache;
  auto entry = cache.insert(7);
  entry.slot->state = LineState::kModified;
  entry.slot->tx_write = true;
  cache.commit_transaction();
  const CacheLine* line = cache.find(7);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, LineState::kModified);
  EXPECT_FALSE(line->transactional());
}

TEST(L1Cache, AbortInvalidatesTransactionalLinesOnly) {
  L1Cache cache;
  auto tx_line = cache.insert(7);
  tx_line.slot->state = LineState::kModified;
  tx_line.slot->tx_write = true;
  auto plain = cache.insert(9);
  plain.slot->state = LineState::kShared;
  cache.abort_transaction();
  EXPECT_EQ(cache.find(7), nullptr);
  EXPECT_NE(cache.find(9), nullptr);
}

TEST(L1Cache, TransactionalLinesEnumeration) {
  L1Cache cache;
  cache.insert(1).slot->state = LineState::kShared;
  auto line_a = cache.insert(2);
  line_a.slot->state = LineState::kShared;
  line_a.slot->tx_read = true;
  auto line_b = cache.insert(3);
  line_b.slot->state = LineState::kModified;
  line_b.slot->tx_write = true;
  const auto lines = cache.transactional_lines();
  EXPECT_EQ(lines.size(), 2u);
}

TEST(L1Cache, DowngradeModifiedToShared) {
  L1Cache cache;
  auto entry = cache.insert(5);
  entry.slot->state = LineState::kModified;
  cache.downgrade(5);
  EXPECT_EQ(cache.find(5)->state, LineState::kShared);
  cache.downgrade(5);  // idempotent on Shared
  EXPECT_EQ(cache.find(5)->state, LineState::kShared);
}

TEST(Directory, SharedThenModified) {
  Directory directory{4};
  directory.add_sharer(10, 0);
  directory.add_sharer(10, 1);
  EXPECT_EQ(directory.find(10)->state, DirectoryState::kShared);
  EXPECT_EQ(directory.holders_excluding(10, 0).size(), 1u);
  directory.set_owner(10, 2);
  EXPECT_EQ(directory.find(10)->state, DirectoryState::kModified);
  EXPECT_EQ(directory.find(10)->owner, 2u);
  EXPECT_EQ(directory.holders_excluding(10, 2).size(), 0u);
  EXPECT_TRUE(directory.invariants_hold());
}

TEST(Directory, RemoveLastHolderUncaches) {
  Directory directory{4};
  directory.add_sharer(10, 0);
  directory.remove(10, 0);
  EXPECT_EQ(directory.find(10)->state, DirectoryState::kUncached);
  EXPECT_TRUE(directory.invariants_hold());
}

TEST(Directory, OwnerRemovalDemotesToShared) {
  Directory directory{4};
  directory.set_owner(10, 1);
  directory.add_sharer(10, 2);  // read by another core: shared now
  EXPECT_EQ(directory.find(10)->state, DirectoryState::kShared);
  directory.remove(10, 1);
  EXPECT_EQ(directory.find(10)->state, DirectoryState::kShared);
  EXPECT_TRUE(directory.invariants_hold());
}

TEST(Directory, InvariantViolationDetected) {
  Directory directory{4};
  auto& entry = directory.entry(11);
  entry.state = DirectoryState::kModified;
  entry.sharers.set(0);
  entry.sharers.set(1);  // two holders of a Modified line: illegal
  entry.owner = 0;
  EXPECT_FALSE(directory.invariants_hold());
}

}  // namespace
