// Tests of the transactional containers: sequential semantics, boundary
// conditions, and multi-threaded linearizability audits (element
// conservation, snapshot consistency) under both grace policies and classic
// contention managers.
#include "stm/containers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "conflict/managers.hpp"

namespace {

using namespace txc;
using namespace txc::stm;

std::shared_ptr<const core::GracePeriodPolicy> default_policy() {
  return core::make_policy(core::StrategyKind::kRandAborts);
}

// ---------------------------------------------------------------------------
// TxStack
// ---------------------------------------------------------------------------

TEST(TxStack, LifoOrder) {
  Stm stm{default_policy()};
  TxStack stack{stm, 8};
  EXPECT_TRUE(stack.push(1));
  EXPECT_TRUE(stack.push(2));
  EXPECT_TRUE(stack.push(3));
  EXPECT_EQ(stack.pop(), 3u);
  EXPECT_EQ(stack.pop(), 2u);
  EXPECT_EQ(stack.pop(), 1u);
  EXPECT_FALSE(stack.pop().has_value());
}

TEST(TxStack, CapacityBound) {
  Stm stm{default_policy()};
  TxStack stack{stm, 2};
  EXPECT_TRUE(stack.push(1));
  EXPECT_TRUE(stack.push(2));
  EXPECT_FALSE(stack.push(3)) << "full stack must reject";
  EXPECT_EQ(stack.size(), 2u);
}

TEST(TxStack, ConcurrentPushPopConservesElements) {
  Stm stm{default_policy()};
  TxStack stack{stm, 4096};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(t) * kPerThread + i + 1;
        ASSERT_TRUE(stack.push(value));
        if (i % 2 == 1) {
          const auto out = stack.pop();
          ASSERT_TRUE(out.has_value());
          popped_sum.fetch_add(*out);
          popped_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  // Drain and audit: pushed sum == popped sum + remaining sum.
  std::uint64_t remaining_sum = 0;
  std::uint64_t remaining_count = 0;
  while (const auto value = stack.pop()) {
    remaining_sum += *value;
    ++remaining_count;
  }
  std::uint64_t pushed_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      pushed_sum += static_cast<std::uint64_t>(t) * kPerThread + i + 1;
    }
  }
  EXPECT_EQ(popped_count.load() + remaining_count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(popped_sum.load() + remaining_sum, pushed_sum);
}

// ---------------------------------------------------------------------------
// TxQueue
// ---------------------------------------------------------------------------

TEST(TxQueue, FifoOrder) {
  Stm stm{default_policy()};
  TxQueue queue{stm, 8};
  EXPECT_TRUE(queue.enqueue(10));
  EXPECT_TRUE(queue.enqueue(20));
  EXPECT_TRUE(queue.enqueue(30));
  EXPECT_EQ(queue.dequeue(), 10u);
  EXPECT_EQ(queue.dequeue(), 20u);
  EXPECT_EQ(queue.dequeue(), 30u);
  EXPECT_FALSE(queue.dequeue().has_value());
}

TEST(TxQueue, RingWrapsAround) {
  Stm stm{default_policy()};
  TxQueue queue{stm, 3};
  for (std::uint64_t round = 0; round < 10; ++round) {
    EXPECT_TRUE(queue.enqueue(round));
    EXPECT_EQ(queue.dequeue(), round);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TxQueue, CapacityBound) {
  Stm stm{default_policy()};
  TxQueue queue{stm, 2};
  EXPECT_TRUE(queue.enqueue(1));
  EXPECT_TRUE(queue.enqueue(2));
  EXPECT_FALSE(queue.enqueue(3));
  (void)queue.dequeue();
  EXPECT_TRUE(queue.enqueue(3)) << "space freed by dequeue must be reusable";
}

TEST(TxQueue, MpmcPreservesPerProducerOrder) {
  Stm stm{default_policy()};
  TxQueue queue{stm, 1 << 14};
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 3000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kProducers; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Tag: producer in the high bits, sequence in the low bits.
        ASSERT_TRUE(queue.enqueue(
            (static_cast<std::uint64_t>(t) << 32) | static_cast<std::uint32_t>(i)));
      }
    });
  }
  for (auto& worker : workers) worker.join();
  // Single consumer drains; each producer's sequence must appear in order.
  std::vector<std::int64_t> last_seen(kProducers, -1);
  while (const auto value = queue.dequeue()) {
    const auto producer = static_cast<int>(*value >> 32);
    const auto sequence = static_cast<std::int64_t>(*value & 0xFFFFFFFFu);
    EXPECT_GT(sequence, last_seen[static_cast<std::size_t>(producer)]);
    last_seen[static_cast<std::size_t>(producer)] = sequence;
  }
  for (const auto last : last_seen) EXPECT_EQ(last, kPerProducer - 1);
}

// ---------------------------------------------------------------------------
// TxSet
// ---------------------------------------------------------------------------

TEST(TxSet, InsertEraseContains) {
  Stm stm{default_policy()};
  TxSet set{stm, 64};
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(5)) << "duplicate insert must report false";
  EXPECT_TRUE(set.contains(5));
  EXPECT_TRUE(set.erase(5));
  EXPECT_FALSE(set.erase(5));
  EXPECT_FALSE(set.contains(5));
  EXPECT_EQ(set.size(), 0u);
}

TEST(TxSet, SizeTracksMembership) {
  Stm stm{default_policy()};
  TxSet set{stm, 128};
  for (std::uint64_t key = 0; key < 128; key += 2) EXPECT_TRUE(set.insert(key));
  EXPECT_EQ(set.size(), 64u);
  EXPECT_EQ(set.count_range(0, 128), 64u);
  EXPECT_EQ(set.count_range(0, 10), 5u);
}

TEST(TxSet, SnapshotRangeCountIsConsistentUnderChurn) {
  // Writers move one element at a time (erase one key, insert another) while
  // keeping the set size exactly constant; concurrent snapshot counts must
  // never observe an intermediate state.
  Stm stm{conflict::make_cm(conflict::CmKind::kKarma)};
  TxSet set{stm, 256};
  for (std::uint64_t key = 0; key < 64; ++key) {
    ASSERT_TRUE(set.insert(key));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_snapshots{0};
  std::thread churner([&] {
    sim::Rng rng{15};
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t from = rng.uniform_below(256);
      const std::uint64_t to = rng.uniform_below(256);
      stm.atomically([&](Tx&) {});  // separator to vary timing
      // Atomic move: erase+insert in one transaction via the raw API.
      // (Falls back to no-op when the source is absent or target present.)
      if (from != to && set.contains(from) && !set.contains(to)) {
        // Not atomic as two calls — so do it transactionally by erase or
        // insert alone; the invariant audited is monotone size bounds.
        if (set.erase(from)) {
          ASSERT_TRUE(set.insert(to));
        }
      }
    }
    stop = true;
  });
  std::thread auditor([&] {
    while (!stop.load()) {
      const std::uint64_t count = set.count_range(0, 256);
      // erase-then-insert is two transactions, so counts may momentarily be
      // 63 — but never below 63 or above 64.
      if (count < 63 || count > 64) bad_snapshots.fetch_add(1);
    }
  });
  churner.join();
  auditor.join();
  EXPECT_EQ(bad_snapshots.load(), 0u);
  EXPECT_EQ(set.size(), 64u);
}

}  // namespace
