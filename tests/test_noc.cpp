// Unit tests of the 2D mesh NoC: coordinate mapping, XY routing, hop counts,
// pure latency arithmetic, link-level serialization under the contention
// model, traffic accounting, and the auto-fit helper.
#include "noc/mesh.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace txc::noc;

MeshConfig square(std::uint32_t side) {
  MeshConfig config;
  config.width = side;
  config.height = side;
  return config;
}

TEST(MeshGeometry, CoordinateRoundTrip) {
  MeshNoc mesh{square(4)};
  for (TileId tile = 0; tile < mesh.tiles(); ++tile) {
    EXPECT_EQ(mesh.tile_at(mesh.coordinate(tile)), tile);
  }
}

TEST(MeshGeometry, CoordinateLayoutIsRowMajor) {
  MeshNoc mesh{square(4)};
  EXPECT_EQ(mesh.coordinate(0), (Coordinate{0, 0}));
  EXPECT_EQ(mesh.coordinate(3), (Coordinate{3, 0}));
  EXPECT_EQ(mesh.coordinate(4), (Coordinate{0, 1}));
  EXPECT_EQ(mesh.coordinate(15), (Coordinate{3, 3}));
}

TEST(MeshGeometry, HopsIsManhattanDistance) {
  MeshNoc mesh{square(4)};
  EXPECT_EQ(mesh.hops(0, 0), 0u);
  EXPECT_EQ(mesh.hops(0, 3), 3u);   // same row
  EXPECT_EQ(mesh.hops(0, 12), 3u);  // same column
  EXPECT_EQ(mesh.hops(0, 15), 6u);  // opposite corner
  EXPECT_EQ(mesh.hops(5, 10), 2u);
}

TEST(MeshGeometry, HopsIsSymmetric) {
  MeshNoc mesh{square(5)};
  for (TileId a = 0; a < mesh.tiles(); ++a) {
    for (TileId b = a; b < mesh.tiles(); ++b) {
      EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
    }
  }
}

TEST(MeshGeometry, RectangularMeshes) {
  MeshConfig config;
  config.width = 8;
  config.height = 2;
  MeshNoc mesh{config};
  EXPECT_EQ(mesh.tiles(), 16u);
  EXPECT_EQ(mesh.hops(0, 15), 8u);  // 7 east + 1 south
}

TEST(MeshFit, ProducesSquarishMeshes) {
  EXPECT_EQ(MeshNoc::fit(1).width * MeshNoc::fit(1).height, 1u);
  const MeshConfig four = MeshNoc::fit(4);
  EXPECT_EQ(four.width, 2u);
  EXPECT_EQ(four.height, 2u);
  const MeshConfig sixteen = MeshNoc::fit(16);
  EXPECT_EQ(sixteen.width, 4u);
  EXPECT_EQ(sixteen.height, 4u);
  const MeshConfig twelve = MeshNoc::fit(12);
  EXPECT_GE(twelve.width * twelve.height, 12u);
  EXPECT_LE(twelve.width * twelve.height, 16u);
}

TEST(MeshFit, PreservesBaseLatencies) {
  MeshConfig base;
  base.link_latency = 3;
  base.router_latency = 2;
  const MeshConfig fitted = MeshNoc::fit(9, base);
  EXPECT_EQ(fitted.link_latency, 3u);
  EXPECT_EQ(fitted.router_latency, 2u);
}

TEST(MeshRouting, XyPathResolvesXFirst) {
  MeshNoc mesh{square(4)};
  // 0 -> 15: east, east, east, then south, south, south.
  const auto links = mesh.path_links(0, 15);
  ASSERT_EQ(links.size(), 6u);
  // Link ids encode (tile, direction): east = tile*4+0, south = tile*4+3.
  EXPECT_EQ(links[0], 0u * 4 + 0);
  EXPECT_EQ(links[1], 1u * 4 + 0);
  EXPECT_EQ(links[2], 2u * 4 + 0);
  EXPECT_EQ(links[3], 3u * 4 + 3);
  EXPECT_EQ(links[4], 7u * 4 + 3);
  EXPECT_EQ(links[5], 11u * 4 + 3);
}

TEST(MeshRouting, ReversePathUsesOppositeLinks) {
  MeshNoc mesh{square(4)};
  const auto forward = mesh.path_links(0, 5);
  const auto backward = mesh.path_links(5, 0);
  EXPECT_EQ(forward.size(), backward.size());
  const std::set<std::uint32_t> forward_set(forward.begin(), forward.end());
  for (const auto link : backward) {
    EXPECT_FALSE(forward_set.count(link))
        << "directed links must not be shared between directions";
  }
}

TEST(MeshLatency, PureLatencyFormula) {
  MeshConfig config = square(4);
  config.link_latency = 2;
  config.router_latency = 3;
  MeshNoc mesh{config};
  // hops = 0: just the local router.
  EXPECT_EQ(mesh.pure_latency(5, 5), 3u);
  // hops = h: (h+1) routers + h links.
  EXPECT_EQ(mesh.pure_latency(0, 3), 3u * 4 + 2u * 3);
  EXPECT_EQ(mesh.pure_latency(0, 15), 3u * 7 + 2u * 6);
}

TEST(MeshLatency, UncontendedTraverseMatchesPureLatency) {
  MeshConfig config = square(4);
  config.model_contention = true;
  MeshNoc mesh{config};
  // A single message on an idle mesh pays exactly the distance latency.
  EXPECT_EQ(mesh.traverse(0, 15, 1000, MessageClass::kRequest),
            1000 + mesh.pure_latency(0, 15));
}

TEST(MeshLatency, ContentionDisabledIgnoresLoad) {
  MeshConfig config = square(4);
  config.model_contention = false;
  MeshNoc mesh{config};
  const Tick first = mesh.traverse(0, 3, 0, MessageClass::kRequest);
  const Tick second = mesh.traverse(0, 3, 0, MessageClass::kRequest);
  EXPECT_EQ(first, second) << "infinite-bandwidth mesh must not queue";
  EXPECT_EQ(mesh.stats().queueing_cycles, 0u);
}

TEST(MeshContention, BackToBackMessagesSerialize) {
  MeshConfig config = square(4);
  config.occupancy_cycles = 5;
  MeshNoc mesh{config};
  const Tick first = mesh.traverse(0, 1, 0, MessageClass::kRequest);
  const Tick second = mesh.traverse(0, 1, 0, MessageClass::kRequest);
  EXPECT_GT(second, first) << "same-cycle messages on one link must queue";
  EXPECT_GT(mesh.stats().queueing_cycles, 0u);
}

TEST(MeshContention, DisjointPathsDoNotInterfere) {
  MeshConfig config = square(4);
  config.occupancy_cycles = 5;
  MeshNoc mesh{config};
  const Tick a = mesh.traverse(0, 1, 0, MessageClass::kRequest);
  // Row 3 shares no directed link with row 0.
  const Tick b = mesh.traverse(12, 13, 0, MessageClass::kRequest);
  EXPECT_EQ(a, b);
  EXPECT_EQ(mesh.stats().queueing_cycles, 0u);
}

TEST(MeshContention, QueueDrainsOverTime) {
  MeshConfig config = square(2);
  config.occupancy_cycles = 4;
  MeshNoc mesh{config};
  (void)mesh.traverse(0, 1, 0, MessageClass::kRequest);
  // Far enough in the future that the link is free again.
  const Tick later = mesh.traverse(0, 1, 100, MessageClass::kRequest);
  EXPECT_EQ(later, 100 + mesh.pure_latency(0, 1));
}

TEST(MeshStats, MessageClassesCountedSeparately) {
  MeshNoc mesh{square(2)};
  (void)mesh.traverse(0, 1, 0, MessageClass::kRequest);
  (void)mesh.traverse(1, 0, 0, MessageClass::kData);
  (void)mesh.traverse(0, 2, 0, MessageClass::kInvalidation);
  (void)mesh.traverse(2, 0, 0, MessageClass::kNack);
  (void)mesh.traverse(2, 0, 50, MessageClass::kNack);
  const NocStats& stats = mesh.stats();
  EXPECT_EQ(stats.messages[static_cast<std::size_t>(MessageClass::kRequest)], 1u);
  EXPECT_EQ(stats.messages[static_cast<std::size_t>(MessageClass::kData)], 1u);
  EXPECT_EQ(
      stats.messages[static_cast<std::size_t>(MessageClass::kInvalidation)],
      1u);
  EXPECT_EQ(stats.messages[static_cast<std::size_t>(MessageClass::kNack)], 2u);
  EXPECT_EQ(stats.total_messages(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean_hops(), 5.0 / 5.0);
}

TEST(MeshStats, RoundTripCountsBothLegs) {
  MeshNoc mesh{square(4)};
  const Tick arrival = mesh.round_trip(0, 15, 0, MessageClass::kRequest);
  EXPECT_GE(arrival, 2 * mesh.pure_latency(0, 15));
  EXPECT_EQ(mesh.stats().total_messages(), 2u);
  EXPECT_EQ(mesh.stats().total_hops, 12u);
}

TEST(MeshStats, LinkTraversalsTrackHotspots) {
  MeshNoc mesh{square(4)};
  // Hammer one link.
  for (int i = 0; i < 10; ++i) {
    (void)mesh.traverse(0, 1, static_cast<Tick>(i * 100),
                        MessageClass::kRequest);
  }
  EXPECT_EQ(mesh.max_link_traversals(), 10u);
}

TEST(MeshStats, ResetClearsEverything) {
  MeshNoc mesh{square(2)};
  (void)mesh.traverse(0, 3, 0, MessageClass::kRequest);
  mesh.reset_stats();
  EXPECT_EQ(mesh.stats().total_messages(), 0u);
  EXPECT_EQ(mesh.max_link_traversals(), 0u);
  // Busy-until state is cleared too: an immediate message pays pure latency.
  EXPECT_EQ(mesh.traverse(0, 3, 0, MessageClass::kRequest),
            mesh.pure_latency(0, 3));
}

TEST(MeshSingleTile, DegenerateMeshWorks) {
  MeshNoc mesh{square(1)};
  EXPECT_EQ(mesh.tiles(), 1u);
  EXPECT_EQ(mesh.hops(0, 0), 0u);
  EXPECT_EQ(mesh.traverse(0, 0, 7, MessageClass::kRequest),
            7 + mesh.config().router_latency);
}

}  // namespace
