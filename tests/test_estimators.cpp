// Unit and property tests for the online estimators behind the adaptive
// policies: EWMA mean/variance, the P² streaming quantile, and the
// censored-mean estimator.
#include "core/estimators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace {

using namespace txc::core;

// ---------------------------------------------------------------------------
// EwmaEstimator
// ---------------------------------------------------------------------------

TEST(Ewma, FirstSampleIsExact) {
  EwmaEstimator ewma{0.1};
  ewma.add(42.0);
  EXPECT_DOUBLE_EQ(ewma.mean(), 42.0);
  EXPECT_DOUBLE_EQ(ewma.variance(), 0.0);
  EXPECT_EQ(ewma.count(), 1u);
}

TEST(Ewma, ConstantStreamHasZeroVariance) {
  EwmaEstimator ewma{0.2};
  for (int i = 0; i < 100; ++i) ewma.add(7.0);
  EXPECT_DOUBLE_EQ(ewma.mean(), 7.0);
  EXPECT_NEAR(ewma.variance(), 0.0, 1e-12);
}

TEST(Ewma, ConvergesToStationaryMean) {
  txc::sim::Rng rng{11};
  EwmaEstimator ewma{0.05};
  for (int i = 0; i < 5000; ++i) ewma.add(rng.uniform(90.0, 110.0));
  EXPECT_NEAR(ewma.mean(), 100.0, 3.0);
}

TEST(Ewma, TracksPhaseChange) {
  EwmaEstimator ewma{0.1};
  for (int i = 0; i < 200; ++i) ewma.add(10.0);
  // Shift the regime; within ~3/alpha samples the estimate must be close.
  for (int i = 0; i < 60; ++i) ewma.add(100.0);
  EXPECT_GT(ewma.mean(), 90.0);
}

TEST(Ewma, AlphaOneFollowsLastSample) {
  EwmaEstimator ewma{1.0};
  ewma.add(5.0);
  ewma.add(17.0);
  EXPECT_DOUBLE_EQ(ewma.mean(), 17.0);
}

TEST(Ewma, MeanIfReadyGatesOnSampleCount) {
  EwmaEstimator ewma{0.1};
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(ewma.mean_if_ready(5).has_value());
    ewma.add(1.0);
  }
  ewma.add(1.0);
  EXPECT_TRUE(ewma.mean_if_ready(5).has_value());
}

TEST(Ewma, ResetClearsState) {
  EwmaEstimator ewma{0.1};
  ewma.add(3.0);
  ewma.reset();
  EXPECT_EQ(ewma.count(), 0u);
  ewma.add(9.0);
  EXPECT_DOUBLE_EQ(ewma.mean(), 9.0);
}

TEST(Ewma, VarianceReflectsSpread) {
  txc::sim::Rng rng{3};
  EwmaEstimator narrow{0.05};
  EwmaEstimator wide{0.05};
  for (int i = 0; i < 3000; ++i) {
    narrow.add(rng.uniform(99.0, 101.0));
    wide.add(rng.uniform(50.0, 150.0));
  }
  EXPECT_LT(narrow.variance(), wide.variance());
}

// ---------------------------------------------------------------------------
// P2Quantile
// ---------------------------------------------------------------------------

TEST(P2, ExactForFewSamples) {
  P2Quantile p2{0.5};
  p2.add(30.0);
  EXPECT_DOUBLE_EQ(p2.value(), 30.0);
  p2.add(10.0);
  p2.add(20.0);
  // Median of {10, 20, 30} by nearest rank on ceil(0.5*3) = 2nd order stat.
  EXPECT_DOUBLE_EQ(p2.value(), 20.0);
}

TEST(P2, MedianOfUniformStream) {
  txc::sim::Rng rng{17};
  P2Quantile p2{0.5};
  for (int i = 0; i < 20000; ++i) p2.add(rng.uniform(0.0, 1000.0));
  EXPECT_NEAR(p2.value(), 500.0, 25.0);
}

TEST(P2, TailQuantileOfUniformStream) {
  txc::sim::Rng rng{23};
  P2Quantile p90{0.9};
  for (int i = 0; i < 20000; ++i) p90.add(rng.uniform(0.0, 1000.0));
  EXPECT_NEAR(p90.value(), 900.0, 30.0);
}

TEST(P2, ExponentialStreamMedian) {
  txc::sim::Rng rng{5};
  P2Quantile p2{0.5};
  for (int i = 0; i < 30000; ++i) p2.add(rng.exponential(100.0));
  // Median of Exp(mean=100) is 100 ln 2 ≈ 69.3.
  EXPECT_NEAR(p2.value(), 100.0 * std::log(2.0), 5.0);
}

TEST(P2, AgreesWithSortedReference) {
  // Property check across quantiles: P² within a few percent of the exact
  // empirical quantile on a fixed pseudo-random stream.
  txc::sim::Rng rng{99};
  std::vector<double> samples;
  samples.reserve(10000);
  for (int i = 0; i < 10000; ++i) samples.push_back(rng.normal(200.0, 30.0));
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.95}) {
    P2Quantile p2{q};
    for (const double x : samples) p2.add(x);
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const double exact =
        sorted[static_cast<std::size_t>(q * (sorted.size() - 1))];
    EXPECT_NEAR(p2.value(), exact, 0.05 * exact) << "q = " << q;
  }
}

TEST(P2, MonotoneInQuantile) {
  txc::sim::Rng rng{7};
  P2Quantile p25{0.25};
  P2Quantile p50{0.5};
  P2Quantile p75{0.75};
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    p25.add(x);
    p50.add(x);
    p75.add(x);
  }
  EXPECT_LT(p25.value(), p50.value());
  EXPECT_LT(p50.value(), p75.value());
}

TEST(P2, ResetRestartsEstimation) {
  P2Quantile p2{0.5};
  for (int i = 0; i < 100; ++i) p2.add(1000.0);
  p2.reset();
  EXPECT_EQ(p2.count(), 0u);
  p2.add(1.0);
  EXPECT_DOUBLE_EQ(p2.value(), 1.0);
}

// ---------------------------------------------------------------------------
// CensoredMeanEstimator
// ---------------------------------------------------------------------------

TEST(CensoredMean, ExactSamplesBehaveLikeEwma) {
  CensoredMeanEstimator censored{0.1};
  EwmaEstimator plain{0.1};
  for (int i = 0; i < 50; ++i) {
    censored.add_exact(static_cast<double>(i));
    plain.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(censored.mean(), plain.mean());
}

TEST(CensoredMean, InitialMeanUsedBeforeData) {
  CensoredMeanEstimator censored{0.1, 75.0};
  EXPECT_DOUBLE_EQ(censored.mean(), 75.0);
}

TEST(CensoredMean, CensoredSamplesPushEstimateAboveBound) {
  CensoredMeanEstimator censored{0.2, 10.0};
  for (int i = 0; i < 100; ++i) censored.add_censored(50.0);
  // Fixed point of m <- 50 + m diverges; in practice exact samples anchor
  // it, but after pure censoring the estimate must exceed the bound.
  EXPECT_GT(censored.mean(), 50.0);
}

TEST(CensoredMean, MixedStreamDoesNotCollapseToCommittedMean) {
  // True lengths: half are 20 (observed exactly), half are long (>100,
  // censored at 100).  Ignoring censoring would estimate ~20; the corrected
  // estimator must land well above.
  CensoredMeanEstimator censored{0.05, 20.0};
  for (int i = 0; i < 2000; ++i) {
    if (i % 2 == 0) {
      censored.add_exact(20.0);
    } else {
      censored.add_censored(100.0);
    }
  }
  EXPECT_GT(censored.mean(), 60.0);
}

TEST(CensoredMean, ReadyGateCountsBothKinds) {
  CensoredMeanEstimator censored{0.1};
  censored.add_exact(1.0);
  censored.add_censored(2.0);
  censored.add_exact(3.0);
  EXPECT_EQ(censored.count(), 3u);
  EXPECT_TRUE(censored.mean_if_ready(3).has_value());
  EXPECT_FALSE(censored.mean_if_ready(4).has_value());
}

}  // namespace
