// Integration tests of the Figure 2 synthetic experiment: the measured
// average-cost ratios of each strategy must land where Section 8.1 says they
// do ("the cost of RRW and RRA is (almost) exactly 2, respectively e/(e-1)
// times the optimal cost, as predicted").
#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/math.hpp"
#include "core/policy.hpp"

namespace {

using namespace txc::core;
using namespace txc::workload;

SyntheticConfig high_b_config() {
  SyntheticConfig config;
  config.abort_cost = 2000.0;  // Figure 2a
  config.mean = 500.0;
  config.trials = 60000;
  return config;
}

SyntheticConfig low_b_config() {
  SyntheticConfig config;
  config.abort_cost = 200.0;  // Figure 2b
  config.mean = 500.0;
  config.trials = 60000;
  return config;
}

TEST(Synthetic, DetNearOptimalWithHighFixedCost) {
  // Figure 2a observation: with B >> mu and benign distributions DET
  // (almost) never aborts, so its cost is near OPT.
  const auto config = high_b_config();
  const LengthDistribution lengths{LengthShape::kExponential, config.mean};
  const auto policy = make_policy(StrategyKind::kDetWins);
  const auto result = run_synthetic(*policy, lengths, config);
  EXPECT_LT(result.average_ratio(), 1.1);
  EXPECT_LT(result.abort_fraction, 0.02);
}

TEST(Synthetic, RrwPaysAlmostExactlyTwiceOpt) {
  const auto config = high_b_config();
  const LengthDistribution lengths{LengthShape::kUniform, config.mean};
  const auto policy = make_policy(StrategyKind::kRandWins);
  const auto result = run_synthetic(*policy, lengths, config);
  EXPECT_NEAR(result.average_ratio(), 2.0, 0.05);
}

TEST(Synthetic, RraPaysAlmostExactlyEOverEMinusOne) {
  const auto config = high_b_config();
  const LengthDistribution lengths{LengthShape::kUniform, config.mean};
  const auto policy = make_policy(StrategyKind::kRandAborts);
  const auto result = run_synthetic(*policy, lengths, config);
  EXPECT_NEAR(result.average_ratio(), kE / (kE - 1.0), 0.05);
}

TEST(Synthetic, MeanHintImprovesBothFamiliesWithHighB) {
  // Figure 2a observation: RRW(mu) and RRA(mu) beat RRW and RRA because
  // mu/B = 0.25 satisfies both threshold inequalities.
  const auto config = high_b_config();
  ASSERT_LT(config.mean / config.abort_cost, mean_threshold_wins(2));
  for (const auto shape :
       {LengthShape::kGeometric, LengthShape::kExponential,
        LengthShape::kUniform, LengthShape::kNormal, LengthShape::kPoisson}) {
    const LengthDistribution lengths{shape, config.mean};
    const auto rrw = run_synthetic(*make_policy(StrategyKind::kRandWins),
                                   lengths, config);
    const auto rrw_mean = run_synthetic(
        *make_policy(StrategyKind::kRandWinsMean), lengths, config);
    EXPECT_LT(rrw_mean.average_ratio(), rrw.average_ratio())
        << to_string(shape);
    const auto rra = run_synthetic(*make_policy(StrategyKind::kRandAborts),
                                   lengths, config);
    const auto rra_mean = run_synthetic(
        *make_policy(StrategyKind::kRandAbortsMean), lengths, config);
    EXPECT_LT(rra_mean.average_ratio(), rra.average_ratio())
        << to_string(shape);
  }
}

TEST(Synthetic, LowBDegradesDetAndDisablesMeanHint) {
  // Figure 2b: mu/B = 2.5 violates the thresholds, so the constrained
  // strategies coincide with the unconstrained ones; DET aborts often.
  const auto config = low_b_config();
  ASSERT_GT(config.mean / config.abort_cost, mean_threshold_wins(2));
  ASSERT_GT(config.mean / config.abort_cost, mean_threshold_aborts(2));
  const LengthDistribution lengths{LengthShape::kExponential, config.mean};

  const auto det =
      run_synthetic(*make_policy(StrategyKind::kDetWins), lengths, config);
  EXPECT_GT(det.abort_fraction, 0.3);

  const auto rrw =
      run_synthetic(*make_policy(StrategyKind::kRandWins), lengths, config);
  auto mean_config = config;
  const auto rrw_mean = run_synthetic(
      *make_policy(StrategyKind::kRandWinsMean), lengths, mean_config);
  // Same underlying density -> statistically identical ratios.
  EXPECT_NEAR(rrw_mean.average_ratio(), rrw.average_ratio(), 0.03);
}

TEST(Synthetic, RequestorAbortsOutperformsWinsAtKTwo) {
  // Section 5.3 and the Figure 2b discussion: RA variants beat RW variants.
  const auto config = low_b_config();
  const LengthDistribution lengths{LengthShape::kNormal, config.mean};
  const auto rrw =
      run_synthetic(*make_policy(StrategyKind::kRandWins), lengths, config);
  const auto rra =
      run_synthetic(*make_policy(StrategyKind::kRandAborts), lengths, config);
  EXPECT_LT(rra.average_ratio(), rrw.average_ratio());
}

TEST(Synthetic, DetWorstCaseHitsTheorem4Ratio) {
  // Figure 2c: against the adversarial remaining-time distribution DET pays
  // (2 + 1/(k-1)) OPT = 3 OPT at k = 2, while randomized strategies stay at
  // their guaranteed ratios.
  auto config = high_b_config();
  config.trials = 20000;
  const auto det = run_synthetic_det_worst_case(
      *make_policy(StrategyKind::kDetWins), config);
  EXPECT_NEAR(det.average_ratio(), 3.0, 1e-9);

  const auto rrw = run_synthetic_det_worst_case(
      *make_policy(StrategyKind::kRandWins), config);
  EXPECT_LT(rrw.average_ratio(), 2.05);

  const auto rra = run_synthetic_det_worst_case(
      *make_policy(StrategyKind::kRandAborts), config);
  EXPECT_LT(rra.average_ratio(), kE / (kE - 1.0) + 0.05);
}

TEST(Synthetic, HybridMatchesAbortsAtKTwo) {
  const auto config = high_b_config();
  const LengthDistribution lengths{LengthShape::kExponential, config.mean};
  const auto hybrid =
      run_synthetic(*make_policy(StrategyKind::kHybrid), lengths, config);
  const auto rra = run_synthetic(*make_policy(StrategyKind::kRandAbortsMean),
                                 lengths, config);
  EXPECT_NEAR(hybrid.average_ratio(), rra.average_ratio(), 0.03);
}

TEST(Synthetic, DeterministicSeedReproducibility) {
  const auto config = high_b_config();
  const LengthDistribution lengths{LengthShape::kGeometric, config.mean};
  const auto policy = make_policy(StrategyKind::kRandWins);
  const auto a = run_synthetic(*policy, lengths, config);
  const auto b = run_synthetic(*policy, lengths, config);
  EXPECT_DOUBLE_EQ(a.strategy_cost.sum(), b.strategy_cost.sum());
  EXPECT_DOUBLE_EQ(a.abort_fraction, b.abort_fraction);
}

TEST(Synthetic, LengthDistributionMeans) {
  txc::sim::Rng rng{33};
  for (const auto shape :
       {LengthShape::kGeometric, LengthShape::kNormal, LengthShape::kUniform,
        LengthShape::kExponential, LengthShape::kPoisson}) {
    const LengthDistribution lengths{shape, 500.0};
    txc::sim::RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.add(lengths.sample(rng));
    EXPECT_NEAR(stats.mean(), 500.0, 10.0) << to_string(shape);
    EXPECT_GE(stats.min(), 1.0) << to_string(shape);
  }
}

TEST(Synthetic, BimodalDistributionHasTwoModes) {
  txc::sim::Rng rng{34};
  const LengthDistribution lengths{LengthShape::kBimodal, 500.0};
  int shorts = 0;
  int longs = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = lengths.sample(rng);
    if (v < 100.0) ++shorts;
    if (v > 900.0) ++longs;
  }
  EXPECT_NEAR(shorts, 5000, 300);
  EXPECT_NEAR(longs, 5000, 300);
}

}  // namespace
