// Integration tests of the HTM simulator: atomicity/isolation end to end,
// coherence invariants, conflict-resolution behavior in both modes, the
// grace-period machinery, capacity and cycle aborts, the non-transactional
// fallback, and determinism.
#include "htm/htm.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/policy.hpp"
#include "ds/workloads.hpp"

namespace {

using namespace txc;
using namespace txc::htm;

HtmConfig base_config(std::uint32_t cores, core::StrategyKind kind,
                      double tuned = 0.0) {
  HtmConfig config;
  config.cores = cores;
  config.policy = core::make_policy(kind, tuned);
  config.seed = 99;
  return config;
}

TEST(Htm, SingleCoreCommitsEverything) {
  auto config = base_config(1, core::StrategyKind::kNoDelay);
  auto workload = std::make_shared<ds::CounterWorkload>();
  HtmSystem system{config, workload};
  const auto stats = system.run(500);
  EXPECT_EQ(stats.commits, 500u);
  EXPECT_EQ(stats.aborts, 0u);
  EXPECT_EQ(system.memory_value(workload->counter_line()), 500u);
  EXPECT_TRUE(system.coherence_invariants_hold());
}

TEST(Htm, CounterIsAtomicUnderMaxContention) {
  // The committed counter value must equal the number of commits — lost
  // updates or dirty reads would break the equality.
  for (const auto kind :
       {core::StrategyKind::kNoDelay, core::StrategyKind::kRandWins,
        core::StrategyKind::kDetWins}) {
    auto config = base_config(8, kind);
    auto workload = std::make_shared<ds::CounterWorkload>();
    HtmSystem system{config, workload};
    const auto stats = system.run(2000);
    EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits)
        << core::to_string(kind);
    EXPECT_EQ(stats.commits, 2000u);
    EXPECT_TRUE(system.coherence_invariants_hold());
  }
}

TEST(Htm, ContentionCausesAbortsWithNoDelay) {
  auto config = base_config(8, core::StrategyKind::kNoDelay);
  auto workload = std::make_shared<ds::CounterWorkload>();
  HtmSystem system{config, workload};
  const auto stats = system.run(2000);
  EXPECT_GT(stats.aborts, 0u);
  EXPECT_GT(stats.conflicts, 0u);
}

TEST(Htm, GracePeriodsReduceAborts) {
  // The central claim of the paper, in miniature: allowing delays instead of
  // immediate aborts cuts the abort rate under contention (Figure 3's
  // transactional application, where conflicting pairs can both commit).
  const auto run_with = [](core::StrategyKind kind) {
    auto config = base_config(8, kind);
    config.abort_penalty = 80;
    config.abort_cost_cleanup = 80.0;
    HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
    return system.run(24000);
  };
  const auto no_delay_stats = run_with(core::StrategyKind::kNoDelay);
  const auto delayed_stats = run_with(core::StrategyKind::kDetWins);
  EXPECT_LT(delayed_stats.abort_rate(), no_delay_stats.abort_rate());
}

TEST(Htm, RequestorAbortsModeCommitsAndStaysAtomic) {
  auto config = base_config(8, core::StrategyKind::kRandAborts);
  config.mode = core::ResolutionMode::kRequestorAborts;
  auto workload = std::make_shared<ds::CounterWorkload>();
  HtmSystem system{config, workload};
  const auto stats = system.run(2000);
  EXPECT_EQ(stats.commits, 2000u);
  EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits);
  // Under requestor-aborts resolution every abort is a requestor
  // sacrificing itself: either its grace period timed out or its wait would
  // have formed a cycle (the receiver is never aborted remotely).
  std::uint64_t self_timeouts = 0;
  std::uint64_t cycle_self_aborts = 0;
  for (const auto& per_core : stats.per_core) {
    self_timeouts += per_core.aborts_by_reason[static_cast<std::size_t>(
        AbortReason::kSelfTimeout)];
    cycle_self_aborts += per_core.aborts_by_reason[static_cast<std::size_t>(
        AbortReason::kCycle)];
  }
  EXPECT_GT(self_timeouts, 0u);
  EXPECT_EQ(stats.aborts, self_timeouts + cycle_self_aborts);
}

TEST(Htm, FallbackPathEngagesAfterRepeatedAborts) {
  auto config = base_config(8, core::StrategyKind::kNoDelay);
  config.max_attempts_before_fallback = 2;
  auto workload = std::make_shared<ds::CounterWorkload>();
  HtmSystem system{config, workload};
  const auto stats = system.run(3000);
  std::uint64_t fallback_commits = 0;
  std::uint64_t non_tx_aborts = 0;
  for (const auto& per_core : stats.per_core) {
    fallback_commits += per_core.fallback_commits;
    non_tx_aborts += per_core.aborts_by_reason[static_cast<std::size_t>(
        AbortReason::kNonTxConflict)];
  }
  EXPECT_GT(fallback_commits, 0u);
  // Non-transactional accesses abort conflicting transactions outright.
  EXPECT_GT(non_tx_aborts, 0u);
  EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits);
}

TEST(Htm, CapacityAbortOnTransactionalEviction) {
  // A 1-set/1-way L1 cannot hold a 2-line write set: the transaction can
  // never finish and eventually runs out the cycle budget; every attempt
  // ends in a capacity abort.
  class TwoLineTx final : public Workload {
   public:
    Transaction next_transaction(CoreId, sim::Rng&) override {
      return {{TxOp::Kind::kRmw, 100, 1, 0}, {TxOp::Kind::kRmw, 200, 1, 0}};
    }
    std::string name() const override { return "two-line"; }
  };
  auto config = base_config(1, core::StrategyKind::kNoDelay);
  config.l1 = mem::CacheConfig{.sets = 1, .ways = 1};
  HtmSystem system{config, std::make_shared<TwoLineTx>()};
  const auto stats = system.run(10, /*max_cycles=*/200000);
  EXPECT_EQ(stats.commits, 0u);
  EXPECT_GT(stats.per_core[0].aborts_by_reason[static_cast<std::size_t>(
                AbortReason::kCapacity)],
            0u);
}

TEST(Htm, WaitsForCycleIsDetectedAndBroken) {
  // Core 0 locks line A then reaches for line B; core 1 does the opposite.
  // With an enormous fixed grace period, progress is only possible because
  // the simulator aborts every transaction in the waits-for cycle.
  class CrossingTx final : public Workload {
   public:
    Transaction next_transaction(CoreId core, sim::Rng&) override {
      const LineId first = core == 0 ? 100 : 200;
      const LineId second = core == 0 ? 200 : 100;
      return {{TxOp::Kind::kRmw, first, 1, 0},
              {TxOp::Kind::kWork, 0, 0, 30},
              {TxOp::Kind::kRmw, second, 1, 0}};
    }
    std::string name() const override { return "crossing"; }
  };
  auto config = base_config(2, core::StrategyKind::kFixedTuned,
                            /*tuned=*/1'000'000.0);
  HtmSystem system{config, std::make_shared<CrossingTx>()};
  const auto stats = system.run(50, /*max_cycles=*/5'000'000);
  EXPECT_EQ(stats.commits, 50u) << "cycle detection failed to restore progress";
  std::uint64_t cycle_aborts = 0;
  for (const auto& per_core : stats.per_core) {
    cycle_aborts += per_core.aborts_by_reason[static_cast<std::size_t>(
        AbortReason::kCycle)];
  }
  EXPECT_GT(cycle_aborts, 0u);
  EXPECT_EQ(system.memory_value(100) + system.memory_value(200),
            stats.commits * 2);
}

TEST(Htm, DeterministicAcrossRuns) {
  const auto run_once = [] {
    auto config = base_config(8, core::StrategyKind::kRandWinsMean);
    config.use_profiler_mean = true;
    HtmSystem system{config, std::make_shared<ds::StackWorkload>(8)};
    return system.run(4000);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
}

TEST(Htm, StackAlternatesPushPopAndBalances) {
  auto config = base_config(4, core::StrategyKind::kRandWins);
  HtmSystem system{config, std::make_shared<ds::StackWorkload>(4)};
  const auto stats = system.run(4000);
  EXPECT_EQ(stats.commits, 4000u);
  // Per core pushes and pops alternate: the top-of-stack counter stays small
  // (bounded by one outstanding push per core).
  const std::uint64_t top = system.memory_value(ds::kStackTopLine);
  EXPECT_LE(top, 4u) << "stack top counter drifted: " << top;
  EXPECT_TRUE(system.coherence_invariants_hold());
}

TEST(Htm, QueueHeadTailSeparation) {
  auto config = base_config(4, core::StrategyKind::kRandWins);
  HtmSystem system{config, std::make_shared<ds::QueueWorkload>(4)};
  const auto stats = system.run(4000);
  EXPECT_EQ(stats.commits, 4000u);
  const std::uint64_t head = system.memory_value(ds::kQueueHeadLine);
  const std::uint64_t tail = system.memory_value(ds::kQueueTailLine);
  EXPECT_EQ(head + tail, 4000u);
}

TEST(Htm, TxAppModifiesExactlyTwoObjectsPerCommit) {
  auto config = base_config(8, core::StrategyKind::kRandWins);
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(3000);
  std::uint64_t total = 0;
  for (std::uint32_t object = 0; object < ds::kObjectCount; ++object) {
    total += system.memory_value(ds::kObjectBaseLine + object);
  }
  EXPECT_EQ(total, stats.commits * 2);
}

TEST(Htm, MeanTxCyclesIsPlausible) {
  auto config = base_config(1, core::StrategyKind::kNoDelay);
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(500);
  // 2 reads + 2 RMWs + uniform work around 60 cycles: the committed length
  // must be at least the payload and far below the abort-laden worst case.
  EXPECT_GT(stats.mean_tx_cycles, 60.0);
  EXPECT_LT(stats.mean_tx_cycles, 400.0);
}

TEST(Htm, ProfilerMeanFeedsPolicy) {
  auto config = base_config(8, core::StrategyKind::kRandWinsMean);
  config.use_profiler_mean = true;
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(3000);
  EXPECT_EQ(stats.commits, 3000u);
  EXPECT_TRUE(system.coherence_invariants_hold());
}

TEST(Htm, ThroughputScalesWithoutContention) {
  // Disjoint counters: adding cores must scale commits/cycle nearly linearly.
  class DisjointCounters final : public Workload {
   public:
    Transaction next_transaction(CoreId core, sim::Rng&) override {
      return {{TxOp::Kind::kRmw, 1000 + core, 1, 0},
              {TxOp::Kind::kWork, 0, 0, 20}};
    }
    std::string name() const override { return "disjoint"; }
  };
  auto one_config = base_config(1, core::StrategyKind::kRandWins);
  HtmSystem one{one_config, std::make_shared<DisjointCounters>()};
  const auto one_stats = one.run(2000);

  auto eight_config = base_config(8, core::StrategyKind::kRandWins);
  HtmSystem eight{eight_config, std::make_shared<DisjointCounters>()};
  const auto eight_stats = eight.run(16000);

  const double speedup =
      eight_stats.ops_per_second() / one_stats.ops_per_second();
  EXPECT_GT(speedup, 6.0);
  EXPECT_EQ(eight_stats.aborts, 0u);
}

// ---------------------------------------------------------------------------
// Eager-versioning ablation (DESIGN.md load-bearing decision 1)
// ---------------------------------------------------------------------------

TEST(HtmEager, StillAtomicWithEagerWrites) {
  auto config = base_config(8, core::StrategyKind::kRandWins);
  config.eager_writes = true;
  auto workload = std::make_shared<ds::CounterWorkload>();
  HtmSystem system{config, workload};
  const auto stats = system.run(2000, /*max_cycles=*/100'000'000);
  EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits);
  EXPECT_TRUE(system.coherence_invariants_hold());
}

TEST(HtmEager, EagerChangesConflictAnatomy) {
  // Crossing RMW pairs (even cores touch 40 then 41, odd cores the
  // reverse).  Under lazy validation both sides read shared and clash only
  // in the commit phase, where crossed waits form cycles *after* the work
  // was invested; under eager acquisition the clash surfaces at the first
  // write, before the work.  Measured consequence (deterministic for the
  // fixed seed): eager resolves conflicts earlier — fewer total aborts and
  // far fewer cycle aborts — at the price of more conflicts detected.
  class TwoObjectRmw final : public Workload {
   public:
    Transaction next_transaction(CoreId core, sim::Rng&) override {
      const LineId first = core % 2 == 0 ? 40 : 41;
      const LineId second = core % 2 == 0 ? 41 : 40;
      return {{TxOp::Kind::kRmw, first, 1, 0},
              {TxOp::Kind::kWork, 0, 0, 25},
              {TxOp::Kind::kRmw, second, 1, 0}};
    }
    std::string name() const override { return "two-object-rmw"; }
  };
  struct Profile {
    std::uint64_t aborts = 0;
    std::uint64_t cycle_aborts = 0;
  };
  const auto profile_with = [](bool eager) {
    auto config = base_config(8, core::StrategyKind::kRandWins);
    config.eager_writes = eager;
    HtmSystem system{config, std::make_shared<TwoObjectRmw>()};
    const auto stats = system.run(3000, /*max_cycles=*/200'000'000);
    Profile profile;
    profile.aborts = stats.aborts;
    for (const auto& per_core : stats.per_core) {
      profile.cycle_aborts += per_core.aborts_by_reason[
          static_cast<std::size_t>(AbortReason::kCycle)];
    }
    return profile;
  };
  const Profile lazy = profile_with(false);
  const Profile eager = profile_with(true);
  EXPECT_GT(lazy.cycle_aborts, 2 * eager.cycle_aborts)
      << "lazy commit-phase crossings must dominate the cycle aborts";
  EXPECT_GT(lazy.aborts, eager.aborts)
      << "late detection wastes more attempts";
}

TEST(HtmEager, EagerDetectsWriteConflictsDuringExecution) {
  // Under eager acquisition a second writer conflicts at its own write, not
  // at commit — conflicts exist even when commits never overlap in time.
  auto config = base_config(8, core::StrategyKind::kNoDelay);
  config.eager_writes = true;
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(3000, /*max_cycles=*/200'000'000);
  EXPECT_GT(stats.conflicts, 0u);
  EXPECT_EQ(stats.commits, 3000u);
}

// ---------------------------------------------------------------------------
// Randomized workload fuzzer: atomicity as a universal property
// ---------------------------------------------------------------------------

class HtmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Random transaction programs (random lines, deltas, work, lengths) over a
// small hot set.  Every transaction's RMW deltas over the 10 hot lines total
// exactly kDeltaPerTx, so after the run  sum(hot lines) == 8 * commits
// exactly — any lost update, dirty read-modify-write, or double-applied
// buffer breaks the equality.
class FuzzWorkload final : public Workload {
 public:
  static constexpr std::uint64_t kDeltaPerTx = 8;
  Transaction next_transaction(CoreId, sim::Rng& rng) override {
      Transaction tx;
      std::uint64_t budget = kDeltaPerTx;
      const int ops = 1 + static_cast<int>(rng.uniform_below(5));
      for (int i = 0; i < ops; ++i) {
        const double roll = rng.uniform01();
        const LineId line = 60 + rng.uniform_below(10);  // 10 hot lines
        if (roll < 0.4) {
          tx.push_back({TxOp::Kind::kRead, line, 0, 0});
        } else if (roll < 0.8 && budget > 0) {
          const std::uint64_t delta = 1 + rng.uniform_below(budget);
          budget -= delta;
          tx.push_back({TxOp::Kind::kRmw, line, delta, 0});
        } else {
          tx.push_back({TxOp::Kind::kWork, 0, 0, rng.uniform_below(40)});
        }
      }
      if (budget > 0) {
        tx.push_back(
            {TxOp::Kind::kRmw, 60 + rng.uniform_below(10), budget, 0});
      }
      return tx;
  }
  std::string name() const override { return "fuzz"; }
};

TEST_P(HtmFuzz, RandomTransactionsConserveDeltaSum) {
  auto config = base_config(8, core::StrategyKind::kRandWins);
  config.seed = GetParam();
  // Mix in the full substrate on half the seeds.
  if (GetParam() % 2 == 0) {
    config.noc = noc::MeshConfig{};
    config.l2 = mem::L2Config{};
  }
  if (GetParam() % 3 == 0) config.eager_writes = true;
  HtmSystem system{config, std::make_shared<FuzzWorkload>()};
  const auto stats = system.run(2500, /*max_cycles=*/200'000'000);
  EXPECT_TRUE(system.coherence_invariants_hold());
  std::uint64_t hot_sum = 0;
  for (LineId line = 60; line < 70; ++line) {
    hot_sum += system.memory_value(line);
  }
  EXPECT_GT(stats.commits, 0u);
  EXPECT_EQ(hot_sum, stats.commits * FuzzWorkload::kDeltaPerTx)
      << "atomicity violated for seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtmFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

// ---------------------------------------------------------------------------
// Oracle and adaptive policies inside the simulator
// ---------------------------------------------------------------------------

TEST(HtmOracle, OracleRunsAtomicallyWithHints) {
  auto config = base_config(8, core::StrategyKind::kOracle);
  config.oracle_hints = true;
  auto workload = std::make_shared<ds::CounterWorkload>();
  HtmSystem system{config, workload};
  const auto stats = system.run(2000);
  EXPECT_EQ(stats.commits, 2000u);
  EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits);
}

TEST(HtmOracle, OracleNeverExpiresAGracePeriod) {
  // The oracle only grants a grace period when the receiver's remaining time
  // fits inside it, so kConflictGraceExpired must stay rare.  Residue comes
  // from receivers that themselves stall as requestors mid-grace (the hint
  // cannot see other cores) — tolerate a few percent.
  auto config = base_config(8, core::StrategyKind::kOracle);
  config.oracle_hints = true;
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(5000);
  std::uint64_t expired = 0;
  for (const auto& per_core : stats.per_core) {
    expired += per_core.aborts_by_reason[static_cast<std::size_t>(
        AbortReason::kConflictGraceExpired)];
  }
  EXPECT_LE(expired, stats.commits / 20);
}

TEST(HtmAdaptive, AdaptiveLearnsThenCommitsEverything) {
  auto config = base_config(8, core::StrategyKind::kAdaptiveTuned);
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(4000);
  EXPECT_EQ(stats.commits, 4000u);
  EXPECT_TRUE(system.coherence_invariants_hold());
}

TEST(HtmAdaptive, LearnedDelayTracksTransactionScale) {
  // After a contended run, the adaptive policy's learned delay must sit in
  // the same decade as the actual mean transaction length — the quantity the
  // paper's hand-tuned baseline needs an operator to measure.
  const auto policy = std::make_shared<core::AdaptiveTunedPolicy>();
  HtmConfig config;
  config.cores = 8;
  config.policy = policy;
  config.seed = 99;
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(6000);
  ASSERT_GT(policy->feedback_samples(), 0u);
  EXPECT_GT(policy->learned_delay(), stats.mean_tx_cycles / 10.0);
  EXPECT_LT(policy->learned_delay(), stats.mean_tx_cycles * 10.0);
}

// ---------------------------------------------------------------------------
// NoC-enabled runs: the mesh replaces the flat remote latency.
// ---------------------------------------------------------------------------

TEST(HtmNoc, AtomicityHoldsWithMeshEnabled) {
  auto config = base_config(8, core::StrategyKind::kRandWins);
  config.noc = noc::MeshConfig{};
  auto workload = std::make_shared<ds::CounterWorkload>();
  HtmSystem system{config, workload};
  const auto stats = system.run(2000);
  EXPECT_EQ(stats.commits, 2000u);
  EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits);
  EXPECT_TRUE(system.coherence_invariants_hold());
  ASSERT_TRUE(stats.noc.has_value());
  EXPECT_GT(stats.noc->total_messages(), 0u);
}

TEST(HtmNoc, MeshAutoFitsCoreCount) {
  auto config = base_config(16, core::StrategyKind::kRandWins);
  config.noc = noc::MeshConfig{.width = 1, .height = 1};  // too small: auto-fit
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(1000);
  EXPECT_EQ(stats.commits, 1000u);
}

TEST(HtmNoc, DistanceLatencyIsVisibleInRuntime) {
  // The same single-core workload on a remote-heavy mesh must take longer per
  // transaction than with the flat 20-cycle remote latency when distances and
  // per-hop costs are large.
  auto flat = base_config(1, core::StrategyKind::kNoDelay);
  HtmSystem flat_system{flat, std::make_shared<ds::TxAppWorkload>()};
  const auto flat_stats = flat_system.run(300);

  auto meshed = base_config(1, core::StrategyKind::kNoDelay);
  meshed.noc = noc::MeshConfig{.width = 8,
                               .height = 8,
                               .link_latency = 8,
                               .router_latency = 4};
  HtmSystem mesh_system{meshed, std::make_shared<ds::TxAppWorkload>()};
  const auto mesh_stats = mesh_system.run(300);

  EXPECT_GT(mesh_stats.mean_tx_cycles, flat_stats.mean_tx_cycles);
}

TEST(HtmNoc, NackTrafficAppearsUnderContention) {
  auto config = base_config(8, core::StrategyKind::kDetWins);
  config.noc = noc::MeshConfig{};
  HtmSystem system{config, std::make_shared<ds::CounterWorkload>()};
  const auto stats = system.run(3000);
  ASSERT_TRUE(stats.noc.has_value());
  EXPECT_GT(stats.noc->messages[static_cast<std::size_t>(
                noc::MessageClass::kNack)],
            0u)
      << "every conflict NACKs the requestor";
}

TEST(HtmNoc, InvalidationTrafficOnSharedToModified) {
  // Core 0 runs read-only transactions on line 7 (commits leave a Shared,
  // non-transactional copy behind, then a long think time); core 1 writes
  // line 7.  The writer's commit-phase upgrade must invalidate core 0's stale
  // copy across the mesh.
  class ReaderWriter final : public Workload {
   public:
    Transaction next_transaction(CoreId core, sim::Rng&) override {
      if (core == 0) return {{TxOp::Kind::kRead, 7, 0, 0}};
      return {{TxOp::Kind::kRmw, 7, 1, 0}};
    }
    std::uint64_t think_time(CoreId core, sim::Rng&) override {
      return core == 0 ? 400 : 50;
    }
    std::string name() const override { return "reader-writer"; }
  };
  auto config = base_config(2, core::StrategyKind::kNoDelay);
  config.noc = noc::MeshConfig{};
  HtmSystem system{config, std::make_shared<ReaderWriter>()};
  const auto stats = system.run(500);
  ASSERT_TRUE(stats.noc.has_value());
  EXPECT_GT(stats.noc->messages[static_cast<std::size_t>(
                noc::MessageClass::kInvalidation)],
            0u);
}

TEST(HtmNoc, DeterministicWithMesh) {
  const auto run_once = [] {
    auto config = base_config(8, core::StrategyKind::kRandWins);
    config.noc = noc::MeshConfig{};
    config.l2 = mem::L2Config{};
    HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
    return system.run(2000);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.noc->total_messages(), b.noc->total_messages());
}

// ---------------------------------------------------------------------------
// Shared-L2 runs: hit/miss tiers and inclusive back-invalidation.
// ---------------------------------------------------------------------------

TEST(HtmL2, AtomicityHoldsWithL2Enabled) {
  auto config = base_config(8, core::StrategyKind::kRandWins);
  config.l2 = mem::L2Config{};
  auto workload = std::make_shared<ds::CounterWorkload>();
  HtmSystem system{config, workload};
  const auto stats = system.run(2000);
  EXPECT_EQ(stats.commits, 2000u);
  EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits);
  ASSERT_TRUE(stats.l2.has_value());
  EXPECT_GT(stats.l2->hits + stats.l2->misses, 0u);
}

TEST(HtmL2, SmallWorkingSetHitsInL2) {
  auto config = base_config(4, core::StrategyKind::kRandWins);
  config.l2 = mem::L2Config{};
  HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  const auto stats = system.run(3000);
  ASSERT_TRUE(stats.l2.has_value());
  // 64 objects + pointers fit easily: after warm-up almost everything hits.
  EXPECT_GT(stats.l2->hit_rate(), 0.9);
  EXPECT_EQ(stats.l2->back_invalidations, 0u);
}

TEST(HtmL2, MemoryTierSlowsMisses) {
  // A huge-stride workload whose lines never fit in a 1-set L2 pays the
  // memory latency on every access; the same workload with a large L2 does
  // not.  Runtime per commit must reflect the difference.
  class StrideWorkload final : public Workload {
   public:
    Transaction next_transaction(CoreId, sim::Rng&) override {
      next_ += 7;  // fresh line every transaction
      return {{TxOp::Kind::kRmw, 100000 + next_, 1, 0}};
    }
    std::string name() const override { return "stride"; }

   private:
    LineId next_ = 0;
  };
  auto small = base_config(1, core::StrategyKind::kNoDelay);
  small.l2 = mem::L2Config{.banks = 1, .sets_per_bank = 1, .ways = 1};
  small.memory_latency = 500;
  HtmSystem small_system{small, std::make_shared<StrideWorkload>()};
  const auto small_stats = small_system.run(200);

  auto big = base_config(1, core::StrategyKind::kNoDelay);
  big.l2 = mem::L2Config{};
  big.memory_latency = 500;
  HtmSystem big_system{big, std::make_shared<StrideWorkload>()};
  const auto big_stats = big_system.run(200);

  // Both miss on cold lines (every line is fresh), so both pay the memory
  // tier; but the tiny L2 also evicts constantly.
  ASSERT_TRUE(small_stats.l2.has_value());
  EXPECT_GT(small_stats.l2->evictions, 100u);
  EXPECT_GT(small_stats.cycles, 0u);
  EXPECT_EQ(small_stats.commits, big_stats.commits);
}

TEST(HtmL2, InclusiveEvictionAbortsTransactionalHolder) {
  // Core 0 parks a transactional line, then core 1 streams enough distinct
  // lines through a 1-way L2 set to evict core 0's line: the back-
  // invalidation must abort core 0's transaction with kCapacityL2.
  class ParkAndStream final : public Workload {
   public:
    Transaction next_transaction(CoreId core, sim::Rng&) override {
      if (core == 0) {
        // Hold line 0 transactionally for a long time.
        return {{TxOp::Kind::kRmw, 0, 1, 0}, {TxOp::Kind::kWork, 0, 0, 50000}};
      }
      Transaction tx;
      for (int i = 0; i < 8; ++i) {
        next_ += 1;
        tx.push_back({TxOp::Kind::kRead, next_ * 2, 0, 0});  // even lines
      }
      return tx;
    }
    std::string name() const override { return "park-and-stream"; }

   private:
    LineId next_ = 0;
  };
  auto config = base_config(2, core::StrategyKind::kNoDelay);
  // One bank, one set, one way: every even line maps to the same slot as
  // line 0, so core 1's stream always evicts whatever is resident.
  config.l2 = mem::L2Config{.banks = 1, .sets_per_bank = 1, .ways = 1};
  HtmSystem system{config, std::make_shared<ParkAndStream>()};
  const auto stats = system.run(50, /*max_cycles=*/2'000'000);
  std::uint64_t l2_capacity_aborts = 0;
  for (const auto& per_core : stats.per_core) {
    l2_capacity_aborts += per_core.aborts_by_reason[static_cast<std::size_t>(
        AbortReason::kCapacityL2)];
  }
  EXPECT_GT(l2_capacity_aborts, 0u);
  ASSERT_TRUE(stats.l2.has_value());
  EXPECT_GT(stats.l2->back_invalidations, 0u);
}

TEST(HtmL2, CombinedNocAndL2StaysAtomicUnderAllPolicies) {
  for (const auto kind :
       {core::StrategyKind::kNoDelay, core::StrategyKind::kDetWins,
        core::StrategyKind::kRandWins, core::StrategyKind::kHybrid}) {
    auto config = base_config(8, kind);
    config.noc = noc::MeshConfig{};
    config.l2 = mem::L2Config{};
    auto workload = std::make_shared<ds::CounterWorkload>();
    HtmSystem system{config, workload};
    const auto stats = system.run(1500);
    EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits)
        << core::to_string(kind);
    EXPECT_TRUE(system.coherence_invariants_hold());
  }
}

}  // namespace
