// Tests of the TL2-style STM with the grace-period contention manager:
// single-thread semantics, multi-thread atomicity/isolation (real threads),
// and the policy hook.
#include "stm/tl2.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/policy.hpp"

namespace {

using namespace txc;
using namespace txc::stm;

std::shared_ptr<const core::GracePeriodPolicy> default_policy() {
  return core::make_policy(core::StrategyKind::kRandAborts);
}

TEST(Stm, SingleThreadReadWrite) {
  Stm stm{default_policy()};
  Cell cell;
  stm.atomically([&](Tx& tx) {
    EXPECT_EQ(tx.read(cell), 0u);
    tx.write(cell, 41);
    EXPECT_EQ(tx.read(cell), 41u) << "write-own-read must see the buffer";
    tx.write(cell, 42);
  });
  EXPECT_EQ(Stm::read_committed(cell), 42u);
  EXPECT_EQ(stm.stats().commits.load(), 1u);
  EXPECT_EQ(stm.stats().aborts.load(), 0u);
}

TEST(Stm, ReadOnlyTransactionCommitsWithoutLocks) {
  Stm stm{default_policy()};
  Cell cell;
  cell.value.store(7);
  std::uint64_t seen = 0;
  stm.atomically([&](Tx& tx) { seen = tx.read(cell); });
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(stm.stats().commits.load(), 1u);
}

TEST(Stm, MultiCellTransactionIsAtomic) {
  Stm stm{default_policy()};
  Cell a;
  Cell b;
  a.value.store(100);
  stm.atomically([&](Tx& tx) {
    const std::uint64_t amount = 30;
    tx.write(a, tx.read(a) - amount);
    tx.write(b, tx.read(b) + amount);
  });
  EXPECT_EQ(Stm::read_committed(a), 70u);
  EXPECT_EQ(Stm::read_committed(b), 30u);
}

TEST(Stm, ConcurrentCounterLosesNoUpdates) {
  Stm stm{default_policy()};
  Cell counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        stm.atomically([&](Tx& tx) { tx.write(counter, tx.read(counter) + 1); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(Stm::read_committed(counter),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(stm.stats().commits.load(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Stm, BankTransferConservesTotal) {
  // The classic isolation test: concurrent transfers between accounts must
  // conserve the total balance at every committed snapshot.
  Stm stm{default_policy()};
  constexpr int kAccounts = 16;
  constexpr std::uint64_t kInitial = 1000;
  std::vector<Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value.store(kInitial);

  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      sim::Rng rng{static_cast<std::uint64_t>(t) + 1};
      for (int i = 0; i < 3000; ++i) {
        const auto from = static_cast<int>(rng.uniform_below(kAccounts));
        auto to = static_cast<int>(rng.uniform_below(kAccounts - 1));
        if (to >= from) ++to;
        stm.atomically([&](Tx& tx) {
          const std::uint64_t balance = tx.read(accounts[from]);
          const std::uint64_t amount = balance % 10;
          tx.write(accounts[from], balance - amount);
          tx.write(accounts[to], tx.read(accounts[to]) + amount);
        });
        // Transactional audit: the snapshot total must be exact.
        std::uint64_t total = 0;
        stm.atomically([&](Tx& tx) {
          total = 0;
          for (const auto& account : accounts) total += tx.read(account);
        });
        if (total != kAccounts * kInitial) violation.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(violation.load());
  std::uint64_t final_total = 0;
  for (const auto& account : accounts) final_total += Stm::read_committed(account);
  EXPECT_EQ(final_total, kAccounts * kInitial);
}

TEST(Stm, HighContentionRemainsAtomic) {
  Stm stm{default_policy()};
  Cell hot;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        stm.atomically([&](Tx& tx) { tx.write(hot, tx.read(hot) + 1); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Whether or not the host scheduler produced real overlap (a single-core
  // machine may not), no increment may be lost; lock-wait/abort counters are
  // informational (they are exercised deterministically by the commit path
  // when overlap does occur).
  EXPECT_EQ(Stm::read_committed(hot), 16000u);
  EXPECT_GE(stm.stats().commits.load(), 16000u);
}

TEST(Stm, NoDelayPolicyStillMakesProgress) {
  Stm stm{core::make_policy(core::StrategyKind::kNoDelay)};
  Cell hot;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        stm.atomically([&](Tx& tx) { tx.write(hot, tx.read(hot) + 1); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(Stm::read_committed(hot), 8000u);
}

}  // namespace
