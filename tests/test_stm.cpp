// Tests of the TL2-style STM with the grace-period contention manager:
// single-thread semantics, multi-thread atomicity/isolation (real threads),
// the policy hook, and the declared-read-only snapshot fast path
// (atomically_read / ReadTxContext).
#include "stm/tl2.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/policy.hpp"

namespace {

using namespace txc;
using namespace txc::stm;

// The read-only promise is part of the type: ReadTxContext exposes no
// write(), so breaking the promise inside atomically_read is a compile
// error, not a debug assert.  The detection idiom proves both sides of the
// contract (and that the probe itself works).
template <typename Ctx, typename = void>
struct HasWrite : std::false_type {};
template <typename Ctx>
struct HasWrite<Ctx, std::void_t<decltype(std::declval<Ctx&>().write(
                         std::declval<Cell&>(), std::uint64_t{}))>>
    : std::true_type {};

static_assert(HasWrite<Stm::TxContext>::value,
              "the instrumented context must expose write()");
static_assert(!HasWrite<Stm::ReadTxContext>::value,
              "a write inside a TL2 read transaction must not compile");

std::shared_ptr<const core::GracePeriodPolicy> default_policy() {
  return core::make_policy(core::StrategyKind::kRandAborts);
}

TEST(Stm, SingleThreadReadWrite) {
  Stm stm{default_policy()};
  Cell cell;
  stm.atomically([&](Tx& tx) {
    EXPECT_EQ(tx.read(cell), 0u);
    tx.write(cell, 41);
    EXPECT_EQ(tx.read(cell), 41u) << "write-own-read must see the buffer";
    tx.write(cell, 42);
  });
  EXPECT_EQ(Stm::read_committed(cell), 42u);
  EXPECT_EQ(stm.stats().commits.load(), 1u);
  EXPECT_EQ(stm.stats().aborts.load(), 0u);
}

TEST(Stm, ReadOnlyTransactionCommitsWithoutLocks) {
  Stm stm{default_policy()};
  Cell cell;
  cell.value.store(7);
  std::uint64_t seen = 0;
  stm.atomically([&](Tx& tx) { seen = tx.read(cell); });
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(stm.stats().commits.load(), 1u);
}

TEST(Stm, MultiCellTransactionIsAtomic) {
  Stm stm{default_policy()};
  Cell a;
  Cell b;
  a.value.store(100);
  stm.atomically([&](Tx& tx) {
    const std::uint64_t amount = 30;
    tx.write(a, tx.read(a) - amount);
    tx.write(b, tx.read(b) + amount);
  });
  EXPECT_EQ(Stm::read_committed(a), 70u);
  EXPECT_EQ(Stm::read_committed(b), 30u);
}

TEST(Stm, ConcurrentCounterLosesNoUpdates) {
  Stm stm{default_policy()};
  Cell counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        stm.atomically([&](Tx& tx) { tx.write(counter, tx.read(counter) + 1); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(Stm::read_committed(counter),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(stm.stats().commits.load(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Stm, BankTransferConservesTotal) {
  // The classic isolation test: concurrent transfers between accounts must
  // conserve the total balance at every committed snapshot.
  Stm stm{default_policy()};
  constexpr int kAccounts = 16;
  constexpr std::uint64_t kInitial = 1000;
  std::vector<Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value.store(kInitial);

  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      sim::Rng rng{static_cast<std::uint64_t>(t) + 1};
      for (int i = 0; i < 3000; ++i) {
        const auto from = static_cast<int>(rng.uniform_below(kAccounts));
        auto to = static_cast<int>(rng.uniform_below(kAccounts - 1));
        if (to >= from) ++to;
        stm.atomically([&](Tx& tx) {
          const std::uint64_t balance = tx.read(accounts[from]);
          const std::uint64_t amount = balance % 10;
          tx.write(accounts[from], balance - amount);
          tx.write(accounts[to], tx.read(accounts[to]) + amount);
        });
        // Transactional audit: the snapshot total must be exact.
        std::uint64_t total = 0;
        stm.atomically([&](Tx& tx) {
          total = 0;
          for (const auto& account : accounts) total += tx.read(account);
        });
        if (total != kAccounts * kInitial) violation.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(violation.load());
  std::uint64_t final_total = 0;
  for (const auto& account : accounts) final_total += Stm::read_committed(account);
  EXPECT_EQ(final_total, kAccounts * kInitial);
}

TEST(Stm, HighContentionRemainsAtomic) {
  Stm stm{default_policy()};
  Cell hot;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        stm.atomically([&](Tx& tx) { tx.write(hot, tx.read(hot) + 1); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Whether or not the host scheduler produced real overlap (a single-core
  // machine may not), no increment may be lost; lock-wait/abort counters are
  // informational (they are exercised deterministically by the commit path
  // when overlap does occur).
  EXPECT_EQ(Stm::read_committed(hot), 16000u);
  EXPECT_GE(stm.stats().commits.load(), 16000u);
}

TEST(StmSnapshot, ReadSeesCommittedState) {
  Stm stm{default_policy()};
  Cell a;
  Cell b;
  stm.atomically([&](Tx& tx) {
    tx.write(a, 11);
    tx.write(b, 22);
  });
  std::uint64_t seen_a = 0;
  std::uint64_t seen_b = 0;
  stm.atomically_read([&](ReadTx& tx) {
    seen_a = tx.read(a);
    seen_b = tx.read(b);
  });
  EXPECT_EQ(seen_a, 11u);
  EXPECT_EQ(seen_b, 22u);
}

TEST(StmSnapshot, CountersSeparateSnapshotFromInstrumentedReads) {
  Stm stm{default_policy()};
  Cell a;
  Cell b;
  stm.atomically([&](Tx& tx) { tx.write(a, 1); });

  // Instrumented reads: the plain path accrues a read set and counts as
  // instrumented.
  stm.atomically([&](Tx& tx) { (void)tx.read(a); });
  EXPECT_EQ(stm.stats().instrumented_reads.load(), 1u);
  EXPECT_EQ(stm.stats().snapshot_reads.load(), 0u);
  EXPECT_EQ(stm.stats().snapshot_commits.load(), 0u);

  // Snapshot reads land in their own ledger and do not disturb the
  // transactional commit/abort counters.
  const std::uint64_t commits_before = stm.stats().commits.load();
  stm.atomically_read([&](ReadTx& tx) {
    (void)tx.read(a);
    (void)tx.read(b);
  });
  EXPECT_EQ(stm.stats().snapshot_commits.load(), 1u);
  EXPECT_EQ(stm.stats().snapshot_reads.load(), 2u);
  EXPECT_EQ(stm.stats().snapshot_restarts.load(), 0u)
      << "no concurrent writer: the first snapshot attempt must stick";
  EXPECT_EQ(stm.stats().instrumented_reads.load(), 1u);
  EXPECT_EQ(stm.stats().commits.load(), commits_before);
}

TEST(StmSnapshot, MultiCellSnapshotNeverTearsUnderWriters) {
  // Writers keep pair0 == pair1; a snapshot reader validates every read
  // against its clock sample, so it must never observe a torn pair even
  // though it accrues no read set and never validates at the end (opacity).
  Stm stm{default_policy()};
  Cell pair0;
  Cell pair1;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread writer([&] {
    for (int i = 1; i <= 20000; ++i) {
      stm.atomically([&](Tx& tx) {
        tx.write(pair0, static_cast<std::uint64_t>(i));
        tx.write(pair1, static_cast<std::uint64_t>(i));
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      stm.atomically_read([&](ReadTx& tx) {
        const std::uint64_t x = tx.read(pair0);
        const std::uint64_t y = tx.read(pair1);
        if (x != y) torn.fetch_add(1);
      });
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(Stm, NoDelayPolicyStillMakesProgress) {
  Stm stm{core::make_policy(core::StrategyKind::kNoDelay)};
  Cell hot;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        stm.atomically([&](Tx& tx) { tx.write(hot, tx.read(hot) + 1); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(Stm::read_committed(hot), 8000u);
}

}  // namespace
