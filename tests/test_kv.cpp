// Conformance suite for the sharded transactional KV store and service
// (src/kv), value-parameterized over {TL2, NOrec} x the arbiter roster: the
// same test bodies run against every substrate/arbiter pairing through the
// unified substrate API (typename Substrate::TxContext, atomically,
// read/write), so a conformance failure localizes to a pairing, not a
// rewrite of the suite.  Multi-threaded audits check conservation (two-key
// swaps preserve the value multiset), linearizable per-key histories
// (randomized get/put/rmw against per-thread reference maps on disjoint key
// ranges), and service-level completion accounting.  The suite is
// ASan/UBSan-clean and sized for smoke; the nightly stress job re-runs it
// deeper via TXC_STRESS_DEPTH alongside test_spin_stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "conflict/adaptive.hpp"
#include "conflict/arbiter.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "kv/queue.hpp"
#include "kv/service.hpp"
#include "kv/store.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using conflict::ConflictArbiter;

int stress_depth() {
  int depth = 1;
  if (const char* env = std::getenv("TXC_STRESS_DEPTH")) {
    depth = std::atoi(env);
    if (depth < 1) depth = 1;
  }
  return depth;
}

// ---------------------------------------------------------------------------
// The {substrate} x {arbiter} parameter space
// ---------------------------------------------------------------------------

enum class SubstrateKind { kTl2, kNorec };

struct KvCase {
  std::string label;  // gtest-safe ([A-Za-z0-9_])
  SubstrateKind substrate;
  std::shared_ptr<const ConflictArbiter> (*make)();
};

std::shared_ptr<const ConflictArbiter> grace(core::StrategyKind kind) {
  return std::make_shared<conflict::GraceArbiter>(core::make_policy(kind));
}

std::vector<KvCase> kv_cases() {
  struct Arbiter {
    const char* label;
    std::shared_ptr<const ConflictArbiter> (*make)();
  };
  static const Arbiter kRoster[] = {
      {"Grace_NO_DELAY", [] { return grace(core::StrategyKind::kNoDelay); }},
      {"Grace_DET_ABORTS",
       [] { return grace(core::StrategyKind::kDetAborts); }},
      {"Grace_DET_WINS", [] { return grace(core::StrategyKind::kDetWins); }},
      {"Grace_RRA", [] { return grace(core::StrategyKind::kRandAborts); }},
      {"Grace_HYBRID", [] { return grace(core::StrategyKind::kHybrid); }},
      {"Polite", [] { return conflict::make_cm(conflict::CmKind::kPolite); }},
      {"Karma", [] { return conflict::make_cm(conflict::CmKind::kKarma); }},
      {"Timestamp",
       [] { return conflict::make_cm(conflict::CmKind::kTimestamp); }},
      {"Greedy", [] { return conflict::make_cm(conflict::CmKind::kGreedy); }},
      {"Polka", [] { return conflict::make_cm(conflict::CmKind::kPolka); }},
      {"Adaptive",
       [] {
         return std::static_pointer_cast<const ConflictArbiter>(
             std::make_shared<conflict::AdaptiveArbiter>());
       }},
  };
  std::vector<KvCase> cases;
  for (const auto& [substrate, kind] :
       {std::pair{"Tl2", SubstrateKind::kTl2},
        std::pair{"Norec", SubstrateKind::kNorec}}) {
    for (const Arbiter& arbiter : kRoster) {
      cases.push_back(KvCase{std::string(substrate) + "_" + arbiter.label,
                             kind, arbiter.make});
    }
  }
  return cases;
}

/// Dispatch the substrate *type* from the runtime parameter: the test body
/// is a template over Substrate, instantiated once per kind.
template <typename Body>
void with_substrate(const KvCase& param, Body&& body) {
  switch (param.substrate) {
    case SubstrateKind::kTl2:
      body.template operator()<stm::Stm>(param.make());
      return;
    case SubstrateKind::kNorec:
      body.template operator()<stm::Norec>(param.make());
      return;
  }
}

class KvConformance : public ::testing::TestWithParam<KvCase> {};

// ---------------------------------------------------------------------------
// Sequential semantics
// ---------------------------------------------------------------------------

TEST_P(KvConformance, SequentialOpsRoundTrip) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Store = kv::ShardedKvStore<Substrate>;
    typename Store::Config config;
    config.shards = 4;
    config.capacity_per_shard = 64;
    Store store{config, std::move(arbiter)};

    EXPECT_FALSE(store.get_sync(7).has_value());
    EXPECT_EQ(store.put_sync(7, 70), kv::OpStatus::kOk);
    EXPECT_EQ(store.get_sync(7), 70u);
    EXPECT_EQ(store.put_sync(7, 71), kv::OpStatus::kOk) << "overwrite";
    EXPECT_EQ(store.get_sync(7), 71u);

    // Composed multi-op transaction on the raw transactional API.
    store.substrate().atomically(
        [&](typename Substrate::TxContext& tx) {
          kv::Value out = 0;
          ASSERT_EQ(store.put(tx, 8, 80), kv::OpStatus::kOk);
          ASSERT_EQ(store.rmw_add(tx, 8, 5, out), kv::OpStatus::kOk);
          EXPECT_EQ(out, 85u);
          ASSERT_EQ(store.rmw_add(tx, 9, 9, out), kv::OpStatus::kOk)
              << "rmw inserts when absent";
          EXPECT_EQ(out, 9u);
          ASSERT_EQ(store.swap(tx, 8, 9), kv::OpStatus::kOk);
        });
    EXPECT_EQ(store.get_sync(8), 9u);
    EXPECT_EQ(store.get_sync(9), 85u);
    EXPECT_EQ(store.size_sync(), 3u);
    EXPECT_EQ(store.value_sum_sync(), 71u + 9u + 85u);
  });
}

TEST_P(KvConformance, SwapInsertsAbsentKeysAsZero) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Store = kv::ShardedKvStore<Substrate>;
    typename Store::Config config;
    config.shards = 2;
    config.capacity_per_shard = 32;
    Store store{config, std::move(arbiter)};
    ASSERT_EQ(store.put_sync(1, 42), kv::OpStatus::kOk);
    ASSERT_EQ(store.swap_sync(1, 2), kv::OpStatus::kOk);
    EXPECT_EQ(store.get_sync(1), 0u);
    EXPECT_EQ(store.get_sync(2), 42u);
  });
}

// ---------------------------------------------------------------------------
// Concurrent conservation: the two-key-swap mix
// ---------------------------------------------------------------------------

TEST_P(KvConformance, ConcurrentSwapsConserveTheValueMultiset) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Store = kv::ShardedKvStore<Substrate>;
    constexpr std::uint32_t kKeys = 48;
    constexpr int kThreads = 3;
    typename Store::Config config;
    config.shards = 4;
    config.capacity_per_shard = 64;
    Store store{config, std::move(arbiter)};
    for (std::uint32_t key = 1; key <= kKeys; ++key) {
      ASSERT_EQ(store.put_sync(key, key), kv::OpStatus::kOk);
    }
    const int swaps = 400 * stress_depth();
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&store, t, swaps] {
        sim::Rng rng{0xC0FFEEull * (t + 1)};
        for (int i = 0; i < swaps; ++i) {
          const auto a = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
          auto b = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
          if (a == b) b = (b % kKeys) + 1;
          ASSERT_EQ(store.swap_sync(a, b), kv::OpStatus::kOk);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    // Swaps permute values across keys; the multiset {1..kKeys} (audited
    // via sum and xor folds) and the key population are invariant.
    EXPECT_EQ(store.size_sync(), kKeys);
    std::uint64_t expected_sum = 0;
    std::uint64_t expected_xor = 0;
    std::uint64_t xor_fold = 0;
    for (std::uint32_t v = 1; v <= kKeys; ++v) {
      expected_sum += v;
      expected_xor ^= v;
    }
    for (std::uint32_t key = 1; key <= kKeys; ++key) {
      const auto value = store.get_sync(key);
      ASSERT_TRUE(value.has_value());
      xor_fold ^= *value;
    }
    EXPECT_EQ(store.value_sum_sync(), expected_sum);
    EXPECT_EQ(xor_fold, expected_xor);
  });
}

// ---------------------------------------------------------------------------
// Randomized linearizability per key: disjoint ownership, shared probe paths
// ---------------------------------------------------------------------------

TEST_P(KvConformance, RandomizedOpsMatchPerKeyReference) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Store = kv::ShardedKvStore<Substrate>;
    constexpr int kThreads = 3;
    constexpr std::uint32_t kKeysPerThread = 24;
    typename Store::Config config;
    config.shards = 4;  // ranges interleave within shards via hashing
    config.capacity_per_shard = 64;
    Store store{config, std::move(arbiter)};
    const int ops = 600 * stress_depth();
    std::vector<std::thread> workers;
    std::vector<std::unordered_map<kv::Key, kv::Value>> references(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&store, &references, t, ops] {
        // Disjoint key ranges: every thread is its keys' only writer, so
        // its local map is the exact linearized history; concurrency still
        // bites through shared buckets and probe paths.
        const auto base = static_cast<kv::Key>(1 + t * kKeysPerThread);
        auto& reference = references[static_cast<std::size_t>(t)];
        sim::Rng rng{0xBEEFull * (t + 1)};
        for (int i = 0; i < ops; ++i) {
          const auto key =
              base + static_cast<kv::Key>(rng.uniform_below(kKeysPerThread));
          const auto roll = rng.uniform_below(3);
          if (roll == 0) {
            const auto value =
                static_cast<kv::Value>(rng.uniform_below(1u << 16));
            ASSERT_EQ(store.put_sync(key, value), kv::OpStatus::kOk);
            reference[key] = value;
          } else if (roll == 1) {
            kv::Value out = 0;
            store.substrate().atomically(
                [&](typename Substrate::TxContext& tx) {
                  ASSERT_EQ(store.rmw_add(tx, key, 3, out),
                            kv::OpStatus::kOk);
                });
            reference[key] += 3;  // operator[] default-inserts 0, as rmw does
            ASSERT_EQ(out, reference[key]);
          } else {
            const auto got = store.get_sync(key);
            const auto expected = reference.find(key);
            if (expected == reference.end()) {
              ASSERT_FALSE(got.has_value());
            } else {
              ASSERT_EQ(got, expected->second);
            }
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    std::uint64_t resident = 0;
    for (const auto& reference : references) {
      resident += reference.size();
      for (const auto& [key, value] : reference) {
        EXPECT_EQ(store.get_sync(key), value);
      }
    }
    EXPECT_EQ(store.size_sync(), resident);
  });
}

// ---------------------------------------------------------------------------
// Service level: batched workers, completion accounting, open-loop rejects
// ---------------------------------------------------------------------------

TEST_P(KvConformance, ServiceSwapStreamConservesAndCompletes) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Service = kv::KvService<Substrate>;
    constexpr std::uint32_t kKeys = 64;
    typename Service::Config config;
    config.store.shards = 4;
    config.store.capacity_per_shard = 64;
    config.queue_capacity = 1024;
    config.max_batch = 8;
    Service service{config, std::move(arbiter)};
    for (std::uint32_t key = 1; key <= kKeys; ++key) {
      ASSERT_EQ(service.store().put_sync(key, key), kv::OpStatus::kOk);
    }
    service.start();
    const int kClients = 2;
    const int requests_each = 500 * stress_depth();
    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&service, &accepted, c, requests_each] {
        sim::Rng rng{0xD15Cull * (c + 1)};
        for (int i = 0; i < requests_each; ++i) {
          kv::Request request;
          request.op = kv::OpKind::kSwap;
          request.key_a = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
          request.key_b = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
          if (request.key_b == request.key_a) {
            request.key_b = (request.key_a % kKeys) + 1;
          }
          if (service.submit(request)) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& client : clients) client.join();
    service.stop();  // drains before joining workers

    const auto& stats = service.service_stats();
    EXPECT_EQ(stats.submitted.load(), accepted.load());
    EXPECT_EQ(stats.completed.load(), accepted.load())
        << "stop() must drain every accepted request";
    EXPECT_EQ(stats.submitted.load() + stats.rejected.load(),
              static_cast<std::uint64_t>(kClients) * requests_each);
    EXPECT_EQ(stats.shard_full.load(), 0u);
    core::LatencyHistogram merged;
    service.merge_latency(merged);
    EXPECT_EQ(merged.count(), stats.completed.load())
        << "every completion records exactly one latency sample";
    EXPECT_GE(stats.batches.load(), 1u);
    EXPECT_LE(stats.batches.load(), stats.completed.load());

    // Conservation through the service path: swaps only permute.
    std::uint64_t expected_sum = 0;
    for (std::uint32_t v = 1; v <= kKeys; ++v) expected_sum += v;
    EXPECT_EQ(service.store().value_sum_sync(), expected_sum);
    EXPECT_EQ(service.store().size_sync(), kKeys);
  });
}

TEST_P(KvConformance, ServiceResponsesPublishResults) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Service = kv::KvService<Substrate>;
    typename Service::Config config;
    config.store.shards = 2;
    config.store.capacity_per_shard = 64;
    config.max_batch = 4;
    Service service{config, std::move(arbiter)};
    ASSERT_EQ(service.store().put_sync(5, 50), kv::OpStatus::kOk);
    service.start();

    std::atomic<std::uint64_t> hit{0};
    std::atomic<std::uint64_t> miss{0};
    std::atomic<std::uint64_t> rmw{0};
    kv::Request get_hit;
    get_hit.op = kv::OpKind::kGet;
    get_hit.key_a = 5;
    get_hit.response = &hit;
    kv::Request get_miss;
    get_miss.op = kv::OpKind::kGet;
    get_miss.key_a = 6;
    get_miss.response = &miss;
    kv::Request rmw_req;
    rmw_req.op = kv::OpKind::kRmwAdd;
    rmw_req.key_a = 5;
    rmw_req.value = 7;
    rmw_req.response = &rmw;
    ASSERT_TRUE(service.submit(get_hit));
    ASSERT_TRUE(service.submit(get_miss));
    ASSERT_TRUE(service.submit(rmw_req));
    while (hit.load() == 0 || miss.load() == 0 || rmw.load() == 0) {
      std::this_thread::yield();
    }
    service.stop();
    EXPECT_EQ(hit.load(), kv::kDone | kv::kFound | 50u);
    EXPECT_EQ(miss.load(), kv::kDone) << "miss: done without kFound";
    EXPECT_EQ(rmw.load(), kv::kDone | kv::kFound | 57u);
    EXPECT_EQ(service.store().get_sync(5), 57u);
  });
}

TEST_P(KvConformance, ScanAndRangeReturnSortedSnapshot) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Store = kv::ShardedKvStore<Substrate>;
    typename Store::Config config;
    config.shards = 4;
    config.capacity_per_shard = 64;
    Store store{config, std::move(arbiter)};
    constexpr kv::Key kKeys = 20;
    for (kv::Key key = 1; key <= kKeys; ++key) {
      ASSERT_EQ(store.put_sync(key, key * 10), kv::OpStatus::kOk);
    }

    std::vector<typename Store::Entry> entries;
    store.scan(entries);
    ASSERT_EQ(entries.size(), kKeys);
    std::uint64_t scanned_sum = 0;
    for (const auto& entry : entries) {
      EXPECT_EQ(entry.value, entry.key * 10);
      scanned_sum += entry.value;
    }
    EXPECT_EQ(scanned_sum, store.value_sum_sync());

    store.range(5, 14, entries);
    ASSERT_EQ(entries.size(), 10u);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(entries[i].key, 5u + i) << "range() is sorted by key";
      EXPECT_EQ(entries[i].value, entries[i].key * 10);
    }

    // Every one of these read ops ran on the snapshot fast path.
    EXPECT_GT(store.stats().snapshot_commits.load(), 0u);
    EXPECT_GT(store.stats().snapshot_reads.load(), 0u);
  });
}

TEST_P(KvConformance, ScanStaysConsistentUnderRacingSwaps) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Store = kv::ShardedKvStore<Substrate>;
    constexpr kv::Key kKeys = 16;
    typename Store::Config config;
    config.shards = 4;
    config.capacity_per_shard = 64;
    Store store{config, std::move(arbiter)};
    std::uint64_t expected_sum = 0;
    for (kv::Key key = 1; key <= kKeys; ++key) {
      ASSERT_EQ(store.put_sync(key, key * 100), kv::OpStatus::kOk);
      expected_sum += key * 100;
    }

    // Swaps permute values between keys, so every consistent snapshot must
    // see the same value sum and the same population.  A scan stitched from
    // torn per-key reads would not.
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    const int swaps_each = 200 * stress_depth();
    for (int w = 0; w < 2; ++w) {
      writers.emplace_back([&store, w, swaps_each] {
        sim::Rng rng{0x5CA4ull * (w + 1)};
        for (int i = 0; i < swaps_each; ++i) {
          const auto a = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
          auto b = 1 + static_cast<kv::Key>(rng.uniform_below(kKeys));
          if (b == a) b = (a % kKeys) + 1;
          (void)store.swap_sync(a, b);
        }
      });
    }
    std::uint64_t scans = 0;
    std::uint64_t violations = 0;
    std::vector<typename Store::Entry> entries;
    std::thread scanner{[&] {
      // `|| scans == 0`: at depth 1 the swap burst can finish before this
      // thread is scheduled; always audit at least one full snapshot.
      while (!stop.load(std::memory_order_acquire) || scans == 0) {
        store.scan(entries);
        std::uint64_t sum = 0;
        for (const auto& entry : entries) sum += entry.value;
        if (sum != expected_sum || entries.size() != kKeys) ++violations;
        ++scans;
      }
    }};
    for (auto& writer : writers) writer.join();
    stop.store(true, std::memory_order_release);
    scanner.join();

    EXPECT_EQ(violations, 0u) << "a scan observed a torn snapshot";
    EXPECT_GE(scans, 1u);
    EXPECT_EQ(store.value_sum_sync(), expected_sum);
    EXPECT_GE(store.stats().snapshot_commits.load(), scans);
  });
}

TEST_P(KvConformance, ServiceReadRunsUseSnapshotSegments) {
  with_substrate(GetParam(), []<typename Substrate>(auto arbiter) {
    using Service = kv::KvService<Substrate>;
    typename Service::Config config;
    config.store.shards = 2;
    config.store.capacity_per_shard = 64;
    config.max_batch = 8;
    Service service{config, std::move(arbiter)};
    constexpr kv::Key kStableKeys = 16;
    for (kv::Key key = 1; key <= kStableKeys; ++key) {
      ASSERT_EQ(service.store().put_sync(key, key + 1000), kv::OpStatus::kOk);
    }
    service.start();

    // Read-heavy mix: gets target preloaded keys nothing else writes, so
    // every response value is deterministic even though puts (to a disjoint
    // key range) are interleaved in the same batches.
    constexpr int kGets = 240;
    constexpr int kPuts = 30;
    std::vector<std::atomic<std::uint64_t>> responses(kGets);
    int submitted_gets = 0;
    sim::Rng rng{0x5E6E47ull};
    for (int i = 0; i < kGets; ++i) {
      kv::Request get;
      get.op = kv::OpKind::kGet;
      get.key_a = 1 + static_cast<kv::Key>(i % kStableKeys);
      get.response = &responses[i];
      if (service.submit(get)) ++submitted_gets;
      if (i % (kGets / kPuts) == 0) {
        kv::Request put;
        put.op = kv::OpKind::kPut;
        put.key_a = 100 + static_cast<kv::Key>(rng.uniform_below(32));
        put.value = 7;
        (void)service.submit(put);
      }
    }
    service.stop();  // drains every accepted request

    for (int i = 0; i < kGets; ++i) {
      const std::uint64_t response = responses[i].load();
      if (response == 0) continue;  // queue-full rejection: no response owed
      EXPECT_EQ(response, kv::kDone | kv::kFound |
                              (1u + static_cast<kv::Key>(i % kStableKeys) +
                               1000u));
    }
    const auto& stats = service.service_stats();
    EXPECT_GT(stats.read_segments.load(), 0u)
        << "kGet runs must be served as snapshot read segments";
    EXPECT_GT(stats.write_segments.load(), 0u);
    EXPECT_GT(service.store().stats().snapshot_commits.load(), 0u)
        << "read segments must run on the substrate snapshot path";
    EXPECT_GE(stats.read_segments.load() + stats.write_segments.load(),
              stats.batches.load());
  });
}

INSTANTIATE_TEST_SUITE_P(SubstrateRoster, KvConformance,
                         ::testing::ValuesIn(kv_cases()),
                         [](const ::testing::TestParamInfo<KvCase>& info) {
                           return info.param.label;
                         });

// ---------------------------------------------------------------------------
// Boundary behavior (single representative pairing — substrate-independent)
// ---------------------------------------------------------------------------

TEST(KvStore, ShardFullIsReportedNotFatal) {
  kv::ShardedKvStore<stm::Norec>::Config config;
  config.shards = 1;
  config.capacity_per_shard = 2;
  kv::ShardedKvStore<stm::Norec> store{
      config, core::make_policy(core::StrategyKind::kRandAborts)};
  ASSERT_EQ(store.put_sync(1, 1), kv::OpStatus::kOk);
  ASSERT_EQ(store.put_sync(2, 2), kv::OpStatus::kOk);
  EXPECT_EQ(store.put_sync(3, 3), kv::OpStatus::kShardFull);
  EXPECT_EQ(store.put_sync(1, 10), kv::OpStatus::kOk)
      << "overwrite of a resident key needs no free slot";
  EXPECT_FALSE(store.get_sync(3).has_value());
  EXPECT_EQ(store.size_sync(), 2u);
}

TEST(KvStore, CrossShardSwapSpansShardRegions) {
  kv::ShardedKvStore<stm::Stm>::Config config;
  config.shards = 4;
  config.capacity_per_shard = 32;
  kv::ShardedKvStore<stm::Stm> store{
      config, conflict::make_cm(conflict::CmKind::kKarma)};
  // Find two keys living on different shards (must exist: 4 shards, the
  // mix spreads consecutive keys).
  kv::Key a = 1;
  kv::Key b = 2;
  while (store.shard_of(b) == store.shard_of(a)) ++b;
  ASSERT_NE(store.shard_of(a), store.shard_of(b));
  ASSERT_EQ(store.put_sync(a, 111), kv::OpStatus::kOk);
  ASSERT_EQ(store.put_sync(b, 222), kv::OpStatus::kOk);
  ASSERT_EQ(store.swap_sync(a, b), kv::OpStatus::kOk);
  EXPECT_EQ(store.get_sync(a), 222u);
  EXPECT_EQ(store.get_sync(b), 111u);
}

TEST(KvService, FullQueueRejectsInsteadOfBlocking) {
  kv::KvService<stm::Norec>::Config config;
  config.store.shards = 1;
  config.store.capacity_per_shard = 64;
  config.queue_capacity = 4;
  kv::KvService<stm::Norec> service{
      config, core::make_policy(core::StrategyKind::kRandAborts)};
  // Workers not started: the queue must fill and then reject.
  kv::Request request;
  request.op = kv::OpKind::kPut;
  request.key_a = 1;
  request.value = 1;
  int accepted = 0;
  for (int i = 0; i < 8; ++i) {
    if (service.submit(request)) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(service.service_stats().rejected.load(), 4u);
  service.start();
  service.stop();  // drain the backlog
  EXPECT_EQ(service.service_stats().completed.load(), 4u);
}

// ---------------------------------------------------------------------------
// kv::BoundedMpmcQueue
// ---------------------------------------------------------------------------

TEST(BoundedMpmcQueue, FifoAndCapacity) {
  kv::BoundedMpmcQueue<std::uint64_t> queue{4};
  EXPECT_EQ(queue.capacity(), 4u);
  std::uint64_t out = 0;
  EXPECT_FALSE(queue.try_pop(out));
  for (std::uint64_t i = 1; i <= 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(5)) << "full ring must reject";
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
  // Wrap-around reuse.
  for (std::uint64_t round = 0; round < 12; ++round) {
    EXPECT_TRUE(queue.try_push(round));
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(BoundedMpmcQueue, MpmcConservesElements) {
  kv::BoundedMpmcQueue<std::uint64_t> queue{256};
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  const int per_producer = 20000 * stress_depth();
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::atomic<int> producers_live{kProducers};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        const auto value =
            static_cast<std::uint64_t>(p) * per_producer + i + 1;
        while (!queue.try_push(value)) std::this_thread::yield();
      }
      producers_live.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t value = 0;
      for (;;) {
        if (queue.try_pop(value)) {
          popped_sum.fetch_add(value, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_live.load(std::memory_order_acquire) == 0) {
          if (!queue.try_pop(value)) break;  // one re-probe after quiesce
          popped_sum.fetch_add(value, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::uint64_t expected_sum = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < per_producer; ++i) {
      expected_sum += static_cast<std::uint64_t>(p) * per_producer + i + 1;
    }
  }
  EXPECT_EQ(popped_count.load(),
            static_cast<std::uint64_t>(kProducers) * per_producer);
  EXPECT_EQ(popped_sum.load(), expected_sum);
}

// ---------------------------------------------------------------------------
// core::LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, SmallValuesAreExact) {
  core::LatencyHistogram histogram;
  for (std::uint64_t v = 0; v < 32; ++v) histogram.record(v);
  EXPECT_EQ(histogram.count(), 32u);
  EXPECT_EQ(histogram.quantile(0.0), 0u);
  // Values below kSubBuckets land in singleton buckets: quantiles exact.
  EXPECT_EQ(histogram.quantile(0.5), 15u);
  EXPECT_EQ(histogram.quantile(1.0), 31u);
}

TEST(LatencyHistogram, QuantilesBoundedByLogBucketWidth) {
  core::LatencyHistogram histogram;
  sim::Rng rng{99};
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    // Spread over ~6 decades.
    const std::uint64_t value = 1 + (rng() % (std::uint64_t{1} << (rng() % 40)));
    samples.push_back(value);
    histogram.record(value);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const auto approx = histogram.quantile(q);
    // Upper-edge estimate: never below the exact sample's bucket, and at
    // most one sub-bucket width (~1/32 relative) above it.
    EXPECT_GE(static_cast<double>(approx), static_cast<double>(exact) * 0.96)
        << "q=" << q;
    EXPECT_LE(static_cast<double>(approx), static_cast<double>(exact) * 1.07)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeAndResetFold) {
  core::LatencyHistogram a;
  core::LatencyHistogram b;
  for (std::uint64_t v = 0; v < 100; ++v) (v % 2 ? a : b).record(v * 1000);
  core::LatencyHistogram merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_EQ(merged.quantile(1.0), a.quantile(1.0));
  merged.reset();
  EXPECT_EQ(merged.count(), 0u);
  EXPECT_EQ(merged.quantile(0.99), 0u);
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  core::LatencyHistogram histogram;
  constexpr int kThreads = 4;
  const int per_thread = 50000 * stress_depth();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t, per_thread] {
      sim::Rng rng{static_cast<std::uint64_t>(t) + 1};
      for (int i = 0; i < per_thread; ++i) histogram.record(rng() % 1000000);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * per_thread);
}

}  // namespace
