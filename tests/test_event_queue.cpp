// Unit tests for the discrete-event kernel: time ordering, FIFO tie-breaking,
// cancellation, and run limits — the determinism guarantees the HTM simulator
// depends on.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/trace.hpp"

namespace {

using txc::sim::EventHandle;
using txc::sim::EventQueue;
using txc::sim::Tick;
using txc::sim::Trace;
using txc::sim::TraceCategory;

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(30, [&] { order.push_back(3); });
  queue.schedule_at(10, [&] { order.push_back(1); });
  queue.schedule_at(20, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  queue.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackCanSchedule) {
  EventQueue queue;
  std::vector<Tick> times;
  queue.schedule_at(1, [&] {
    times.push_back(queue.now());
    queue.schedule_after(4, [&] { times.push_back(queue.now()); });
  });
  queue.run();
  EXPECT_EQ(times, (std::vector<Tick>{1, 5}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  int fired = 0;
  const EventHandle handle = queue.schedule_at(10, [&] { ++fired; });
  queue.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));  // double cancel is a no-op
  queue.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelInvalidHandle) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(EventHandle{}));
  EXPECT_FALSE(queue.cancel(EventHandle{999}));
}

TEST(EventQueue, RunHonorsLimit) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(10, [&] { ++fired; });
  queue.schedule_at(100, [&] { ++fired; });
  queue.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 50u);  // time advances to the limit
  queue.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesAtMostOne) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1, [&] { ++fired; });
  queue.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(queue.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(queue.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(queue.step());
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  const auto handle = queue.schedule_at(5, [] {});
  queue.schedule_at(6, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  queue.cancel(handle);
  EXPECT_EQ(queue.pending(), 1u);
  queue.run();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.executed(), 1u);
}

TEST(Trace, RingBufferKeepsMostRecent) {
  Trace trace{3};
  trace.enable();
  for (int i = 0; i < 5; ++i) {
    trace.record(static_cast<Tick>(i), TraceCategory::kCore, i,
                 "event " + std::to_string(i));
  }
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.at(0).time, 2u);
  EXPECT_EQ(trace.at(2).time, 4u);
  EXPECT_NE(trace.dump().find("event 4"), std::string::npos);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace trace{8};
  trace.record(1, TraceCategory::kConflict, 0, "ignored");
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
