// Property tests for the optimal grace-period densities (Theorems 1-6).
//
// Every density family is swept over chain lengths and abort costs and must
// satisfy: non-negativity on the support, normalization to 1, CDF consistency
// with the PDF, quantile/CDF inversion, and sampler agreement with the CDF
// (Kolmogorov-Smirnov).  Hand-computed closed-form spot checks pin the exact
// constants, including the corrected Theorem 6 coefficients (see DESIGN.md).
#include "core/densities.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/math.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace {

using namespace txc::core;
using txc::sim::Rng;
using txc::sim::Samples;

constexpr double kTol = 1e-6;

/// Shared property battery.
template <typename Density>
void check_density_properties(const Density& density, double abort_cost) {
  const double support = density.support_max();
  ASSERT_GT(support, 0.0);

  // Non-negative on the support, zero outside.
  for (int i = 0; i <= 200; ++i) {
    const double x = support * i / 200.0;
    ASSERT_GE(density.pdf(x), -kTol) << "pdf negative at " << x;
  }
  EXPECT_EQ(density.pdf(-0.001 * abort_cost), 0.0);
  EXPECT_EQ(density.pdf(support * 1.001), 0.0);

  // Normalization.
  const double mass =
      integrate([&](double x) { return density.pdf(x); }, 0.0, support, 4096);
  EXPECT_NEAR(mass, 1.0, 1e-6);

  // CDF boundary values and agreement with the integral of the PDF.
  EXPECT_EQ(density.cdf(0.0), 0.0);
  EXPECT_NEAR(density.cdf(support), 1.0, kTol);
  for (const double frac : {0.1, 0.35, 0.65, 0.9}) {
    const double x = support * frac;
    const double integral =
        integrate([&](double t) { return density.pdf(t); }, 0.0, x, 4096);
    EXPECT_NEAR(density.cdf(x), integral, 1e-6) << "at x = " << x;
  }

  // CDF is monotone.
  double previous = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double value = density.cdf(support * i / 100.0);
    ASSERT_GE(value, previous - kTol);
    previous = value;
  }

  // Quantile inverts the CDF.
  for (const double u : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    const double x = density.quantile(u);
    EXPECT_NEAR(density.cdf(x), u, 1e-5) << "u = " << u;
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, support * (1.0 + 1e-9));
  }

  // Sampler matches the CDF (KS test; 20k samples -> KS ~ 0.01 expected).
  Rng rng{2024};
  Samples samples;
  for (int i = 0; i < 20000; ++i) samples.add(density.sample(rng));
  const double ks =
      samples.ks_statistic([&](double x) { return density.cdf(x); });
  EXPECT_LT(ks, 0.02);
}

// ---------------------------------------------------------------------------
// Parameterized sweeps
// ---------------------------------------------------------------------------

class AllChainLengths : public ::testing::TestWithParam<std::tuple<int, double>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllChainLengths,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 8, 16, 32),
                       ::testing::Values(1.0, 100.0, 2000.0)),
    [](const auto& param_info) {
      return "k" + std::to_string(std::get<0>(param_info.param)) + "_B" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param)));
    });

TEST_P(AllChainLengths, UniformWins) {
  const auto [k, B] = GetParam();
  check_density_properties(UniformWinsDensity{B, k}, B);
}

TEST_P(AllChainLengths, PowerWins) {
  const auto [k, B] = GetParam();
  check_density_properties(PowerWinsDensity{B, k}, B);
}

TEST_P(AllChainLengths, ExpAborts) {
  const auto [k, B] = GetParam();
  check_density_properties(ExpAbortsDensity{B, k}, B);
}

TEST_P(AllChainLengths, ExpMeanAborts) {
  const auto [k, B] = GetParam();
  check_density_properties(ExpMeanAbortsDensity{B, k}, B);
}

class MeanWinsChainLengths
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, MeanWinsChainLengths,
    ::testing::Combine(::testing::Values(3, 4, 5, 8, 16, 32),
                       ::testing::Values(1.0, 100.0, 2000.0)),
    [](const auto& param_info) {
      return "k" + std::to_string(std::get<0>(param_info.param)) + "_B" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param)));
    });

TEST_P(MeanWinsChainLengths, PowerMeanWins) {
  const auto [k, B] = GetParam();
  check_density_properties(PowerMeanWinsDensity{B, k}, B);
}

TEST(LogMeanWins, Properties) {
  for (const double B : {1.0, 100.0, 2000.0}) {
    check_density_properties(LogMeanWinsDensity{B}, B);
  }
}

// ---------------------------------------------------------------------------
// Closed-form spot checks
// ---------------------------------------------------------------------------

TEST(GrowthRatio, ExactAtTwoAndLimit) {
  EXPECT_DOUBLE_EQ(growth_ratio(2), 2.0);
  EXPECT_NEAR(growth_ratio(3), 2.25, 1e-12);           // (3/2)^2
  EXPECT_NEAR(growth_ratio(4), 64.0 / 27.0, 1e-12);    // (4/3)^3
  EXPECT_NEAR(growth_ratio(1000), kE, 2e-3);           // -> e
  EXPECT_LT(growth_ratio(1000), kE);
}

TEST(GrowthRatio, SlopeAtTwoIsLn4Minus1) {
  // The k = 2 continuity of the corrected Theorem 6 density rests on
  // lim (r(k) - 2)/(k - 2) = ln4 - 1; check with the closed form extended to
  // non-integer k.
  const auto r = [](double k) {
    return std::exp((k - 1.0) * std::log(k / (k - 1.0)));
  };
  const double h = 1e-5;
  EXPECT_NEAR((r(2.0 + h) - 2.0) / h, kLn4Minus1, 1e-4);
}

TEST(UniformWins, ClosedForm) {
  UniformWinsDensity density{10.0, 2};
  EXPECT_DOUBLE_EQ(density.support_max(), 10.0);
  EXPECT_DOUBLE_EQ(density.pdf(5.0), 0.1);
  EXPECT_DOUBLE_EQ(density.cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(density.quantile(0.25), 2.5);

  UniformWinsDensity chained{12.0, 4};
  EXPECT_DOUBLE_EQ(chained.support_max(), 4.0);  // B/(k-1)
  EXPECT_DOUBLE_EQ(chained.pdf(1.0), 0.25);      // (k-1)/B
}

TEST(PowerWins, DegeneratesToUniformAtKTwo) {
  PowerWinsDensity power{50.0, 2};
  UniformWinsDensity uniform{50.0, 2};
  for (const double x : {0.0, 10.0, 25.0, 49.0}) {
    EXPECT_NEAR(power.pdf(x), uniform.pdf(x), 1e-12);
    EXPECT_NEAR(power.cdf(x), uniform.cdf(x), 1e-12);
  }
  EXPECT_NEAR(power.competitive_ratio(), 2.0, 1e-12);
}

TEST(PowerWins, HandComputedAtKThree) {
  // k = 3, B = 1: r = 2.25, p(x) = 2(1+x)/1.25 = 1.6(1+x) on [0, 0.5].
  PowerWinsDensity density{1.0, 3};
  EXPECT_NEAR(density.pdf(0.0), 1.6, 1e-12);
  EXPECT_NEAR(density.pdf(0.5), 2.4, 1e-12);
  EXPECT_NEAR(density.cdf(0.5), 1.0, 1e-12);
  EXPECT_NEAR(density.competitive_ratio(), 2.25 / 1.25, 1e-12);  // 1.8 < 2
}

TEST(LogMeanWins, HandComputed) {
  // B = 1: p(x) = ln(1+x)/(ln4 - 1); p(1) = ln2/(ln4-1).
  LogMeanWinsDensity density{1.0};
  EXPECT_NEAR(density.pdf(1.0), std::log(2.0) / kLn4Minus1, 1e-12);
  EXPECT_NEAR(density.pdf(0.0), 0.0, 1e-12);
  // CDF at 1: (2 ln 2 - 1)/(ln4 - 1) = 1.
  EXPECT_NEAR(density.cdf(1.0), 1.0, 1e-12);
}

TEST(PowerMeanWins, HandComputedAtKThree) {
  // k = 3, B = 1: r - 2 = 0.25, p(x) = 2((1+x) - 1)/0.25 = 8x on [0, 0.5].
  PowerMeanWinsDensity density{1.0, 3};
  EXPECT_NEAR(density.pdf(0.25), 2.0, 1e-12);
  EXPECT_NEAR(density.pdf(0.0), 0.0, 1e-12);
  EXPECT_NEAR(density.cdf(0.5), 1.0, 1e-12);
  // CDF = 4x^2 on the support.
  EXPECT_NEAR(density.cdf(0.25), 0.25, 1e-12);
  EXPECT_NEAR(density.quantile(0.25), 0.25, 1e-9);
}

TEST(PowerMeanWins, PaperPrintedDensityWouldBeNegative) {
  // Documents the Theorem 6 erratum: with the paper's printed lambda_2 (4x
  // ours) the density at 0 is negative.  Printed form at x = 0, in terms of
  // r: p(0) = (k-1)/(B(r-2)) * ((2+r)/(r-1) - 4), which is < 0 for all
  // r in (2, e).
  for (const int k : {3, 4, 8, 32}) {
    const double r = growth_ratio(k);
    const double printed_p0 = (k - 1.0) / (r - 2.0) * ((2.0 + r) / (r - 1.0) - 4.0);
    EXPECT_LT(printed_p0, 0.0) << "k = " << k;
  }
}

TEST(ExpAborts, ClassicSkiRentalAtKTwo) {
  // k = 2, B = 1: p(x) = e^x/(e-1), CR = e/(e-1).
  ExpAbortsDensity density{1.0, 2};
  EXPECT_NEAR(density.pdf(0.0), 1.0 / (kE - 1.0), 1e-12);
  EXPECT_NEAR(density.pdf(1.0), kE / (kE - 1.0), 1e-12);
  EXPECT_NEAR(density.competitive_ratio(), kE / (kE - 1.0), 1e-12);
  EXPECT_NEAR(density.quantile(1.0), 1.0, 1e-12);
}

TEST(ExpMeanAborts, Theorem2FormAtKTwo) {
  // k = 2, B = 1: p(x) = (e^x - 1)/(e - 2).
  ExpMeanAbortsDensity density{1.0, 2};
  EXPECT_NEAR(density.pdf(1.0), (kE - 1.0) / (kE - 2.0), 1e-12);
  EXPECT_NEAR(density.pdf(0.0), 0.0, 1e-12);
  EXPECT_NEAR(density.cdf(1.0), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Thresholds and closed-form ratios
// ---------------------------------------------------------------------------

TEST(Thresholds, MatchTheoremStatements) {
  EXPECT_NEAR(mean_threshold_wins(2), 2.0 * kLn4Minus1, 1e-12);
  EXPECT_NEAR(mean_threshold_aborts(2), 2.0 * (kE - 2.0) / (kE - 1.0), 1e-12);
  // k = 3 requestor wins: 2(r-2)/((k-2)(r-1)) with r = 2.25 -> 0.4.
  EXPECT_NEAR(mean_threshold_wins(3), 0.4, 1e-12);
}

TEST(Thresholds, AbortsThresholdIsLessStrict) {
  // Section 5.3: the applicability inequality "is less strict for the
  // requestor aborts case" at k = 2.
  EXPECT_GT(mean_threshold_aborts(2), mean_threshold_wins(2));
}

TEST(Ratios, ClosedForms) {
  EXPECT_DOUBLE_EQ(ratio_det_wins(2), 3.0);
  EXPECT_DOUBLE_EQ(ratio_det_wins(3), 2.5);
  EXPECT_DOUBLE_EQ(ratio_det_aborts(2), 2.0);
  EXPECT_DOUBLE_EQ(ratio_rand_wins_uniform(2), 2.0);
  EXPECT_NEAR(ratio_rand_wins_power(3), 1.8, 1e-12);
  EXPECT_NEAR(ratio_rand_aborts(2), kE / (kE - 1.0), 1e-12);
}

TEST(Ratios, MeanConstrainedImproveBelowThreshold) {
  const double B = 100.0;
  for (const int k : {2, 3, 4, 8}) {
    const double mu = 0.5 * B * mean_threshold_wins(k);
    const double constrained = ratio_rand_wins_mean(k, B, mu);
    const double unconstrained =
        k == 2 ? ratio_rand_wins_uniform(k) : ratio_rand_wins_power(k);
    EXPECT_LT(constrained, unconstrained) << "k = " << k;
    EXPECT_GT(constrained, 1.0);
  }
  for (const int k : {2, 3, 4, 8}) {
    const double mu = 0.5 * B * mean_threshold_aborts(k);
    EXPECT_LT(ratio_rand_aborts_mean(k, B, mu), ratio_rand_aborts(k));
  }
}

TEST(Ratios, MeanConstrainedFallBackAboveThreshold) {
  const double B = 100.0;
  const double mu = 3.0 * B;  // far above every threshold
  EXPECT_DOUBLE_EQ(ratio_rand_wins_mean(2, B, mu), 2.0);
  EXPECT_DOUBLE_EQ(ratio_rand_aborts_mean(2, B, mu), ratio_rand_aborts(2));
}

TEST(Ratios, Section53Comparison) {
  // Section 5.3: at k = 2 requestor aborts beats requestor wins in both
  // regimes.
  const double B = 1000.0;
  EXPECT_LT(ratio_rand_aborts(2), ratio_rand_wins_uniform(2));
  const double mu = 100.0;  // inequality holds for both
  EXPECT_LT(ratio_rand_aborts_mean(2, B, mu), ratio_rand_wins_mean(2, B, mu));
}

TEST(Ratios, ContinuityOfMeanWinsAtKTwo) {
  // The corrected Theorem 6 ratio 1 + mu(k-2)/(2B(r-2)) must approach the
  // k = 2 ratio 1 + mu/(2B(ln4-1)) as k -> 2; at k = 3 the two are already
  // within a modest factor (sanity of the limit direction).
  const double B = 1000.0;
  const double mu = 50.0;
  const double at2 = ratio_rand_wins_mean(2, B, mu);
  const double at3 = ratio_rand_wins_mean(3, B, mu);
  EXPECT_NEAR(at2, 1.0 + mu / (2.0 * B * kLn4Minus1), 1e-12);
  EXPECT_NEAR(at3, 1.0 + mu / (2.0 * B * 0.25), 1e-12);  // r(3)-2 = 0.25
  EXPECT_GT(at3, at2);  // (r-2)/(k-2) decreases from ln4-1: higher ratio at 3
}

TEST(Densities, AbortProbabilityComparison) {
  // Section 5.3 "Abort probability": with y = B (k = 2), requestor aborts is
  // less likely to abort the transaction: 1 - p... in density terms the
  // probability of committing is P(x > B) = 0 for both supports ending at B;
  // the paper's statement compares the density mass near the end point.  We
  // check the integrated form: P(abort) = F(B^-) = 1 for both, but the
  // density at B (the chance of drawing the maximal grace period window)
  // is higher for requestor aborts: p_RA(B) = e/(B(e-1)) > p_RW(B) =
  // ln2 * 2... compare directly.
  const double B = 1.0;
  ExpMeanAbortsDensity ra{B, 2};
  LogMeanWinsDensity rw{B};
  EXPECT_GT(ra.pdf(B), rw.pdf(B));
}

}  // namespace
