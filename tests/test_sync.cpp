// Tests of the spin locks and lock-based container baselines: mutual
// exclusion (the counter audit, per lock type), try_lock semantics, ticket
// fairness, MCS handoff under churn, and container conservation.
#include "sync/locks.hpp"
#include "sync/locked_containers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

using namespace txc::sync;

template <typename Lock>
void mutual_exclusion_audit(int threads, int increments) {
  Lock lock;
  std::uint64_t counter = 0;  // deliberately non-atomic
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < increments; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * increments);
}

TEST(TtasSpinlock, MutualExclusion) { mutual_exclusion_audit<TtasSpinlock>(4, 50000); }
TEST(TicketLock, MutualExclusion) { mutual_exclusion_audit<TicketLock>(4, 50000); }
TEST(McsLock, MutualExclusion) { mutual_exclusion_audit<McsLock>(4, 50000); }

TEST(TtasSpinlock, TryLockSemantics) {
  TtasSpinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock()) << "second try_lock must fail while held";
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLock, TryLockSemantics) {
  TicketLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(McsLock, TryLockSemantics) {
  McsLock lock;
  EXPECT_TRUE(lock.try_lock());
  // try_lock from another thread must fail while held.
  std::atomic<int> result{-1};
  std::thread other([&] { result = lock.try_lock() ? 1 : 0; });
  other.join();
  EXPECT_EQ(result.load(), 0);
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLock, GrantsInFifoOrder) {
  // Serialize ticket acquisition with a side lock so the acquisition order
  // is known, then verify the critical-section order matches it.
  TicketLock lock;
  std::atomic<int> next_expected{0};
  std::atomic<bool> fifo_violated{false};
  std::vector<std::thread> workers;
  std::atomic<int> started{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      // Stagger the threads so tickets are taken in thread order.
      while (started.load() != t) {
      }
      lock.lock();
      started.fetch_add(1);
      if (next_expected.fetch_add(1) != t) fifo_violated = true;
      lock.unlock();
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_FALSE(fifo_violated.load());
}

TEST(McsLock, HandoffUnderChurn) {
  // Many short critical sections with contended handoffs; the non-atomic
  // payload catches any broken handoff.
  McsLock lock;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        lock.lock();
        ++a;
        ++b;
        lock.unlock();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(a, 160000u);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Locked containers
// ---------------------------------------------------------------------------

template <typename Lock>
void stack_conservation() {
  LockedStack<Lock> stack{1 << 16};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(stack.push(1));
        if (i % 2 == 1) {
          ASSERT_TRUE(stack.pop().has_value());
          popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(stack.size() + popped.load(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LockedStack, ConservationTtas) { stack_conservation<TtasSpinlock>(); }
TEST(LockedStack, ConservationTicket) { stack_conservation<TicketLock>(); }
TEST(LockedStack, ConservationMcs) { stack_conservation<McsLock>(); }

TEST(LockedStack, SequentialLifoAndBounds) {
  LockedStack<TtasSpinlock> stack{2};
  EXPECT_TRUE(stack.push(1));
  EXPECT_TRUE(stack.push(2));
  EXPECT_FALSE(stack.push(3));
  EXPECT_EQ(stack.pop(), 2u);
  EXPECT_EQ(stack.pop(), 1u);
  EXPECT_FALSE(stack.pop().has_value());
}

TEST(LockedQueue, SequentialFifoAndBounds) {
  LockedQueue<TicketLock> queue{2};
  EXPECT_TRUE(queue.enqueue(1));
  EXPECT_TRUE(queue.enqueue(2));
  EXPECT_FALSE(queue.enqueue(3));
  EXPECT_EQ(queue.dequeue(), 1u);
  EXPECT_TRUE(queue.enqueue(3));
  EXPECT_EQ(queue.dequeue(), 2u);
  EXPECT_EQ(queue.dequeue(), 3u);
  EXPECT_FALSE(queue.dequeue().has_value());
}

TEST(LockedQueue, MpmcConservation) {
  LockedQueue<McsLock> queue{1 << 16};
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 20000;
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kProducers; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 1; i <= kPerProducer; ++i) {
        while (!queue.enqueue(static_cast<std::uint64_t>(i))) {
        }
      }
      (void)t;
    });
  }
  std::vector<std::thread> consumers;
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&] {
      while (true) {
        const auto value = queue.dequeue();
        if (value.has_value()) {
          consumed_sum.fetch_add(*value);
          consumed.fetch_add(1);
        } else if (done_producing.load()) {
          if (!queue.dequeue().has_value()) return;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  done_producing = true;
  for (auto& consumer : consumers) consumer.join();
  // Drain anything the consumers raced past.
  while (const auto value = queue.dequeue()) {
    consumed_sum.fetch_add(*value);
    consumed.fetch_add(1);
  }
  const std::uint64_t expected_each =
      static_cast<std::uint64_t>(kPerProducer) * (kPerProducer + 1) / 2;
  EXPECT_EQ(consumed.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(consumed_sum.load(), kProducers * expected_each);
}

}  // namespace
