// Golden-file tests for the figure aggregator: canned txc-bench-series/v1
// input must render to byte-identical CSV and Markdown.  The fixtures live
// in tests/data/repro/; regenerate them after an intentional format change
// with
//
//   TXC_REGOLDEN=1 ./build/tests/test_repro_aggregate
//
// and review the diff like any other code change.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "repro/aggregate.hpp"
#include "repro/roster.hpp"

namespace {

namespace fs = std::filesystem;
using namespace txc::repro;

const fs::path kDataDir = fs::path(TXC_TEST_SOURCE_DIR) / "tests" / "data" /
                          "repro";

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Compare against a golden file; under TXC_REGOLDEN=1 rewrite it instead.
void expect_matches_golden(const std::string& actual,
                           const std::string& golden_name) {
  const fs::path golden_path = kDataDir / golden_name;
  const char* regolden = std::getenv("TXC_REGOLDEN");
  if (regolden != nullptr && *regolden == '1') {
    std::ofstream out(golden_path, std::ios::binary);
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  EXPECT_EQ(actual, read_file(golden_path))
      << "aggregator output drifted from " << golden_path
      << " (if intentional: TXC_REGOLDEN=1 ./tests/test_repro_aggregate and "
         "review the diff)";
}

/// The canned figure: one healthy panel with two tables (awkward cells
/// included: commas, quotes, pipes, non-numeric entries), one failed panel.
FigureSpec canned_figure() {
  FigureSpec figure;
  figure.name = "figx";
  figure.title = "Figure X — canned aggregation fixture";
  figure.panels = {
      {"panel_alpha", "healthy panel with two tables", 2},
      {"panel_beta", "panel whose bench failed", 1},
  };
  return figure;
}

std::vector<PanelData> canned_panels(const FigureSpec& figure) {
  std::vector<PanelData> panels(2);
  panels[0].spec = figure.panels[0];
  panels[0].run.name = "panel_alpha";
  panels[0].run.exit_code = 0;
  panels[0].run.attempts = 1;
  panels[0].run.wall_ms = 123.0;
  panels[0].has_series = true;
  panels[0].series =
      read_series((kDataDir / "panel_alpha.series.json").string());

  panels[1].spec = figure.panels[1];
  panels[1].run.name = "panel_beta";
  panels[1].run.exit_code = 9;
  panels[1].run.timed_out = true;
  panels[1].run.attempts = 2;
  panels[1].run.wall_ms = 45.0;
  panels[1].has_series = false;
  return panels;
}

TEST(ReproAggregate, ParsesCannedSeries) {
  const SeriesDoc series =
      read_series((kDataDir / "panel_alpha.series.json").string());
  EXPECT_EQ(series.bench, "panel_alpha");
  EXPECT_TRUE(series.smoke);
  EXPECT_EQ(series.seed, 42u);
  ASSERT_EQ(series.tables.size(), 2u);
  EXPECT_EQ(series.tables[0].headers.size(), 4u);
  ASSERT_EQ(series.tables[0].rows.size(), 3u);
  EXPECT_EQ(series.tables[0].rows[0][0], "geometric");
  // The second table carries the awkward cells.
  EXPECT_EQ(series.tables[1].section, "ratios, quoted \"section\" | piped");
}

TEST(ReproAggregate, RejectsWrongSchema) {
  EXPECT_THROW(parse_series(R"({"schema": "txc-bench/v1", "tables": []})",
                            "inline"),
               std::runtime_error);
}

TEST(ReproAggregate, CsvMatchesGolden) {
  const FigureSpec figure = canned_figure();
  expect_matches_golden(render_figure_csv(figure, canned_panels(figure)),
                        "figx.golden.csv");
}

TEST(ReproAggregate, MarkdownMatchesGolden) {
  const FigureSpec figure = canned_figure();
  expect_matches_golden(
      render_figure_markdown(figure, canned_panels(figure), /*smoke=*/true),
      "figx.golden.md");
}

// ---------------------------------------------------------------------------
// drift table (txcrepro --drift-out)
// ---------------------------------------------------------------------------

TEST(ReproDrift, RendersVerdictPerBench) {
  BenchResult steady;   // ok in both, small drift: within threshold
  steady.name = "bench_steady";
  steady.exit_code = 0;
  steady.wall_ms = 120.0;
  BenchResult slowed;   // ok in both, 3x the baseline: regression
  slowed.name = "bench_slowed";
  slowed.exit_code = 0;
  slowed.wall_ms = 300.0;
  BenchResult fresh;    // no baseline entry
  fresh.name = "bench_new";
  fresh.exit_code = 0;
  fresh.wall_ms = 50.0;
  BenchResult noisy;    // under the noise floor, hugely "slower": still ok
  noisy.name = "bench_noisy";
  noisy.exit_code = 0;
  noisy.wall_ms = 5.0;

  BenchResult base_steady = steady;
  base_steady.wall_ms = 100.0;
  BenchResult base_slowed = slowed;
  base_slowed.wall_ms = 100.0;
  BenchResult base_noisy = noisy;
  base_noisy.wall_ms = 1.0;

  const std::vector<BenchResult> current{steady, slowed, fresh, noisy};
  const std::vector<BenchResult> baseline{base_steady, base_slowed,
                                          base_noisy};
  BaselineConfig config;
  config.wall_ratio_threshold = 1.5;
  config.min_wall_ms = 10.0;
  const auto regressions = compare_to_baseline(current, baseline, config);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].bench, "bench_slowed");

  const std::string markdown =
      render_drift_markdown(current, baseline, regressions, config);
  EXPECT_NE(markdown.find("| bench_steady | 120 | 100 | 1.20x | ok |"),
            std::string::npos)
      << markdown;
  EXPECT_NE(
      markdown.find("| bench_slowed | 300 | 100 | 3.00x | **REGRESSED** |"),
      std::string::npos)
      << markdown;
  EXPECT_NE(markdown.find("| bench_new | 50 | — | — | new (no baseline) |"),
            std::string::npos)
      << markdown;
  EXPECT_NE(markdown.find("ok (under noise floor)"), std::string::npos)
      << markdown;
  EXPECT_NE(markdown.find("1 regression(s):"), std::string::npos) << markdown;
}

TEST(ReproDrift, CleanRunSaysNoRegressions) {
  BenchResult result;
  result.name = "bench";
  result.exit_code = 0;
  result.wall_ms = 100.0;
  const std::vector<BenchResult> current{result};
  const std::vector<BenchResult> baseline{result};
  const BaselineConfig config;
  const std::string markdown = render_drift_markdown(
      current, baseline, compare_to_baseline(current, baseline, config),
      config);
  EXPECT_NE(markdown.find("No regressions."), std::string::npos) << markdown;
}

}  // namespace
