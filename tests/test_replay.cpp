// Tests of conflict-trace recording (HTM simulator side) and offline replay
// (workload side): traces are recorded faithfully, OPT lower-bounds every
// policy, the competitive guarantees hold on recorded traces, and the
// oracle replays to (near) OPT.
#include "workload/replay.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using workload::ConflictSample;
using workload::ReplayResult;

std::vector<ConflictSample> synthetic_trace(std::uint64_t seed,
                                            std::size_t count) {
  sim::Rng rng{seed};
  std::vector<ConflictSample> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ConflictSample sample;
    sample.abort_cost = rng.uniform(50.0, 500.0);
    sample.chain_length = static_cast<int>(rng.uniform_int(2, 5));
    sample.remaining = rng.exponential(120.0);
    trace.push_back(sample);
  }
  return trace;
}

std::vector<ConflictSample> recorded_trace(core::StrategyKind kind,
                                           std::uint64_t commits) {
  htm::HtmConfig config;
  config.cores = 8;
  config.policy = core::make_policy(kind);
  config.record_conflicts = true;
  config.seed = 42;
  htm::HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  (void)system.run(commits);
  std::vector<ConflictSample> trace;
  trace.reserve(system.conflict_trace().size());
  for (const htm::ConflictRecord& record : system.conflict_trace()) {
    trace.push_back({record.abort_cost, record.chain_length,
                     record.remaining});
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

TEST(TraceRecording, DisabledByDefault) {
  htm::HtmConfig config;
  config.cores = 8;
  config.policy = core::make_policy(core::StrategyKind::kRandWins);
  htm::HtmSystem system{config, std::make_shared<ds::TxAppWorkload>()};
  (void)system.run(1000);
  EXPECT_TRUE(system.conflict_trace().empty());
}

TEST(TraceRecording, RecordsPlausibleDecisionPoints) {
  const auto trace = recorded_trace(core::StrategyKind::kRandWins, 3000);
  ASSERT_GT(trace.size(), 100u) << "contended run must produce conflicts";
  for (const ConflictSample& sample : trace) {
    EXPECT_GT(sample.abort_cost, 0.0);
    EXPECT_GE(sample.chain_length, 2);
    EXPECT_LE(sample.chain_length, 8);
    EXPECT_GT(sample.remaining, 0.0);
    EXPECT_LT(sample.remaining, 10000.0);
  }
}

TEST(TraceRecording, DeterministicGivenSeed) {
  const auto a = recorded_trace(core::StrategyKind::kRandWins, 1500);
  const auto b = recorded_trace(core::StrategyKind::kRandWins, 1500);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].abort_cost, b[i].abort_cost);
    EXPECT_EQ(a[i].remaining, b[i].remaining);
  }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

TEST(Replay, OptimalLowerBoundsEveryPolicy) {
  const auto trace = synthetic_trace(7, 3000);
  for (const auto kind :
       {core::StrategyKind::kNoDelay, core::StrategyKind::kDetWins,
        core::StrategyKind::kRandWins, core::StrategyKind::kRandAborts,
        core::StrategyKind::kHybrid}) {
    const auto policy = core::make_policy(kind);
    const ReplayResult result = replay_trace(*policy, trace);
    EXPECT_GE(result.ratio_vs_optimal(), 1.0 - 1e-9)
        << core::to_string(kind);
  }
}

TEST(Replay, UniformWinsHonorsItsGuaranteeOnRecordedTraces) {
  // Theorem 5: expected conflict cost <= 2 * OPT per conflict, hence also
  // in aggregate — on a trace from an actual simulator run.
  const auto trace = recorded_trace(core::StrategyKind::kRandWins, 4000);
  const auto policy = core::make_policy(core::StrategyKind::kRandWins);
  const ReplayResult result = replay_trace(*policy, trace, 3, 64);
  EXPECT_LE(result.ratio_vs_optimal(), 2.0 + 0.05);
}

TEST(Replay, DetWinsHonorsTheorem4OnRecordedTraces) {
  const auto trace = recorded_trace(core::StrategyKind::kDetWins, 4000);
  const auto policy = core::make_policy(core::StrategyKind::kDetWins);
  const ReplayResult result = replay_trace(*policy, trace, 3, 1);
  // Ratio 2 + 1/(k-1) <= 3 for every k >= 2.
  EXPECT_LE(result.ratio_vs_optimal(), 3.0 + 1e-9);
}

TEST(Replay, OracleReplaysToOptimal) {
  // Feed the oracle the recorded remaining time: its cost equals OPT.
  const auto trace = synthetic_trace(11, 2000);
  core::OraclePolicy oracle;
  sim::Rng rng{5};
  double oracle_total = 0.0;
  for (const ConflictSample& sample : trace) {
    core::ConflictContext context;
    context.abort_cost = sample.abort_cost;
    context.chain_length = sample.chain_length;
    context.remaining_hint = sample.remaining;
    const double grace = oracle.grace_period(context, rng);
    oracle_total += core::conflict_cost(core::ResolutionMode::kRequestorWins,
                                        grace, sample.remaining,
                                        sample.chain_length,
                                        sample.abort_cost);
  }
  const double opt = workload::offline_optimal_total(
      core::ResolutionMode::kRequestorWins, trace);
  EXPECT_NEAR(oracle_total / opt, 1.0, 1e-9);
}

TEST(Replay, NoDelayCostsExactlyBPlusNothing) {
  // NO_DELAY always aborts at grace 0: RW cost is exactly B per conflict.
  const std::vector<ConflictSample> trace = {{100.0, 2, 50.0},
                                             {200.0, 3, 10.0}};
  const auto policy = core::make_policy(core::StrategyKind::kNoDelay);
  const ReplayResult result = replay_trace(*policy, trace, 1, 1);
  EXPECT_DOUBLE_EQ(result.total_cost, 300.0);
}

TEST(Replay, RatioComputationSane) {
  const std::vector<ConflictSample> trace = {{100.0, 2, 50.0}};
  // OPT = min((k-1)D, B) = 50.
  EXPECT_DOUBLE_EQ(workload::offline_optimal_total(
                       core::ResolutionMode::kRequestorWins, trace),
                   50.0);
  const auto policy = core::make_policy(core::StrategyKind::kNoDelay);
  const ReplayResult result = replay_trace(*policy, trace, 1, 1);
  EXPECT_DOUBLE_EQ(result.ratio_vs_optimal(), 100.0 / 50.0);
  EXPECT_DOUBLE_EQ(result.mean_cost(), 100.0);
}

TEST(Replay, EmptyTraceIsHarmless) {
  const std::vector<ConflictSample> trace;
  const auto policy = core::make_policy(core::StrategyKind::kRandWins);
  const ReplayResult result = replay_trace(*policy, trace);
  EXPECT_EQ(result.conflicts, 0u);
  EXPECT_DOUBLE_EQ(result.mean_cost(), 0.0);
  EXPECT_DOUBLE_EQ(result.ratio_vs_optimal(), 0.0);
}

}  // namespace
