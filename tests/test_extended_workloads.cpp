// Integration tests of the extended workloads on the HTM simulator: the bank
// conserves money under every policy, the Zipf application skews load onto
// hot objects, read-mostly transactions mostly commit read-only, and list
// traversals produce length-dependent transactions.
#include "ds/extended_workloads.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/policy.hpp"
#include "htm/htm.hpp"

namespace {

using namespace txc;
using namespace txc::htm;
using namespace txc::ds;

HtmConfig config_for(std::uint32_t cores, core::StrategyKind kind) {
  HtmConfig config;
  config.cores = cores;
  config.policy = core::make_policy(kind);
  config.seed = 321;
  return config;
}

// ---------------------------------------------------------------------------
// Bank
// ---------------------------------------------------------------------------

TEST(BankWorkload, ConservationUnderEveryPolicy) {
  for (const auto kind :
       {core::StrategyKind::kNoDelay, core::StrategyKind::kDetWins,
        core::StrategyKind::kRandWins, core::StrategyKind::kRandAborts,
        core::StrategyKind::kHybrid, core::StrategyKind::kAdaptiveTuned}) {
    auto config = config_for(8, kind);
    if (core::make_policy(kind)->mode() ==
        core::ResolutionMode::kRequestorAborts) {
      config.mode = core::ResolutionMode::kRequestorAborts;
    }
    auto workload = std::make_shared<BankWorkload>();
    HtmSystem system{config, workload};
    const auto stats = system.run(3000);
    EXPECT_EQ(stats.commits, 3000u);
    std::uint64_t sum = 0;
    for (std::uint32_t account = 0; account < workload->accounts();
         ++account) {
      sum += system.memory_value(kAccountBaseLine + account);
    }
    // Every transfer adds and subtracts the same amount: the (wrapping)
    // total must be exactly zero.
    EXPECT_EQ(sum, 0u) << core::to_string(kind);
  }
}

TEST(BankWorkload, TransfersTouchDistinctAccounts) {
  BankWorkload workload;
  sim::Rng rng{5};
  for (int i = 0; i < 500; ++i) {
    const Transaction tx = workload.next_transaction(0, rng);
    ASSERT_EQ(tx.size(), 5u);
    EXPECT_NE(tx[0].line, tx[1].line) << "from == to breaks conservation";
    EXPECT_EQ(tx[3].line, tx[0].line);
    EXPECT_EQ(tx[4].line, tx[1].line);
  }
}

TEST(BankWorkload, FewAccountsContendMore) {
  BankWorkload::Params tight;
  tight.accounts = 4;
  auto contended_config = config_for(8, core::StrategyKind::kNoDelay);
  HtmSystem contended{contended_config,
                      std::make_shared<BankWorkload>(tight)};
  const auto contended_stats = contended.run(3000);

  BankWorkload::Params wide;
  wide.accounts = 512;
  auto relaxed_config = config_for(8, core::StrategyKind::kNoDelay);
  HtmSystem relaxed{relaxed_config, std::make_shared<BankWorkload>(wide)};
  const auto relaxed_stats = relaxed.run(3000);

  EXPECT_GT(contended_stats.abort_rate(), relaxed_stats.abort_rate());
}

// ---------------------------------------------------------------------------
// Zipf transactional application
// ---------------------------------------------------------------------------

TEST(ZipfTxApp, AtomicAndConservesTotalIncrements) {
  auto config = config_for(8, core::StrategyKind::kRandWins);
  HtmSystem system{config, std::make_shared<ZipfTxAppWorkload>()};
  const auto stats = system.run(3000);
  std::uint64_t total = 0;
  for (std::uint32_t object = 0; object < kObjectCount; ++object) {
    total += system.memory_value(kObjectBaseLine + object);
  }
  EXPECT_EQ(total, stats.commits * 2);
}

TEST(ZipfTxApp, SkewConcentratesUpdatesOnHotObjects) {
  ZipfTxAppWorkload::Params params;
  params.skew = 1.2;
  auto config = config_for(8, core::StrategyKind::kRandWins);
  HtmSystem system{config, std::make_shared<ZipfTxAppWorkload>(params)};
  const auto stats = system.run(4000);
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
  for (std::uint32_t object = 0; object < kObjectCount; ++object) {
    const std::uint64_t value =
        system.memory_value(kObjectBaseLine + object);
    if (object < 8) {
      head += value;
    } else {
      tail += value;
    }
  }
  EXPECT_GT(head, tail) << "top-8 objects must absorb most updates";
  EXPECT_EQ(head + tail, stats.commits * 2);
}

TEST(ZipfTxApp, HigherSkewRaisesContention) {
  const auto abort_rate_at = [](double skew) {
    ZipfTxAppWorkload::Params params;
    params.skew = skew;
    auto config = config_for(16, core::StrategyKind::kNoDelay);
    HtmSystem system{config, std::make_shared<ZipfTxAppWorkload>(params)};
    return system.run(4000).abort_rate();
  };
  EXPECT_GT(abort_rate_at(1.5), abort_rate_at(0.0));
}

// ---------------------------------------------------------------------------
// Read-mostly
// ---------------------------------------------------------------------------

TEST(ReadMostly, MostTransactionsAreReadOnly) {
  ReadMostlyWorkload workload;
  sim::Rng rng{9};
  int writers = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    const Transaction tx = workload.next_transaction(0, rng);
    for (const TxOp& op : tx) {
      if (op.kind == TxOp::Kind::kRmw) {
        ++writers;
        break;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(writers) / kTrials, 0.1, 0.03);
}

TEST(ReadMostly, LowAbortRateUnderContention) {
  auto config = config_for(16, core::StrategyKind::kNoDelay);
  HtmSystem system{config, std::make_shared<ReadMostlyWorkload>()};
  const auto stats = system.run(4000);
  EXPECT_EQ(stats.commits, 4000u);
  // Readers do not conflict with each other; only the ~10% writers can
  // collide, so the abort rate stays far below a write-heavy workload's.
  EXPECT_LT(stats.abort_rate(), 0.1);
}

TEST(ReadMostly, WriteFractionOneBehavesLikeWriters) {
  ReadMostlyWorkload::Params params;
  params.write_fraction = 1.0;
  params.objects = 4;  // few objects: writers collide
  auto config = config_for(8, core::StrategyKind::kNoDelay);
  HtmSystem system{config, std::make_shared<ReadMostlyWorkload>(params)};
  const auto stats = system.run(2000);
  EXPECT_GT(stats.aborts, 0u);
}

// ---------------------------------------------------------------------------
// Linked list
// ---------------------------------------------------------------------------

TEST(List, TransactionLengthGrowsWithPosition) {
  ListWorkload workload;
  sim::Rng rng{13};
  std::size_t min_ops = SIZE_MAX;
  std::size_t max_ops = 0;
  for (int i = 0; i < 200; ++i) {
    const Transaction tx = workload.next_transaction(0, rng);
    min_ops = std::min(min_ops, tx.size());
    max_ops = std::max(max_ops, tx.size());
  }
  EXPECT_LT(min_ops, max_ops)
      << "random insertion points must vary the transaction length";
  // Shortest possible: read node 0 + work + RMW = 3 ops.
  EXPECT_LE(min_ops, 5u);
  // Longest: 32 reads + 32 works + RMW.
  EXPECT_GT(max_ops, 20u);
}

TEST(List, RunsAtomicallyUnderContention) {
  auto config = config_for(8, core::StrategyKind::kRandWins);
  HtmSystem system{config, std::make_shared<ListWorkload>()};
  const auto stats = system.run(2000);
  EXPECT_EQ(stats.commits, 2000u);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 32; ++i) {
    total += system.memory_value(kListBaseLine + i);
  }
  EXPECT_EQ(total, stats.commits);
}

TEST(List, PrefixConflictsCauseAborts) {
  // Every writer updates a node inside other walkers' read prefixes, so a
  // contended run must produce read-write conflicts.
  auto config = config_for(16, core::StrategyKind::kNoDelay);
  HtmSystem system{config, std::make_shared<ListWorkload>()};
  const auto stats = system.run(3000);
  EXPECT_GT(stats.conflicts, 0u);
}

}  // namespace
