// Build-sanity umbrella test.  The heavy lifting happens at compile time:
// tests/CMakeLists.txt generates one translation unit per public header in
// src/, each including the header twice with no other includes, so any
// header that is not self-contained (missing includes, missing guard,
// declaration-order bugs) breaks this binary's build.  The runtime cases
// below assert the roster itself stays honest.
#include "header_manifest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <string_view>

namespace {

using txc::testing::kCheckedHeaders;

TEST(BuildSanity, EveryPublicHeaderIsChecked) {
  // The glob in tests/CMakeLists.txt must have found the whole tree: all
  // ten subsystem directories plus the umbrella header.
  EXPECT_GE(kCheckedHeaders.size(), 28u);

  const std::set<std::string> prefixes = [] {
    std::set<std::string> out;
    for (std::string_view header : kCheckedHeaders) {
      const auto slash = header.find('/');
      if (slash != std::string_view::npos) {
        out.emplace(header.substr(0, slash));
      }
    }
    return out;
  }();
  for (const char* subsystem :
       {"core", "ds", "htm", "lockfree", "mem", "noc", "sim", "stm", "sync",
        "workload"}) {
    EXPECT_TRUE(prefixes.count(subsystem))
        << "no public header checked under src/" << subsystem << '/';
  }
  EXPECT_TRUE(std::any_of(
      kCheckedHeaders.begin(), kCheckedHeaders.end(),
      [](std::string_view header) { return header == "txconflict.hpp"; }))
      << "umbrella header missing from the standalone-compile roster";
}

TEST(BuildSanity, RosterIsSortedAndUnique) {
  EXPECT_TRUE(std::is_sorted(kCheckedHeaders.begin(), kCheckedHeaders.end()));
  EXPECT_EQ(std::adjacent_find(kCheckedHeaders.begin(), kCheckedHeaders.end()),
            kCheckedHeaders.end());
}

}  // namespace
