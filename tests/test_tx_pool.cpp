// TxPool + transactional linked structures: lifecycle, speculative
// semantics, reclamation, and conservation.
//
// The deterministic half white-boxes the pool's state machine through its
// quiescent audits (free/limbo/live counts must conserve capacity at every
// quiescent point) and pins down the speculative contracts on BOTH
// substrates: tx_alloc returns nullptr on exhaustion without aborting, an
// aborted attempt's allocations are recycled (TxAbort and user exceptions
// alike), frees defer to commit and respect the epoch grace, double frees
// are counted-and-dropped, and a pinned reader provably blocks reclamation.
// The stochastic half runs a randomized multi-thread queue<->stack transfer
// workload and re-asserts conservation; depth scales with TXC_STRESS_DEPTH.
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "conflict/managers.hpp"
#include "ds/tx_queue.hpp"
#include "ds/tx_stack.hpp"
#include "mem/reclaim.hpp"
#include "mem/tx_pool.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;

int stress_depth() {
  if (const char* env = std::getenv("TXC_STRESS_DEPTH")) {
    const int depth = std::atoi(env);
    if (depth > 0) return depth;
  }
  return 1;
}

template <typename Substrate>
Substrate make_substrate() {
  return Substrate{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
}

/// free + limbo + live must equal capacity at every quiescent point.
void expect_conserved(mem::TxPool& pool, const char* where) {
  EXPECT_EQ(pool.free_blocks() + pool.limbo_blocks() + pool.live_blocks(),
            pool.capacity())
      << where;
}

// ---------------------------------------------------------------------------
// Geometry and direct (non-transactional) lifecycle
// ---------------------------------------------------------------------------

TEST(TxPoolGeometry, IndexRoundTripOwnershipAndRegionSpec) {
  mem::TxPool pool{8, 2};
  EXPECT_EQ(pool.capacity(), 8u);
  EXPECT_EQ(pool.cells_per_block(), 2u);
  for (std::size_t index = 0; index < pool.capacity(); ++index) {
    stm::Cell* block = pool.block_at(index);
    EXPECT_EQ(pool.index_of(block), index);
    EXPECT_EQ(pool.index_of(block + 1), index) << "any cell inside the block";
    EXPECT_TRUE(pool.owns(block));
  }
  stm::Cell outside;
  EXPECT_FALSE(pool.owns(&outside));

  const stm::RegionSpec spec = pool.region_spec();
  EXPECT_EQ(spec.base, pool.block_at(0));
  EXPECT_EQ(spec.elements, 16u);  // capacity * cells_per_block
  EXPECT_EQ(spec.stride_bytes, sizeof(stm::Cell));
  // Both substrates must accept it.
  make_substrate<stm::Stm>().register_region(spec);
  make_substrate<stm::Norec>().register_region(spec);
}

TEST(TxPoolLifecycle, BootstrapExhaustionAndRecycle) {
  mem::TxPool pool{4, 1};
  EXPECT_EQ(pool.free_blocks(), 4u);
  std::vector<stm::Cell*> blocks;
  for (int i = 0; i < 4; ++i) {
    stm::Cell* block = pool.bootstrap_alloc();
    ASSERT_NE(block, nullptr);
    blocks.push_back(block);
  }
  EXPECT_EQ(pool.live_blocks(), 4u);
  EXPECT_EQ(pool.bootstrap_alloc(), nullptr) << "empty pool must report so";
  EXPECT_GE(pool.stats().exhaustion_failures.load(), 1u);
  expect_conserved(pool, "fully allocated");

  // Abort-style recycling skips the grace entirely: immediately reusable.
  pool.recycle_aborted(blocks.back());
  EXPECT_EQ(pool.free_blocks(), 1u);
  EXPECT_NE(pool.bootstrap_alloc(), nullptr);

  // Commit-style frees go through limbo and need the grace to elapse.
  for (int i = 0; i < 3; ++i) pool.publish_free(blocks[i]);
  EXPECT_EQ(pool.limbo_blocks(), 3u);
  EXPECT_EQ(pool.stats().frees.load(), 3u);
  expect_conserved(pool, "limbo holds the freed blocks");
  (void)pool.quiesce_reclaim();
  EXPECT_EQ(pool.limbo_blocks(), 0u);
  EXPECT_EQ(pool.free_blocks(), 3u);
  EXPECT_EQ(pool.stats().reclaimed.load(), 3u);
  expect_conserved(pool, "after quiesce_reclaim");
}

TEST(TxPoolLifecycle, DirectDoubleFreeIsCountedAndDropped) {
  mem::TxPool pool{2, 1};
  stm::Cell* block = pool.bootstrap_alloc();
  ASSERT_NE(block, nullptr);
  pool.publish_free(block);
  pool.publish_free(block);  // double free: dropped, not fatal
  pool.recycle_aborted(block);  // and a recycle of a non-live block too
  EXPECT_EQ(pool.stats().double_free_rejects.load(), 2u);
  EXPECT_EQ(pool.limbo_blocks(), 1u);
  expect_conserved(pool, "double free must not corrupt the counts");
}

TEST(TxPoolReclaim, PinnedReaderBlocksReclamation) {
  mem::TxPool pool{1, 1};
  stm::Cell* block = pool.bootstrap_alloc();
  ASSERT_NE(block, nullptr);
  {
    mem::reclaim::EpochPinGuard pin;  // emulates an in-flight reader
    pool.publish_free(block);
    // Another thread drives reclamation as hard as it can: the pin caps
    // epoch advancement, so the block must stay in limbo.
    std::thread reclaimer{[&] { (void)pool.quiesce_reclaim(); }};
    reclaimer.join();
    EXPECT_EQ(pool.limbo_blocks(), 1u) << "pinned reader must block reclaim";
    EXPECT_EQ(pool.free_blocks(), 0u);
  }
  // Unpinned: the grace can elapse now.
  (void)pool.quiesce_reclaim();
  EXPECT_EQ(pool.limbo_blocks(), 0u);
  EXPECT_EQ(pool.free_blocks(), 1u);
  expect_conserved(pool, "after the pin released");
}

// ---------------------------------------------------------------------------
// Speculative semantics on both substrates
// ---------------------------------------------------------------------------

template <typename Substrate>
void exhaustion_is_clean_in_tx() {
  Substrate stm = make_substrate<Substrate>();
  mem::TxPool pool{2, 1};
  stm.register_region(pool.region_spec());
  stm::Cell witness;
  bool third_was_null = false;
  stm.atomically([&](typename Substrate::TxContext& tx) {
    stm::Cell* a = tx.tx_alloc(pool);
    stm::Cell* b = tx.tx_alloc(pool);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    third_was_null = tx.tx_alloc(pool) == nullptr;
    tx.write(witness, 1);  // the transaction itself proceeds and commits
  });
  EXPECT_TRUE(third_was_null) << "exhaustion must be a clean nullptr";
  EXPECT_EQ(Substrate::read_committed(witness), 1u)
      << "the transaction must still commit after a failed tx_alloc";
  EXPECT_EQ(pool.live_blocks(), 2u);
  EXPECT_GE(pool.stats().exhaustion_failures.load(), 1u);
  expect_conserved(pool, "after in-tx exhaustion");
}

TEST(TxAllocTl2, ExhaustionIsCleanInTx) { exhaustion_is_clean_in_tx<stm::Stm>(); }
TEST(TxAllocNorec, ExhaustionIsCleanInTx) {
  exhaustion_is_clean_in_tx<stm::Norec>();
}

template <typename Substrate>
void abort_recycles_allocs() {
  Substrate stm = make_substrate<Substrate>();
  mem::TxPool pool{4, 1};
  stm.register_region(pool.region_spec());
  stm::Cell witness;
  stm.atomically([&](typename Substrate::TxContext& tx) {
    if (tx.attempt() == 0) {
      ASSERT_NE(tx.tx_alloc(pool), nullptr);
      ASSERT_NE(tx.tx_alloc(pool), nullptr);
      throw stm::TxAbort{};  // self-abort with two speculative blocks held
    }
    tx.write(witness, 7);
  });
  EXPECT_EQ(Substrate::read_committed(witness), 7u);
  EXPECT_EQ(pool.stats().abort_recycles.load(), 2u);
  EXPECT_EQ(pool.live_blocks(), 0u) << "aborted allocs must not leak";
  EXPECT_EQ(pool.free_blocks(), 4u)
      << "abort recycling skips the grace (never published)";
  expect_conserved(pool, "after abort rollback");
}

TEST(TxAllocTl2, AbortRecyclesAllocs) { abort_recycles_allocs<stm::Stm>(); }
TEST(TxAllocNorec, AbortRecyclesAllocs) { abort_recycles_allocs<stm::Norec>(); }

template <typename Substrate>
void user_exception_recycles_allocs() {
  Substrate stm = make_substrate<Substrate>();
  mem::TxPool pool{2, 1};
  stm.register_region(pool.region_spec());
  EXPECT_THROW(
      stm.atomically([&](typename Substrate::TxContext& tx) {
        ASSERT_NE(tx.tx_alloc(pool), nullptr);
        throw std::runtime_error{"body escaped"};
      }),
      std::runtime_error);
  EXPECT_EQ(pool.stats().abort_recycles.load(), 1u);
  EXPECT_EQ(pool.live_blocks(), 0u)
      << "a user exception must roll speculative allocs back";
  expect_conserved(pool, "after user-exception rollback");
}

TEST(TxAllocTl2, UserExceptionRecyclesAllocs) {
  user_exception_recycles_allocs<stm::Stm>();
}
TEST(TxAllocNorec, UserExceptionRecyclesAllocs) {
  user_exception_recycles_allocs<stm::Norec>();
}

template <typename Substrate>
void free_defers_to_commit() {
  Substrate stm = make_substrate<Substrate>();
  mem::TxPool pool{2, 1};
  stm.register_region(pool.region_spec());
  stm::Cell* block = nullptr;
  stm.atomically([&](typename Substrate::TxContext& tx) {
    block = tx.tx_alloc(pool);
    ASSERT_NE(block, nullptr);
    tx.write(block[0], 42);
  });
  EXPECT_EQ(pool.live_blocks(), 1u);
  EXPECT_EQ(Substrate::read_committed(block[0]), 42u);

  // An aborted attempt's tx_free must NOT publish: run one attempt that
  // frees and aborts, then one that frees and commits.
  stm.atomically([&](typename Substrate::TxContext& tx) {
    tx.tx_free(pool, block);
    if (tx.attempt() == 0) throw stm::TxAbort{};
  });
  EXPECT_EQ(pool.stats().frees.load(), 1u)
      << "only the committed attempt's free may publish";
  EXPECT_EQ(pool.live_blocks(), 0u);
  EXPECT_EQ(pool.limbo_blocks(), 1u) << "committed free parks in limbo";
  (void)pool.quiesce_reclaim();
  EXPECT_EQ(pool.free_blocks(), 2u);
  expect_conserved(pool, "after deferred free + reclaim");
}

TEST(TxAllocTl2, FreeDefersToCommit) { free_defers_to_commit<stm::Stm>(); }
TEST(TxAllocNorec, FreeDefersToCommit) { free_defers_to_commit<stm::Norec>(); }

template <typename Substrate>
void alloc_then_free_same_tx() {
  Substrate stm = make_substrate<Substrate>();
  mem::TxPool pool{2, 1};
  stm.register_region(pool.region_spec());
  stm.atomically([&](typename Substrate::TxContext& tx) {
    stm::Cell* block = tx.tx_alloc(pool);
    ASSERT_NE(block, nullptr);
    tx.write(block[0], 9);
    tx.tx_free(pool, block);  // allocated and freed in one transaction
  });
  EXPECT_EQ(pool.live_blocks(), 0u);
  EXPECT_EQ(pool.limbo_blocks(), 1u)
      << "same-tx alloc+free resolves to a published free at commit";
  EXPECT_EQ(pool.stats().double_free_rejects.load(), 0u);
  expect_conserved(pool, "after same-tx alloc+free");
}

TEST(TxAllocTl2, AllocThenFreeSameTx) { alloc_then_free_same_tx<stm::Stm>(); }
TEST(TxAllocNorec, AllocThenFreeSameTx) {
  alloc_then_free_same_tx<stm::Norec>();
}

template <typename Substrate>
void transactional_double_free_rejected() {
  Substrate stm = make_substrate<Substrate>();
  mem::TxPool pool{2, 1};
  stm.register_region(pool.region_spec());
  stm::Cell* block = nullptr;
  stm.atomically([&](typename Substrate::TxContext& tx) {
    block = tx.tx_alloc(pool);
    ASSERT_NE(block, nullptr);
  });
  stm.atomically([&](typename Substrate::TxContext& tx) {
    tx.tx_free(pool, block);
    tx.tx_free(pool, block);  // the second publish is rejected at commit
  });
  EXPECT_EQ(pool.stats().double_free_rejects.load(), 1u);
  EXPECT_EQ(pool.limbo_blocks(), 1u);
  expect_conserved(pool, "after transactional double free");
}

TEST(TxAllocTl2, DoubleFreeRejected) {
  transactional_double_free_rejected<stm::Stm>();
}
TEST(TxAllocNorec, DoubleFreeRejected) {
  transactional_double_free_rejected<stm::Norec>();
}

// ---------------------------------------------------------------------------
// Transactional queue / stack semantics
// ---------------------------------------------------------------------------

template <typename Substrate>
void queue_fifo_and_conservation() {
  Substrate stm = make_substrate<Substrate>();
  ds::TxMichaelScottQueue<Substrate> queue{stm, 8};
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.dequeue().has_value());

  for (std::uint64_t value = 1; value <= 8; ++value) {
    EXPECT_TRUE(queue.enqueue(value));
  }
  EXPECT_FALSE(queue.enqueue(9)) << "capacity 8: the 9th enqueue must fail";
  EXPECT_FALSE(queue.empty());
  EXPECT_EQ(queue.pool().live_blocks(), 9u);  // 8 values + the dummy

  for (std::uint64_t value = 1; value <= 8; ++value) {
    const auto got = queue.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value) << "FIFO order";
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.dequeue().has_value());
  EXPECT_EQ(queue.pool().live_blocks(), 1u) << "only the dummy stays live";
  expect_conserved(queue.pool(), "after a full fill/drain cycle");

  // Freed nodes come back after the grace: a retry loop with quiescent
  // reclamation must reach full capacity again.
  for (std::uint64_t value = 100; value < 108; ++value) {
    int retries = 0;
    while (!queue.enqueue(value)) {
      ASSERT_LT(++retries, 64) << "recycled nodes never became allocatable";
      (void)queue.pool().quiesce_reclaim();
    }
  }
  EXPECT_EQ(queue.pool().live_blocks(), 9u);
  EXPECT_EQ(queue.pool().stats().double_free_rejects.load(), 0u);
  expect_conserved(queue.pool(), "after refilling through reclaimed nodes");
}

TEST(TxQueueTl2, FifoAndConservation) {
  queue_fifo_and_conservation<stm::Stm>();
}
TEST(TxQueueNorec, FifoAndConservation) {
  queue_fifo_and_conservation<stm::Norec>();
}

template <typename Substrate>
void stack_lifo_and_conservation() {
  Substrate stm = make_substrate<Substrate>();
  ds::TxTreiberStack<Substrate> stack{stm, 4};
  EXPECT_TRUE(stack.empty());
  EXPECT_FALSE(stack.pop().has_value());

  for (std::uint64_t value = 1; value <= 4; ++value) {
    EXPECT_TRUE(stack.push(value));
  }
  EXPECT_FALSE(stack.push(5)) << "capacity 4: the 5th push must fail";
  EXPECT_FALSE(stack.empty());
  for (std::uint64_t value = 4; value >= 1; --value) {
    const auto got = stack.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value) << "LIFO order";
  }
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(stack.pool().live_blocks(), 0u);
  expect_conserved(stack.pool(), "after a full fill/drain cycle");

  int retries = 0;
  while (!stack.push(42)) {
    ASSERT_LT(++retries, 64) << "recycled nodes never became allocatable";
    (void)stack.pool().quiesce_reclaim();
  }
  EXPECT_EQ(stack.pop().value_or(0), 42u);
  EXPECT_EQ(stack.pool().stats().double_free_rejects.load(), 0u);
  expect_conserved(stack.pool(), "after refilling through reclaimed nodes");
}

TEST(TxStackTl2, LifoAndConservation) {
  stack_lifo_and_conservation<stm::Stm>();
}
TEST(TxStackNorec, LifoAndConservation) {
  stack_lifo_and_conservation<stm::Norec>();
}

// ---------------------------------------------------------------------------
// Randomized multi-thread transfer stress (conservation under contention)
// ---------------------------------------------------------------------------

template <typename Substrate>
void transfer_stress() {
  constexpr std::size_t kValues = 32;
  constexpr std::size_t kCapacity = 128;  // headroom over values in flight
  const std::size_t threads = 8;
  const int ops = 200 * stress_depth();

  Substrate stm{conflict::make_cm(conflict::CmKind::kKarma)};
  ds::TxMichaelScottQueue<Substrate> queue{stm, kCapacity};
  ds::TxTreiberStack<Substrate> stack{stm, kCapacity};
  std::uint64_t sum_before = 0;
  for (std::uint64_t value = 1; value <= kValues; ++value) {
    ASSERT_TRUE(queue.enqueue(value));
    sum_before += value;
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (std::size_t worker = 0; worker < threads; ++worker) {
    workers.emplace_back([&, worker] {
      sim::Rng rng{0xA110CULL * (worker + 1)};
      for (int op = 0; op < ops; ++op) {
        if (rng.uniform_below(2) == 0) {
          const auto value = queue.dequeue();
          if (!value.has_value()) continue;
          // The value is in hand between the two transactions: it MUST be
          // re-inserted or the conservation audit below fails.
          int spins = 0;
          while (!stack.push(*value)) {
            if (++spins > 100000) {
              failed.store(true);
              return;
            }
            std::this_thread::yield();
          }
        } else {
          const auto value = stack.pop();
          if (!value.has_value()) continue;
          int spins = 0;
          while (!queue.enqueue(*value)) {
            if (++spins > 100000) {
              failed.store(true);
              return;
            }
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  ASSERT_FALSE(failed.load()) << "a re-insert never found pool capacity";

  // Drain everything and audit: every value accounted for exactly once, no
  // block leaked or double-freed, both pools conserve capacity.
  std::uint64_t sum_after = 0;
  std::size_t count = 0;
  while (const auto value = queue.dequeue()) {
    sum_after += *value;
    ++count;
  }
  while (const auto value = stack.pop()) {
    sum_after += *value;
    ++count;
  }
  EXPECT_EQ(count, kValues) << "transfers must conserve the value count";
  EXPECT_EQ(sum_after, sum_before) << "transfers must conserve the value sum";
  (void)queue.pool().quiesce_reclaim();
  (void)stack.pool().quiesce_reclaim();
  EXPECT_EQ(queue.pool().live_blocks(), 1u) << "only the dummy stays live";
  EXPECT_EQ(stack.pool().live_blocks(), 0u);
  expect_conserved(queue.pool(), "queue pool after the transfer stress");
  expect_conserved(stack.pool(), "stack pool after the transfer stress");
  EXPECT_EQ(queue.pool().stats().double_free_rejects.load(), 0u);
  EXPECT_EQ(stack.pool().stats().double_free_rejects.load(), 0u);
}

TEST(TxPoolStress, TransferConservationTl2) { transfer_stress<stm::Stm>(); }
TEST(TxPoolStress, TransferConservationNorec) {
  transfer_stress<stm::Norec>();
}

}  // namespace
