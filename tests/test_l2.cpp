// Unit tests of the shared banked L2 tag store: hit/miss classification, LRU
// replacement, bank interleaving, capacity accounting, invalidation, and the
// inclusive-eviction reporting the HTM layer relies on for L2-capacity aborts.
#include "mem/l2.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace txc::mem;

L2Config tiny(std::uint32_t banks, std::uint32_t sets, std::uint32_t ways) {
  L2Config config;
  config.banks = banks;
  config.sets_per_bank = sets;
  config.ways = ways;
  return config;
}

TEST(SharedL2, FirstAccessMissesSecondHits) {
  SharedL2 l2{tiny(1, 4, 2)};
  EXPECT_FALSE(l2.access(42).hit);
  EXPECT_TRUE(l2.access(42).hit);
  EXPECT_EQ(l2.stats().hits, 1u);
  EXPECT_EQ(l2.stats().misses, 1u);
}

TEST(SharedL2, ContainsDoesNotTouchLru) {
  SharedL2 l2{tiny(1, 1, 2)};
  (void)l2.access(0);  // LRU order after this: 0
  (void)l2.access(1);  //                        0, 1
  EXPECT_TRUE(l2.contains(0));
  // If contains() refreshed LRU, line 1 would now be the victim; it must not.
  const L2Access third = l2.access(2);
  EXPECT_TRUE(third.evicted_valid);
  EXPECT_EQ(third.evicted_line, 0u);
}

TEST(SharedL2, LruEvictsLeastRecentlyUsed) {
  SharedL2 l2{tiny(1, 1, 3)};
  (void)l2.access(10);
  (void)l2.access(20);
  (void)l2.access(30);
  (void)l2.access(10);  // refresh 10; LRU is now 20
  const L2Access result = l2.access(40);
  EXPECT_TRUE(result.evicted_valid);
  EXPECT_EQ(result.evicted_line, 20u);
  EXPECT_FALSE(l2.contains(20));
  EXPECT_TRUE(l2.contains(10));
}

TEST(SharedL2, InvalidWaysPreferredOverEviction) {
  SharedL2 l2{tiny(1, 1, 4)};
  (void)l2.access(1);
  (void)l2.access(2);
  const L2Access result = l2.access(3);
  EXPECT_FALSE(result.evicted_valid) << "set not full: nothing to evict";
  EXPECT_EQ(l2.stats().evictions, 0u);
}

TEST(SharedL2, BankInterleavingByLineId) {
  SharedL2 l2{tiny(4, 8, 2)};
  EXPECT_EQ(l2.bank_of(0), 0u);
  EXPECT_EQ(l2.bank_of(1), 1u);
  EXPECT_EQ(l2.bank_of(5), 1u);
  EXPECT_EQ(l2.bank_of(7), 3u);
}

TEST(SharedL2, DifferentBanksDoNotConflict) {
  // 2 banks x 1 set x 1 way: lines 0 and 1 land in different banks and can
  // coexist even though each bank holds a single line.
  SharedL2 l2{tiny(2, 1, 1)};
  (void)l2.access(0);
  (void)l2.access(1);
  EXPECT_TRUE(l2.contains(0));
  EXPECT_TRUE(l2.contains(1));
  // Line 2 maps to bank 0 and evicts line 0, not line 1.
  const L2Access result = l2.access(2);
  EXPECT_TRUE(result.evicted_valid);
  EXPECT_EQ(result.evicted_line, 0u);
  EXPECT_TRUE(l2.contains(1));
}

TEST(SharedL2, SetIndexingWithinBank) {
  // 1 bank x 2 sets x 1 way: even/odd (line/banks) split across sets.
  SharedL2 l2{tiny(1, 2, 1)};
  (void)l2.access(0);  // set 0
  (void)l2.access(1);  // set 1
  EXPECT_TRUE(l2.contains(0));
  EXPECT_TRUE(l2.contains(1));
  const L2Access result = l2.access(2);  // set 0 again
  EXPECT_TRUE(result.evicted_valid);
  EXPECT_EQ(result.evicted_line, 0u);
}

TEST(SharedL2, InvalidateDropsLine) {
  SharedL2 l2{tiny(1, 4, 2)};
  (void)l2.access(9);
  ASSERT_TRUE(l2.contains(9));
  l2.invalidate(9);
  EXPECT_FALSE(l2.contains(9));
  EXPECT_FALSE(l2.access(9).hit);
}

TEST(SharedL2, InvalidateMissingLineIsNoop) {
  SharedL2 l2{tiny(1, 4, 2)};
  l2.invalidate(123);  // must not crash or corrupt
  EXPECT_FALSE(l2.contains(123));
}

TEST(SharedL2, CapacityLines) {
  EXPECT_EQ((SharedL2{tiny(4, 256, 8)}.capacity_lines()), 4u * 256 * 8);
  EXPECT_EQ((SharedL2{tiny(1, 1, 1)}.capacity_lines()), 1u);
}

TEST(SharedL2, HitRateComputation) {
  SharedL2 l2{tiny(1, 4, 2)};
  (void)l2.access(1);
  (void)l2.access(1);
  (void)l2.access(1);
  (void)l2.access(2);
  EXPECT_DOUBLE_EQ(l2.stats().hit_rate(), 0.5);
}

TEST(SharedL2, WorkingSetLargerThanCapacityThrashes) {
  SharedL2 l2{tiny(1, 2, 2)};  // capacity 4 lines
  // Stream 8 distinct lines twice: every access of the second pass must miss
  // again because the first pass evicted them (LRU with a cyclic stream).
  for (int pass = 0; pass < 2; ++pass) {
    for (LineId line = 0; line < 16; line += 2) {  // same set parity
      (void)l2.access(line);
    }
  }
  EXPECT_EQ(l2.stats().hits, 0u);
  EXPECT_EQ(l2.stats().misses, 16u);
  EXPECT_GE(l2.stats().evictions, 12u);
}

TEST(SharedL2, EvictionReportsExactVictim) {
  SharedL2 l2{tiny(1, 1, 2)};
  (void)l2.access(100);
  (void)l2.access(200);
  std::vector<LineId> victims;
  for (const LineId line : {300u, 400u, 500u}) {
    const L2Access result = l2.access(line);
    ASSERT_TRUE(result.evicted_valid);
    victims.push_back(result.evicted_line);
  }
  EXPECT_EQ(victims, (std::vector<LineId>{100, 200, 300}));
}

TEST(SharedL2, BackInvalidationCounter) {
  SharedL2 l2{tiny(1, 1, 1)};
  l2.count_back_invalidation();
  l2.count_back_invalidation();
  EXPECT_EQ(l2.stats().back_invalidations, 2u);
}

}  // namespace
