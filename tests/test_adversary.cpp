// Tests of the Section 6 adversarial game (Corollary 1) and the Section 7
// progress guarantee (Corollary 2).
#include "workload/adversary.hpp"

#include <gtest/gtest.h>

#include "core/policy.hpp"

namespace {

using namespace txc::core;
using namespace txc::workload;

GameConfig base_config() {
  GameConfig config;
  config.transactions = 1500;
  config.mean_length = 100.0;
  config.conflict_probability = 0.7;
  config.cleanup_cost = 50.0;
  return config;
}

TEST(AdversaryPlan, RespectsBudgetAndOrdering) {
  auto config = base_config();
  config.max_conflicts = 5;
  const auto schedule = plan_adversary(config);
  ASSERT_EQ(schedule.size(), config.transactions);
  for (const auto& tx : schedule) {
    EXPECT_GT(tx.commit_cost, 0.0);
    EXPECT_LE(tx.conflicts.size(), config.max_conflicts);
    for (std::size_t i = 1; i < tx.conflicts.size(); ++i) {
      EXPECT_GE(tx.conflicts[i].elapsed_at_conflict,
                tx.conflicts[i - 1].elapsed_at_conflict);
    }
    for (const auto& point : tx.conflicts) {
      EXPECT_GE(point.elapsed_at_conflict, 0.0);
      EXPECT_LT(point.elapsed_at_conflict, tx.commit_cost);
      EXPECT_EQ(point.chain_length, 2);
    }
  }
}

TEST(AdversaryPlan, SameSeedSameSchedule) {
  const auto config = base_config();
  const auto a = plan_adversary(config);
  const auto b = plan_adversary(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].commit_cost, b[i].commit_cost);
    EXPECT_EQ(a[i].conflicts.size(), b[i].conflicts.size());
  }
}

TEST(Game, OfflineNeverWorseThanOnline) {
  const auto config = base_config();
  const auto schedule = plan_adversary(config);
  for (const auto kind : {StrategyKind::kRandWins, StrategyKind::kDetWins,
                          StrategyKind::kNoDelay}) {
    const auto policy = make_policy(kind);
    const auto online = play_game(schedule, *policy, config);
    const auto offline =
        play_offline_optimum(schedule, policy->mode(), config);
    EXPECT_LE(offline.sum_running_time(), online.sum_running_time() * 1.0001)
        << to_string(kind);
  }
}

TEST(Game, Corollary1BoundHoldsForRandomizedWins) {
  // sum Gamma(T, A) / sum Gamma(T, OPT) <= (2w + 1)/(w + 1) with
  // w = offline conflict cost / offline commit cost.
  for (const std::uint64_t seed : {7ull, 17ull, 117ull, 1234ull}) {
    auto config = base_config();
    config.seed = seed;
    const auto schedule = plan_adversary(config);
    const auto policy = make_policy(StrategyKind::kRandWins);
    const auto online = play_game(schedule, *policy, config);
    const auto offline = play_offline_optimum(
        schedule, ResolutionMode::kRequestorWins, config);
    const double ratio =
        online.sum_running_time() / offline.sum_running_time();
    const double bound = corollary1_bound(offline);
    // The bound is on expectations; allow a small sampling margin.
    EXPECT_LE(ratio, bound * 1.05) << "seed " << seed;
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(bound, 2.0);
    EXPECT_GE(bound, 1.0);
  }
}

TEST(Game, Corollary1BoundHoldsForLongChains) {
  auto config = base_config();
  config.min_chain = 2;
  config.max_chain = 6;
  const auto schedule = plan_adversary(config);
  const auto policy = make_policy(StrategyKind::kRandWins);
  const auto online = play_game(schedule, *policy, config);
  const auto offline =
      play_offline_optimum(schedule, ResolutionMode::kRequestorWins, config);
  EXPECT_LE(online.sum_running_time() / offline.sum_running_time(),
            corollary1_bound(offline) * 1.05);
}

TEST(Game, NoConflictsMeansNoOverhead) {
  auto config = base_config();
  config.conflict_probability = 0.0;
  const auto schedule = plan_adversary(config);
  const auto policy = make_policy(StrategyKind::kRandWins);
  const auto result = play_game(schedule, *policy, config);
  EXPECT_EQ(result.conflicts, 0u);
  EXPECT_EQ(result.sum_conflict_cost, 0.0);
  EXPECT_GT(result.sum_commit_cost, 0.0);
}

TEST(Game, RequestorAbortsReceiverSurvives) {
  // Under requestor-aborts the receiver is never restarted, so the online
  // abort count equals the consumed conflicts that did not commit in grace,
  // and conflict costs are charged at (k-1)(x+B).
  auto config = base_config();
  config.conflict_probability = 1.0;
  config.max_conflicts = 3;
  const auto schedule = plan_adversary(config);
  const auto policy = make_policy(StrategyKind::kRandAborts);
  const auto result = play_game(schedule, *policy, config);
  EXPECT_GT(result.conflicts, 0u);
  // Every planned conflict is either consumed or forfeited; with the
  // receiver surviving, consumed conflicts are bounded by the plan size.
  std::size_t planned = 0;
  for (const auto& tx : schedule) planned += tx.conflicts.size();
  EXPECT_LE(result.conflicts, planned);
}

TEST(Game, DeterministicReplay) {
  const auto config = base_config();
  const auto schedule = plan_adversary(config);
  const auto policy = make_policy(StrategyKind::kRandWinsMean);
  const auto a = play_game(schedule, *policy, config);
  const auto b = play_game(schedule, *policy, config);
  EXPECT_DOUBLE_EQ(a.sum_conflict_cost, b.sum_conflict_cost);
  EXPECT_EQ(a.aborts, b.aborts);
}

TEST(Game, HybridTracksTheBetterPureStrategyPerChainRegime) {
  // Section 5.3 / Implications: the hybrid plays RA at k = 2 and RW for
  // longer chains; in each regime its cost must track the better pure
  // strategy within sampling noise.
  for (const auto& [min_chain, max_chain] :
       {std::pair<int, int>{2, 2}, {4, 6}}) {
    auto config = base_config();
    config.transactions = 3000;
    config.min_chain = min_chain;
    config.max_chain = max_chain;
    const auto schedule = plan_adversary(config);
    const auto hybrid =
        play_game(schedule, *make_policy(StrategyKind::kHybrid), config);
    const auto rw =
        play_game(schedule, *make_policy(StrategyKind::kRandWins), config);
    const auto ra =
        play_game(schedule, *make_policy(StrategyKind::kRandAborts), config);
    const double best =
        std::min(rw.sum_running_time(), ra.sum_running_time());
    EXPECT_LE(hybrid.sum_running_time(), best * 1.15)
        << "chains [" << min_chain << ", " << max_chain << "]";
  }
}

TEST(Game, AdaptivePolicyPlaysValidly) {
  // DELAY_ADAPTIVE receives no outcome feedback in this game (that loop is
  // the HTM simulator's), so it behaves as a capped fixed delay: cost must
  // be finite and at least the offline optimum under the same schedule.
  const auto config = base_config();
  const auto schedule = plan_adversary(config);
  const auto policy = make_policy(StrategyKind::kAdaptiveTuned);
  const auto adaptive = play_game(schedule, *policy, config);
  const auto offline =
      play_offline_optimum(schedule, policy->mode(), config);
  EXPECT_GE(adaptive.sum_running_time(), offline.sum_running_time());
  EXPECT_GT(adaptive.sum_running_time(), 0.0);
}

// ---------------------------------------------------------------------------
// Corollary 2
// ---------------------------------------------------------------------------

TEST(Progress, Corollary2BudgetSufficesWithProbabilityHalf) {
  ProgressConfig config;
  config.run_time = 200.0;
  config.conflicts_per_attempt = 4;
  config.initial_abort_cost = 16.0;
  config.trials = 3000;
  const auto result = run_progress_experiment(config);
  EXPECT_GE(result.within_budget_fraction, 0.5)
      << "budget = " << result.corollary_budget;
  EXPECT_GT(result.attempts_mean, 1.0);
}

TEST(Progress, LargerInitialAbortCostCommitsFaster) {
  ProgressConfig small;
  small.initial_abort_cost = 8.0;
  small.trials = 2000;
  ProgressConfig large = small;
  large.initial_abort_cost = 512.0;
  const auto small_result = run_progress_experiment(small);
  const auto large_result = run_progress_experiment(large);
  EXPECT_LT(large_result.attempts_mean, small_result.attempts_mean);
}

TEST(Progress, MoreConflictsNeedMoreAttempts) {
  ProgressConfig light;
  light.conflicts_per_attempt = 1;
  light.trials = 2000;
  ProgressConfig heavy = light;
  heavy.conflicts_per_attempt = 16;
  const auto light_result = run_progress_experiment(light);
  const auto heavy_result = run_progress_experiment(heavy);
  EXPECT_LT(light_result.attempts_mean, heavy_result.attempts_mean);
}

}  // namespace
