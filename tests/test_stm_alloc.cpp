// Zero-allocation guarantee of the STM fast path: after a warm-up that lets
// the thread's TxBuffers reach their high-water capacity, transactions must
// not touch the global allocator at all — that is the whole point of the
// cleared-not-freed buffer lifecycle (stm/tx_buffers.hpp).
//
// Methodology: this binary replaces the global operator new/delete with
// counting forwarders (legal per [replacement.functions]; ASan still sees
// the underlying malloc, so the suite stays TXC_SANITIZE-clean).  Each test
// runs a warm-up phase, snapshots the counter, runs a steady-state phase,
// and asserts the counter did not move.  Counters are collected before any
// gtest assertion machinery runs so expectation objects cannot pollute the
// measurement window.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "ds/tx_queue.hpp"
#include "ds/tx_stack.hpp"
#include "stm/containers.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Replacement global allocation functions ([new.delete.single]); the
// matching deletes must be replaced alongside or the counts would pair a
// counting new with a default delete.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace txc;
using namespace txc::stm;

std::uint64_t allocations() {
  return g_news.load(std::memory_order_relaxed);
}

TEST(StmAllocation, SteadyStateCounterTransactionsAllocateNothing) {
  Stm stm{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  Cell counter;
  // Warm-up: buffer growth, stripe-table faults, policy internals.
  for (int i = 0; i < 1000; ++i) {
    stm.atomically([&](Tx& tx) { tx.write(counter, tx.read(counter) + 1); });
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    stm.atomically([&](Tx& tx) { tx.write(counter, tx.read(counter) + 1); });
  }
  const std::uint64_t after = allocations();
  EXPECT_EQ(after - before, 0u)
      << "steady-state transactions must not reach operator new";
  EXPECT_EQ(Stm::read_committed(counter), 11000u);
}

TEST(StmAllocation, SteadyStateHoldsForLargeFootprints) {
  // Footprint larger than every inline capacity: the buffers grow during
  // warm-up and must then stay grown (cleared, never freed).
  Stm stm{core::make_policy(core::StrategyKind::kRandAborts)};
  std::vector<Cell> cells(512);
  const auto big_transaction = [&] {
    stm.atomically([&](Tx& tx) {
      std::uint64_t sum = 0;
      for (auto& cell : cells) sum += tx.read(cell);
      for (std::size_t i = 0; i < 128; ++i) tx.write(cells[i], sum + i);
    });
  };
  for (int i = 0; i < 20; ++i) big_transaction();
  const std::uint64_t before = allocations();
  for (int i = 0; i < 200; ++i) big_transaction();
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(StmAllocation, RepeatedReadsDoNotGrowTheReadSet) {
  // The dedupe fix: re-reading one cell thousands of times in one
  // transaction used to append a read-set entry per read; now membership is
  // checked first, so even a fresh (unwarmed) transaction context must not
  // grow past the inline read-set capacity.
  Stm stm{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  Cell cell;
  stm.atomically([&](Tx& tx) {  // warm-up: first-touch growth, if any
    for (int i = 0; i < 10; ++i) (void)tx.read(cell);
  });
  const std::uint64_t before = allocations();
  stm.atomically([&](Tx& tx) {
    std::uint64_t sum = 0;
    for (int i = 0; i < 100000; ++i) sum += tx.read(cell);
    tx.write(cell, sum);
  });
  EXPECT_EQ(allocations() - before, 0u)
      << "duplicate reads must dedupe, not accumulate";
}

TEST(StmAllocation, NorecSteadyStateAllocatesNothing) {
  Norec norec{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  std::vector<Cell> cells(32);
  const auto transaction = [&] {
    norec.atomically([&](NorecTx& tx) {
      std::uint64_t sum = 0;
      for (auto& cell : cells) sum += tx.read(cell);
      tx.write(cells[0], sum + 1);
    });
  };
  for (int i = 0; i < 100; ++i) transaction();
  const std::uint64_t before = allocations();
  for (int i = 0; i < 5000; ++i) transaction();
  EXPECT_EQ(allocations() - before, 0u);
}

// ---------------------------------------------------------------------------
// The spin-site driver under real contention.  The single-thread tests
// above never reach conflict::drive_spin_site (no conflicts); these force
// it, on both substrates, and prove the shared driver (decide loop, quantum
// spin, kill protocol, feedback) cannot reintroduce steady-state
// allocations.  Methodology: spawn workers (thread machinery allocates),
// let every thread warm up, then open the measurement window with spin
// barriers so only transaction code runs between the two counter samples.
// ---------------------------------------------------------------------------

/// Runs `op` on `threads` workers: warm-up phase, barrier, measured phase,
/// barrier.  Returns the allocation-counter delta across the measured
/// window alone.
template <typename Op>
std::uint64_t contended_window_allocations(int threads, int warmup_ops,
                                           int measured_ops, Op&& op) {
  std::atomic<int> warmed{0};
  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::atomic<bool> finish{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < warmup_ops; ++i) op();
      warmed.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < measured_ops; ++i) op();
      done.fetch_add(1, std::memory_order_acq_rel);
      while (!finish.load(std::memory_order_acquire)) {
      }
    });
  }
  while (warmed.load(std::memory_order_acquire) < threads) {
  }
  const std::uint64_t before = allocations();
  go.store(true, std::memory_order_release);
  while (done.load(std::memory_order_acquire) < threads) {
  }
  const std::uint64_t after = allocations();
  finish.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  return after - before;
}

TEST(StmAllocation, ContendedTl2SpinSiteAllocatesNothing) {
  // Karma exercises the whole driver surface: enemy probes, seniority
  // comparison, kills, quantum waits — all against one hot cell so
  // resolve_conflict actually runs.
  Stm stm{conflict::make_cm(conflict::CmKind::kKarma)};
  Cell hot;
  const std::uint64_t delta = contended_window_allocations(
      /*threads=*/2, /*warmup_ops=*/500, /*measured_ops=*/4000, [&] {
        stm.atomically(
            [&](Tx& tx) { tx.write(hot, tx.read(hot) + 1); });
      });
  EXPECT_EQ(delta, 0u)
      << "the shared spin-site driver must not allocate on the TL2 path";
  EXPECT_EQ(Stm::read_committed(hot), 2u * (500u + 4000u));
}

TEST(StmAllocation, ContendedNorecSpinSiteAllocatesNothing) {
  // Same driver, NOrec's seqlock site — including the committer-descriptor
  // publication and the kill-window CAS on every writing commit.
  Norec norec{conflict::make_cm(conflict::CmKind::kKarma)};
  Cell hot;
  const std::uint64_t delta = contended_window_allocations(
      /*threads=*/2, /*warmup_ops=*/500, /*measured_ops=*/4000, [&] {
        norec.atomically(
            [&](NorecTx& tx) { tx.write(hot, tx.read(hot) + 1); });
      });
  EXPECT_EQ(delta, 0u)
      << "the shared spin-site driver must not allocate on the NOrec path";
  EXPECT_EQ(Norec::read_committed(hot), 2u * (500u + 4000u));
}

// ---------------------------------------------------------------------------
// The declared-read-only snapshot path (atomically_read).  It touches no
// TxBuffers and no descriptor, so its zero-allocation bar is higher than
// steady-state: even the FIRST transaction on a fresh thread must not
// allocate (there is nothing to warm up — no buffers to grow, no
// first-touch).  Uncontended bodies and snapshot-restart unwinding are both
// covered; TxAbort restarts travel via the exception path, whose storage
// comes from the runtime's malloc-based allocator, not operator new (the
// contended instrumented tests above already rely on this).
// ---------------------------------------------------------------------------

TEST(StmAllocation, Tl2SnapshotReadPathAllocatesNothing) {
  Stm stm{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  std::vector<Cell> cells(64);
  stm.atomically([&](Tx& tx) {  // populate (and warm the writer's buffers)
    for (std::size_t i = 0; i < cells.size(); ++i) {
      tx.write(cells[i], i + 1);
    }
  });
  const std::uint64_t before = allocations();
  std::uint64_t sum = 0;
  for (int i = 0; i < 10000; ++i) {
    stm.atomically_read([&](ReadTx& tx) {
      sum = 0;
      for (auto& cell : cells) sum += tx.read(cell);
    });
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "the TL2 snapshot read path must not reach operator new";
  EXPECT_EQ(sum, (64u * 65u) / 2u);
}

TEST(StmAllocation, NorecSnapshotReadPathAllocatesNothing) {
  Norec norec{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  std::vector<Cell> cells(64);
  norec.atomically([&](NorecTx& tx) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      tx.write(cells[i], i + 1);
    }
  });
  const std::uint64_t before = allocations();
  std::uint64_t sum = 0;
  for (int i = 0; i < 10000; ++i) {
    norec.atomically_read([&](NorecReadTx& tx) {
      sum = 0;
      for (auto& cell : cells) sum += tx.read(cell);
    });
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "the NOrec snapshot read path must not reach operator new";
  EXPECT_EQ(sum, (64u * 65u) / 2u);
}

template <typename Substrate, typename ReadTxT>
void fresh_thread_snapshot_allocates_nothing(const char* substrate_label) {
  Substrate stm{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  std::vector<Cell> cells(64);
  stm.atomically([&](typename Substrate::TxContext& tx) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      tx.write(cells[i], i + 1);
    }
  });
  // First use on a FRESH thread, no warm-up: the snapshot path has no
  // per-thread state (no TxBuffers, no descriptor interaction), so there is
  // nothing that could legitimately first-touch-allocate.  The counters are
  // sampled inside the thread, around only the atomically_read calls (the
  // spawn/join machinery allocates; the main thread is parked in join() and
  // contributes nothing to the window).
  std::uint64_t delta = ~std::uint64_t{0};
  std::uint64_t sum = 0;
  std::thread fresh([&] {
    const std::uint64_t before = allocations();
    for (int i = 0; i < 100; ++i) {
      stm.atomically_read([&](ReadTxT& tx) {
        sum = 0;
        for (auto& cell : cells) sum += tx.read(cell);
      });
    }
    delta = allocations() - before;
  });
  fresh.join();
  EXPECT_EQ(delta, 0u)
      << substrate_label
      << ": first atomically_read on a fresh thread must not allocate";
  EXPECT_EQ(sum, (64u * 65u) / 2u) << substrate_label;
}

TEST(StmAllocation, Tl2SnapshotFreshThreadFirstUseAllocatesNothing) {
  fresh_thread_snapshot_allocates_nothing<Stm, ReadTx>("TL2");
}

TEST(StmAllocation, NorecSnapshotFreshThreadFirstUseAllocatesNothing) {
  fresh_thread_snapshot_allocates_nothing<Norec, NorecReadTx>("NOrec");
}

// ---------------------------------------------------------------------------
// Pool-backed transactional structures (ds/tx_queue, ds/tx_stack).  The
// gate for the whole TxPool path: every steady-state op allocates a node,
// frees one, pins/unpins the reclamation epoch, and periodically drives a
// full quiescent reclaim — none of which may reach operator new on either
// substrate.  (tx_alloc pops a pool free list, tx_free parks in limbo via
// the out-of-band link array, and the alloc/free logs ride the same
// cleared-not-freed TxBuffers lifecycle as the read/write sets.)
// ---------------------------------------------------------------------------

template <typename Substrate>
void tx_queue_steady_state_allocates_nothing(const char* substrate_label) {
  Substrate stm{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  ds::TxMichaelScottQueue<Substrate> queue{stm, 256};
  // Warm-up: grow the logs, fill/drain a window, and run one quiescent
  // reclaim so the measured phase starts with a full free list.
  for (int i = 0; i < 64; ++i) (void)queue.enqueue(i);
  while (queue.dequeue().has_value()) {
  }
  (void)queue.pool().quiesce_reclaim();
  const std::uint64_t before = allocations();
  bool all_ok = true;
  for (int i = 0; i < 2000; ++i) {
    all_ok = queue.enqueue(static_cast<std::uint64_t>(i)) && all_ok;
    all_ok = !queue.empty() && all_ok;  // snapshot read each iteration
    all_ok = queue.dequeue().has_value() && all_ok;
    // Reclaim inside the window: it must be allocation-free too, and it
    // keeps the free list ahead of the one-block-per-pair limbo drift.
    if ((i & 63) == 63) (void)queue.pool().quiesce_reclaim();
  }
  const std::uint64_t delta = allocations() - before;
  EXPECT_EQ(delta, 0u)
      << substrate_label
      << ": steady-state tx-queue ops must not reach operator new";
  EXPECT_TRUE(all_ok) << substrate_label
                      << ": every steady-state op must succeed";
}

TEST(StmAllocation, Tl2TxQueueSteadyStateAllocatesNothing) {
  tx_queue_steady_state_allocates_nothing<Stm>("TL2");
}

TEST(StmAllocation, NorecTxQueueSteadyStateAllocatesNothing) {
  tx_queue_steady_state_allocates_nothing<Norec>("NOrec");
}

template <typename Substrate>
void tx_stack_steady_state_allocates_nothing(const char* substrate_label) {
  Substrate stm{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  ds::TxTreiberStack<Substrate> stack{stm, 256};
  for (int i = 0; i < 64; ++i) (void)stack.push(i);
  while (stack.pop().has_value()) {
  }
  (void)stack.pool().quiesce_reclaim();
  const std::uint64_t before = allocations();
  bool all_ok = true;
  for (int i = 0; i < 2000; ++i) {
    all_ok = stack.push(static_cast<std::uint64_t>(i)) && all_ok;
    all_ok = stack.pop().has_value() && all_ok;
    if ((i & 63) == 63) (void)stack.pool().quiesce_reclaim();
  }
  const std::uint64_t delta = allocations() - before;
  EXPECT_EQ(delta, 0u)
      << substrate_label
      << ": steady-state tx-stack ops must not reach operator new";
  EXPECT_TRUE(all_ok) << substrate_label
                      << ": every steady-state op must succeed";
}

TEST(StmAllocation, Tl2TxStackSteadyStateAllocatesNothing) {
  tx_stack_steady_state_allocates_nothing<Stm>("TL2");
}

TEST(StmAllocation, NorecTxStackSteadyStateAllocatesNothing) {
  tx_stack_steady_state_allocates_nothing<Norec>("NOrec");
}

TEST(StmAllocation, TransactionalContainersRideTheFastPath) {
  Stm stm{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  TxQueue queue{stm, 64};
  for (int i = 0; i < 200; ++i) {  // warm-up
    (void)queue.enqueue(static_cast<std::uint64_t>(i));
    (void)queue.dequeue();
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 5000; ++i) {
    (void)queue.enqueue(static_cast<std::uint64_t>(i));
    (void)queue.dequeue();
  }
  EXPECT_EQ(allocations() - before, 0u);
}

}  // namespace
