// core::LatencyHistogram edge cases and geometry — the contract the tail
// figure and the KV service's per-shard latency accounting lean on.  The
// once-UB corners are pinned explicitly: quantile() on an empty histogram
// (or with a NaN q) is 0, out-of-range q clamps, and merge() is only
// defined between histograms of the same resolution — a different
// SubBucketBits is a different *type*, so the misalignment that used to be
// silently possible is now a compile error (checked here by successfully
// instantiating a second resolution, not by merging it).
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/profiler.hpp"

namespace {

using txc::core::BasicLatencyHistogram;
using txc::core::LatencyHistogram;

TEST(LatencyHistogram, EmptyHistogramQuantilesAreZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.max_recorded(), 0u);
  EXPECT_EQ(histogram.quantile(0.0), 0u);
  EXPECT_EQ(histogram.quantile(0.5), 0u);
  EXPECT_EQ(histogram.quantile(1.0), 0u);
}

TEST(LatencyHistogram, NanAndOutOfRangeQuantilesAreDefined) {
  LatencyHistogram histogram;
  histogram.record(100);
  histogram.record(200);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(histogram.quantile(nan), 0u) << "NaN has no rank; must not trap";
  // Out-of-range clamps to the extremes instead of under/overflowing rank.
  EXPECT_EQ(histogram.quantile(-3.0), histogram.quantile(0.0));
  EXPECT_EQ(histogram.quantile(7.0), histogram.quantile(1.0));
  // And NaN on an empty histogram stays 0 too.
  LatencyHistogram empty;
  EXPECT_EQ(empty.quantile(nan), 0u);
}

TEST(LatencyHistogram, SmallValuesBucketExactly) {
  // The first octave holds one value per bucket: quantiles over values
  // below kSubBuckets are exact, not ~3% approximations.
  LatencyHistogram histogram;
  for (std::uint64_t value = 0; value < LatencyHistogram::kSubBuckets;
       ++value) {
    histogram.record(value);
  }
  EXPECT_EQ(histogram.quantile(0.0), 0u);
  EXPECT_EQ(histogram.quantile(1.0), LatencyHistogram::kSubBuckets - 1);
  // The median of 0..31 lands on 15 (rank 16 of 32).
  EXPECT_EQ(histogram.quantile(0.5), LatencyHistogram::kSubBuckets / 2 - 1);
}

TEST(LatencyHistogram, QuantileErrorIsBoundedByBucketWidth) {
  LatencyHistogram histogram;
  const std::uint64_t kValue = 123456789;
  for (int i = 0; i < 100; ++i) histogram.record(kValue);
  const std::uint64_t q50 = histogram.quantile(0.5);
  // Upper-edge semantics: at least the recorded value, within one
  // sub-bucket (1/32 ~ 3.2%) relative width.
  EXPECT_GE(q50, kValue);
  EXPECT_LE(static_cast<double>(q50),
            static_cast<double>(kValue) *
                (1.0 + 1.0 / LatencyHistogram::kSubBuckets) +
                1.0);
}

TEST(LatencyHistogram, MaxRecordedIsExactWhereQuantileIsNot) {
  LatencyHistogram histogram;
  histogram.record(1000003);  // not a bucket edge
  histogram.record(17);
  EXPECT_EQ(histogram.max_recorded(), 1000003u);
  EXPECT_GE(histogram.quantile(1.0), 1000003u) << "upper edge bounds the max";
  histogram.reset();
  EXPECT_EQ(histogram.max_recorded(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(LatencyHistogram, MergeAccumulatesCountsAndMax) {
  LatencyHistogram left;
  LatencyHistogram right;
  for (int i = 0; i < 10; ++i) left.record(100);
  for (int i = 0; i < 30; ++i) right.record(5000);
  right.record(999999);
  left.merge(right);
  EXPECT_EQ(left.count(), 41u);
  EXPECT_EQ(left.max_recorded(), 999999u);
  // The merged distribution is 10 x 100 vs 31 larger samples: the median
  // comes from the right-hand mass.
  EXPECT_GE(left.quantile(0.5), 5000u);
  EXPECT_LE(left.quantile(0.1), 104u);
  // Merging an empty histogram is a no-op.
  LatencyHistogram empty;
  left.merge(empty);
  EXPECT_EQ(left.count(), 41u);
  EXPECT_EQ(left.max_recorded(), 999999u);
}

TEST(LatencyHistogram, AlternativeResolutionIsADistinctUsableType) {
  // 8 sub-buckets per octave: coarser, smaller, and deliberately NOT
  // mergeable with the default 32-sub-bucket alias — `coarse.merge(fine)`
  // would not compile, which is the whole point of the type parameter.
  BasicLatencyHistogram<3> coarse;
  static_assert(BasicLatencyHistogram<3>::kSubBuckets == 8);
  static_assert(BasicLatencyHistogram<3>::kBucketCount <
                LatencyHistogram::kBucketCount);
  coarse.record(7);
  coarse.record(70000);
  EXPECT_EQ(coarse.count(), 2u);
  EXPECT_EQ(coarse.max_recorded(), 70000u);
  EXPECT_GE(coarse.quantile(1.0), 70000u);
  BasicLatencyHistogram<3> other;
  other.record(3);
  coarse.merge(other);
  EXPECT_EQ(coarse.count(), 3u);
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(static_cast<std::uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.max_recorded(), 3001u);
}

}  // namespace
