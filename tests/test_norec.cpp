// Tests of the NOrec STM: sequential semantics (read-own-writes, committed
// visibility), value-based validation behavior, multi-threaded atomicity
// (counter, bank conservation, read-mostly mixes) under different
// grace-period policies for the single commit-lock wait point, and the
// declared-read-only snapshot fast path (atomically_read / ReadTxContext).
#include "stm/norec.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace {

using namespace txc::stm;
using txc::core::make_policy;
using txc::core::StrategyKind;

// Mirror of the TL2-side contract proof (see test_stm.cpp): the read-only
// promise is a compile-time property of the context type.
template <typename Ctx, typename = void>
struct HasWrite : std::false_type {};
template <typename Ctx>
struct HasWrite<Ctx, std::void_t<decltype(std::declval<Ctx&>().write(
                         std::declval<Cell&>(), std::uint64_t{}))>>
    : std::true_type {};

static_assert(HasWrite<Norec::TxContext>::value,
              "the instrumented context must expose write()");
static_assert(!HasWrite<Norec::ReadTxContext>::value,
              "a write inside a NOrec read transaction must not compile");

TEST(Norec, ReadsDefaultZero) {
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell cell;
  std::uint64_t seen = 1;
  stm.atomically([&](NorecTx& tx) { seen = tx.read(cell); });
  EXPECT_EQ(seen, 0u);
}

TEST(Norec, ReadOwnWrites) {
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell cell;
  stm.atomically([&](NorecTx& tx) {
    tx.write(cell, 41);
    EXPECT_EQ(tx.read(cell), 41u);
    tx.write(cell, 42);
    EXPECT_EQ(tx.read(cell), 42u);
  });
  EXPECT_EQ(Norec::read_committed(cell), 42u);
}

TEST(Norec, CommittedValuesVisibleToLaterTransactions) {
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell a;
  Cell b;
  stm.atomically([&](NorecTx& tx) {
    tx.write(a, 7);
    tx.write(b, 9);
  });
  stm.atomically([&](NorecTx& tx) {
    EXPECT_EQ(tx.read(a), 7u);
    EXPECT_EQ(tx.read(b), 9u);
  });
  EXPECT_EQ(stm.stats().commits.load(), 2u);
  EXPECT_EQ(stm.stats().aborts.load(), 0u);
}

TEST(Norec, ReadOnlyTransactionsCommitWithoutClockBump) {
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell cell;
  stm.atomically([&](NorecTx& tx) { tx.write(cell, 1); });
  // A writer bumps the seqlock by 2; read-only transactions must not.
  for (int i = 0; i < 10; ++i) {
    stm.atomically([&](NorecTx& tx) { (void)tx.read(cell); });
  }
  stm.atomically([&](NorecTx& tx) { tx.write(cell, 2); });
  EXPECT_EQ(Norec::read_committed(cell), 2u);
  EXPECT_EQ(stm.stats().commits.load(), 12u);
}

TEST(Norec, CounterAtomicUnderContention) {
  for (const auto kind :
       {StrategyKind::kNoDelay, StrategyKind::kRandAborts,
        StrategyKind::kDetAborts}) {
    Norec stm{make_policy(kind)};
    Cell counter;
    constexpr int kThreads = 4;
    constexpr int kIncrements = 4000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kIncrements; ++i) {
          stm.atomically([&](NorecTx& tx) {
            tx.write(counter, tx.read(counter) + 1);
          });
        }
      });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(Norec::read_committed(counter),
              static_cast<std::uint64_t>(kThreads) * kIncrements)
        << txc::core::to_string(kind);
  }
}

TEST(Norec, BankConservation) {
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  constexpr int kAccounts = 12;
  std::vector<Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      txc::sim::Rng rng{static_cast<std::uint64_t>(t) + 13};
      for (int i = 0; i < 3000; ++i) {
        const auto from = rng.uniform_below(kAccounts);
        auto to = rng.uniform_below(kAccounts - 1);
        if (to >= from) ++to;
        stm.atomically([&](NorecTx& tx) {
          const std::uint64_t a = tx.read(accounts[from]);
          const std::uint64_t b = tx.read(accounts[to]);
          tx.write(accounts[from], a - 1);
          tx.write(accounts[to], b + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  std::uint64_t total = 0;
  for (const auto& account : accounts) {
    total += Norec::read_committed(account);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kAccounts) * 500);
}

TEST(Norec, SnapshotIsolationStyleConsistencyAudit) {
  // Writers keep `pair0 == pair1` invariant; readers must never observe a
  // torn pair (value-based validation catches mid-commit interleavings).
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell pair0;
  Cell pair1;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread writer([&] {
    for (int i = 1; i <= 20000; ++i) {
      stm.atomically([&](NorecTx& tx) {
        tx.write(pair0, static_cast<std::uint64_t>(i));
        tx.write(pair1, static_cast<std::uint64_t>(i));
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      stm.atomically([&](NorecTx& tx) {
        const std::uint64_t a = tx.read(pair0);
        const std::uint64_t b = tx.read(pair1);
        if (a != b) torn.fetch_add(1);
      });
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(Norec, FirstReadAfterExternalCommitAdoptsSnapshotWithoutAbort) {
  // Regression shape for the empty-log short-circuit: a transaction whose
  // read log is still empty finds the seqlock moved by another thread's
  // commit.  There is nothing to validate, so the read must adopt the new
  // snapshot directly — no abort, and the freshly committed value is what
  // it returns.
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell cell;
  stm.atomically([&](NorecTx& tx) { tx.write(cell, 1); });
  bool committed_between = false;
  std::uint64_t seen = 0;
  stm.atomically([&](NorecTx& tx) {
    if (!committed_between) {
      committed_between = true;
      std::thread other(
          [&] { stm.atomically([&](NorecTx& tx2) { tx2.write(cell, 2); }); });
      other.join();
    }
    seen = tx.read(cell);
  });
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(stm.stats().commits.load(), 3u);
  EXPECT_EQ(stm.stats().aborts.load(), 0u);
}

TEST(NorecSnapshot, ReadSeesCommittedState) {
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell a;
  Cell b;
  stm.atomically([&](NorecTx& tx) {
    tx.write(a, 11);
    tx.write(b, 22);
  });
  std::uint64_t seen_a = 0;
  std::uint64_t seen_b = 0;
  stm.atomically_read([&](NorecReadTx& tx) {
    seen_a = tx.read(a);
    seen_b = tx.read(b);
  });
  EXPECT_EQ(seen_a, 11u);
  EXPECT_EQ(seen_b, 22u);
}

TEST(NorecSnapshot, CountersSeparateSnapshotFromInstrumentedReads) {
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell a;
  stm.atomically([&](NorecTx& tx) { tx.write(a, 1); });
  stm.atomically([&](NorecTx& tx) { (void)tx.read(a); });
  EXPECT_EQ(stm.stats().instrumented_reads.load(), 1u);
  EXPECT_EQ(stm.stats().snapshot_reads.load(), 0u);

  const std::uint64_t commits_before = stm.stats().commits.load();
  stm.atomically_read([&](NorecReadTx& tx) { (void)tx.read(a); });
  EXPECT_EQ(stm.stats().snapshot_commits.load(), 1u);
  EXPECT_EQ(stm.stats().snapshot_reads.load(), 1u);
  EXPECT_EQ(stm.stats().snapshot_restarts.load(), 0u)
      << "no concurrent writer: the first snapshot attempt must stick";
  EXPECT_EQ(stm.stats().instrumented_reads.load(), 1u);
  EXPECT_EQ(stm.stats().commits.load(), commits_before)
      << "snapshot transactions must not disturb the transactional ledger";
}

TEST(NorecSnapshot, MultiCellSnapshotNeverTearsUnderWriters) {
  // The snapshot reader keeps no value log at all — consistency rests
  // entirely on the pinned-seqlock recheck in every read.  Writers keep
  // pair0 == pair1; the reader must never see a torn pair (opacity).
  Norec stm{make_policy(StrategyKind::kRandAborts)};
  Cell pair0;
  Cell pair1;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread writer([&] {
    for (int i = 1; i <= 20000; ++i) {
      stm.atomically([&](NorecTx& tx) {
        tx.write(pair0, static_cast<std::uint64_t>(i));
        tx.write(pair1, static_cast<std::uint64_t>(i));
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      stm.atomically_read([&](NorecReadTx& tx) {
        const std::uint64_t x = tx.read(pair0);
        const std::uint64_t y = tx.read(pair1);
        if (x != y) torn.fetch_add(1);
      });
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(Norec, AbortsAreCountedUnderConflict) {
  Norec stm{make_policy(StrategyKind::kNoDelay)};
  Cell hot;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        stm.atomically([&](NorecTx& tx) {
          tx.write(hot, tx.read(hot) + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(stm.stats().commits.load(), 20000u);
  // On a single-core container overlap may be rare; just require the
  // counters to be consistent (no negative/garbage).
  EXPECT_EQ(Norec::read_committed(hot), 20000u);
}

}  // namespace
