// Unit tests for the numeric kernels the densities rest on: Simpson
// quadrature and monotone-CDF bisection.
#include "core/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using txc::core::integrate;
using txc::core::invert_monotone;

TEST(Integrate, Polynomial) {
  // Simpson is exact for cubics.
  const double result =
      integrate([](double x) { return x * x * x - 2.0 * x + 1.0; }, 0.0, 2.0, 8);
  EXPECT_NEAR(result, 4.0 - 4.0 + 2.0, 1e-12);
}

TEST(Integrate, Exponential) {
  const double result = integrate([](double x) { return std::exp(x); }, 0.0, 1.0);
  EXPECT_NEAR(result, std::exp(1.0) - 1.0, 1e-10);
}

TEST(Integrate, EmptyAndReversedRange) {
  EXPECT_EQ(integrate([](double) { return 1.0; }, 1.0, 1.0), 0.0);
  EXPECT_EQ(integrate([](double) { return 1.0; }, 2.0, 1.0), 0.0);
}

TEST(Integrate, OddPanelCountIsRoundedUp) {
  const double result = integrate([](double x) { return x; }, 0.0, 1.0, 3);
  EXPECT_NEAR(result, 0.5, 1e-12);
}

TEST(InvertMonotone, LinearAndNonlinear) {
  EXPECT_NEAR(invert_monotone([](double x) { return x; }, 0.25, 0.0, 1.0),
              0.25, 1e-10);
  EXPECT_NEAR(
      invert_monotone([](double x) { return x * x; }, 0.25, 0.0, 1.0), 0.5,
      1e-10);
  EXPECT_NEAR(invert_monotone([](double x) { return 1.0 - std::exp(-x); },
                              0.5, 0.0, 10.0),
              std::log(2.0), 1e-9);
}

TEST(InvertMonotone, TargetAtBounds) {
  EXPECT_NEAR(invert_monotone([](double x) { return x; }, 0.0, 0.0, 1.0), 0.0,
              1e-9);
  EXPECT_NEAR(invert_monotone([](double x) { return x; }, 1.0, 0.0, 1.0), 1.0,
              1e-9);
}

TEST(GrowthRatio, MonotoneInK) {
  double previous = txc::core::growth_ratio(2);
  for (int k = 3; k <= 64; ++k) {
    const double current = txc::core::growth_ratio(k);
    EXPECT_GT(current, previous) << "k = " << k;
    previous = current;
  }
  EXPECT_LT(previous, txc::core::kE);
}

TEST(ExpInv, MatchesDirectComputation) {
  EXPECT_NEAR(txc::core::exp_inv(2), txc::core::kE, 1e-12);
  EXPECT_NEAR(txc::core::exp_inv(5), std::exp(0.25), 1e-12);
}

}  // namespace
