// Arbiter-conformance suite: every ConflictArbiter implementation must run
// unmodified on every substrate adapter — TL2 (striped write locks, kill
// protocol), NOrec (anonymous global seqlock, no kills), the HTM simulator's
// transactional conflict events, and the simulator's fallback-lock path —
// with atomicity preserved everywhere.  The suite is value-parameterized
// over the arbiter roster, so adding an arbiter automatically subjects it to
// all four substrates.
//
// The binary also carries the layer's zero-allocation guarantee: arbiter
// calls (decide / wait_quantum / grace_grant / feedback) must not touch the
// global allocator in steady state, proven with the same counting
// operator-new methodology as test_stm_alloc.cpp.
#include "conflict/arbiter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "conflict/adaptive.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Replacement global allocation functions ([new.delete.single]); the
// matching deletes must be replaced alongside or the counts would pair a
// counting new with a default delete.  GCC's -Wmismatched-new-delete fires
// spuriously here: when a gtest parameterized-test factory inlines both the
// `new TestClass` and the sized delete, it sees our delete's free() against
// the replaced new and flags the pair — but both replacements consistently
// use malloc/free, so the pairing is correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace txc;
using namespace txc::conflict;

std::uint64_t allocations() {
  return g_news.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// The arbiter roster
// ---------------------------------------------------------------------------

struct ArbiterCase {
  const char* label;  // gtest-safe name ([A-Za-z0-9_])
  std::shared_ptr<const ConflictArbiter> (*make)();
};

std::shared_ptr<const ConflictArbiter> grace(core::StrategyKind kind) {
  return std::make_shared<GraceArbiter>(core::make_policy(kind));
}

const ArbiterCase kRoster[] = {
    {"Grace_NO_DELAY",
     [] { return grace(core::StrategyKind::kNoDelay); }},
    {"Grace_DET_ABORTS",
     [] { return grace(core::StrategyKind::kDetAborts); }},
    {"Grace_DET_WINS",
     [] { return grace(core::StrategyKind::kDetWins); }},
    {"Grace_RRA",
     [] { return grace(core::StrategyKind::kRandAborts); }},
    {"Grace_RRW",
     [] { return grace(core::StrategyKind::kRandWins); }},
    {"Grace_HYBRID",
     [] { return grace(core::StrategyKind::kHybrid); }},
    {"Polite", [] { return make_cm(CmKind::kPolite); }},
    {"Karma", [] { return make_cm(CmKind::kKarma); }},
    {"Timestamp", [] { return make_cm(CmKind::kTimestamp); }},
    {"Greedy", [] { return make_cm(CmKind::kGreedy); }},
    {"Polka", [] { return make_cm(CmKind::kPolka); }},
    {"Adaptive_RA",
     [] {
       return std::static_pointer_cast<const ConflictArbiter>(
           std::make_shared<AdaptiveArbiter>());
     }},
    {"Adaptive_RW",
     [] {
       return std::static_pointer_cast<const ConflictArbiter>(
           std::make_shared<AdaptiveArbiter>(
               AdaptiveArbiter::Params{},
               core::ResolutionMode::kRequestorWins));
     }},
};

// ---------------------------------------------------------------------------
// Substrate adapters: run a canonical contended workload under the given
// arbiter and assert atomicity end to end.
// ---------------------------------------------------------------------------

constexpr int kThreads = 3;
constexpr int kIncrementsPerThread = 1200;

void run_tl2(const std::shared_ptr<const ConflictArbiter>& arbiter) {
  stm::Stm stm{arbiter};
  stm::Cell counter;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        stm.atomically([&](stm::Tx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(stm::Stm::read_committed(counter),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

void run_norec(const std::shared_ptr<const ConflictArbiter>& arbiter) {
  stm::Norec norec{arbiter};
  stm::Cell counter;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        norec.atomically([&](stm::NorecTx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(stm::Norec::read_committed(counter),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

void run_sim(const std::shared_ptr<const ConflictArbiter>& arbiter,
             std::uint32_t max_attempts_before_fallback) {
  htm::HtmConfig config;
  config.cores = 4;
  config.arbiter = arbiter;
  config.max_attempts_before_fallback = max_attempts_before_fallback;
  config.seed = 99;
  auto workload = std::make_shared<ds::CounterWorkload>();
  htm::HtmSystem system{config, workload};
  const auto stats = system.run(1000);
  // The post-target drain of in-flight fallback attempts may commit a few
  // extra transactions; atomicity is the counter/commit equality.
  EXPECT_GE(stats.commits, 1000u);
  EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits);
  EXPECT_TRUE(system.coherence_invariants_hold());
}

// ---------------------------------------------------------------------------
// Conformance: arbiter roster x substrate adapters
// ---------------------------------------------------------------------------

class ArbiterConformance : public ::testing::TestWithParam<ArbiterCase> {};

TEST_P(ArbiterConformance, Tl2CounterAtomic) { run_tl2(GetParam().make()); }

TEST_P(ArbiterConformance, NorecCounterAtomic) {
  run_norec(GetParam().make());
}

TEST_P(ArbiterConformance, SimulatorCounterAtomic) {
  run_sim(GetParam().make(), /*max_attempts_before_fallback=*/0);
}

TEST_P(ArbiterConformance, SimulatorFallbackPathAtomic) {
  run_sim(GetParam().make(), /*max_attempts_before_fallback=*/2);
}

TEST_P(ArbiterConformance, GrantsAreFiniteAndTerminal) {
  // The one-shot form every deadline substrate relies on: finite budget,
  // never a kWait verdict — for a view with live descriptors and without.
  const auto arbiter = GetParam().make();
  sim::Rng rng{5};
  TxDescriptor self;
  TxDescriptor enemy;
  self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  enemy.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  self.start_time.store(2);
  enemy.start_time.store(1);  // enemy is senior: we never kill instantly
  ConflictView view;
  view.self = &self;
  view.enemy = &enemy;
  view.context.abort_cost = 300.0;
  const GraceGrant grant = arbiter->grace_grant(view, rng);
  EXPECT_GE(grant.grace, 0.0);
  EXPECT_LT(grant.grace, 1e9);
  EXPECT_NE(grant.expiry_verdict, Decision::kWait);

  ConflictView bare;  // the NOrec shape: no descriptors at all
  bare.can_abort_enemy = false;
  const GraceGrant anonymous = arbiter->grace_grant(bare, rng);
  EXPECT_GE(anonymous.grace, 0.0);
  EXPECT_NE(anonymous.expiry_verdict, Decision::kWait);
}

INSTANTIATE_TEST_SUITE_P(Roster, ArbiterConformance,
                         ::testing::ValuesIn(kRoster),
                         [](const ::testing::TestParamInfo<ArbiterCase>& info) {
                           return std::string(info.param.label);
                         });

// ---------------------------------------------------------------------------
// One instance, four substrates: the cross-substrate contract in one test.
// ---------------------------------------------------------------------------

TEST(CrossSubstrate, OneAdaptiveInstanceServesAllFourSites) {
  // The acceptance shape of the refactor: a single learning arbiter
  // instance arbitrates TL2, NOrec, the simulator's conflict events, and
  // the fallback-lock path back to back, accumulating feedback from all of
  // them, with atomicity preserved everywhere.
  const auto adaptive = std::make_shared<AdaptiveArbiter>();
  const auto shared =
      std::static_pointer_cast<const ConflictArbiter>(adaptive);
  run_tl2(shared);
  run_norec(shared);
  run_sim(shared, /*max_attempts_before_fallback=*/0);
  run_sim(shared, /*max_attempts_before_fallback=*/2);
  // The simulator's contended counter must have produced outcome feedback
  // (TL2/NOrec conflicts depend on host scheduling, so only the
  // deterministic simulator is asserted on).
  EXPECT_GT(adaptive->feedback_samples(), 0u);
  EXPECT_GT(adaptive->learned_mean(), 0.0);
}

TEST(CrossSubstrate, AdaptiveSwitchesRegimeWithTheEvidence) {
  AdaptiveArbiter arbiter;
  // Bootstrap: grace regime (no evidence yet).
  EXPECT_FALSE(arbiter.in_immediate_regime(/*abort_cost=*/256.0,
                                           /*chain_length=*/2));
  // Feed exact observations of long remaining times: once the learned mean
  // clearly exceeds the abort cost, waiting is dominated and the arbiter
  // flips to the immediate-abort regime (the paper's threshold analysis).
  for (int i = 0; i < 64; ++i) {
    arbiter.feedback({/*committed=*/true, /*grace=*/4000.0,
                      /*waited=*/2000.0, /*chain_length=*/2});
  }
  EXPECT_TRUE(arbiter.in_immediate_regime(256.0, 2));
  // A large abort cost makes waiting worthwhile again.
  EXPECT_FALSE(arbiter.in_immediate_regime(1e6, 2));
  // Under requestor-wins, long chains raise the cost of waiting: the same
  // evidence flips the regime at smaller means.
  AdaptiveArbiter wins{AdaptiveArbiter::Params{},
                       core::ResolutionMode::kRequestorWins};
  for (int i = 0; i < 64; ++i) {
    wins.feedback({true, 400.0, 200.0, 8});
  }
  EXPECT_TRUE(wins.in_immediate_regime(256.0, /*chain_length=*/8));
  EXPECT_FALSE(wins.in_immediate_regime(256.0, /*chain_length=*/2));
}

TEST(CrossSubstrate, CensoredFeedbackKeepsTheMeanUp) {
  // Expired budgets reveal only D > grace; the censored-mean correction
  // must push the estimate above the censoring bound, not collapse to it.
  AdaptiveArbiter arbiter{AdaptiveArbiter::Params{}};
  for (int i = 0; i < 128; ++i) {
    arbiter.feedback({/*committed=*/false, /*grace=*/100.0,
                      /*waited=*/100.0, /*chain_length=*/2});
  }
  EXPECT_GT(arbiter.learned_mean(), 100.0);
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state (mirrors test_stm_alloc.cpp)
// ---------------------------------------------------------------------------

TEST(ArbiterAllocation, SteadyStateDecisionsAllocateNothing) {
  // Build the whole roster and warm every code path (first draws, estimator
  // bootstrap) before the measuring window opens; then every decide /
  // wait_quantum / grace_grant / feedback across every arbiter must stay off
  // the allocator.  (name() is exempt: it returns a std::string.)
  std::vector<std::shared_ptr<const ConflictArbiter>> roster;
  for (const ArbiterCase& entry : kRoster) roster.push_back(entry.make());
  sim::Rng rng{11};
  TxDescriptor self;
  TxDescriptor enemy;
  self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  enemy.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  self.priority.store(3);
  enemy.priority.store(5);
  self.start_time.store(2);
  enemy.start_time.store(1);

  const auto exercise = [&](const ConflictArbiter& arbiter) {
    double scratch = -1.0;
    ConflictView view;
    view.self = &self;
    view.enemy = &enemy;
    view.scratch = &scratch;
    view.context.abort_cost = 256.0;
    view.context.chain_length = 3;
    for (std::uint64_t round = 0; round < 8; ++round) {
      view.waits_so_far = round;
      (void)arbiter.decide(view, rng);
      (void)arbiter.wait_quantum(view);
    }
    double grant_scratch = -1.0;
    view.scratch = &grant_scratch;
    (void)arbiter.grace_grant(view, rng);
    arbiter.feedback({/*committed=*/true, 128.0, 64.0, 2});
    arbiter.feedback({/*committed=*/false, 128.0, 128.0, 3});
  };

  for (const auto& arbiter : roster) exercise(*arbiter);  // warm-up

  const std::uint64_t before = allocations();
  for (int i = 0; i < 2000; ++i) {
    for (const auto& arbiter : roster) exercise(*arbiter);
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "steady-state arbiter calls must not reach operator new";
}

TEST(ArbiterAllocation, Tl2SteadyStateHoldsUnderTheAdaptiveArbiter) {
  // Integration mirror of test_stm_alloc: the full TL2 fast path with the
  // learning arbiter plugged in (its spinlock and estimator included) must
  // keep the zero-allocation guarantee.
  stm::Stm stm{std::make_shared<AdaptiveArbiter>()};
  stm::Cell counter;
  for (int i = 0; i < 1000; ++i) {  // warm-up: buffers, descriptor, slab
    stm.atomically([&](stm::Tx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    stm.atomically([&](stm::Tx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(stm::Stm::read_committed(counter), 11000u);
}

TEST(ArbiterAllocation, NorecSteadyStateHoldsUnderTheGraceArbiter) {
  stm::Norec norec{std::make_shared<GraceArbiter>(
      core::make_policy(core::StrategyKind::kRandAborts))};
  stm::Cell counter;
  for (int i = 0; i < 500; ++i) {
    norec.atomically([&](stm::NorecTx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 5000; ++i) {
    norec.atomically([&](stm::NorecTx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
  }
  EXPECT_EQ(allocations() - before, 0u);
}

}  // namespace
