// Arbiter-conformance suite: every ConflictArbiter implementation must run
// unmodified on every substrate adapter — TL2 (striped write locks, kill
// protocol), NOrec (anonymous global seqlock, no kills), the HTM simulator's
// transactional conflict events, and the simulator's fallback-lock path —
// with atomicity preserved everywhere.  The suite is value-parameterized
// over the arbiter roster, so adding an arbiter automatically subjects it to
// all four substrates.
//
// The binary also carries the layer's zero-allocation guarantee: arbiter
// calls (decide / wait_quantum / grace_grant / feedback) must not touch the
// global allocator in steady state, proven with the same counting
// operator-new methodology as test_stm_alloc.cpp.
#include "conflict/arbiter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "conflict/adaptive.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Replacement global allocation functions ([new.delete.single]); the
// matching deletes must be replaced alongside or the counts would pair a
// counting new with a default delete.  GCC's -Wmismatched-new-delete fires
// spuriously here: when a gtest parameterized-test factory inlines both the
// `new TestClass` and the sized delete, it sees our delete's free() against
// the replaced new and flags the pair — but both replacements consistently
// use malloc/free, so the pairing is correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// White-box access to NOrec's seqlock / committer slot (declared a friend
// of Norec and NorecTx): the kill-protocol proofs below stage a committer
// mid-window deterministically instead of racing the real (nanoseconds-
// wide) commit window from another thread.
namespace txc::stm {
struct NorecTestPeek {
  static std::atomic<std::uint64_t>& seqlock(Norec& norec) {
    return norec.seqlock_;
  }
  static std::atomic<TxDescriptor*>& committer(Norec& norec) {
    return norec.committer_;
  }
  static NorecTx make_tx(Norec& norec, std::uint32_t attempt,
                         std::uint64_t snapshot, TxDescriptor* descriptor,
                         TxBuffers* buffers) {
    return NorecTx{norec, attempt, snapshot, descriptor, buffers};
  }
  static std::optional<std::uint64_t> await_even(Norec& norec, NorecTx& tx) {
    return norec.await_even(tx);
  }
};
}  // namespace txc::stm

namespace {

using namespace txc;
using namespace txc::conflict;

std::uint64_t allocations() {
  return g_news.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// The arbiter roster
// ---------------------------------------------------------------------------

struct ArbiterCase {
  const char* label;  // gtest-safe name ([A-Za-z0-9_])
  std::shared_ptr<const ConflictArbiter> (*make)();
};

std::shared_ptr<const ConflictArbiter> grace(core::StrategyKind kind) {
  return std::make_shared<GraceArbiter>(core::make_policy(kind));
}

const ArbiterCase kRoster[] = {
    {"Grace_NO_DELAY",
     [] { return grace(core::StrategyKind::kNoDelay); }},
    {"Grace_DET_ABORTS",
     [] { return grace(core::StrategyKind::kDetAborts); }},
    {"Grace_DET_WINS",
     [] { return grace(core::StrategyKind::kDetWins); }},
    {"Grace_RRA",
     [] { return grace(core::StrategyKind::kRandAborts); }},
    {"Grace_RRW",
     [] { return grace(core::StrategyKind::kRandWins); }},
    {"Grace_HYBRID",
     [] { return grace(core::StrategyKind::kHybrid); }},
    {"Polite", [] { return make_cm(CmKind::kPolite); }},
    {"Karma", [] { return make_cm(CmKind::kKarma); }},
    {"Timestamp", [] { return make_cm(CmKind::kTimestamp); }},
    {"Greedy", [] { return make_cm(CmKind::kGreedy); }},
    {"Polka", [] { return make_cm(CmKind::kPolka); }},
    {"Adaptive_RA",
     [] {
       return std::static_pointer_cast<const ConflictArbiter>(
           std::make_shared<AdaptiveArbiter>());
     }},
    {"Adaptive_RW",
     [] {
       return std::static_pointer_cast<const ConflictArbiter>(
           std::make_shared<AdaptiveArbiter>(
               AdaptiveArbiter::Params{},
               core::ResolutionMode::kRequestorWins));
     }},
};

// ---------------------------------------------------------------------------
// Substrate adapters: run a canonical contended workload under the given
// arbiter and assert atomicity end to end.
// ---------------------------------------------------------------------------

constexpr int kThreads = 3;
constexpr int kIncrementsPerThread = 1200;

void run_tl2(const std::shared_ptr<const ConflictArbiter>& arbiter) {
  stm::Stm stm{arbiter};
  stm::Cell counter;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        stm.atomically([&](stm::Tx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(stm::Stm::read_committed(counter),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

void run_norec(const std::shared_ptr<const ConflictArbiter>& arbiter) {
  stm::Norec norec{arbiter};
  stm::Cell counter;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        norec.atomically([&](stm::NorecTx& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(stm::Norec::read_committed(counter),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

void run_sim(const std::shared_ptr<const ConflictArbiter>& arbiter,
             std::uint32_t max_attempts_before_fallback) {
  htm::HtmConfig config;
  config.cores = 4;
  config.arbiter = arbiter;
  config.max_attempts_before_fallback = max_attempts_before_fallback;
  config.seed = 99;
  auto workload = std::make_shared<ds::CounterWorkload>();
  htm::HtmSystem system{config, workload};
  const auto stats = system.run(1000);
  // The post-target drain of in-flight fallback attempts may commit a few
  // extra transactions; atomicity is the counter/commit equality.
  EXPECT_GE(stats.commits, 1000u);
  EXPECT_EQ(system.memory_value(workload->counter_line()), stats.commits);
  EXPECT_TRUE(system.coherence_invariants_hold());
}

// ---------------------------------------------------------------------------
// Conformance: arbiter roster x substrate adapters
// ---------------------------------------------------------------------------

class ArbiterConformance : public ::testing::TestWithParam<ArbiterCase> {};

TEST_P(ArbiterConformance, Tl2CounterAtomic) { run_tl2(GetParam().make()); }

TEST_P(ArbiterConformance, NorecCounterAtomic) {
  run_norec(GetParam().make());
}

TEST_P(ArbiterConformance, SimulatorCounterAtomic) {
  run_sim(GetParam().make(), /*max_attempts_before_fallback=*/0);
}

TEST_P(ArbiterConformance, SimulatorFallbackPathAtomic) {
  run_sim(GetParam().make(), /*max_attempts_before_fallback=*/2);
}

TEST_P(ArbiterConformance, GrantsAreFiniteAndTerminal) {
  // The one-shot form every deadline substrate relies on: finite budget,
  // never a kWait verdict — for a view with live descriptors and without.
  const auto arbiter = GetParam().make();
  sim::Rng rng{5};
  TxDescriptor self;
  TxDescriptor enemy;
  self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  enemy.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  self.start_time.store(2);
  enemy.start_time.store(1);  // enemy is senior: we never kill instantly
  ConflictView view;
  view.self = &self;
  view.enemy = &enemy;
  view.context.abort_cost = 300.0;
  const GraceGrant grant = arbiter->grace_grant(view, rng);
  EXPECT_GE(grant.grace, 0.0);
  EXPECT_LT(grant.grace, 1e9);
  EXPECT_NE(grant.expiry_verdict, Decision::kWait);

  ConflictView bare;  // the NOrec shape: no descriptors at all
  bare.can_abort_enemy = false;
  const GraceGrant anonymous = arbiter->grace_grant(bare, rng);
  EXPECT_GE(anonymous.grace, 0.0);
  EXPECT_NE(anonymous.expiry_verdict, Decision::kWait);
}

INSTANTIATE_TEST_SUITE_P(Roster, ArbiterConformance,
                         ::testing::ValuesIn(kRoster),
                         [](const ::testing::TestParamInfo<ArbiterCase>& info) {
                           return std::string(info.param.label);
                         });

// ---------------------------------------------------------------------------
// One instance, four substrates: the cross-substrate contract in one test.
// ---------------------------------------------------------------------------

TEST(CrossSubstrate, OneAdaptiveInstanceServesAllFourSites) {
  // The acceptance shape of the refactor: a single learning arbiter
  // instance arbitrates TL2, NOrec, the simulator's conflict events, and
  // the fallback-lock path back to back, accumulating feedback from all of
  // them, with atomicity preserved everywhere.
  const auto adaptive = std::make_shared<AdaptiveArbiter>();
  const auto shared =
      std::static_pointer_cast<const ConflictArbiter>(adaptive);
  run_tl2(shared);
  run_norec(shared);
  run_sim(shared, /*max_attempts_before_fallback=*/0);
  run_sim(shared, /*max_attempts_before_fallback=*/2);
  // The simulator's contended counter must have produced outcome feedback
  // (TL2/NOrec conflicts depend on host scheduling, so only the
  // deterministic simulator is asserted on).
  EXPECT_GT(adaptive->feedback_samples(), 0u);
  EXPECT_GT(adaptive->learned_mean(), 0.0);
}

TEST(CrossSubstrate, AdaptiveSwitchesRegimeWithTheEvidence) {
  AdaptiveArbiter arbiter;
  // Bootstrap: grace regime (no evidence yet).
  EXPECT_FALSE(arbiter.in_immediate_regime(/*abort_cost=*/256.0,
                                           /*chain_length=*/2));
  // Feed exact observations of long remaining times: once the learned mean
  // clearly exceeds the abort cost, waiting is dominated and the arbiter
  // flips to the immediate-abort regime (the paper's threshold analysis).
  for (int i = 0; i < 64; ++i) {
    arbiter.feedback({/*committed=*/true, /*grace=*/4000.0,
                      /*waited=*/2000.0, /*chain_length=*/2});
  }
  EXPECT_TRUE(arbiter.in_immediate_regime(256.0, 2));
  // A large abort cost makes waiting worthwhile again.
  EXPECT_FALSE(arbiter.in_immediate_regime(1e6, 2));
  // Under requestor-wins, long chains raise the cost of waiting: the same
  // evidence flips the regime at smaller means.
  AdaptiveArbiter wins{AdaptiveArbiter::Params{},
                       core::ResolutionMode::kRequestorWins};
  for (int i = 0; i < 64; ++i) {
    wins.feedback({true, 400.0, 200.0, 8});
  }
  EXPECT_TRUE(wins.in_immediate_regime(256.0, /*chain_length=*/8));
  EXPECT_FALSE(wins.in_immediate_regime(256.0, /*chain_length=*/2));
}

TEST(CrossSubstrate, CensoredFeedbackKeepsTheMeanUp) {
  // Expired budgets reveal only D > grace; the censored-mean correction
  // must push the estimate above the censoring bound, not collapse to it.
  AdaptiveArbiter arbiter{AdaptiveArbiter::Params{}};
  for (int i = 0; i < 128; ++i) {
    arbiter.feedback({/*committed=*/false, /*grace=*/100.0,
                      /*waited=*/100.0, /*chain_length=*/2});
  }
  EXPECT_GT(arbiter.learned_mean(), 100.0);
}

// ---------------------------------------------------------------------------
// NOrec committer descriptors: the seqlock holder is no longer anonymous.
// These are the kill-protocol proofs — a waiter observes a real enemy
// descriptor, seniority arbiters differentiate on it, a granted kAbortEnemy
// lands, and the committer honors the kill CAS before write-back.  The
// commit window is nanoseconds wide, so the waiter-side tests stage it
// white-box via NorecTestPeek instead of racing a live committer.
// ---------------------------------------------------------------------------

/// Records every view it is shown; decision script: kill the first live
/// enemy it sees, then give up.  kWait-only mode for passive observation.
class RecordingArbiter final : public ConflictArbiter {
 public:
  explicit RecordingArbiter(bool wait_only = false) noexcept
      : wait_only_(wait_only) {}

  [[nodiscard]] Decision decide(const ConflictView& view,
                                sim::Rng&) const override {
    rounds_.fetch_add(1, std::memory_order_relaxed);
    if (view.self == nullptr) {
      missing_self_.store(true, std::memory_order_relaxed);
    }
    if (!view.can_abort_enemy) {
      saw_no_kill_capability_.store(true, std::memory_order_relaxed);
    }
    if (view.enemy != nullptr) {
      saw_enemy_.store(true, std::memory_order_relaxed);
      enemy_priority_.store(
          view.enemy->priority.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      enemy_start_time_.store(
          view.enemy->start_time.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    if (wait_only_) return Decision::kWait;
    if (view.enemy != nullptr && !kill_spent_.exchange(true)) {
      return Decision::kAbortEnemy;
    }
    return Decision::kAbortSelf;
  }
  [[nodiscard]] std::uint64_t wait_quantum(
      const ConflictView&) const noexcept override {
    return 8;  // keep the staged single-thread tests snappy
  }
  [[nodiscard]] std::string name() const override { return "Recording"; }

  mutable std::atomic<std::uint64_t> rounds_{0};
  mutable std::atomic<bool> saw_enemy_{false};
  mutable std::atomic<bool> missing_self_{false};
  mutable std::atomic<bool> saw_no_kill_capability_{false};
  mutable std::atomic<std::uint64_t> enemy_priority_{0};
  mutable std::atomic<std::uint64_t> enemy_start_time_{0};
  mutable std::atomic<bool> kill_spent_{false};

 private:
  bool wait_only_;
};

using stm::NorecTestPeek;

TEST(NorecCommitterDescriptor, WaitersObserveARealEnemyAndKillsLand) {
  const auto recorder = std::make_shared<RecordingArbiter>();
  stm::Norec norec{recorder};
  // Stage a commit in flight: seqlock odd, committer descriptor published.
  TxDescriptor committer;
  committer.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  committer.priority.store(7);
  committer.start_time.store(3);
  NorecTestPeek::committer(norec).store(&committer);
  NorecTestPeek::seqlock(norec).store(1);

  TxDescriptor self;
  self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  stm::TxBuffers buffers;
  stm::NorecTx tx = NorecTestPeek::make_tx(norec, /*attempt=*/0,
                                           /*snapshot=*/0, &self, &buffers);
  const auto result = NorecTestPeek::await_even(norec, tx);

  // The arbiter killed on round one and gave up on round two.
  EXPECT_FALSE(result.has_value());
  EXPECT_TRUE(recorder->saw_enemy_.load());
  EXPECT_FALSE(recorder->missing_self_.load());
  EXPECT_FALSE(recorder->saw_no_kill_capability_.load())
      << "NOrec must advertise can_abort_enemy now that committers publish";
  EXPECT_EQ(recorder->enemy_priority_.load(), 7u);
  EXPECT_EQ(recorder->enemy_start_time_.load(), 3u);
  // The granted kAbortEnemy landed as a status CAS on the committer.
  EXPECT_EQ(committer.load_status(), TxStatus::kAborted);
  EXPECT_EQ(norec.stats().remote_kills.load(), 1u);
}

/// Shared shape of the seniority-differentiation proofs: stage a committer
/// mid-window, let `arbiter` weigh `self` against it from a second thread,
/// and release the seqlock once the kill CAS lands (as the real victim
/// would).  Returns once the waiter resumed past the freed lock.
void expect_arbiter_kills_staged_committer(
    const std::shared_ptr<const ConflictArbiter>& arbiter,
    TxDescriptor& self, TxDescriptor& committer) {
  stm::Norec norec{arbiter};
  committer.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  NorecTestPeek::committer(norec).store(&committer);
  NorecTestPeek::seqlock(norec).store(1);

  std::optional<std::uint64_t> resumed;
  std::thread waiter{[&] {
    stm::TxBuffers buffers;
    stm::NorecTx tx = NorecTestPeek::make_tx(norec, /*attempt=*/0,
                                             /*snapshot=*/0, &self, &buffers);
    resumed = NorecTestPeek::await_even(norec, tx);
  }};
  // The kill CAS must land without any cooperation from the victim.
  // Bounded wait: if the arbiter regresses to never killing, report a
  // failure instead of hanging the suite (the seqlock release below also
  // unblocks the waiter either way).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool kill_landed = true;
  while (committer.load_status() != TxStatus::kAborted) {
    if (std::chrono::steady_clock::now() > deadline) {
      kill_landed = false;
      break;
    }
    std::this_thread::yield();
  }
  // Unwind as the killed victim would: clear the slot, restore the seqlock
  // to its pre-acquisition even value.
  NorecTestPeek::committer(norec).store(nullptr);
  NorecTestPeek::seqlock(norec).store(2);
  waiter.join();

  ASSERT_TRUE(kill_landed)
      << arbiter->name() << " never delivered the granted kAbortEnemy";
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(*resumed, 2u);
  EXPECT_EQ(norec.stats().remote_kills.load(), 1u);
}

TEST(NorecCommitterDescriptor, KarmaKillsTheLowCreditCommitter) {
  TxDescriptor self;
  TxDescriptor committer;
  self.priority.store(10);     // we did more work (Karma credit)
  committer.priority.store(2);
  expect_arbiter_kills_staged_committer(make_cm(CmKind::kKarma), self,
                                        committer);
}

TEST(NorecCommitterDescriptor, GreedyKillsTheJuniorCommitter) {
  TxDescriptor self;
  TxDescriptor committer;
  self.start_time.store(1);      // we are senior
  committer.start_time.store(5);
  expect_arbiter_kills_staged_committer(make_cm(CmKind::kGreedy), self,
                                        committer);
}

TEST(NorecCommitterDescriptor, CommitterObservesTheKillBeforeWriteBack) {
  // Public-API proof that the victim side of the protocol works: a kill CAS
  // that lands before the committer closes its kill window must abort the
  // commit with nothing written, restore the seqlock, and retry cleanly.
  stm::Norec norec{make_cm(CmKind::kKarma)};
  stm::Cell cell;
  int bodies = 0;
  norec.atomically([&](stm::NorecTx& tx) {
    tx.write(cell, tx.read(cell) + 1);
    if (bodies++ == 0) {
      // First attempt: the kill lands while we are still kActive, exactly
      // what a waiter's granted kAbortEnemy does mid-window.
      EXPECT_TRUE(conflict::thread_descriptor().try_kill());
    }
  });
  EXPECT_EQ(stm::Norec::read_committed(cell), 1u);
  EXPECT_EQ(bodies, 2);  // the killed attempt re-ran
  EXPECT_EQ(norec.stats().aborts.load(), 1u);
  EXPECT_EQ(norec.stats().commits.load(), 1u);
  // The seqlock was restored to an even value (a second transaction works).
  norec.atomically([&](stm::NorecTx& tx) {
    tx.write(cell, tx.read(cell) + 1);
  });
  EXPECT_EQ(stm::Norec::read_committed(cell), 2u);
}

TEST(NorecCommitterDescriptor, ContendedRunAdvertisesKillCapability) {
  // Under a real contended run every view NOrec shows the arbiter must
  // carry a self descriptor and the kill capability (the deterministic
  // staged tests above prove the enemy side; this guards the live wiring).
  const auto recorder =
      std::make_shared<RecordingArbiter>(/*wait_only=*/true);
  run_norec(recorder);
  if (recorder->rounds_.load() > 0) {
    EXPECT_FALSE(recorder->missing_self_.load());
    EXPECT_FALSE(recorder->saw_no_kill_capability_.load());
  }
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state (mirrors test_stm_alloc.cpp)
// ---------------------------------------------------------------------------

TEST(ArbiterAllocation, SteadyStateDecisionsAllocateNothing) {
  // Build the whole roster and warm every code path (first draws, estimator
  // bootstrap) before the measuring window opens; then every decide /
  // wait_quantum / grace_grant / feedback across every arbiter must stay off
  // the allocator.  (name() is exempt: it returns a std::string.)
  std::vector<std::shared_ptr<const ConflictArbiter>> roster;
  for (const ArbiterCase& entry : kRoster) roster.push_back(entry.make());
  sim::Rng rng{11};
  TxDescriptor self;
  TxDescriptor enemy;
  self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  enemy.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  self.priority.store(3);
  enemy.priority.store(5);
  self.start_time.store(2);
  enemy.start_time.store(1);

  const auto exercise = [&](const ConflictArbiter& arbiter) {
    double scratch = -1.0;
    ConflictView view;
    view.self = &self;
    view.enemy = &enemy;
    view.scratch = &scratch;
    view.context.abort_cost = 256.0;
    view.context.chain_length = 3;
    for (std::uint64_t round = 0; round < 8; ++round) {
      view.waits_so_far = round;
      (void)arbiter.decide(view, rng);
      (void)arbiter.wait_quantum(view);
    }
    double grant_scratch = -1.0;
    view.scratch = &grant_scratch;
    (void)arbiter.grace_grant(view, rng);
    arbiter.feedback({/*committed=*/true, 128.0, 64.0, 2});
    arbiter.feedback({/*committed=*/false, 128.0, 128.0, 3});
  };

  for (const auto& arbiter : roster) exercise(*arbiter);  // warm-up

  const std::uint64_t before = allocations();
  for (int i = 0; i < 2000; ++i) {
    for (const auto& arbiter : roster) exercise(*arbiter);
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "steady-state arbiter calls must not reach operator new";
}

TEST(ArbiterAllocation, Tl2SteadyStateHoldsUnderTheAdaptiveArbiter) {
  // Integration mirror of test_stm_alloc: the full TL2 fast path with the
  // learning arbiter plugged in (its spinlock and estimator included) must
  // keep the zero-allocation guarantee.
  stm::Stm stm{std::make_shared<AdaptiveArbiter>()};
  stm::Cell counter;
  for (int i = 0; i < 1000; ++i) {  // warm-up: buffers, descriptor, slab
    stm.atomically([&](stm::Tx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    stm.atomically([&](stm::Tx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(stm::Stm::read_committed(counter), 11000u);
}

TEST(ArbiterAllocation, NorecSteadyStateHoldsUnderTheGraceArbiter) {
  stm::Norec norec{std::make_shared<GraceArbiter>(
      core::make_policy(core::StrategyKind::kRandAborts))};
  stm::Cell counter;
  for (int i = 0; i < 500; ++i) {
    norec.atomically([&](stm::NorecTx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 5000; ++i) {
    norec.atomically([&](stm::NorecTx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
  }
  EXPECT_EQ(allocations() - before, 0u);
}

}  // namespace
