// Lock-table placement — geometry contracts and false-conflict telemetry.
//
// The adversarial half of the suite builds strided cell/key sets that
// collide maximally under the legacy hashed (pointer-mixed, power-of-two
// masked) stripe table and proves, with deterministic two-thread
// choreography rather than racing, that:
//   - StmStats::false_conflicts catches the collision on the hashed path
//     (conflicting stripe, disjoint addresses), and
//   - registering the cells as a region (stm::RegionSpec, bijective
//     coprime-stride placement) makes the same choreography conflict-free:
//     zero aborts, zero false_conflicts, zero stripe_collisions.
// The geometry half pins the observable contracts: stripes == 0 rejected,
// requested vs rounded table sizes via stripe_geometry(), RegionSpec
// validation on BOTH substrates (NOrec validates and ignores — the
// untouched control), overlap rejection, the bijection guarantee up to
// table capacity, and the bounded collision shell past it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "kv/store.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using core::StrategyKind;
using stm::Cell;
using stm::Norec;
using stm::NorecTx;
using stm::RegionSpec;
using stm::Stm;
using stm::Tx;

std::shared_ptr<const core::GracePeriodPolicy> policy() {
  return core::make_policy(StrategyKind::kNoDelay);
}

/// Two distinct cells from `pool` that the hashed table of `stm` places on
/// one stripe.  With |pool| >= 8x the table size the pigeonhole guarantees
/// a pair exists; the scan finds the first.
std::pair<Cell*, Cell*> aliased_pair(Stm& stm, std::vector<Cell>& pool) {
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      if (stm.debug_stripe_of(&pool[i]) == stm.debug_stripe_of(&pool[j])) {
        return {&pool[i], &pool[j]};
      }
    }
  }
  ADD_FAILURE() << "no aliased pair in a pool 8x the stripe table";
  return {&pool[0], &pool[1]};
}

// ---------------------------------------------------------------------------
// Geometry contracts (TL2).
// ---------------------------------------------------------------------------

TEST(StripeGeometry, ZeroStripesIsRejectedNotCoerced) {
  EXPECT_THROW(Stm(policy(), 0), std::invalid_argument);
}

TEST(StripeGeometry, ReportsRequestedAndRoundedTableSizes) {
  Stm stm{policy(), 1000};
  const Stm::StripeGeometry geometry = stm.stripe_geometry();
  EXPECT_EQ(geometry.requested_stripes, 1000u);
  EXPECT_EQ(geometry.hashed_stripes, 1024u);  // rounded up to a power of two
  EXPECT_TRUE(geometry.regions.empty());
  EXPECT_NE(stm.describe_geometry().find("1024"), std::string::npos);
  EXPECT_NE(stm.describe_geometry().find("1000"), std::string::npos);
}

TEST(StripeGeometry, RegionGeometryReportsShellAndStride) {
  Stm stm{policy(), 64};
  std::vector<Cell> pool(1024);
  RegionSpec spec;
  spec.base = pool.data();
  spec.elements = pool.size();
  spec.stride_bytes = sizeof(Cell);
  spec.stripes = 256;  // undersized on purpose: shell = 1024/256 = 4
  stm.register_region(spec);

  const Stm::StripeGeometry geometry = stm.stripe_geometry();
  ASSERT_EQ(geometry.regions.size(), 1u);
  EXPECT_EQ(geometry.regions[0].elements, 1024u);
  EXPECT_EQ(geometry.regions[0].stripes, 256u);
  EXPECT_EQ(geometry.regions[0].collision_shell, 4u);
  EXPECT_EQ(geometry.regions[0].placement_stride % 2, 1u)
      << "placement stride must be odd (coprime to the power-of-two table)";
}

TEST(StripeGeometry, RegionPlacementIsBijectiveUpToCapacity) {
  Stm stm{policy(), 64};
  std::vector<Cell> pool(1024);
  RegionSpec spec;
  spec.base = pool.data();
  spec.elements = pool.size();
  spec.stride_bytes = sizeof(Cell);
  stm.register_region(spec);  // auto table: 1024 stripes, shell 1

  std::set<const void*> stripes;
  for (Cell& cell : pool) stripes.insert(stm.debug_stripe_of(&cell));
  EXPECT_EQ(stripes.size(), pool.size())
      << "elements <= table capacity: placement must be injective";
}

TEST(StripeGeometry, UndersizedRegionKeepsTheBoundedShell) {
  Stm stm{policy(), 64};
  std::vector<Cell> pool(1024);
  RegionSpec spec;
  spec.base = pool.data();
  spec.elements = pool.size();
  spec.stride_bytes = sizeof(Cell);
  spec.stripes = 256;
  stm.register_region(spec);

  std::map<const void*, int> occupancy;
  for (Cell& cell : pool) ++occupancy[stm.debug_stripe_of(&cell)];
  EXPECT_EQ(occupancy.size(), 256u)
      << "coprime stride must still cover every stripe";
  for (const auto& [stripe, cells] : occupancy) {
    EXPECT_LE(cells, 4) << "collision shell ceil(1024/256) = 4 violated";
  }
}

TEST(StripeGeometry, OverlappingRegionsAreRejected) {
  Stm stm{policy(), 64};
  std::vector<Cell> pool(128);
  RegionSpec spec;
  spec.base = pool.data();
  spec.elements = 64;
  spec.stride_bytes = sizeof(Cell);
  stm.register_region(spec);

  RegionSpec overlapping = spec;
  overlapping.base = &pool[63];  // last element of the registered region
  EXPECT_THROW(stm.register_region(overlapping), std::invalid_argument);

  RegionSpec disjoint = spec;
  disjoint.base = &pool[64];
  EXPECT_NO_THROW(stm.register_region(disjoint));
  EXPECT_EQ(stm.stripe_geometry().regions.size(), 2u);
}

TEST(StripeGeometry, UnregisteredAddressesKeepTheHashedTable) {
  Stm stm{policy(), 64};
  std::vector<Cell> pool(64);
  Cell outsider;
  RegionSpec spec;
  spec.base = pool.data();
  spec.elements = pool.size();
  spec.stride_bytes = sizeof(Cell);
  stm.register_region(spec);

  // The outsider still transacts through the hashed fallback: registering
  // the region must not change how foreign addresses behave.
  std::uint64_t sum = 0;
  stm.atomically([&](Tx& tx) {
    tx.write(outsider, 7);
    tx.write(pool[0], 9);
  });
  stm.atomically([&](Tx& tx) { sum = tx.read(outsider) + tx.read(pool[0]); });
  EXPECT_EQ(sum, 16u);
}

// ---------------------------------------------------------------------------
// RegionSpec validation on both substrates (NOrec = untouched control).
// ---------------------------------------------------------------------------

template <typename SubstrateT>
class RegionSpecContract : public ::testing::Test {
 public:
  static SubstrateT make() {
    if constexpr (std::is_same_v<SubstrateT, Stm>) {
      return SubstrateT{policy(), 64};
    } else {
      return SubstrateT{policy()};
    }
  }
};

using Substrates = ::testing::Types<Stm, Norec>;
TYPED_TEST_SUITE(RegionSpecContract, Substrates);

TYPED_TEST(RegionSpecContract, InvalidSpecsAreRejected) {
  TypeParam stm = TestFixture::make();
  std::vector<Cell> pool(8);
  RegionSpec good;
  good.base = pool.data();
  good.elements = pool.size();
  good.stride_bytes = sizeof(Cell);

  RegionSpec null_base = good;
  null_base.base = nullptr;
  EXPECT_THROW(stm.register_region(null_base), std::invalid_argument);

  RegionSpec no_elements = good;
  no_elements.elements = 0;
  EXPECT_THROW(stm.register_region(no_elements), std::invalid_argument);

  RegionSpec no_stride = good;
  no_stride.stride_bytes = 0;
  EXPECT_THROW(stm.register_region(no_stride), std::invalid_argument);

  RegionSpec even_stride = good;
  even_stride.placement_stride = 2;  // even: not coprime to a pow-2 table
  EXPECT_THROW(stm.register_region(even_stride), std::invalid_argument);

  EXPECT_NO_THROW(stm.register_region(good));
}

TYPED_TEST(RegionSpecContract, TelemetryCountersStartAtZero) {
  TypeParam stm = TestFixture::make();
  Cell cell;
  stm.atomically([&](typename TypeParam::TxContext& tx) {
    tx.write(cell, tx.read(cell) + 1);
  });
  // A conflict-free transaction must not move either placement counter —
  // and NOrec (no stripe table at all) must keep them zero forever.
  EXPECT_EQ(stm.stats().false_conflicts.load(), 0u);
  EXPECT_EQ(stm.stats().stripe_collisions.load(), 0u);
}

// ---------------------------------------------------------------------------
// False-conflict telemetry: deterministic choreography, hashed vs region.
// ---------------------------------------------------------------------------

/// The choreography: victim opens a transaction and reads Y; a helper then
/// commits a write to X (disjoint from Y); the victim re-reads Y.  When X
/// and Y share a stripe (hashed aliasing) the helper's commit bumped Y's
/// stripe version past the victim's clock sample: the re-read must abort
/// and count ONE false conflict.  When they sit on distinct stripes
/// (registered region) the same sequence commits first try.
struct ChoreographyResult {
  std::uint64_t aborts = 0;
  std::uint64_t false_conflicts = 0;
};

ChoreographyResult run_choreography(Stm& stm, Cell& x, Cell& y) {
  const std::uint64_t aborts_before = stm.stats().aborts.load();
  const std::uint64_t false_before = stm.stats().false_conflicts.load();
  std::atomic<int> stage{0};  // 0: victim reading; 1: helper may commit;
                              // 2: helper committed
  std::thread helper{[&] {
    while (stage.load(std::memory_order_acquire) < 1) {
      std::this_thread::yield();
    }
    stm.atomically([&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
    stage.store(2, std::memory_order_release);
  }};
  stm.atomically([&](Tx& tx) {
    (void)tx.read(y);
    if (tx.attempt() == 0) {
      stage.store(1, std::memory_order_release);
      while (stage.load(std::memory_order_acquire) < 2) {
        std::this_thread::yield();
      }
      // Aliased: the helper's commit staled Y's stripe — this read aborts.
      // Distinct stripes: it returns normally and the attempt commits.
      (void)tx.read(y);
    }
  });
  helper.join();
  return ChoreographyResult{
      stm.stats().aborts.load() - aborts_before,
      stm.stats().false_conflicts.load() - false_before};
}

TEST(FalseConflicts, HashedAliasingIsCaughtByTheCounter) {
  constexpr std::size_t kStripes = 64;
  Stm stm{policy(), kStripes};
  std::vector<Cell> pool(kStripes * 8);
  auto [x, y] = aliased_pair(stm, pool);
  ASSERT_NE(x, y);

  const ChoreographyResult result = run_choreography(stm, *x, *y);
  EXPECT_EQ(result.aborts, 1u)
      << "the staled stripe must abort the victim exactly once";
  EXPECT_GE(result.false_conflicts, 1u)
      << "disjoint addresses on one stripe: the abort is a FALSE conflict "
         "and the telemetry must say so";
}

TEST(FalseConflicts, RegisteredRegionMakesTheSameChoreographyConflictFree) {
  constexpr std::size_t kStripes = 64;
  Stm stm{policy(), kStripes};
  std::vector<Cell> pool(kStripes * 8);
  RegionSpec spec;
  spec.base = pool.data();
  spec.elements = pool.size();
  spec.stride_bytes = sizeof(Cell);
  stm.register_region(spec);  // auto table >= |pool|: bijective, shell 1

  // Any two distinct elements now sit on distinct stripes by construction.
  const ChoreographyResult result =
      run_choreography(stm, pool[0], pool[pool.size() / 2]);
  EXPECT_EQ(result.aborts, 0u)
      << "distinct stripes: the helper's commit must be invisible to Y";
  EXPECT_EQ(result.false_conflicts, 0u);
}

TEST(FalseConflicts, StripeCollisionsCountAliasedWriteSets) {
  constexpr std::size_t kStripes = 64;
  Stm hashed{policy(), kStripes};
  std::vector<Cell> pool(kStripes * 8);
  auto [x, y] = aliased_pair(hashed, pool);

  // One transaction, two disjoint cells, one stripe: the commit-time lock
  // acquisition dedups the second entry — deterministically counted.
  hashed.atomically([&](Tx& tx) {
    tx.write(*x, 1);
    tx.write(*y, 2);
  });
  EXPECT_EQ(hashed.stats().stripe_collisions.load(), 1u);

  Stm regioned{policy(), kStripes};
  RegionSpec spec;
  spec.base = pool.data();
  spec.elements = pool.size();
  spec.stride_bytes = sizeof(Cell);
  regioned.register_region(spec);
  regioned.atomically([&](Tx& tx) {
    tx.write(pool[3], 1);
    tx.write(pool[5], 2);
  });
  EXPECT_EQ(regioned.stats().stripe_collisions.load(), 0u)
      << "bijective placement: distinct cells never share a lock word";
}

TEST(FalseConflicts, NorecControlNeverCountsPlacementTelemetry) {
  // NOrec has no stripe table: its conflicts are genuine seqlock conflicts
  // and the placement counters must stay zero even under write contention.
  Norec stm{policy()};
  std::vector<Cell> cells(16);
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i) {
        stm.atomically([&](NorecTx& tx) {
          Cell& mine = cells[static_cast<std::size_t>(w)];
          tx.write(mine, tx.read(mine) + 1);
          std::this_thread::yield();
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(stm.stats().false_conflicts.load(), 0u);
  EXPECT_EQ(stm.stats().stripe_collisions.load(), 0u);
  EXPECT_EQ(Norec::read_committed(cells[0]), 200u);
  EXPECT_EQ(Norec::read_committed(cells[1]), 200u);
}

// ---------------------------------------------------------------------------
// The KV hot path is false-conflict-free by construction.
// ---------------------------------------------------------------------------

TEST(KvPlacement, RegisteredStoreNeverFalseConflicts) {
  using Store = kv::ShardedKvStore<Stm>;
  Store::Config config;
  config.shards = 4;
  config.capacity_per_shard = 256;
  ASSERT_TRUE(config.register_regions) << "registration must be the default";
  Store store{config, policy()};
  EXPECT_EQ(store.substrate().stripe_geometry().regions.size(), 4u)
      << "one region per shard";

  for (kv::Key key = 1; key <= 64; ++key) store.put_sync(key, key);
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      // Disjoint key ranges: every abort would be placement-induced.
      for (int i = 0; i < 200; ++i) {
        const auto key = static_cast<kv::Key>(1 + w * 32 + (i % 32));
        store.substrate().atomically([&](Tx& tx) {
          kv::Value out = 0;
          EXPECT_EQ(store.rmw_add(tx, key, 1, out), kv::OpStatus::kOk);
          std::this_thread::yield();
        });
        (void)store.get_sync(key);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(store.stats().false_conflicts.load(), 0u)
      << "per-shard regions: the KV hot path must be false-conflict-free "
         "by construction";
  EXPECT_EQ(store.stats().stripe_collisions.load(), 0u);
  // Conservation: 400 increments landed across the two ranges.
  std::uint64_t sum = 0;
  for (kv::Key key = 1; key <= 64; ++key) sum += *store.get_sync(key);
  EXPECT_EQ(sum, (64u * 65u) / 2u + 400u);
}

}  // namespace
