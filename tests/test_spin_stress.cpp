// Cross-substrate spin-site stress suite: the shared
// conflict::drive_spin_site driver (and the NOrec committer-descriptor kill
// protocol behind it) under real multi-threaded contention, for every
// arbiter in the roster, on both STM spin substrates.
//
// The workload is a randomized bank: kAccounts cells whose sum is invariant
// under every transaction.  Writer operations transfer between two random
// accounts; audit operations sum the whole array and check it against the
// invariant — any torn read, lost update, or opacity violation (a
// transaction observing a mid-commit state) shows up as a wrong sum, either
// inside an audit or in the final reconciliation.  Audits run in BOTH
// read modes: instrumented transactions (atomically — read set/log,
// arbitration) and declared-read-only snapshot transactions
// (atomically_read — no read set, no arbitration), so read-only scans race
// writer transactions on every arbiter × substrate point.  The commit
// counters are also reconciled exactly: one atomically() call must be
// exactly one commit and one atomically_read() call exactly one snapshot
// commit, whatever the arbiter decided along the way (waits, self-aborts,
// remote kills).
//
// Scale: smoke-sized by default so the suite stays fast on a 1-core host
// (the value of the test is interleaving, which preemption provides).  The
// nightly workflow raises TXC_STRESS_DEPTH to run the same suite at full
// depth under ASan+UBSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adversary/preempt.hpp"
#include "conflict/adaptive.hpp"
#include "conflict/arbiter.hpp"
#include "conflict/descriptor.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using namespace txc::conflict;

// ---------------------------------------------------------------------------
// Scale knobs
// ---------------------------------------------------------------------------

constexpr int kAccounts = 16;
constexpr std::uint64_t kInitialBalance = 1u << 20;
constexpr std::uint64_t kTotal =
    static_cast<std::uint64_t>(kAccounts) * kInitialBalance;
constexpr int kThreads = 3;

/// Operations per thread, scaled by TXC_STRESS_DEPTH (default 1 = smoke;
/// the nightly sanitizer job runs the same binary much deeper).
int ops_per_thread() {
  int depth = 1;
  if (const char* env = std::getenv("TXC_STRESS_DEPTH")) {
    depth = std::atoi(env);
    if (depth < 1) depth = 1;
  }
  return 1000 * depth;
}

// ---------------------------------------------------------------------------
// The arbiter roster (mirrors tests/test_conflict_arbiter.cpp)
// ---------------------------------------------------------------------------

struct ArbiterCase {
  const char* label;  // gtest-safe name ([A-Za-z0-9_])
  std::shared_ptr<const ConflictArbiter> (*make)();
};

std::shared_ptr<const ConflictArbiter> grace(core::StrategyKind kind) {
  return std::make_shared<GraceArbiter>(core::make_policy(kind));
}

const ArbiterCase kRoster[] = {
    {"Grace_NO_DELAY", [] { return grace(core::StrategyKind::kNoDelay); }},
    {"Grace_DET_ABORTS",
     [] { return grace(core::StrategyKind::kDetAborts); }},
    {"Grace_DET_WINS", [] { return grace(core::StrategyKind::kDetWins); }},
    {"Grace_RRA", [] { return grace(core::StrategyKind::kRandAborts); }},
    {"Grace_RRW", [] { return grace(core::StrategyKind::kRandWins); }},
    {"Grace_HYBRID", [] { return grace(core::StrategyKind::kHybrid); }},
    {"Polite", [] { return make_cm(CmKind::kPolite); }},
    {"Karma", [] { return make_cm(CmKind::kKarma); }},
    {"Timestamp", [] { return make_cm(CmKind::kTimestamp); }},
    {"Greedy", [] { return make_cm(CmKind::kGreedy); }},
    {"Polka", [] { return make_cm(CmKind::kPolka); }},
    {"Adaptive_RA",
     [] {
       return std::static_pointer_cast<const ConflictArbiter>(
           std::make_shared<AdaptiveArbiter>());
     }},
    {"Adaptive_RW",
     [] {
       return std::static_pointer_cast<const ConflictArbiter>(
           std::make_shared<AdaptiveArbiter>(
               AdaptiveArbiter::Params{},
               core::ResolutionMode::kRequestorWins));
     }},
};

// ---------------------------------------------------------------------------
// The randomized bank, expressed against either substrate through the
// unified API surface: atomically(body), read_committed, stats(), and the
// `typename Substrate::TxContext` per-attempt context type.
// ---------------------------------------------------------------------------

/// One thread's worth of randomized operations.  ~1/4 of operations audit
/// the conservation invariant from inside an instrumented transaction and
/// another ~1/4 from a declared-read-only snapshot transaction (both are
/// opacity checks: a consistent snapshot must sum to kTotal); the rest
/// transfer a small amount between two distinct random accounts.  Balances
/// may wrap below zero in unsigned arithmetic — conservation holds modulo
/// 2^64 regardless.  The per-mode transaction counts accumulate into
/// `instrumented_txs` / `snapshot_txs` so the caller can reconcile the
/// substrate's two commit ledgers exactly.
template <typename Substrate>
void stress_worker(Substrate& stm, std::vector<stm::Cell>& accounts,
                   std::uint64_t seed, int ops,
                   std::atomic<int>& start_line,
                   std::atomic<std::uint64_t>& bad_audits,
                   std::atomic<std::uint64_t>& instrumented_txs,
                   std::atomic<std::uint64_t>& snapshot_txs) {
  // Start barrier: maximize the overlap window so contention is real, not
  // an artifact of thread-spawn staggering.
  start_line.fetch_add(1, std::memory_order_acq_rel);
  while (start_line.load(std::memory_order_acquire) < kThreads) {
  }
  using TxT = typename Substrate::TxContext;
  using ReadTxT = typename Substrate::ReadTxContext;
  sim::Rng rng{seed};
  std::uint64_t instrumented = 0;
  std::uint64_t snapshots = 0;
  for (int op = 0; op < ops; ++op) {
    const std::uint32_t role = rng() & 3u;
    if (role == 0) {
      std::uint64_t sum = 0;
      stm.atomically([&](TxT& tx) {
        sum = 0;  // the body may re-run after an abort
        for (auto& account : accounts) sum += tx.read(account);
      });
      ++instrumented;
      if (sum != kTotal) bad_audits.fetch_add(1, std::memory_order_relaxed);
    } else if (role == 1) {
      // The reader role: a read-only scan racing the writer transactions on
      // the snapshot fast path.  No read set, no arbitration — consistency
      // rests entirely on per-read snapshot validation.
      std::uint64_t sum = 0;
      stm.atomically_read([&](ReadTxT& tx) {
        sum = 0;  // the body may re-run after a snapshot restart
        for (auto& account : accounts) sum += tx.read(account);
      });
      ++snapshots;
      if (sum != kTotal) bad_audits.fetch_add(1, std::memory_order_relaxed);
    } else {
      const auto from = static_cast<std::size_t>(rng() % kAccounts);
      std::size_t to = static_cast<std::size_t>(rng() % (kAccounts - 1));
      if (to >= from) ++to;
      const std::uint64_t amount = rng() % 64;
      stm.atomically([&](TxT& tx) {
        tx.write(accounts[from], tx.read(accounts[from]) - amount);
        tx.write(accounts[to], tx.read(accounts[to]) + amount);
      });
      ++instrumented;
    }
  }
  instrumented_txs.fetch_add(instrumented, std::memory_order_relaxed);
  snapshot_txs.fetch_add(snapshots, std::memory_order_relaxed);
}

template <typename Substrate>
void run_stress(Substrate& stm, const char* substrate_label) {
  std::vector<stm::Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value.store(kInitialBalance);
  const int ops = ops_per_thread();
  std::atomic<int> start_line{0};
  std::atomic<std::uint64_t> bad_audits{0};
  std::atomic<std::uint64_t> instrumented_txs{0};
  std::atomic<std::uint64_t> snapshot_txs{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      stress_worker<Substrate>(stm, accounts,
                               /*seed=*/0x57E55ull * (t + 1), ops,
                               start_line, bad_audits, instrumented_txs,
                               snapshot_txs);
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(bad_audits.load(), 0u)
      << substrate_label << ": an in-transaction audit observed a torn or "
      << "mid-commit state (opacity violation)";
  std::uint64_t sum = 0;
  for (auto& account : accounts) {
    sum += Substrate::read_committed(account);
  }
  EXPECT_EQ(sum, kTotal)
      << substrate_label << ": committed state lost or duplicated an update";
  // Exactly one commit per atomically() call and one snapshot commit per
  // atomically_read() call, regardless of how many attempts the arbiter's
  // verdicts (self-aborts, remote kills) or snapshot restarts cost.  The
  // two ledgers must not bleed into each other.
  EXPECT_EQ(stm.stats().commits.load(), instrumented_txs.load())
      << substrate_label << ": commit accounting drifted";
  EXPECT_EQ(stm.stats().snapshot_commits.load(), snapshot_txs.load())
      << substrate_label << ": snapshot commit accounting drifted";
}

// ---------------------------------------------------------------------------
// Roster x substrate stress matrix
// ---------------------------------------------------------------------------

class SpinStress : public ::testing::TestWithParam<ArbiterCase> {};

TEST_P(SpinStress, Tl2BankConservesAndStaysOpaque) {
  stm::Stm stm{GetParam().make()};
  run_stress(stm, "TL2");
}

TEST_P(SpinStress, NorecBankConservesAndStaysOpaque) {
  stm::Norec norec{GetParam().make()};
  run_stress(norec, "NOrec");
}

INSTANTIATE_TEST_SUITE_P(Roster, SpinStress, ::testing::ValuesIn(kRoster),
                         [](const ::testing::TestParamInfo<ArbiterCase>& info) {
                           return std::string(info.param.label);
                         });

// ---------------------------------------------------------------------------
// Cross-substrate sharing: one learning instance arbitrates both substrates
// concurrently-in-sequence under stress, accumulating feedback from both.
// ---------------------------------------------------------------------------

TEST(SpinStressShared, OneAdaptiveInstanceSurvivesBothSubstrates) {
  const auto adaptive = std::make_shared<AdaptiveArbiter>();
  const auto shared = std::static_pointer_cast<const ConflictArbiter>(adaptive);
  stm::Stm stm{shared};
  run_stress(stm, "TL2(shared)");
  stm::Norec norec{shared};
  run_stress(norec, "NOrec(shared)");
}

// ---------------------------------------------------------------------------
// Kill-protocol pressure: a requestor-wins grace arbiter with a tiny budget
// kills aggressively on both substrates; atomicity must hold and (on a
// multi-attempt schedule) kills actually happen without double-applying any
// transfer.
// ---------------------------------------------------------------------------

#ifndef NDEBUG
TEST(CrossSubstrateNesting, DebugBuildsRejectNestingAcrossSubstrates) {
  // TL2 and NOrec share the thread's conflict descriptor, so nesting one
  // substrate's transaction inside the other's body would livelock the
  // outer commit (the inner lifecycle leaves the descriptor kCommitted).
  // Debug builds must reject it loudly (stm::TxThreadScope) instead.
  stm::Stm stm{make_cm(CmKind::kKarma)};
  stm::Norec norec{make_cm(CmKind::kKarma)};
  stm::Cell cell;
  EXPECT_DEATH(norec.atomically([&](stm::NorecTx&) {
    stm.atomically([&](stm::Tx& tx) { tx.write(cell, 1); });
  }),
               "single-occupancy");
}
#endif

// ---------------------------------------------------------------------------
// White-box proof: a declared snapshot reader is invisible to arbitration.
// An ArbiterProbe wraps the arbiter and counts every verdict; the
// substrate's lock_waits counter counts every spin-site entry (including
// pure kWait verdicts the probe does not classify).  With ONE writer and
// snapshot-only readers there is no writer/writer contention, so any
// arbiter traffic at all could only come from the readers — and there must
// be none.  The reader thread's conflict descriptor is sentinel-checked
// too: atomically_read must never publish, stamp, or otherwise touch it.
// ---------------------------------------------------------------------------

template <typename Substrate>
void run_snapshot_zero_traffic(const char* substrate_label) {
  const auto probe =
      std::make_shared<adversary::ArbiterProbe>(make_cm(CmKind::kKarma));
  Substrate stm{probe};
  using ReadTxT = typename Substrate::ReadTxContext;
  using TxT = typename Substrate::TxContext;

  std::vector<stm::Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value.store(kInitialBalance);

  // Sentinel the reader thread's descriptor: a snapshot transaction has no
  // descriptor interaction whatsoever, so these exact values must survive.
  conflict::TxDescriptor& mine = conflict::thread_descriptor();
  mine.status.store(static_cast<std::uint32_t>(conflict::TxStatus::kCommitted),
                    std::memory_order_relaxed);
  mine.priority.store(0xBEEFu, std::memory_order_relaxed);
  mine.start_time.store(0x5EED5u, std::memory_order_relaxed);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_audits{0};
  std::thread writer([&] {
    sim::Rng rng{0xD00Dull};
    while (!stop.load(std::memory_order_acquire)) {
      const auto from = static_cast<std::size_t>(rng() % kAccounts);
      std::size_t to = static_cast<std::size_t>(rng() % (kAccounts - 1));
      if (to >= from) ++to;
      stm.atomically([&](TxT& tx) {
        tx.write(accounts[from], tx.read(accounts[from]) - 1);
        tx.write(accounts[to], tx.read(accounts[to]) + 1);
      });
    }
  });

  const int audits = 200 * ops_per_thread() / 1000 + 100;
  for (int i = 0; i < audits; ++i) {
    std::uint64_t sum = 0;
    stm.atomically_read([&](ReadTxT& tx) {
      sum = 0;  // the body may re-run after a snapshot restart
      for (auto& account : accounts) sum += tx.read(account);
    });
    if (sum != kTotal) bad_audits.fetch_add(1, std::memory_order_relaxed);
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(bad_audits.load(), 0u) << substrate_label;
  EXPECT_EQ(stm.stats().snapshot_commits.load(),
            static_cast<std::uint64_t>(audits))
      << substrate_label;
  // Zero arbiter traffic: the single writer never met another lock holder,
  // and the readers must not have engaged arbitration at all.
  EXPECT_EQ(stm.stats().lock_waits.load(), 0u)
      << substrate_label << ": a snapshot reader entered a spin site";
  EXPECT_EQ(stm.stats().remote_kills.load(), 0u) << substrate_label;
  EXPECT_EQ(probe->kills_requested(), 0u) << substrate_label;
  EXPECT_EQ(probe->self_sacrifices(), 0u) << substrate_label;
  EXPECT_EQ(probe->grants_expired(), 0u) << substrate_label;
  // The reader's descriptor was never published or stamped.
  EXPECT_EQ(mine.status.load(std::memory_order_relaxed),
            static_cast<std::uint32_t>(conflict::TxStatus::kCommitted))
      << substrate_label << ": atomically_read touched the descriptor status";
  EXPECT_EQ(mine.priority.load(std::memory_order_relaxed), 0xBEEFu)
      << substrate_label << ": atomically_read published priority credit";
  EXPECT_EQ(mine.start_time.load(std::memory_order_relaxed), 0x5EED5u)
      << substrate_label << ": atomically_read stamped seniority";
}

TEST(SnapshotZeroTraffic, Tl2ReaderNeverPublishesOrArbitrates) {
  run_snapshot_zero_traffic<stm::Stm>("TL2");
}

TEST(SnapshotZeroTraffic, NorecReaderNeverPublishesOrArbitrates) {
  run_snapshot_zero_traffic<stm::Norec>("NOrec");
}

TEST(SpinStressKills, AggressiveRequestorWinsStaysAtomicOnBothSubstrates) {
  const auto trigger_happy = std::make_shared<GraceArbiter>(
      core::make_policy(core::StrategyKind::kFixedTuned, /*tuned_delay=*/1.0),
      core::ResolutionMode::kRequestorWins);
  {
    stm::Stm stm{trigger_happy};
    run_stress(stm, "TL2(kill-heavy)");
  }
  {
    stm::Norec norec{trigger_happy};
    run_stress(norec, "NOrec(kill-heavy)");
  }
}

}  // namespace
