// Cross-substrate spin-site stress suite: the shared
// conflict::drive_spin_site driver (and the NOrec committer-descriptor kill
// protocol behind it) under real multi-threaded contention, for every
// arbiter in the roster, on both STM spin substrates.
//
// The workload is a randomized bank: kAccounts cells whose sum is invariant
// under every transaction.  Writer operations transfer between two random
// accounts; audit operations transactionally sum the whole array and check
// it against the invariant — any torn read, lost update, or opacity
// violation (a transaction observing a mid-commit state) shows up as a
// wrong sum, either inside an audit or in the final reconciliation.  The
// commit counter is also reconciled exactly: one atomically() call must be
// exactly one commit, whatever the arbiter decided along the way (waits,
// self-aborts, remote kills).
//
// Scale: smoke-sized by default so the suite stays fast on a 1-core host
// (the value of the test is interleaving, which preemption provides).  The
// nightly workflow raises TXC_STRESS_DEPTH to run the same suite at full
// depth under ASan+UBSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "conflict/adaptive.hpp"
#include "conflict/arbiter.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"
#include "core/policy.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using namespace txc::conflict;

// ---------------------------------------------------------------------------
// Scale knobs
// ---------------------------------------------------------------------------

constexpr int kAccounts = 16;
constexpr std::uint64_t kInitialBalance = 1u << 20;
constexpr std::uint64_t kTotal =
    static_cast<std::uint64_t>(kAccounts) * kInitialBalance;
constexpr int kThreads = 3;

/// Operations per thread, scaled by TXC_STRESS_DEPTH (default 1 = smoke;
/// the nightly sanitizer job runs the same binary much deeper).
int ops_per_thread() {
  int depth = 1;
  if (const char* env = std::getenv("TXC_STRESS_DEPTH")) {
    depth = std::atoi(env);
    if (depth < 1) depth = 1;
  }
  return 1000 * depth;
}

// ---------------------------------------------------------------------------
// The arbiter roster (mirrors tests/test_conflict_arbiter.cpp)
// ---------------------------------------------------------------------------

struct ArbiterCase {
  const char* label;  // gtest-safe name ([A-Za-z0-9_])
  std::shared_ptr<const ConflictArbiter> (*make)();
};

std::shared_ptr<const ConflictArbiter> grace(core::StrategyKind kind) {
  return std::make_shared<GraceArbiter>(core::make_policy(kind));
}

const ArbiterCase kRoster[] = {
    {"Grace_NO_DELAY", [] { return grace(core::StrategyKind::kNoDelay); }},
    {"Grace_DET_ABORTS",
     [] { return grace(core::StrategyKind::kDetAborts); }},
    {"Grace_DET_WINS", [] { return grace(core::StrategyKind::kDetWins); }},
    {"Grace_RRA", [] { return grace(core::StrategyKind::kRandAborts); }},
    {"Grace_RRW", [] { return grace(core::StrategyKind::kRandWins); }},
    {"Grace_HYBRID", [] { return grace(core::StrategyKind::kHybrid); }},
    {"Polite", [] { return make_cm(CmKind::kPolite); }},
    {"Karma", [] { return make_cm(CmKind::kKarma); }},
    {"Timestamp", [] { return make_cm(CmKind::kTimestamp); }},
    {"Greedy", [] { return make_cm(CmKind::kGreedy); }},
    {"Polka", [] { return make_cm(CmKind::kPolka); }},
    {"Adaptive_RA",
     [] {
       return std::static_pointer_cast<const ConflictArbiter>(
           std::make_shared<AdaptiveArbiter>());
     }},
    {"Adaptive_RW",
     [] {
       return std::static_pointer_cast<const ConflictArbiter>(
           std::make_shared<AdaptiveArbiter>(
               AdaptiveArbiter::Params{},
               core::ResolutionMode::kRequestorWins));
     }},
};

// ---------------------------------------------------------------------------
// The randomized bank, expressed against either substrate through the
// unified API surface: atomically(body), read_committed, stats(), and the
// `typename Substrate::TxContext` per-attempt context type.
// ---------------------------------------------------------------------------

/// One thread's worth of randomized operations.  ~1/4 of operations audit
/// the conservation invariant from inside a transaction (an opacity check:
/// a consistent snapshot must sum to kTotal); the rest transfer a small
/// amount between two distinct random accounts.  Balances may wrap below
/// zero in unsigned arithmetic — conservation holds modulo 2^64 regardless.
template <typename Substrate>
void stress_worker(Substrate& stm, std::vector<stm::Cell>& accounts,
                   std::uint64_t seed, int ops,
                   std::atomic<int>& start_line,
                   std::atomic<std::uint64_t>& bad_audits) {
  // Start barrier: maximize the overlap window so contention is real, not
  // an artifact of thread-spawn staggering.
  start_line.fetch_add(1, std::memory_order_acq_rel);
  while (start_line.load(std::memory_order_acquire) < kThreads) {
  }
  using TxT = typename Substrate::TxContext;
  sim::Rng rng{seed};
  for (int op = 0; op < ops; ++op) {
    if ((rng() & 3u) == 0) {
      std::uint64_t sum = 0;
      stm.atomically([&](TxT& tx) {
        sum = 0;  // the body may re-run after an abort
        for (auto& account : accounts) sum += tx.read(account);
      });
      if (sum != kTotal) bad_audits.fetch_add(1, std::memory_order_relaxed);
    } else {
      const auto from = static_cast<std::size_t>(rng() % kAccounts);
      std::size_t to = static_cast<std::size_t>(rng() % (kAccounts - 1));
      if (to >= from) ++to;
      const std::uint64_t amount = rng() % 64;
      stm.atomically([&](TxT& tx) {
        tx.write(accounts[from], tx.read(accounts[from]) - amount);
        tx.write(accounts[to], tx.read(accounts[to]) + amount);
      });
    }
  }
}

template <typename Substrate>
void run_stress(Substrate& stm, const char* substrate_label) {
  std::vector<stm::Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value.store(kInitialBalance);
  const int ops = ops_per_thread();
  std::atomic<int> start_line{0};
  std::atomic<std::uint64_t> bad_audits{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      stress_worker<Substrate>(stm, accounts,
                               /*seed=*/0x57E55ull * (t + 1), ops,
                               start_line, bad_audits);
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(bad_audits.load(), 0u)
      << substrate_label << ": an in-transaction audit observed a torn or "
      << "mid-commit state (opacity violation)";
  std::uint64_t sum = 0;
  for (auto& account : accounts) {
    sum += Substrate::read_committed(account);
  }
  EXPECT_EQ(sum, kTotal)
      << substrate_label << ": committed state lost or duplicated an update";
  // Exactly one commit per atomically() call, regardless of how many
  // attempts the arbiter's verdicts (self-aborts, remote kills) cost.
  EXPECT_EQ(stm.stats().commits.load(),
            static_cast<std::uint64_t>(kThreads) * ops)
      << substrate_label << ": commit accounting drifted";
}

// ---------------------------------------------------------------------------
// Roster x substrate stress matrix
// ---------------------------------------------------------------------------

class SpinStress : public ::testing::TestWithParam<ArbiterCase> {};

TEST_P(SpinStress, Tl2BankConservesAndStaysOpaque) {
  stm::Stm stm{GetParam().make()};
  run_stress(stm, "TL2");
}

TEST_P(SpinStress, NorecBankConservesAndStaysOpaque) {
  stm::Norec norec{GetParam().make()};
  run_stress(norec, "NOrec");
}

INSTANTIATE_TEST_SUITE_P(Roster, SpinStress, ::testing::ValuesIn(kRoster),
                         [](const ::testing::TestParamInfo<ArbiterCase>& info) {
                           return std::string(info.param.label);
                         });

// ---------------------------------------------------------------------------
// Cross-substrate sharing: one learning instance arbitrates both substrates
// concurrently-in-sequence under stress, accumulating feedback from both.
// ---------------------------------------------------------------------------

TEST(SpinStressShared, OneAdaptiveInstanceSurvivesBothSubstrates) {
  const auto adaptive = std::make_shared<AdaptiveArbiter>();
  const auto shared = std::static_pointer_cast<const ConflictArbiter>(adaptive);
  stm::Stm stm{shared};
  run_stress(stm, "TL2(shared)");
  stm::Norec norec{shared};
  run_stress(norec, "NOrec(shared)");
}

// ---------------------------------------------------------------------------
// Kill-protocol pressure: a requestor-wins grace arbiter with a tiny budget
// kills aggressively on both substrates; atomicity must hold and (on a
// multi-attempt schedule) kills actually happen without double-applying any
// transfer.
// ---------------------------------------------------------------------------

#ifndef NDEBUG
TEST(CrossSubstrateNesting, DebugBuildsRejectNestingAcrossSubstrates) {
  // TL2 and NOrec share the thread's conflict descriptor, so nesting one
  // substrate's transaction inside the other's body would livelock the
  // outer commit (the inner lifecycle leaves the descriptor kCommitted).
  // Debug builds must reject it loudly (stm::TxThreadScope) instead.
  stm::Stm stm{make_cm(CmKind::kKarma)};
  stm::Norec norec{make_cm(CmKind::kKarma)};
  stm::Cell cell;
  EXPECT_DEATH(norec.atomically([&](stm::NorecTx&) {
    stm.atomically([&](stm::Tx& tx) { tx.write(cell, 1); });
  }),
               "single-occupancy");
}
#endif

TEST(SpinStressKills, AggressiveRequestorWinsStaysAtomicOnBothSubstrates) {
  const auto trigger_happy = std::make_shared<GraceArbiter>(
      core::make_policy(core::StrategyKind::kFixedTuned, /*tuned_delay=*/1.0),
      core::ResolutionMode::kRequestorWins);
  {
    stm::Stm stm{trigger_happy};
    run_stress(stm, "TL2(kill-heavy)");
  }
  {
    stm::Norec norec{trigger_happy};
    run_stress(norec, "NOrec(kill-heavy)");
  }
}

}  // namespace
