// Sampler-distribution property tests: for every density family and a grid
// of (B, k) parameters, inverse-CDF sampling must reproduce the analytic
// CDF (Kolmogorov–Smirnov), quantile must invert cdf, and the policy layer
// must sample from exactly the density its theorem prescribes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/densities.hpp"
#include "core/policy.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace {

using namespace txc::core;
using txc::sim::Rng;
using txc::sim::Samples;

constexpr int kDraws = 20000;
// KS critical value at alpha ~ 1e-3 for n = 20000 draws: 1.95 / sqrt(n).
const double kKsBound = 1.95 / std::sqrt(static_cast<double>(kDraws));

template <typename Density>
void expect_sampler_matches_cdf(const Density& density, std::uint64_t seed) {
  Rng rng{seed};
  Samples samples;
  samples.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) samples.add(density.sample(rng));
  const double ks =
      samples.ks_statistic([&](double x) { return density.cdf(x); });
  EXPECT_LT(ks, kKsBound) << density.name();
}

template <typename Density>
void expect_quantile_inverts_cdf(const Density& density) {
  for (const double u : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double x = density.quantile(u);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, density.support_max() * (1.0 + 1e-9));
    EXPECT_NEAR(density.cdf(x), u, 1e-6) << density.name() << " at u = " << u;
  }
}

class SamplerGrid
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(SamplerGrid, UniformWinsSamplesItsCdf) {
  const auto [B, k] = GetParam();
  expect_sampler_matches_cdf(UniformWinsDensity{B, k}, 11);
  expect_quantile_inverts_cdf(UniformWinsDensity{B, k});
}

TEST_P(SamplerGrid, PowerWinsSamplesItsCdf) {
  const auto [B, k] = GetParam();
  expect_sampler_matches_cdf(PowerWinsDensity{B, k}, 13);
  expect_quantile_inverts_cdf(PowerWinsDensity{B, k});
}

TEST_P(SamplerGrid, ExpAbortsSamplesItsCdf) {
  const auto [B, k] = GetParam();
  expect_sampler_matches_cdf(ExpAbortsDensity{B, k}, 17);
  expect_quantile_inverts_cdf(ExpAbortsDensity{B, k});
}

TEST_P(SamplerGrid, ExpMeanAbortsSamplesItsCdf) {
  const auto [B, k] = GetParam();
  expect_sampler_matches_cdf(ExpMeanAbortsDensity{B, k}, 19);
  expect_quantile_inverts_cdf(ExpMeanAbortsDensity{B, k});
}

TEST_P(SamplerGrid, PowerMeanWinsSamplesItsCdf) {
  const auto [B, k] = GetParam();
  if (k == 2) GTEST_SKIP() << "k = 2 uses the log form";
  expect_sampler_matches_cdf(PowerMeanWinsDensity{B, k}, 23);
  expect_quantile_inverts_cdf(PowerMeanWinsDensity{B, k});
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, SamplerGrid,
    ::testing::Combine(::testing::Values(10.0, 100.0, 5000.0),
                       ::testing::Values(2, 3, 8)),
    [](const auto& info) {
      return "B" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_k" + std::to_string(std::get<1>(info.param));
    });

TEST(SamplerLogMeanWins, SamplesItsCdf) {
  for (const double B : {10.0, 100.0, 5000.0}) {
    expect_sampler_matches_cdf(LogMeanWinsDensity{B}, 29);
    expect_quantile_inverts_cdf(LogMeanWinsDensity{B});
  }
}

// ---------------------------------------------------------------------------
// Policy layer draws from the prescribed density
// ---------------------------------------------------------------------------

ConflictContext context_of(double B, int k) {
  ConflictContext context;
  context.abort_cost = B;
  context.chain_length = k;
  return context;
}

TEST(PolicySampling, RandWinsIsUniformOnItsSupport) {
  RandomizedWinsPolicy policy{/*use_mean_hint=*/false};
  const UniformWinsDensity density{300.0, 3};
  Rng rng{31};
  Samples samples;
  for (int i = 0; i < kDraws; ++i) {
    samples.add(policy.grace_period(context_of(300.0, 3), rng));
  }
  EXPECT_LT(samples.ks_statistic([&](double x) { return density.cdf(x); }),
            kKsBound);
}

TEST(PolicySampling, RandWinsMeanSwitchesAtThreshold) {
  RandomizedWinsPolicy policy{/*use_mean_hint=*/true};
  Rng rng{37};
  // Below the threshold: draws follow the mean-constrained log density.
  ConflictContext below = context_of(1000.0, 2);
  below.mean_hint = 10.0;  // mu/B = 0.01 << 2(ln4 - 1)
  const LogMeanWinsDensity constrained{1000.0};
  Samples constrained_draws;
  for (int i = 0; i < kDraws; ++i) {
    constrained_draws.add(policy.grace_period(below, rng));
  }
  EXPECT_LT(constrained_draws.ks_statistic(
                [&](double x) { return constrained.cdf(x); }),
            kKsBound);
  // Above the threshold: falls back to uniform.
  ConflictContext above = context_of(1000.0, 2);
  above.mean_hint = 5000.0;
  const UniformWinsDensity uniform{1000.0, 2};
  Samples fallback_draws;
  for (int i = 0; i < kDraws; ++i) {
    fallback_draws.add(policy.grace_period(above, rng));
  }
  EXPECT_LT(fallback_draws.ks_statistic(
                [&](double x) { return uniform.cdf(x); }),
            kKsBound);
}

TEST(PolicySampling, RandAbortsIsExponentialOnItsSupport) {
  RandomizedAbortsPolicy policy{/*use_mean_hint=*/false};
  const ExpAbortsDensity density{150.0, 4};
  Rng rng{41};
  Samples samples;
  for (int i = 0; i < kDraws; ++i) {
    samples.add(policy.grace_period(context_of(150.0, 4), rng));
  }
  EXPECT_LT(samples.ks_statistic([&](double x) { return density.cdf(x); }),
            kKsBound);
}

TEST(PolicySampling, BackoffScalesTheEffectiveSupport) {
  // Attempt a doubles B: the max draw over many samples must (nearly)
  // double, and the draws must match the density at the scaled B.
  const auto inner = std::make_shared<RandomizedWinsPolicy>(false);
  BackoffPolicy backoff{inner, 2.0};
  Rng rng{43};
  ConflictContext context = context_of(100.0, 2);
  context.attempt = 3;  // B' = 800
  const UniformWinsDensity scaled{800.0, 2};
  Samples samples;
  for (int i = 0; i < kDraws; ++i) {
    samples.add(backoff.grace_period(context, rng));
  }
  EXPECT_LT(samples.ks_statistic([&](double x) { return scaled.cdf(x); }),
            kKsBound);
}

TEST(PolicySampling, HybridDrawsFromTheModeItSelects) {
  HybridPolicy policy;
  Rng rng{47};
  // k = 2 -> requestor aborts -> exponential density.
  const ExpAbortsDensity aborts_density{200.0, 2};
  Samples aborts_draws;
  for (int i = 0; i < kDraws; ++i) {
    aborts_draws.add(policy.grace_period(context_of(200.0, 2), rng));
  }
  EXPECT_LT(aborts_draws.ks_statistic(
                [&](double x) { return aborts_density.cdf(x); }),
            kKsBound);
  // k = 4 -> requestor wins -> uniform density.
  const UniformWinsDensity wins_density{200.0, 4};
  Samples wins_draws;
  for (int i = 0; i < kDraws; ++i) {
    wins_draws.add(policy.grace_period(context_of(200.0, 4), rng));
  }
  EXPECT_LT(wins_draws.ks_statistic(
                [&](double x) { return wins_density.cdf(x); }),
            kKsBound);
}

}  // namespace
