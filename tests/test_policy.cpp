// Tests for the policy layer: sampled grace periods stay inside the analyzed
// supports, deterministic policies hit the Theorem 4 point, the mean-hint
// switchover follows the thresholds, backoff scales B, and the hybrid picks
// the mode Section 5.3 prescribes.
#include "core/policy.hpp"

#include <gtest/gtest.h>

#include "core/profiler.hpp"

namespace {

using namespace txc::core;
using txc::sim::Rng;

ConflictContext make_context(double abort_cost, int chain, double mean) {
  ConflictContext context;
  context.abort_cost = abort_cost;
  context.chain_length = chain;
  context.mean_hint = mean;
  return context;
}

TEST(NoDelayPolicy, AlwaysZero) {
  NoDelayPolicy policy;
  Rng rng{1};
  EXPECT_EQ(policy.grace_period(make_context(100, 2, 10), rng), 0.0);
  EXPECT_EQ(policy.name(), "NO_DELAY");
}

TEST(FixedDelayPolicy, ReturnsConfiguredDelay) {
  FixedDelayPolicy policy{37.5};
  Rng rng{1};
  EXPECT_EQ(policy.grace_period(make_context(100, 2, 10), rng), 37.5);
  EXPECT_EQ(policy.grace_period(make_context(1, 8, 99), rng), 37.5);
}

TEST(DeterministicWinsPolicy, WaitsBOverKMinusOne) {
  DeterministicWinsPolicy policy;
  Rng rng{1};
  EXPECT_DOUBLE_EQ(policy.grace_period(make_context(100, 2, 0), rng), 100.0);
  EXPECT_DOUBLE_EQ(policy.grace_period(make_context(100, 5, 0), rng), 25.0);
  EXPECT_EQ(policy.mode(), ResolutionMode::kRequestorWins);
}

TEST(DeterministicAbortsPolicy, WaitsB) {
  DeterministicAbortsPolicy policy;
  Rng rng{1};
  EXPECT_DOUBLE_EQ(policy.grace_period(make_context(64, 4, 0), rng), 64.0);
  EXPECT_EQ(policy.mode(), ResolutionMode::kRequestorAborts);
}

TEST(RandomizedWinsPolicy, SamplesWithinSupport) {
  RandomizedWinsPolicy policy{/*use_mean_hint=*/false};
  Rng rng{7};
  for (const int k : {2, 3, 8}) {
    const double B = 200.0;
    const double support = B / (k - 1.0);
    for (int i = 0; i < 2000; ++i) {
      const double grace = policy.grace_period(make_context(B, k, 0), rng);
      ASSERT_GE(grace, 0.0);
      ASSERT_LE(grace, support * (1.0 + 1e-9));
    }
  }
}

TEST(RandomizedWinsPolicy, UsesMeanDensityBelowThreshold) {
  RandomizedWinsPolicy policy{/*use_mean_hint=*/true};
  Rng rng{8};
  const double B = 1000.0;
  const double mu = 10.0;  // far below 2(ln4-1) B
  // The mean-constrained density has p(0) = 0, so small grace periods are
  // rare; the unconstrained uniform spreads evenly.  Compare the frequency of
  // draws in the lowest decile.
  int low_with_mean = 0;
  int low_without = 0;
  RandomizedWinsPolicy unconstrained{/*use_mean_hint=*/false};
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (policy.grace_period(make_context(B, 2, mu), rng) < 0.1 * B)
      ++low_with_mean;
    if (unconstrained.grace_period(make_context(B, 2, mu), rng) < 0.1 * B)
      ++low_without;
  }
  EXPECT_LT(low_with_mean, low_without / 2);
}

TEST(RandomizedWinsPolicy, FallsBackAboveThreshold) {
  // With mu/B far above the threshold the policy must sample the uniform
  // density: the empirical mean of draws is support/2.
  RandomizedWinsPolicy policy{/*use_mean_hint=*/true};
  Rng rng{9};
  const double B = 100.0;
  const double mu = 5.0 * B;
  double sum = 0.0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    sum += policy.grace_period(make_context(B, 2, mu), rng);
  }
  EXPECT_NEAR(sum / trials, B / 2.0, 1.5);
}

TEST(RandomizedAbortsPolicy, SamplesWithinSupport) {
  RandomizedAbortsPolicy policy{/*use_mean_hint=*/true};
  Rng rng{10};
  for (const int k : {2, 3, 8}) {
    const double B = 150.0;
    const double support = B / (k - 1.0);
    for (int i = 0; i < 2000; ++i) {
      const double grace = policy.grace_period(make_context(B, k, 20.0), rng);
      ASSERT_GE(grace, 0.0);
      ASSERT_LE(grace, support * (1.0 + 1e-9));
    }
  }
}

TEST(HybridPolicy, ModeSelectionFollowsSection53) {
  EXPECT_EQ(HybridPolicy::mode_for(2), ResolutionMode::kRequestorAborts);
  EXPECT_EQ(HybridPolicy::mode_for(3), ResolutionMode::kRequestorWins);
  EXPECT_EQ(HybridPolicy::mode_for(8), ResolutionMode::kRequestorWins);
}

TEST(BackoffPolicy, ScalesAbortCostPerAttempt) {
  auto inner = std::make_shared<DeterministicWinsPolicy>();
  BackoffPolicy backoff{inner, 2.0};
  Rng rng{11};
  ConflictContext context = make_context(100.0, 2, 0);
  context.attempt = 0;
  EXPECT_DOUBLE_EQ(backoff.grace_period(context, rng), 100.0);
  context.attempt = 3;
  EXPECT_DOUBLE_EQ(backoff.grace_period(context, rng), 800.0);
  EXPECT_EQ(backoff.name(), "DET_WINS+BACKOFF");
}

TEST(BackoffPolicy, CapsDoublings) {
  auto inner = std::make_shared<DeterministicWinsPolicy>();
  BackoffPolicy backoff{inner, 2.0, /*max_doublings=*/4};
  Rng rng{12};
  ConflictContext context = make_context(1.0, 2, 0);
  context.attempt = 100;
  EXPECT_DOUBLE_EQ(backoff.grace_period(context, rng), 16.0);
}

TEST(Factory, BuildsEveryKind) {
  for (const auto kind :
       {StrategyKind::kNoDelay, StrategyKind::kFixedTuned,
        StrategyKind::kDetWins, StrategyKind::kDetAborts,
        StrategyKind::kRandWins, StrategyKind::kRandWinsMean,
        StrategyKind::kRandWinsPower, StrategyKind::kRandAborts,
        StrategyKind::kRandAbortsMean, StrategyKind::kHybrid}) {
    const auto policy = make_policy(kind, 12.0);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
    Rng rng{13};
    EXPECT_GE(policy->grace_period(make_context(50.0, 2, 25.0), rng), 0.0);
  }
}

TEST(MeanProfiler, WarmsUpThenReportsMean) {
  MeanProfiler profiler{/*min_samples=*/4};
  EXPECT_FALSE(profiler.mean_hint().has_value());
  for (const double len : {10.0, 20.0, 30.0}) profiler.record_commit_length(len);
  EXPECT_FALSE(profiler.mean_hint().has_value());
  profiler.record_commit_length(40.0);
  ASSERT_TRUE(profiler.mean_hint().has_value());
  EXPECT_DOUBLE_EQ(*profiler.mean_hint(), 25.0);
}

TEST(MeanProfiler, DecayTracksPhaseChange) {
  MeanProfiler profiler{/*min_samples=*/1, /*decay=*/0.5};
  for (int i = 0; i < 20; ++i) profiler.record_commit_length(100.0);
  for (int i = 0; i < 20; ++i) profiler.record_commit_length(10.0);
  ASSERT_TRUE(profiler.mean_hint().has_value());
  EXPECT_NEAR(*profiler.mean_hint(), 10.0, 1.0);  // old phase forgotten
}

TEST(MeanProfiler, ResetClearsState) {
  MeanProfiler profiler{1};
  profiler.record_commit_length(5.0);
  profiler.reset();
  EXPECT_FALSE(profiler.mean_hint().has_value());
  EXPECT_EQ(profiler.samples(), 0u);
}

// ---------------------------------------------------------------------------
// OraclePolicy — the offline optimum given remaining_hint
// ---------------------------------------------------------------------------

TEST(OraclePolicy, WaitsWhenCommitIsCheaper) {
  OraclePolicy policy;
  Rng rng{1};
  ConflictContext context = make_context(/*B=*/100, /*k=*/2, /*mu=*/0);
  context.mean_hint.reset();
  context.remaining_hint = 40.0;  // (k-1)*40 = 40 <= 100: wait it out
  EXPECT_GT(policy.grace_period(context, rng), 40.0 - 1e-9);
}

TEST(OraclePolicy, AbortsWhenAbortIsCheaper) {
  OraclePolicy policy;
  Rng rng{1};
  ConflictContext context = make_context(100, 2, 0);
  context.mean_hint.reset();
  context.remaining_hint = 150.0;  // 150 > 100: abort immediately
  EXPECT_EQ(policy.grace_period(context, rng), 0.0);
}

TEST(OraclePolicy, ChainLengthWeightsTheDecision) {
  OraclePolicy policy;
  Rng rng{1};
  ConflictContext context = make_context(100, 4, 0);
  context.mean_hint.reset();
  context.remaining_hint = 40.0;  // (k-1)*40 = 120 > 100: abort
  EXPECT_EQ(policy.grace_period(context, rng), 0.0);
  context.remaining_hint = 30.0;  // 90 <= 100: wait
  EXPECT_GT(policy.grace_period(context, rng), 0.0);
}

TEST(OraclePolicy, RequestorAbortsModeIgnoresChainWeight) {
  OraclePolicy policy{ResolutionMode::kRequestorAborts};
  Rng rng{1};
  ConflictContext context = make_context(100, 4, 0);
  context.mean_hint.reset();
  context.remaining_hint = 90.0;  // D <= B: wait regardless of k
  EXPECT_GT(policy.grace_period(context, rng), 0.0);
}

TEST(OraclePolicy, NoHintFallsBackToNoDelay) {
  OraclePolicy policy;
  Rng rng{1};
  ConflictContext context = make_context(100, 2, 0);
  context.mean_hint.reset();
  EXPECT_EQ(policy.grace_period(context, rng), 0.0);
}

// ---------------------------------------------------------------------------
// AdaptiveTunedPolicy — learns the fixed delay from outcome feedback
// ---------------------------------------------------------------------------

TEST(AdaptiveTuned, BootstrapsWithInitialDelay) {
  AdaptiveTunedPolicy::Params params;
  params.initial_delay = 33.0;
  params.min_samples = 4;
  AdaptiveTunedPolicy policy{params};
  Rng rng{1};
  ConflictContext context = make_context(1000, 2, 0);
  context.mean_hint.reset();
  EXPECT_DOUBLE_EQ(policy.grace_period(context, rng), 33.0);
}

TEST(AdaptiveTuned, LearnsFromExactSamples) {
  AdaptiveTunedPolicy::Params params;
  params.alpha = 0.5;
  params.min_samples = 2;
  params.initial_delay = 1.0;
  AdaptiveTunedPolicy policy{params};
  Rng rng{1};
  for (int i = 0; i < 50; ++i) {
    policy.observe({/*committed=*/true, /*grace=*/100.0, /*waited=*/60.0, 2});
  }
  ConflictContext context = make_context(10000, 2, 0);
  context.mean_hint.reset();
  EXPECT_NEAR(policy.grace_period(context, rng), 60.0, 1.0);
  EXPECT_NEAR(policy.learned_delay(), 60.0, 1.0);
}

TEST(AdaptiveTuned, CensoredFeedbackRaisesDelay) {
  AdaptiveTunedPolicy::Params params;
  params.alpha = 0.3;
  params.min_samples = 2;
  params.initial_delay = 10.0;
  AdaptiveTunedPolicy policy{params};
  for (int i = 0; i < 30; ++i) {
    policy.observe({/*committed=*/false, /*grace=*/50.0, /*waited=*/50.0, 2});
  }
  EXPECT_GT(policy.learned_delay(), 50.0)
      << "expiries mean the delay was too short";
}

TEST(AdaptiveTuned, CapNeverExceedsDeterministicOptimum) {
  AdaptiveTunedPolicy::Params params;
  params.min_samples = 1;
  AdaptiveTunedPolicy policy{params};
  Rng rng{1};
  // Learn an absurdly large delay...
  for (int i = 0; i < 100; ++i) {
    policy.observe({true, 1e6, 1e6, 2});
  }
  // ... the played grace period must still respect B/(k-1).
  ConflictContext context = make_context(/*B=*/200, /*k=*/3, 0);
  context.mean_hint.reset();
  EXPECT_LE(policy.grace_period(context, rng), 200.0 / 2 + 1e-9);
}

TEST(AdaptiveTuned, FeedbackSampleCounting) {
  AdaptiveTunedPolicy policy;
  EXPECT_EQ(policy.feedback_samples(), 0u);
  policy.observe({true, 10, 5, 2});
  policy.observe({false, 10, 10, 2});
  EXPECT_EQ(policy.feedback_samples(), 2u);
}

TEST(PolicyFactory, NewKindsConstructAndName) {
  EXPECT_EQ(make_policy(StrategyKind::kOracle)->name(), "ORACLE");
  EXPECT_EQ(make_policy(StrategyKind::kAdaptiveTuned)->name(),
            "DELAY_ADAPTIVE");
  EXPECT_STREQ(to_string(StrategyKind::kOracle), "ORACLE");
  EXPECT_STREQ(to_string(StrategyKind::kAdaptiveTuned), "DELAY_ADAPTIVE");
}

TEST(PolicyFactory, DefaultObserveIsNoop) {
  // Non-adaptive policies must accept feedback silently (the simulator calls
  // observe unconditionally).
  const auto policy = make_policy(StrategyKind::kRandWins);
  policy->observe({true, 10, 5, 2});
  policy->observe({false, 10, 10, 3});
  SUCCEED();
}

}  // namespace
