// Tests of the classic contention managers: decision logic per algorithm
// (unit-level, on hand-built descriptors), the kill/status protocol, and
// multi-threaded TL2 integration — atomicity must hold under every manager.
#include "stm/cm.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "stm/tl2.hpp"

namespace {

using namespace txc::stm;
using txc::sim::Rng;

struct Arena {
  TxDescriptor self;
  TxDescriptor enemy;
  double scratch = -1.0;

  Arena(std::uint64_t self_priority, std::uint64_t enemy_priority,
        std::uint64_t self_start = 1, std::uint64_t enemy_start = 2) {
    self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
    enemy.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
    self.priority.store(self_priority);
    enemy.priority.store(enemy_priority);
    self.start_time.store(self_start);
    enemy.start_time.store(enemy_start);
  }

  [[nodiscard]] CmView view(std::uint64_t waits = 0,
                            std::uint32_t attempt = 0) {
    CmView v;
    v.self = &self;
    v.enemy = &enemy;
    v.attempt = attempt;
    v.waits_so_far = waits;
    v.scratch = &scratch;
    return v;
  }
};

// ---------------------------------------------------------------------------
// TxDescriptor kill protocol
// ---------------------------------------------------------------------------

TEST(TxDescriptor, KillSucceedsOnlyWhileActive) {
  TxDescriptor d;
  d.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  EXPECT_TRUE(d.try_kill());
  EXPECT_EQ(d.load_status(), TxStatus::kAborted);
  EXPECT_FALSE(d.try_kill()) << "double kill must fail";

  d.status.store(static_cast<std::uint32_t>(TxStatus::kCommitting));
  EXPECT_FALSE(d.try_kill()) << "committing transactions are untouchable";
  EXPECT_EQ(d.load_status(), TxStatus::kCommitting);

  d.status.store(static_cast<std::uint32_t>(TxStatus::kCommitted));
  EXPECT_FALSE(d.try_kill());
}

// ---------------------------------------------------------------------------
// Polite
// ---------------------------------------------------------------------------

TEST(Polite, WaitsThenKills) {
  PoliteCm cm{/*max_rounds=*/3};
  Rng rng{1};
  Arena arena{0, 0};
  EXPECT_EQ(cm.on_conflict(arena.view(0), rng), CmDecision::kWait);
  EXPECT_EQ(cm.on_conflict(arena.view(2), rng), CmDecision::kWait);
  EXPECT_EQ(cm.on_conflict(arena.view(3), rng), CmDecision::kAbortEnemy);
}

TEST(Polite, BackoffGrowsExponentially) {
  PoliteCm cm{8};
  Arena arena{0, 0};
  EXPECT_EQ(cm.wait_quantum(arena.view(0)), 16u);
  EXPECT_EQ(cm.wait_quantum(arena.view(1)), 32u);
  EXPECT_EQ(cm.wait_quantum(arena.view(4)), 256u);
}

TEST(Polite, GoneEnemyJustWaits) {
  PoliteCm cm{0};  // would kill immediately if the enemy were alive
  Rng rng{1};
  Arena arena{0, 0};
  arena.enemy.status.store(static_cast<std::uint32_t>(TxStatus::kCommitted));
  EXPECT_EQ(cm.on_conflict(arena.view(10), rng), CmDecision::kWait);
  CmView no_enemy = arena.view(10);
  no_enemy.enemy = nullptr;
  EXPECT_EQ(cm.on_conflict(no_enemy, rng), CmDecision::kWait);
}

// ---------------------------------------------------------------------------
// Karma
// ---------------------------------------------------------------------------

TEST(Karma, HigherPriorityKills) {
  KarmaCm cm;
  Rng rng{1};
  Arena arena{/*self=*/10, /*enemy=*/3};
  EXPECT_EQ(cm.on_conflict(arena.view(0), rng), CmDecision::kAbortEnemy);
}

TEST(Karma, LowerPriorityWaits) {
  KarmaCm cm;
  Rng rng{1};
  Arena arena{3, 10};
  EXPECT_EQ(cm.on_conflict(arena.view(0), rng), CmDecision::kWait);
}

TEST(Karma, WaitsAccumulateIntoPriority) {
  // Karma's signature: each wait is a karma point, so a patient loser
  // eventually out-prioritizes the holder.
  KarmaCm cm;
  Rng rng{1};
  Arena arena{3, 10};
  EXPECT_EQ(cm.on_conflict(arena.view(7), rng), CmDecision::kWait);
  EXPECT_EQ(cm.on_conflict(arena.view(8), rng), CmDecision::kAbortEnemy);
}

// ---------------------------------------------------------------------------
// Timestamp
// ---------------------------------------------------------------------------

TEST(Timestamp, OlderKillsYounger) {
  TimestampCm cm;
  Rng rng{1};
  Arena arena{0, 0, /*self_start=*/1, /*enemy_start=*/5};
  EXPECT_EQ(cm.on_conflict(arena.view(0), rng), CmDecision::kAbortEnemy);
}

TEST(Timestamp, YoungerWaitsThenSelfAborts) {
  TimestampCm cm{/*patience=*/4};
  Rng rng{1};
  Arena arena{0, 0, /*self_start=*/5, /*enemy_start=*/1};
  EXPECT_EQ(cm.on_conflict(arena.view(0), rng), CmDecision::kWait);
  EXPECT_EQ(cm.on_conflict(arena.view(3), rng), CmDecision::kWait);
  EXPECT_EQ(cm.on_conflict(arena.view(4), rng), CmDecision::kAbortSelf);
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

TEST(Greedy, OlderKillsYoungerNeverSelfAborts) {
  GreedyCm cm;
  Rng rng{1};
  Arena older{0, 0, 1, 5};
  EXPECT_EQ(cm.on_conflict(older.view(0), rng), CmDecision::kAbortEnemy);
  Arena younger{0, 0, 5, 1};
  for (const std::uint64_t waits : {0u, 100u, 100000u}) {
    EXPECT_EQ(cm.on_conflict(younger.view(waits), rng), CmDecision::kWait);
  }
}

// ---------------------------------------------------------------------------
// Polka
// ---------------------------------------------------------------------------

TEST(Polka, ToleratesBackoffRoundsEqualToPriorityGap) {
  PolkaCm cm;
  Rng rng{1};
  Arena arena{/*self=*/2, /*enemy=*/6};  // gap 4
  EXPECT_EQ(cm.on_conflict(arena.view(4), rng), CmDecision::kWait);
  EXPECT_EQ(cm.on_conflict(arena.view(5), rng), CmDecision::kAbortEnemy);
}

TEST(Polka, KillsImmediatelyWhenAhead) {
  PolkaCm cm;
  Rng rng{1};
  Arena arena{9, 2};  // gap 0 (we are ahead)
  EXPECT_EQ(cm.on_conflict(arena.view(1), rng), CmDecision::kAbortEnemy);
}

// ---------------------------------------------------------------------------
// GracePolicyCm
// ---------------------------------------------------------------------------

TEST(GracePolicyCm, NoDelayAbortsSelfImmediately) {
  GracePolicyCm cm{std::make_shared<txc::core::NoDelayPolicy>()};
  Rng rng{1};
  Arena arena{0, 0};
  EXPECT_EQ(cm.on_conflict(arena.view(0), rng), CmDecision::kAbortSelf);
}

TEST(GracePolicyCm, FixedDelayWaitsOutTheBudgetThenAborts) {
  // 100-cycle budget at 32-cycle quanta: rounds 0-3 wait, round 4 aborts.
  GracePolicyCm cm{std::make_shared<txc::core::FixedDelayPolicy>(100.0)};
  Rng rng{1};
  Arena arena{0, 0};
  EXPECT_EQ(cm.on_conflict(arena.view(0), rng), CmDecision::kWait);
  EXPECT_EQ(cm.on_conflict(arena.view(3), rng), CmDecision::kWait);
  EXPECT_EQ(cm.on_conflict(arena.view(4), rng), CmDecision::kAbortSelf);
}

TEST(GracePolicyCm, RandomBudgetDrawnOncePerConflict) {
  // With the uniform RRW policy the budget is random, but within one
  // conflict (one scratch) consecutive decisions must be consistent with a
  // single draw: once it waits at round w, it must also have waited at all
  // rounds < w.
  GracePolicyCm cm{
      std::make_shared<txc::core::RandomizedWinsPolicy>(false)};
  Rng rng{7};
  for (int trial = 0; trial < 100; ++trial) {
    Arena arena{0, 0};
    bool aborted = false;
    for (std::uint64_t w = 0; w < 64; ++w) {
      const CmDecision decision = cm.on_conflict(arena.view(w), rng);
      if (decision == CmDecision::kAbortSelf) {
        aborted = true;
      } else {
        EXPECT_FALSE(aborted) << "wait after abort within one conflict";
      }
    }
  }
}

TEST(GracePolicyCm, NeverKillsTheEnemy) {
  GracePolicyCm cm{std::make_shared<txc::core::FixedDelayPolicy>(1e9)};
  Rng rng{1};
  Arena arena{0, 100};
  for (std::uint64_t w = 0; w < 50; ++w) {
    EXPECT_NE(cm.on_conflict(arena.view(w), rng), CmDecision::kAbortEnemy);
  }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(CmFactory, AllKindsConstructWithMatchingNames) {
  for (const auto kind : {CmKind::kPolite, CmKind::kKarma, CmKind::kTimestamp,
                          CmKind::kGreedy, CmKind::kPolka}) {
    const auto cm = make_cm(kind);
    ASSERT_NE(cm, nullptr);
    EXPECT_EQ(cm->name(), to_string(kind));
  }
}

// ---------------------------------------------------------------------------
// Multi-threaded TL2 integration: atomicity under every manager
// ---------------------------------------------------------------------------

void hammer_counter(Stm& stm, int threads, int increments_per_thread) {
  Cell counter;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < increments_per_thread; ++i) {
        stm.atomically([&](Tx& tx) {
          const std::uint64_t value = tx.read(counter);
          tx.write(counter, value + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(Stm::read_committed(counter),
            static_cast<std::uint64_t>(threads) * increments_per_thread);
  EXPECT_EQ(stm.stats().commits.load(),
            static_cast<std::uint64_t>(threads) * increments_per_thread);
}

TEST(StmWithCm, CounterAtomicUnderEveryManager) {
  for (const auto kind : {CmKind::kPolite, CmKind::kKarma, CmKind::kTimestamp,
                          CmKind::kGreedy, CmKind::kPolka}) {
    Stm stm{make_cm(kind)};
    hammer_counter(stm, 4, 3000);
  }
}

TEST(StmWithCm, BankConservationUnderKillHappyManager) {
  // Greedy kills on sight from the older side: the kill/release protocol
  // must never let a half-applied transfer become visible.
  Stm stm{make_cm(CmKind::kGreedy)};
  constexpr int kAccounts = 16;
  std::vector<Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      txc::sim::Rng rng{static_cast<std::uint64_t>(t) + 77};
      for (int i = 0; i < 4000; ++i) {
        const auto from = rng.uniform_below(kAccounts);
        auto to = rng.uniform_below(kAccounts - 1);
        if (to >= from) ++to;
        stm.atomically([&](Tx& tx) {
          const std::uint64_t a = tx.read(accounts[from]);
          const std::uint64_t b = tx.read(accounts[to]);
          tx.write(accounts[from], a - 1);
          tx.write(accounts[to], b + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  std::uint64_t total = 0;
  for (const auto& account : accounts) {
    total += Stm::read_committed(account);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kAccounts) * 1000);
}

}  // namespace
