// Tests of the classic contention managers behind the conflict-arbitration
// interface: decision logic per algorithm (unit-level, on hand-built
// descriptors), the kill/status protocol, the GraceArbiter adapter's
// mode-aware verdicts, and multi-threaded TL2 integration — atomicity must
// hold under every manager.  (Cross-substrate conformance — every arbiter on
// every substrate — lives in test_conflict_arbiter.cpp.)
#include "conflict/managers.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "conflict/grace.hpp"
#include "core/policy.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc::conflict;
using txc::sim::Rng;
using txc::stm::Cell;
using txc::stm::Stm;
using txc::stm::Tx;

struct Arena {
  TxDescriptor self;
  TxDescriptor enemy;
  double scratch = -1.0;

  Arena(std::uint64_t self_priority, std::uint64_t enemy_priority,
        std::uint64_t self_start = 1, std::uint64_t enemy_start = 2) {
    self.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
    enemy.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
    self.priority.store(self_priority);
    enemy.priority.store(enemy_priority);
    self.start_time.store(self_start);
    enemy.start_time.store(enemy_start);
  }

  [[nodiscard]] ConflictView view(std::uint64_t waits = 0,
                                  std::uint32_t attempt = 0) {
    ConflictView v;
    v.self = &self;
    v.enemy = &enemy;
    v.waits_so_far = waits;
    v.scratch = &scratch;
    v.context.attempt = attempt;
    return v;
  }
};

// ---------------------------------------------------------------------------
// TxDescriptor kill protocol
// ---------------------------------------------------------------------------

TEST(TxDescriptor, KillSucceedsOnlyWhileActive) {
  TxDescriptor d;
  d.status.store(static_cast<std::uint32_t>(TxStatus::kActive));
  EXPECT_TRUE(d.try_kill());
  EXPECT_EQ(d.load_status(), TxStatus::kAborted);
  EXPECT_FALSE(d.try_kill()) << "double kill must fail";

  d.status.store(static_cast<std::uint32_t>(TxStatus::kCommitting));
  EXPECT_FALSE(d.try_kill()) << "committing transactions are untouchable";
  EXPECT_EQ(d.load_status(), TxStatus::kCommitting);

  d.status.store(static_cast<std::uint32_t>(TxStatus::kCommitted));
  EXPECT_FALSE(d.try_kill());
}

// ---------------------------------------------------------------------------
// Polite
// ---------------------------------------------------------------------------

TEST(Polite, WaitsThenKills) {
  PoliteCm cm{/*max_rounds=*/3};
  Rng rng{1};
  Arena arena{0, 0};
  EXPECT_EQ(cm.decide(arena.view(0), rng), Decision::kWait);
  EXPECT_EQ(cm.decide(arena.view(2), rng), Decision::kWait);
  EXPECT_EQ(cm.decide(arena.view(3), rng), Decision::kAbortEnemy);
}

TEST(Polite, BackoffGrowsExponentially) {
  PoliteCm cm{8};
  Arena arena{0, 0};
  EXPECT_EQ(cm.wait_quantum(arena.view(0)), 16u);
  EXPECT_EQ(cm.wait_quantum(arena.view(1)), 32u);
  EXPECT_EQ(cm.wait_quantum(arena.view(4)), 256u);
}

TEST(Polite, GoneEnemyJustWaits) {
  PoliteCm cm{0};  // would kill immediately if the enemy were alive
  Rng rng{1};
  Arena arena{0, 0};
  arena.enemy.status.store(static_cast<std::uint32_t>(TxStatus::kCommitted));
  EXPECT_EQ(cm.decide(arena.view(10), rng), Decision::kWait);
  ConflictView no_enemy = arena.view(10);
  no_enemy.enemy = nullptr;
  EXPECT_EQ(cm.decide(no_enemy, rng), Decision::kWait);
}

// ---------------------------------------------------------------------------
// Karma
// ---------------------------------------------------------------------------

TEST(Karma, HigherPriorityKills) {
  KarmaCm cm;
  Rng rng{1};
  Arena arena{/*self=*/10, /*enemy=*/3};
  EXPECT_EQ(cm.decide(arena.view(0), rng), Decision::kAbortEnemy);
}

TEST(Karma, LowerPriorityWaits) {
  KarmaCm cm;
  Rng rng{1};
  Arena arena{3, 10};
  EXPECT_EQ(cm.decide(arena.view(0), rng), Decision::kWait);
}

TEST(Karma, WaitsAccumulateIntoPriority) {
  // Karma's signature: each wait is a karma point, so a patient loser
  // eventually out-prioritizes the holder.
  KarmaCm cm;
  Rng rng{1};
  Arena arena{3, 10};
  EXPECT_EQ(cm.decide(arena.view(7), rng), Decision::kWait);
  EXPECT_EQ(cm.decide(arena.view(8), rng), Decision::kAbortEnemy);
}

// ---------------------------------------------------------------------------
// Timestamp
// ---------------------------------------------------------------------------

TEST(Timestamp, OlderKillsYounger) {
  TimestampCm cm;
  Rng rng{1};
  Arena arena{0, 0, /*self_start=*/1, /*enemy_start=*/5};
  EXPECT_EQ(cm.decide(arena.view(0), rng), Decision::kAbortEnemy);
}

TEST(Timestamp, YoungerWaitsThenSelfAborts) {
  TimestampCm cm{/*patience=*/4};
  Rng rng{1};
  Arena arena{0, 0, /*self_start=*/5, /*enemy_start=*/1};
  EXPECT_EQ(cm.decide(arena.view(0), rng), Decision::kWait);
  EXPECT_EQ(cm.decide(arena.view(3), rng), Decision::kWait);
  EXPECT_EQ(cm.decide(arena.view(4), rng), Decision::kAbortSelf);
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

TEST(Greedy, OlderKillsYoungerNeverSelfAborts) {
  GreedyCm cm;
  Rng rng{1};
  Arena older{0, 0, 1, 5};
  EXPECT_EQ(cm.decide(older.view(0), rng), Decision::kAbortEnemy);
  Arena younger{0, 0, 5, 1};
  for (const std::uint64_t waits : {0u, 100u, 100000u}) {
    EXPECT_EQ(cm.decide(younger.view(waits), rng), Decision::kWait);
  }
}

// ---------------------------------------------------------------------------
// Polka
// ---------------------------------------------------------------------------

TEST(Polka, ToleratesBackoffRoundsEqualToPriorityGap) {
  PolkaCm cm;
  Rng rng{1};
  Arena arena{/*self=*/2, /*enemy=*/6};  // gap 4
  EXPECT_EQ(cm.decide(arena.view(4), rng), Decision::kWait);
  EXPECT_EQ(cm.decide(arena.view(5), rng), Decision::kAbortEnemy);
}

TEST(Polka, KillsImmediatelyWhenAhead) {
  PolkaCm cm;
  Rng rng{1};
  Arena arena{9, 2};  // gap 0 (we are ahead)
  EXPECT_EQ(cm.decide(arena.view(1), rng), Decision::kAbortEnemy);
}

// ---------------------------------------------------------------------------
// Anonymous substrates: no descriptors published (the NOrec shape)
// ---------------------------------------------------------------------------

TEST(Managers, DegradeToWaitingWithoutDescriptors) {
  // A substrate that publishes neither descriptor (NOrec's seqlock holder is
  // anonymous) must get a kWait from every seniority-based manager — there
  // is nothing to weigh and nothing to kill.
  Rng rng{1};
  ConflictView bare;  // self == enemy == nullptr
  for (const auto kind : {CmKind::kPolite, CmKind::kKarma, CmKind::kTimestamp,
                          CmKind::kGreedy, CmKind::kPolka}) {
    EXPECT_EQ(make_cm(kind)->decide(bare, rng), Decision::kWait)
        << to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// GraceArbiter (the paper's local decision behind the arbiter interface)
// ---------------------------------------------------------------------------

TEST(GraceArbiter, NoDelayResolvesImmediately) {
  // Requestor-aborts flavor: sacrifice self on the spot.
  GraceArbiter aborts{std::make_shared<txc::core::NoDelayPolicy>(
      txc::core::ResolutionMode::kRequestorAborts)};
  Rng rng{1};
  Arena arena{0, 0};
  EXPECT_EQ(aborts.decide(arena.view(0), rng), Decision::kAbortSelf);
  // Requestor-wins flavor: kill the enemy on the spot.
  GraceArbiter wins{std::make_shared<txc::core::NoDelayPolicy>(
      txc::core::ResolutionMode::kRequestorWins)};
  Arena arena2{0, 0};
  EXPECT_EQ(wins.decide(arena2.view(0), rng), Decision::kAbortEnemy);
}

TEST(GraceArbiter, FixedDelayWaitsOutTheBudgetThenResolves) {
  // 100-cycle budget at 32-cycle quanta: rounds 0-3 wait, round 4 resolves —
  // with the verdict chosen by the policy's resolution flavor.
  GraceArbiter wins{std::make_shared<txc::core::FixedDelayPolicy>(
      100.0, txc::core::ResolutionMode::kRequestorWins)};
  Rng rng{1};
  Arena arena{0, 0};
  EXPECT_EQ(wins.decide(arena.view(0), rng), Decision::kWait);
  EXPECT_EQ(wins.decide(arena.view(3), rng), Decision::kWait);
  EXPECT_EQ(wins.decide(arena.view(4), rng), Decision::kAbortEnemy);

  GraceArbiter aborts{std::make_shared<txc::core::FixedDelayPolicy>(
      100.0, txc::core::ResolutionMode::kRequestorAborts)};
  Arena arena2{0, 0};
  EXPECT_EQ(aborts.decide(arena2.view(3), rng), Decision::kWait);
  EXPECT_EQ(aborts.decide(arena2.view(4), rng), Decision::kAbortSelf);
}

TEST(GraceArbiter, ModeOverridePinsTheVerdict) {
  // The substrate convenience constructors (Stm/Norec from a policy, the
  // simulator's HtmConfig::mode) pin the flavor regardless of the policy's
  // own preference.
  GraceArbiter pinned{std::make_shared<txc::core::FixedDelayPolicy>(
                          100.0, txc::core::ResolutionMode::kRequestorWins),
                      txc::core::ResolutionMode::kRequestorAborts};
  Rng rng{1};
  Arena arena{0, 0};
  EXPECT_EQ(pinned.decide(arena.view(4), rng), Decision::kAbortSelf);
}

TEST(GraceArbiter, HonorsSitesThatCannotKill) {
  // A requestor-wins policy on a substrate without a kill protocol (NOrec's
  // anonymous seqlock holder) must degrade to sacrificing the requestor.
  GraceArbiter wins{std::make_shared<txc::core::FixedDelayPolicy>(
      100.0, txc::core::ResolutionMode::kRequestorWins)};
  Rng rng{1};
  Arena arena{0, 100};
  ConflictView view = arena.view(4);
  view.can_abort_enemy = false;
  EXPECT_EQ(wins.decide(view, rng), Decision::kAbortSelf);
}

TEST(GraceArbiter, RandomBudgetDrawnOncePerConflict) {
  // With the uniform RRW policy the budget is random, but within one
  // conflict (one scratch) consecutive decisions must be consistent with a
  // single draw: once it resolves at round w, it must have waited at all
  // rounds < w.
  GraceArbiter cm{std::make_shared<txc::core::RandomizedWinsPolicy>(false)};
  Rng rng{7};
  for (int trial = 0; trial < 100; ++trial) {
    Arena arena{0, 0};
    bool resolved = false;
    for (std::uint64_t w = 0; w < 64; ++w) {
      const Decision decision = cm.decide(arena.view(w), rng);
      if (decision != Decision::kWait) {
        resolved = true;
      } else {
        EXPECT_FALSE(resolved) << "wait after a terminal verdict";
      }
    }
  }
}

TEST(GraceArbiter, GrantMatchesTheDecideLoop) {
  // The one-shot grant (used by the discrete-event simulator) must agree
  // with what the round-based decide loop would have done.
  GraceArbiter cm{std::make_shared<txc::core::FixedDelayPolicy>(
      100.0, txc::core::ResolutionMode::kRequestorWins)};
  Rng rng{1};
  Arena arena{0, 0};
  const GraceGrant grant = cm.grace_grant(arena.view(0), rng);
  EXPECT_DOUBLE_EQ(grant.grace, 100.0);
  EXPECT_EQ(grant.expiry_verdict, Decision::kAbortEnemy);
}

TEST(DefaultGrantReplay, ClassicManagerGetsAFiniteGrant) {
  // Managers without a closed-form budget use the base-class replay: the
  // grant must be finite even for managers that would wait a long time, and
  // must carry the verdict the loop ended on.
  Rng rng{1};
  Arena arena{0, 0, /*self_start=*/1, /*enemy_start=*/5};  // we are older
  const GraceGrant older = TimestampCm{}.grace_grant(arena.view(0), rng);
  EXPECT_DOUBLE_EQ(older.grace, 0.0);
  EXPECT_EQ(older.expiry_verdict, Decision::kAbortEnemy);

  Arena younger{0, 0, /*self_start=*/5, /*enemy_start=*/1};
  const GraceGrant patience =
      TimestampCm{/*patience=*/4}.grace_grant(younger.view(0), rng);
  EXPECT_GT(patience.grace, 0.0);
  EXPECT_EQ(patience.expiry_verdict, Decision::kAbortSelf);

  // Greedy's younger side would wait forever; the replay cap bounds it.
  const GraceGrant capped = GreedyCm{}.grace_grant(younger.view(0), rng);
  EXPECT_GT(capped.grace, 0.0);
  EXPECT_EQ(capped.expiry_verdict, Decision::kAbortSelf);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(CmFactory, AllKindsConstructWithMatchingNames) {
  for (const auto kind : {CmKind::kPolite, CmKind::kKarma, CmKind::kTimestamp,
                          CmKind::kGreedy, CmKind::kPolka}) {
    const auto cm = make_cm(kind);
    ASSERT_NE(cm, nullptr);
    EXPECT_EQ(cm->name(), to_string(kind));
    EXPECT_TRUE(cm->needs_seniority()) << "classic managers weigh seniority";
  }
}

// ---------------------------------------------------------------------------
// Multi-threaded TL2 integration: atomicity under every manager
// ---------------------------------------------------------------------------

void hammer_counter(Stm& stm, int threads, int increments_per_thread) {
  Cell counter;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < increments_per_thread; ++i) {
        stm.atomically([&](Tx& tx) {
          const std::uint64_t value = tx.read(counter);
          tx.write(counter, value + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(Stm::read_committed(counter),
            static_cast<std::uint64_t>(threads) * increments_per_thread);
  EXPECT_EQ(stm.stats().commits.load(),
            static_cast<std::uint64_t>(threads) * increments_per_thread);
}

TEST(StmWithCm, CounterAtomicUnderEveryManager) {
  for (const auto kind : {CmKind::kPolite, CmKind::kKarma, CmKind::kTimestamp,
                          CmKind::kGreedy, CmKind::kPolka}) {
    Stm stm{make_cm(kind)};
    hammer_counter(stm, 4, 3000);
  }
}

TEST(StmWithCm, BankConservationUnderKillHappyManager) {
  // Greedy kills on sight from the older side: the kill/release protocol
  // must never let a half-applied transfer become visible.
  Stm stm{make_cm(CmKind::kGreedy)};
  constexpr int kAccounts = 16;
  std::vector<Cell> accounts(kAccounts);
  for (auto& account : accounts) account.value = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      txc::sim::Rng rng{static_cast<std::uint64_t>(t) + 77};
      for (int i = 0; i < 4000; ++i) {
        const auto from = rng.uniform_below(kAccounts);
        auto to = rng.uniform_below(kAccounts - 1);
        if (to >= from) ++to;
        stm.atomically([&](Tx& tx) {
          const std::uint64_t a = tx.read(accounts[from]);
          const std::uint64_t b = tx.read(accounts[to]);
          tx.write(accounts[from], a - 1);
          tx.write(accounts[to], b + 1);
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  std::uint64_t total = 0;
  for (const auto& account : accounts) {
    total += Stm::read_committed(account);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kAccounts) * 1000);
}

}  // namespace
