// Tests for the Zipf sampler: normalization, rank ordering, the uniform
// degenerate case, empirical frequency agreement, and determinism.
#include "workload/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace {

using txc::sim::Rng;
using txc::workload::ZipfSampler;

TEST(Zipf, ProbabilitiesSumToOne) {
  for (const double s : {0.0, 0.5, 1.0, 2.0}) {
    ZipfSampler zipf{64, s};
    double total = 0.0;
    for (std::uint32_t i = 0; i < 64; ++i) total += zipf.probability(i);
    EXPECT_NEAR(total, 1.0, 1e-12) << "s = " << s;
  }
}

TEST(Zipf, ProbabilityDecreasesWithRank) {
  ZipfSampler zipf{100, 1.0};
  for (std::uint32_t i = 1; i < 100; ++i) {
    EXPECT_GT(zipf.probability(i - 1), zipf.probability(i));
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfSampler zipf{32, 0.0};
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(zipf.probability(i), 1.0 / 32.0, 1e-12);
  }
}

TEST(Zipf, RatioMatchesPowerLaw) {
  // P(0)/P(i) = (i+1)^s exactly.
  ZipfSampler zipf{64, 1.5};
  for (const std::uint32_t i : {1u, 3u, 7u, 31u}) {
    EXPECT_NEAR(zipf.probability(0) / zipf.probability(i),
                std::pow(static_cast<double>(i + 1), 1.5), 1e-9);
  }
}

TEST(Zipf, OutOfRangeProbabilityIsZero) {
  ZipfSampler zipf{8, 1.0};
  EXPECT_EQ(zipf.probability(8), 0.0);
  EXPECT_EQ(zipf.probability(1000), 0.0);
}

TEST(Zipf, EmpiricalFrequenciesMatch) {
  ZipfSampler zipf{16, 1.0};
  Rng rng{42};
  std::vector<std::uint64_t> counts(16, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::uint32_t i = 0; i < 16; ++i) {
    const double expected = zipf.probability(i) * kDraws;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected,
                5.0 * std::sqrt(expected) + 5.0)
        << "item " << i;
  }
}

TEST(Zipf, SamplesStayInRange) {
  ZipfSampler zipf{5, 2.0};
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 5u);
  }
}

TEST(Zipf, SingleItemAlwaysZero) {
  ZipfSampler zipf{1, 1.0};
  Rng rng{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.probability(0), 1.0);
}

TEST(Zipf, DeterministicGivenSeed) {
  ZipfSampler zipf{64, 0.8};
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.sample(a), zipf.sample(b));
  }
}

TEST(Zipf, SkewConcentratesMassOnHead) {
  ZipfSampler mild{64, 0.5};
  ZipfSampler heavy{64, 1.5};
  double mild_head = 0.0;
  double heavy_head = 0.0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    mild_head += mild.probability(i);
    heavy_head += heavy.probability(i);
  }
  EXPECT_LT(mild_head, heavy_head);
  EXPECT_GT(heavy_head, 0.7);
}

}  // namespace
