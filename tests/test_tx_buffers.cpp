// Tests of the reusable transaction buffers behind the STM fast path:
// SmallVec inline->heap growth, FlatPtrMap/FlatPtrSet probing (including
// collision-heavy fill patterns that force long probe chains and bucket
// growth), epoch-based clear/reuse semantics, and release().  The whole
// suite runs ASan-clean under TXC_SANITIZE — the raw ::operator new storage
// management is exactly what sanitizers exist to audit.
#include "stm/tx_buffers.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/rng.hpp"
#include "stm/tl2.hpp"  // Cell (TxBuffers members are keyed by Cell*)

namespace {

using namespace txc::stm;

// ---------------------------------------------------------------------------
// SmallVec
// ---------------------------------------------------------------------------

TEST(SmallVec, StaysInlineUpToCapacity) {
  SmallVec<std::uint64_t, 8> vec;
  for (std::uint64_t i = 0; i < 8; ++i) vec.push_back(i);
  EXPECT_EQ(vec.size(), 8u);
  EXPECT_FALSE(vec.on_heap());
  EXPECT_EQ(vec.capacity(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(vec[i], i);
}

TEST(SmallVec, GrowsToHeapPreservingContents) {
  SmallVec<std::uint64_t, 4> vec;
  for (std::uint64_t i = 0; i < 100; ++i) vec.push_back(i * 3);
  EXPECT_EQ(vec.size(), 100u);
  EXPECT_TRUE(vec.on_heap());
  EXPECT_GE(vec.capacity(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(vec[i], i * 3);
}

TEST(SmallVec, ClearKeepsHighWaterCapacity) {
  SmallVec<std::uint64_t, 4> vec;
  for (std::uint64_t i = 0; i < 50; ++i) vec.push_back(i);
  const std::size_t high_water = vec.capacity();
  vec.clear();
  EXPECT_EQ(vec.size(), 0u);
  EXPECT_EQ(vec.capacity(), high_water) << "clear must not free";
  // Refill within capacity: no further growth required.
  for (std::uint64_t i = 0; i < 50; ++i) vec.push_back(i + 1);
  EXPECT_EQ(vec.capacity(), high_water);
  EXPECT_EQ(vec[49], 50u);
}

TEST(SmallVec, ReleaseReturnsToInlineState) {
  SmallVec<std::uint64_t, 4> vec;
  for (std::uint64_t i = 0; i < 50; ++i) vec.push_back(i);
  vec.release();
  EXPECT_EQ(vec.size(), 0u);
  EXPECT_FALSE(vec.on_heap());
  EXPECT_EQ(vec.capacity(), 4u);
  vec.push_back(9);
  EXPECT_EQ(vec[0], 9u);
}

TEST(SmallVec, RangeForIteratesInsertionOrder) {
  SmallVec<int, 2> vec;
  for (int i = 0; i < 9; ++i) vec.push_back(i);
  int expected = 0;
  for (const int value : vec) EXPECT_EQ(value, expected++);
  EXPECT_EQ(expected, 9);
}

// ---------------------------------------------------------------------------
// FlatPtrMap
// ---------------------------------------------------------------------------

TEST(FlatPtrMap, FindOnEmptyReturnsNull) {
  FlatPtrMap<Cell*, std::uint64_t, 4> map;
  Cell cell;
  EXPECT_EQ(map.find(&cell), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatPtrMap, UpsertInsertsAndOverwrites) {
  FlatPtrMap<Cell*, std::uint64_t, 4> map;
  Cell cell;
  bool inserted = false;
  map.upsert(&cell, &inserted) = 41;
  EXPECT_TRUE(inserted);
  map.upsert(&cell, &inserted) = 42;
  EXPECT_FALSE(inserted) << "second upsert of one key must hit the old slot";
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(&cell), nullptr);
  EXPECT_EQ(*map.find(&cell), 42u);
}

TEST(FlatPtrMap, ManyKeysForceBucketGrowthAndStayFindable) {
  FlatPtrMap<Cell*, std::uint64_t, 4> map;
  std::vector<Cell> cells(500);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    map.upsert(&cells[i]) = i;
  }
  EXPECT_EQ(map.size(), cells.size());
  EXPECT_GT(map.bucket_count(), 500u) << "load factor must stay under 3/4";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_NE(map.find(&cells[i]), nullptr) << "key " << i;
    EXPECT_EQ(*map.find(&cells[i]), i);
  }
  Cell absent;
  EXPECT_EQ(map.find(&absent), nullptr);
}

TEST(FlatPtrMap, CollisionHeavyProbeChainsResolve) {
  // Adjacent Cells in one array differ only in low address bits — after the
  // >>3 in mix_pointer, consecutive integers.  With a tiny bucket count this
  // is the densest collision pattern the write set can see: every probe
  // sequence overlaps its neighbors'.
  FlatPtrMap<Cell*, std::uint64_t, 4> map;
  std::vector<Cell> cells(64);
  for (std::size_t round = 0; round < 3; ++round) {
    map.clear();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      map.upsert(&cells[i]) = round * 1000 + i;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_NE(map.find(&cells[i]), nullptr);
      EXPECT_EQ(*map.find(&cells[i]), round * 1000 + i);
    }
  }
}

TEST(FlatPtrMap, IterationYieldsInsertionOrder) {
  FlatPtrMap<Cell*, std::uint64_t, 4> map;
  std::vector<Cell> cells(20);
  for (std::size_t i = 0; i < cells.size(); ++i) map.upsert(&cells[i]) = i;
  std::size_t index = 0;
  for (const auto& entry : map) {
    EXPECT_EQ(entry.key, &cells[index]);
    EXPECT_EQ(entry.value, index);
    ++index;
  }
  EXPECT_EQ(index, cells.size());
}

TEST(FlatPtrMap, ClearForgetsEntriesButKeepsStorage) {
  FlatPtrMap<Cell*, std::uint64_t, 4> map;
  std::vector<Cell> cells(100);
  for (auto& cell : cells) map.upsert(&cell) = 7;
  const std::size_t grown_buckets = map.bucket_count();
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.bucket_count(), grown_buckets) << "clear must not shrink";
  for (auto& cell : cells) {
    EXPECT_EQ(map.find(&cell), nullptr) << "stale entry visible after clear";
  }
  // Reuse after clear: fresh values, no cross-talk.
  map.upsert(&cells[0]) = 99;
  EXPECT_EQ(*map.find(&cells[0]), 99u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatPtrMap, ManyClearCyclesNeverLeakStaleEntries) {
  // Epoch-stamped clearing: each cycle must behave like a fresh map even
  // though no memory is scrubbed.  Mirror against std::unordered_map.
  FlatPtrMap<Cell*, std::uint64_t, 4> map;
  std::vector<Cell> cells(32);
  txc::sim::Rng rng{2024};
  for (int cycle = 0; cycle < 1000; ++cycle) {
    map.clear();
    std::unordered_map<Cell*, std::uint64_t> mirror;
    const std::size_t inserts = rng.uniform_below(cells.size()) + 1;
    for (std::size_t i = 0; i < inserts; ++i) {
      Cell* key = &cells[rng.uniform_below(cells.size())];
      const std::uint64_t value = rng();
      map.upsert(key) = value;
      mirror[key] = value;
    }
    ASSERT_EQ(map.size(), mirror.size());
    for (auto& cell : cells) {
      const auto expected = mirror.find(&cell);
      std::uint64_t* actual = map.find(&cell);
      if (expected == mirror.end()) {
        ASSERT_EQ(actual, nullptr);
      } else {
        ASSERT_NE(actual, nullptr);
        ASSERT_EQ(*actual, expected->second);
      }
    }
  }
}

TEST(FlatPtrMap, ReleaseReturnsToInlineBuckets) {
  FlatPtrMap<Cell*, std::uint64_t, 4> map;
  std::vector<Cell> cells(100);
  for (auto& cell : cells) map.upsert(&cell) = 1;
  map.release();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.bucket_count(), 8u);  // 2 * InlineCapacity
  map.upsert(&cells[5]) = 5;
  EXPECT_EQ(*map.find(&cells[5]), 5u);
}

// ---------------------------------------------------------------------------
// FlatPtrSet
// ---------------------------------------------------------------------------

TEST(FlatPtrSet, InsertReportsFirstMembership) {
  FlatPtrSet<const Cell*, 4> set;
  Cell cell;
  EXPECT_TRUE(set.insert(&cell));
  EXPECT_FALSE(set.insert(&cell)) << "duplicate insert must dedupe";
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains(&cell));
}

TEST(FlatPtrSet, ForEachVisitsEachMemberOnce) {
  FlatPtrSet<const Cell*, 4> set;
  std::vector<Cell> cells(50);
  for (int round = 0; round < 3; ++round) {  // repeated inserts
    for (const auto& cell : cells) set.insert(&cell);
  }
  EXPECT_EQ(set.size(), cells.size());
  std::unordered_set<const Cell*> seen;
  set.for_each([&](const Cell* cell) {
    EXPECT_TRUE(seen.insert(cell).second) << "member visited twice";
  });
  EXPECT_EQ(seen.size(), cells.size());
}

TEST(FlatPtrSet, ClearThenReuse) {
  FlatPtrSet<const Cell*, 4> set;
  std::vector<Cell> cells(20);
  for (const auto& cell : cells) set.insert(&cell);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(&cells[0]));
  EXPECT_TRUE(set.insert(&cells[0]));
}

// ---------------------------------------------------------------------------
// TxBuffers
// ---------------------------------------------------------------------------

TEST(TxBuffers, ClearResetsEveryComponent) {
  TxBuffers buffers;
  std::vector<Cell> cells(4);
  buffers.write_set.upsert(&cells[0]) = 1;
  buffers.read_set.insert(&cells[1]);
  buffers.read_log.push_back(ReadLogEntry{&cells[2], 3});
  buffers.commit_scratch.push_back(&cells[3]);
  buffers.clear();
  EXPECT_TRUE(buffers.write_set.empty());
  EXPECT_TRUE(buffers.read_set.empty());
  EXPECT_TRUE(buffers.read_log.empty());
  EXPECT_TRUE(buffers.commit_scratch.empty());
}

TEST(TxBuffers, ReleaseAfterGiantTransactionFreesHeap) {
  TxBuffers buffers;
  std::vector<Cell> cells(2000);
  for (auto& cell : cells) {
    buffers.write_set.upsert(&cell) = 1;
    buffers.read_set.insert(&cell);
    buffers.read_log.push_back(ReadLogEntry{&cell, 1});
  }
  buffers.release();
  EXPECT_TRUE(buffers.write_set.empty());
  EXPECT_TRUE(buffers.read_set.empty());
  EXPECT_FALSE(buffers.read_log.on_heap());
  // Still usable after release.
  buffers.write_set.upsert(&cells[0]) = 2;
  EXPECT_EQ(*buffers.write_set.find(&cells[0]), 2u);
}

}  // namespace
