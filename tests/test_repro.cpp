// Tests for the repro driver plumbing: the minimal JSON reader, the bench
// roster I/O shared by txcbench/txcrepro, the multi-process worker pool, and
// the end-to-end exit-code contract of the txcbench binary itself.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <sys/wait.h>

#include "repro/aggregate.hpp"
#include "repro/benchio.hpp"
#include "repro/minijson.hpp"
#include "repro/pool.hpp"
#include "repro/roster.hpp"

namespace {

namespace fs = std::filesystem;
using namespace txc::repro;

// ---------------------------------------------------------------------------
// minijson
// ---------------------------------------------------------------------------

TEST(MiniJson, ParsesScalarsAndContainers) {
  const json::Value doc = json::parse(
      R"({"name": "x", "ok": true, "none": null, "n": -2.5e1,
          "list": [1, 2, 3], "nested": {"k": "v"}})");
  EXPECT_EQ(doc.at("name").as_string(), "x");
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_DOUBLE_EQ(doc.at("n").as_number(), -25.0);
  ASSERT_EQ(doc.at("list").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("list").as_array()[2].as_number(), 3.0);
  EXPECT_EQ(doc.at("nested").at("k").as_string(), "v");
}

TEST(MiniJson, DecodesStringEscapes) {
  const json::Value doc =
      json::parse(R"({"s": "a\"b\\c\nd\teA"})");
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\\c\nd\teA");
}

TEST(MiniJson, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), json::ParseError);
  EXPECT_THROW(json::parse("[1, 2,]"), json::ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), json::ParseError);
  EXPECT_THROW(json::parse("nul"), json::ParseError);
  EXPECT_THROW(json::parse(R"({"s": "\uZZZZ"})"), json::ParseError);
}

TEST(MiniJson, AccessorsEnforceKinds) {
  const json::Value doc = json::parse(R"({"a": 1})");
  EXPECT_THROW(doc.at("a").as_string(), std::runtime_error);
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", 7.0), 7.0);
}

// ---------------------------------------------------------------------------
// roster
// ---------------------------------------------------------------------------

TEST(Roster, BuiltinFiguresAreWellFormed) {
  const auto& roster = builtin_roster();
  ASSERT_FALSE(roster.empty());
  std::vector<std::string> seen;
  for (const FigureSpec& figure : roster) {
    EXPECT_FALSE(figure.panels.empty()) << figure.name;
    for (const std::string& name : seen) EXPECT_NE(name, figure.name);
    seen.push_back(figure.name);
    for (const PanelSpec& panel : figure.panels) {
      EXPECT_FALSE(panel.bench.empty());
      EXPECT_GE(panel.max_attempts, 1) << panel.bench;
    }
  }
  ASSERT_NE(find_figure("fig2"), nullptr);
  EXPECT_EQ(find_figure("fig2")->panels.size(), 3u);
  EXPECT_EQ(find_figure("no-such-figure"), nullptr);
}

TEST(Roster, EveryPanelIsInTheCMakeManifest) {
  // The roster must only name benches that bench/CMakeLists.txt builds.
  // Parse the add_bench calls straight out of the source listing.
  const fs::path cmake_lists =
      fs::path(TXC_TEST_SOURCE_DIR) / "bench" / "CMakeLists.txt";
  std::ifstream in(cmake_lists);
  ASSERT_TRUE(in) << cmake_lists;
  std::string cmake_text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  for (const FigureSpec& figure : builtin_roster()) {
    for (const PanelSpec& panel : figure.panels) {
      EXPECT_NE(cmake_text.find("txc_add_bench(" + panel.bench),
                std::string::npos)
          << panel.bench << " is in the roster but not in bench/CMakeLists.txt";
    }
  }
}

// ---------------------------------------------------------------------------
// benchio: roster files and txc-bench/v1 reports
// ---------------------------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/txc_repro_test_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

void write_file(const fs::path& path, const std::string& text,
                bool executable = false) {
  {
    std::ofstream out(path);
    out << text;
  }
  if (executable) {
    fs::permissions(path, fs::perms::owner_all | fs::perms::group_read |
                              fs::perms::others_read);
  }
}

TEST(BenchIo, LoadRosterPrefersManifest) {
  TempDir dir;
  write_file(dir.path() / "manifest.txt", "bench_b\nbench_a\n\n");
  write_file(dir.path() / "stray_executable", "#!/bin/sh\nexit 0\n", true);
  const std::vector<std::string> roster = load_roster(dir.path());
  ASSERT_EQ(roster.size(), 2u);  // manifest wins over the directory scan
  EXPECT_EQ(roster[0], "bench_b");
  EXPECT_EQ(roster[1], "bench_a");
}

TEST(BenchIo, LoadRosterFallsBackToExecutableScan) {
  TempDir dir;
  write_file(dir.path() / "zzz", "#!/bin/sh\nexit 0\n", true);
  write_file(dir.path() / "aaa", "#!/bin/sh\nexit 0\n", true);
  write_file(dir.path() / "not_executable.txt", "data");
  const std::vector<std::string> roster = load_roster(dir.path());
  ASSERT_EQ(roster.size(), 2u);
  EXPECT_EQ(roster[0], "aaa");  // sorted
  EXPECT_EQ(roster[1], "zzz");
}

TEST(BenchIo, ShellQuoteNeutralizesMetacharacters) {
  EXPECT_EQ(shell_quote("plain"), "'plain'");
  EXPECT_EQ(shell_quote("has space"), "'has space'");
  EXPECT_EQ(shell_quote("o'brien"), "'o'\\''brien'");
}

TEST(BenchIo, ReportRoundTrips) {
  std::vector<BenchResult> results(2);
  results[0].name = "alpha";
  results[0].exit_code = 0;
  results[0].attempts = 1;
  results[0].wall_ms = 12.5;
  results[0].output_lines = 3;
  results[1].name = "beta";
  results[1].exit_code = 1;
  results[1].timed_out = true;
  results[1].attempts = 2;
  results[1].wall_ms = 900.0;
  results[1].tail = "boom \"quoted\"\n";

  TempDir dir;
  const std::string path = (dir.path() / "report.json").string();
  ASSERT_TRUE(write_report(path, /*smoke=*/true, "bench", results));

  const std::vector<BenchResult> loaded = read_report(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "alpha");
  EXPECT_TRUE(loaded[0].ok());
  EXPECT_DOUBLE_EQ(loaded[0].wall_ms, 12.5);
  EXPECT_EQ(loaded[1].name, "beta");
  EXPECT_FALSE(loaded[1].ok());
  EXPECT_TRUE(loaded[1].timed_out);
  EXPECT_EQ(loaded[1].attempts, 2);
}

TEST(BenchIo, ReadReportRejectsWrongSchema) {
  TempDir dir;
  const std::string path = (dir.path() / "bad.json").string();
  write_file(path, R"({"schema": "other/v9", "results": []})");
  EXPECT_THROW(read_report(path), std::runtime_error);
  EXPECT_THROW(read_report((dir.path() / "absent.json").string()),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// process pool
// ---------------------------------------------------------------------------

RunSpec shell_spec(const std::string& id, const std::string& script) {
  RunSpec spec;
  spec.id = id;
  spec.program = "/bin/sh";
  spec.args = {"-c", script};
  spec.timeout_seconds = 30.0;
  return spec;
}

TEST(ProcessPool, PropagatesExitCodesInSpecOrder) {
  ProcessPool pool(2);
  const auto results =
      pool.run_all({shell_spec("ok", "exit 0"), shell_spec("fail", "exit 3")});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, "ok");
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].id, "fail");
  EXPECT_EQ(results[1].exit_code, 3);
  EXPECT_FALSE(results[1].ok());
}

TEST(ProcessPool, KillsRunsPastTheirDeadline) {
  RunSpec spec = shell_spec("sleepy", "sleep 30");
  spec.timeout_seconds = 0.2;
  ProcessPool pool(1);
  const auto results = pool.run_all({spec});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].timed_out);
  EXPECT_FALSE(results[0].ok());
  EXPECT_LT(results[0].wall_ms, 10000.0);  // nowhere near the 30 s sleep
}

TEST(ProcessPool, RetriesUpToTheAttemptBudget) {
  TempDir dir;
  // Fails on the first attempt, succeeds on the second (a marker file
  // distinguishes attempts).
  const std::string marker = (dir.path() / "marker").string();
  RunSpec spec = shell_spec(
      "flaky", "if [ -e " + marker + " ]; then exit 0; else touch " + marker +
                   "; exit 1; fi");
  spec.max_attempts = 3;
  ProcessPool pool(1);
  const auto results = pool.run_all({spec});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[0].attempts, 2);

  RunSpec hopeless = shell_spec("hopeless", "exit 7");
  hopeless.max_attempts = 3;
  const auto hopeless_results = pool.run_all({hopeless});
  EXPECT_EQ(hopeless_results[0].attempts, 3);
  EXPECT_EQ(hopeless_results[0].exit_code, 7);
}

TEST(ProcessPool, RunsWorkersInParallel) {
  ProcessPool pool(2);
  const auto results = pool.run_all(
      {shell_spec("a", "sleep 0.3"), shell_spec("b", "sleep 0.3")});
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_GE(pool.peak_parallelism(), 2u);
}

TEST(ProcessPool, CapturesChildOutputAndEnvironment) {
  TempDir dir;
  RunSpec spec = shell_spec("env", "echo \"val=$TXC_TEST_VAR\"");
  spec.env = {{"TXC_TEST_VAR", "42"}};
  spec.output_path = (dir.path() / "out.log").string();
  ProcessPool pool(1);
  const auto results = pool.run_all({spec});
  ASSERT_TRUE(results[0].ok());
  std::ifstream in(spec.output_path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "val=42");
}

// ---------------------------------------------------------------------------
// baseline comparison
// ---------------------------------------------------------------------------

BenchResult make_result(const std::string& name, int exit_code,
                        double wall_ms) {
  BenchResult result;
  result.name = name;
  result.exit_code = exit_code;
  result.wall_ms = wall_ms;
  return result;
}

TEST(Baseline, FlagsFailuresAndWallTimeDrift) {
  const std::vector<BenchResult> baseline = {
      make_result("a", 0, 100.0), make_result("b", 0, 100.0),
      make_result("c", 0, 100.0), make_result("broken_before", 1, 100.0)};
  const std::vector<BenchResult> current = {
      make_result("a", 0, 120.0),            // within threshold
      make_result("b", 0, 500.0),            // 5x drift
      make_result("c", 2, 90.0),             // regressed to failure
      make_result("broken_before", 1, 90.0)  // was already broken: ignored
  };
  const auto regressions =
      compare_to_baseline(current, baseline, BaselineConfig{});
  ASSERT_EQ(regressions.size(), 2u);
  EXPECT_EQ(regressions[0].bench, "b");
  EXPECT_EQ(regressions[1].bench, "c");
}

TEST(Baseline, FlagsRegressionFromSubFloorBaseline) {
  // An injected tiny baseline must still trip the gate when the current run
  // is above the noise floor.
  const std::vector<BenchResult> baseline = {make_result("a", 0, 0.01)};
  const std::vector<BenchResult> current = {make_result("a", 0, 50.0)};
  EXPECT_EQ(compare_to_baseline(current, baseline, BaselineConfig{}).size(),
            1u);
}

TEST(Baseline, IgnoresNoiseAndMissingBenches) {
  BaselineConfig config;
  const std::vector<BenchResult> baseline = {make_result("a", 0, 2.0)};
  // Current run faster than the floor: never a wall-time regression.
  EXPECT_TRUE(compare_to_baseline({make_result("a", 0, 9.0)}, baseline, config)
                  .empty());
  // Bench absent from the baseline: skipped.
  EXPECT_TRUE(compare_to_baseline({make_result("new", 0, 500.0)}, baseline,
                                  config)
                  .empty());
}

// ---------------------------------------------------------------------------
// txcbench end-to-end exit codes (satellite: failures/timeouts propagate)
// ---------------------------------------------------------------------------

#ifdef TXC_TXCBENCH_PATH

int run_txcbench(const std::string& args) {
  const std::string command =
      std::string(TXC_TXCBENCH_PATH) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(TxcBenchBinary, ExitsZeroWhenAllBenchesPass) {
  TempDir dir;
  write_file(dir.path() / "manifest.txt", "good_a\ngood_b\n");
  write_file(dir.path() / "good_a", "#!/bin/sh\necho row\nexit 0\n", true);
  write_file(dir.path() / "good_b", "#!/bin/sh\nexit 0\n", true);
  const std::string out = (dir.path() / "report.json").string();
  EXPECT_EQ(run_txcbench("--bench-dir " + dir.path().string() + " --out " +
                         out),
            0);
  const auto report = read_report(out);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_TRUE(report[0].ok());
}

TEST(TxcBenchBinary, PropagatesBenchFailureAsExitOne) {
  TempDir dir;
  write_file(dir.path() / "manifest.txt", "good\nbad\n");
  write_file(dir.path() / "good", "#!/bin/sh\nexit 0\n", true);
  write_file(dir.path() / "bad", "#!/bin/sh\necho doom\nexit 9\n", true);
  const std::string out = (dir.path() / "report.json").string();
  EXPECT_EQ(run_txcbench("--bench-dir " + dir.path().string() + " --out " +
                         out),
            1);
  const auto report = read_report(out);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_FALSE(report[1].ok());
  EXPECT_EQ(report[1].exit_code, 9);
}

TEST(TxcBenchBinary, PropagatesTimeoutAsExitOne) {
  TempDir dir;
  write_file(dir.path() / "manifest.txt", "slow\n");
  write_file(dir.path() / "slow", "#!/bin/sh\nsleep 30\n", true);
  const std::string out = (dir.path() / "report.json").string();
  EXPECT_EQ(run_txcbench("--bench-dir " + dir.path().string() +
                         " --timeout 1 --out " + out),
            1);
  const auto report = read_report(out);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_TRUE(report[0].timed_out);
}

TEST(TxcBenchBinary, UsageErrorsExitTwo) {
  TempDir dir;  // empty: no manifest, no executables
  EXPECT_EQ(run_txcbench("--bench-dir " + (dir.path() / "nope").string()), 2);
  EXPECT_EQ(run_txcbench("--no-such-flag"), 2);
}

#endif  // TXC_TXCBENCH_PATH

}  // namespace
