// Tests of the lock-free slow-path structures: sequential semantics,
// capacity behavior, tagged-index ABA machinery, and multi-threaded stress
// (conservation of elements, no duplication, no loss).
#include "lockfree/queue.hpp"
#include "lockfree/stack.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace {

using namespace txc::lockfree;

TEST(TaggedIndex, PackingRoundTrip) {
  const TaggedIndex tagged{0xABCD1234u, 42u};
  EXPECT_EQ(tagged.tag(), 0xABCD1234u);
  EXPECT_EQ(tagged.index(), 42u);
  EXPECT_FALSE(tagged.null());
  const TaggedIndex advanced = tagged.advanced_to(7);
  EXPECT_EQ(advanced.tag(), 0xABCD1235u);
  EXPECT_EQ(advanced.index(), 7u);
  EXPECT_TRUE(TaggedIndex{}.null());
}

TEST(TreiberStack, LifoOrder) {
  TreiberStack stack{8};
  EXPECT_TRUE(stack.empty());
  EXPECT_TRUE(stack.push(1));
  EXPECT_TRUE(stack.push(2));
  EXPECT_TRUE(stack.push(3));
  EXPECT_EQ(stack.pop(), 3u);
  EXPECT_EQ(stack.pop(), 2u);
  EXPECT_EQ(stack.pop(), 1u);
  EXPECT_EQ(stack.pop(), std::nullopt);
  EXPECT_TRUE(stack.empty());
}

TEST(TreiberStack, CapacityExhaustionAndRecycling) {
  TreiberStack stack{2};
  EXPECT_TRUE(stack.push(1));
  EXPECT_TRUE(stack.push(2));
  EXPECT_FALSE(stack.push(3)) << "pool exhausted";
  EXPECT_EQ(stack.pop(), 2u);
  EXPECT_TRUE(stack.push(4)) << "node recycled through the free list";
  EXPECT_EQ(stack.pop(), 4u);
  EXPECT_EQ(stack.pop(), 1u);
}

TEST(TreiberStack, ConcurrentPushPopConservesElements) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  TreiberStack stack{kThreads * 64};
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> pushed_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  std::atomic<std::uint64_t> pushed_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(t) * kPerThread + i + 1;
        if (stack.push(value)) {
          pushed_sum.fetch_add(value);
          pushed_count.fetch_add(1);
        }
        if (const auto popped = stack.pop()) {
          popped_sum.fetch_add(*popped);
          popped_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Drain the remainder.
  while (const auto popped = stack.pop()) {
    popped_sum.fetch_add(*popped);
    popped_count.fetch_add(1);
  }
  EXPECT_EQ(popped_count.load(), pushed_count.load());
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_TRUE(stack.empty());
}

TEST(MichaelScottQueue, FifoOrder) {
  MichaelScottQueue queue{8};
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.enqueue(1));
  EXPECT_TRUE(queue.enqueue(2));
  EXPECT_TRUE(queue.enqueue(3));
  EXPECT_EQ(queue.dequeue(), 1u);
  EXPECT_EQ(queue.dequeue(), 2u);
  EXPECT_EQ(queue.dequeue(), 3u);
  EXPECT_EQ(queue.dequeue(), std::nullopt);
}

TEST(MichaelScottQueue, CapacityExhaustionAndRecycling) {
  MichaelScottQueue queue{2};
  EXPECT_TRUE(queue.enqueue(1));
  EXPECT_TRUE(queue.enqueue(2));
  EXPECT_FALSE(queue.enqueue(3));
  EXPECT_EQ(queue.dequeue(), 1u);
  EXPECT_TRUE(queue.enqueue(4));
  EXPECT_EQ(queue.dequeue(), 2u);
  EXPECT_EQ(queue.dequeue(), 4u);
  EXPECT_EQ(queue.dequeue(), std::nullopt);
}

TEST(MichaelScottQueue, SingleProducerSingleConsumerOrdering) {
  MichaelScottQueue queue{256};
  constexpr std::uint64_t kCount = 50000;
  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kCount; ++i) {
      while (!queue.enqueue(i)) {
      }
    }
  });
  std::uint64_t expected = 1;
  bool ordered = true;
  std::thread consumer([&] {
    while (expected <= kCount) {
      if (const auto value = queue.dequeue()) {
        if (*value != expected) {
          ordered = false;
          break;
        }
        ++expected;
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(ordered) << "FIFO violated at " << expected;
  EXPECT_EQ(expected, kCount + 1);
}

TEST(MichaelScottQueue, EmptyNeverLiesOnNonEmptyQueue) {
  // Regression: empty() used to read head's next without revalidating head.
  // When a dequeuer retired the dummy between the two loads and the node
  // was recycled by an enqueuer (next rewritten to kNull mid-read), a
  // provably non-empty queue — it always holds at least one of the seeded
  // values below — could report empty.  The fix rereads head after sampling next
  // and retries on movement; this test keeps the size->=1 invariant while
  // churning dequeue-then-enqueue pairs through the dummy-recycling path
  // and asserts empty() never returns true.
  constexpr int kThreads = 3;
  constexpr int kPairsPerThread = 60000;
  MichaelScottQueue queue{kThreads * 4 + 2};
  // Each churner holds at most one value in hand between its dequeue and
  // re-enqueue, so seeding one more value than there are churners keeps at
  // least one value IN the queue at every instant.
  constexpr int kSeeded = kThreads + 1;
  for (int i = 0; i < kSeeded; ++i) {
    ASSERT_TRUE(queue.enqueue(0xBEEF + static_cast<std::uint64_t>(i)));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> false_empties{0};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (queue.empty()) false_empties.fetch_add(1);
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&] {
      for (int i = 0; i < kPairsPerThread; ++i) {
        // Dequeue first so every pair retires the current dummy and
        // immediately recycles it as a fresh tail node.
        if (const auto value = queue.dequeue()) {
          while (!queue.enqueue(*value)) {
          }
        }
      }
    });
  }
  for (auto& churner : churners) churner.join();
  stop.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(false_empties.load(), 0u)
      << "empty() reported empty on a queue that always held an element";
  // Every seeded value was re-enqueued before its churner exited.
  std::uint64_t drained = 0;
  while (queue.dequeue().has_value()) ++drained;
  EXPECT_EQ(drained, static_cast<std::uint64_t>(kSeeded));
}

TEST(MichaelScottQueue, ConcurrentEnqueueDequeueConservesElements) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  MichaelScottQueue queue{kThreads * 64};
  std::atomic<std::uint64_t> enqueued_sum{0};
  std::atomic<std::uint64_t> dequeued_sum{0};
  std::atomic<std::uint64_t> enqueued_count{0};
  std::atomic<std::uint64_t> dequeued_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(t) * kPerThread + i + 1;
        if (queue.enqueue(value)) {
          enqueued_sum.fetch_add(value);
          enqueued_count.fetch_add(1);
        }
        if (const auto popped = queue.dequeue()) {
          dequeued_sum.fetch_add(*popped);
          dequeued_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  while (const auto popped = queue.dequeue()) {
    dequeued_sum.fetch_add(*popped);
    dequeued_count.fetch_add(1);
  }
  EXPECT_EQ(dequeued_count.load(), enqueued_count.load());
  EXPECT_EQ(dequeued_sum.load(), enqueued_sum.load());
}

}  // namespace
