// Abort-rollback conservation for TxPool under injected kills: the proofs
// that a transaction murdered at ANY of the three injection seams — the
// waiter's spin loop, TL2's locks-held commit window, NOrec's odd-seqlock
// window — recycles every speculative allocation, never leaks a block,
// never double-frees, and retries to a commit.  The deterministic half
// self-kills a real committer exactly at each hook point; the stochastic
// half (satellite: the conservation suite) runs randomized multi-thread
// queue<->stack transfers under the full preemption adversary (SIGUSR1
// storms, hook dwells, yield churn, one-CPU oversubscription) and
// re-audits block and value conservation.  Depth scales with
// TXC_STRESS_DEPTH, alongside test_preempt_adversary.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/preempt.hpp"
#include "conflict/descriptor.hpp"
#include "conflict/injection.hpp"
#include "conflict/managers.hpp"
#include "ds/tx_queue.hpp"
#include "ds/tx_stack.hpp"
#include "mem/tx_pool.hpp"
#include "sim/rng.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"

namespace {

using namespace txc;
using adversary::AdversaryConfig;
using adversary::PreemptionAdversary;
using adversary::ScopedCpuset;
using conflict::HookPoint;

int stress_depth() {
  if (const char* env = std::getenv("TXC_STRESS_DEPTH")) {
    const int depth = std::atoi(env);
    if (depth > 0) return depth;
  }
  return 1;
}

constexpr auto kDeadline = std::chrono::seconds(30);

void expect_conserved(mem::TxPool& pool, const char* where) {
  EXPECT_EQ(pool.free_blocks() + pool.limbo_blocks() + pool.live_blocks(),
            pool.capacity())
      << where;
}

// ---------------------------------------------------------------------------
// Deterministic kills at each injection seam
// ---------------------------------------------------------------------------

/// Kills the calling transaction (by aborting its own descriptor, exactly
/// what a remote arbiter's try_kill does) the first time `target` fires —
/// the deterministic stand-in for "an arbiter murdered this transaction at
/// this precise protocol state".
class SelfKillHook final : public conflict::InjectionHook {
 public:
  explicit SelfKillHook(HookPoint target) : target_(target) {}
  void on_hook(HookPoint point) noexcept override {
    if (point != target_) return;
    if (armed_.exchange(false, std::memory_order_acq_rel)) {
      killed_.store(conflict::thread_descriptor().try_kill(),
                    std::memory_order_release);
    }
  }
  [[nodiscard]] bool killed() const noexcept {
    return killed_.load(std::memory_order_acquire);
  }

 private:
  const HookPoint target_;
  std::atomic<bool> armed_{true};
  std::atomic<bool> killed_{false};
};

/// One allocating committer self-killed at `target` (TL2's locks-held
/// window or NOrec's odd window): attempt 0 must recycle its speculative
/// block through the kill-recovery path, attempt 1 must commit it.
template <typename Substrate>
void kill_in_commit_window_recycles(HookPoint target) {
  if (!conflict::injection_hooks_compiled()) {
    GTEST_SKIP() << "built with TXC_ADVERSARY_HOOKS=OFF";
  }
  Substrate stm{conflict::make_cm(conflict::CmKind::kKarma)};
  mem::TxPool pool{4, 1};
  stm.register_region(pool.region_spec());

  SelfKillHook hook{target};
  ASSERT_EQ(conflict::exchange_injection_hook(&hook), nullptr)
      << "another test leaked an installed hook";
  stm::Cell* block = nullptr;
  stm.atomically([&](typename Substrate::TxContext& tx) {
    block = tx.tx_alloc(pool);
    ASSERT_NE(block, nullptr);
    tx.write(block[0], 0xC0FFEE);
  });
  conflict::uninstall_injection_hook();

  ASSERT_TRUE(hook.killed()) << "the kill window was never open at the hook";
  EXPECT_EQ(stm.stats().kill_recoveries.load(), 1u)
      << "the victim must detect the kill at its window CAS";
  EXPECT_EQ(stm.stats().commits.load(), 1u);
  EXPECT_EQ(stm.stats().aborts.load(), 1u);
  EXPECT_EQ(pool.stats().abort_recycles.load(), 1u)
      << "the killed attempt's block must be recycled";
  EXPECT_EQ(pool.live_blocks(), 1u) << "exactly the committed block stays";
  EXPECT_EQ(Substrate::read_committed(block[0]), 0xC0FFEEu);
  EXPECT_EQ(pool.stats().double_free_rejects.load(), 0u);
  expect_conserved(pool, "after a commit-window kill");
}

TEST(TxPoolKillInjection, Tl2CommitLockedKillRecycles) {
  kill_in_commit_window_recycles<stm::Stm>(HookPoint::kTl2CommitLocked);
}

TEST(TxPoolKillInjection, NorecOddWindowKillRecycles) {
  kill_in_commit_window_recycles<stm::Norec>(HookPoint::kNorecOddWindow);
}

/// Parks the first TL2 committer reaching its locks-held window until
/// released, AND self-kills the first waiter that reaches a kSpinWait
/// round — staging the third seam: a reader with a speculative allocation
/// in hand is murdered while spinning on the parked committer's stripe.
class ParkAndSpinKillHook final : public conflict::InjectionHook {
 public:
  void on_hook(HookPoint point) noexcept override {
    if (point == HookPoint::kTl2CommitLocked) {
      if (park_armed_.exchange(false, std::memory_order_acq_rel)) {
        parked_.store(true, std::memory_order_release);
        while (!released_.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
      return;
    }
    if (point == HookPoint::kSpinWait &&
        kill_armed_.exchange(false, std::memory_order_acq_rel)) {
      spin_killed_.store(conflict::thread_descriptor().try_kill(),
                         std::memory_order_release);
    }
  }
  [[nodiscard]] bool parked() const noexcept {
    return parked_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool spin_killed() const noexcept {
    return spin_killed_.load(std::memory_order_acquire);
  }
  void release() noexcept { released_.store(true, std::memory_order_release); }
  /// Armed only after the committer parks, so the committer's own waiter
  /// rounds (it has none, but stay exact) can never spend the kill.
  void arm_spin_kill() noexcept {
    kill_armed_.store(true, std::memory_order_release);
  }

 private:
  std::atomic<bool> park_armed_{true};
  std::atomic<bool> kill_armed_{false};
  std::atomic<bool> parked_{false};
  std::atomic<bool> spin_killed_{false};
  std::atomic<bool> released_{false};
};

TEST(TxPoolKillInjection, SpinWaitKillRecyclesWaitersAlloc) {
  if (!conflict::injection_hooks_compiled()) {
    GTEST_SKIP() << "built with TXC_ADVERSARY_HOOKS=OFF";
  }
  stm::Stm stm{core::make_policy(core::StrategyKind::kFixedTuned, 512.0)};
  mem::TxPool pool{4, 1};
  stm.register_region(pool.region_spec());
  stm::Cell cell;

  ParkAndSpinKillHook hook;
  ASSERT_EQ(conflict::exchange_injection_hook(&hook), nullptr);

  // The committer parks inside its locks-held window, pinning cell's stripe.
  std::thread committer{[&] {
    stm.atomically([&](stm::Tx& tx) { tx.write(cell, tx.read(cell) + 1); });
  }};
  const auto deadline = std::chrono::steady_clock::now() + kDeadline;
  while (!hook.parked() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(hook.parked()) << "committer never reached the locked window";

  // The waiter allocates, then spins on the locked stripe; the hook kills
  // it at its first arbitration round.  Its retries keep aborting (grace
  // expiry against the parked holder) until the committer is released —
  // every aborted attempt must recycle its speculative block.
  hook.arm_spin_kill();
  std::thread waiter{[&] {
    stm.atomically([&](stm::Tx& tx) {
      stm::Cell* node = tx.tx_alloc(pool);
      ASSERT_NE(node, nullptr);
      tx.write(node[0], tx.read(cell));
      tx.tx_free(pool, node);  // keep the pool balanced on commit
    });
  }};
  while (pool.stats().abort_recycles.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  hook.release();
  committer.join();
  waiter.join();
  conflict::uninstall_injection_hook();

  ASSERT_TRUE(hook.spin_killed()) << "the waiter was never killed mid-spin";
  EXPECT_GE(pool.stats().abort_recycles.load(), 1u)
      << "the spin-killed attempt's block must be recycled";
  EXPECT_EQ(pool.live_blocks(), 0u) << "alloc+free committed: nothing live";
  EXPECT_EQ(pool.stats().double_free_rejects.load(), 0u);
  EXPECT_EQ(stm::Stm::read_committed(cell), 1u);
  expect_conserved(pool, "after a spin-wait kill");
}

// ---------------------------------------------------------------------------
// Randomized transfer conservation under the full adversary (satellite)
// ---------------------------------------------------------------------------

/// Randomized queue<->stack transfer workload with the preemption adversary
/// injecting signal storms and hook dwells into an oversubscribed one-CPU
/// run: the strongest leak/double-free/use-after-reclaim probe this suite
/// has (ASan/UBSan nightlies run it at depth 40).
template <typename Substrate>
void run_adversarial_transfers() {
  constexpr std::size_t kValues = 24;
  constexpr std::size_t kCapacity = 128;
  const std::size_t threads = 8;
  const int ops = 100 * stress_depth();

  Substrate stm{conflict::make_cm(conflict::CmKind::kKarma)};
  ds::TxMichaelScottQueue<Substrate> queue{stm, kCapacity};
  ds::TxTreiberStack<Substrate> stack{stm, kCapacity};
  std::uint64_t sum_before = 0;
  for (std::uint64_t value = 1; value <= kValues; ++value) {
    ASSERT_TRUE(queue.enqueue(value));
    sum_before += value;
  }

  AdversaryConfig config;
  config.seed = 0xA110CULL;
  config.stall_us = 100;  // keep the suite snappy
  config.signal_stall_us = 100;
  config.yield_storm_threads = 1;
  PreemptionAdversary preempt{config};
  ScopedCpuset cpuset{1};  // workers inherit: everything lands on one CPU
  preempt.start();
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (std::size_t worker = 0; worker < threads; ++worker) {
    workers.emplace_back([&, worker] {
      PreemptionAdversary::ScopedVictim victim{preempt};
      sim::Rng rng{0xFA11ULL * (worker + 1)};
      for (int op = 0; op < ops; ++op) {
        if (rng.uniform_below(2) == 0) {
          const auto value = queue.dequeue();
          if (!value.has_value()) continue;
          // In-hand value: it must be re-inserted before this worker may
          // proceed, or the conservation audit below fails.
          int spins = 0;
          while (!stack.push(*value)) {
            if (++spins > 100000) {
              failed.store(true);
              return;
            }
            std::this_thread::yield();
          }
        } else {
          const auto value = stack.pop();
          if (!value.has_value()) continue;
          int spins = 0;
          while (!queue.enqueue(*value)) {
            if (++spins > 100000) {
              failed.store(true);
              return;
            }
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  preempt.stop();
  ASSERT_FALSE(failed.load()) << "a re-insert never found pool capacity";

  std::uint64_t sum_after = 0;
  std::size_t count = 0;
  while (const auto value = queue.dequeue()) {
    sum_after += *value;
    ++count;
  }
  while (const auto value = stack.pop()) {
    sum_after += *value;
    ++count;
  }
  EXPECT_EQ(count, kValues) << "kills must not leak or duplicate values";
  EXPECT_EQ(sum_after, sum_before) << "transfers must conserve the sum";
  (void)queue.pool().quiesce_reclaim();
  (void)stack.pool().quiesce_reclaim();
  EXPECT_EQ(queue.pool().live_blocks(), 1u) << "only the dummy stays live";
  EXPECT_EQ(stack.pool().live_blocks(), 0u);
  expect_conserved(queue.pool(), "queue pool after adversarial transfers");
  expect_conserved(stack.pool(), "stack pool after adversarial transfers");
  EXPECT_EQ(queue.pool().stats().double_free_rejects.load(), 0u);
  EXPECT_EQ(stack.pool().stats().double_free_rejects.load(), 0u);
  // On a single substrate recoveries never exceed kills.
  EXPECT_LE(stm.stats().kill_recoveries.load(),
            stm.stats().remote_kills.load());
  if (conflict::injection_hooks_compiled()) {
    std::uint64_t hook_calls = 0;
    for (const auto& counter : preempt.stats().hook_calls) {
      hook_calls += counter.load(std::memory_order_relaxed);
    }
    EXPECT_GT(hook_calls, 0u)
        << "a contended oversubscribed run must cross the hook seams";
  }
}

TEST(AdversarialTransfers, Tl2ConservesBlocksAndValues) {
  run_adversarial_transfers<stm::Stm>();
}

TEST(AdversarialTransfers, NorecConservesBlocksAndValues) {
  run_adversarial_transfers<stm::Norec>();
}

}  // namespace
