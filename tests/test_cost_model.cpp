// Tests of the Section 4 cost model and — most importantly — empirical
// verification of every competitive ratio the paper claims, by sweeping the
// adversary's remaining time D and comparing E[cost | D] / OPT(D) against the
// closed forms.  The mean-constrained densities are additionally checked for
// the Lagrangian structure: the pointwise ratio must be *linear* in D,
// ratio(D) = lambda_1 + lambda_2 D, with lambda_1 = 1 and the corner
// lambda_2 from the LP.
#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/math.hpp"

namespace {

using namespace txc::core;

constexpr double kE = txc::core::kE;

// ---------------------------------------------------------------------------
// Conflict cost algebra
// ---------------------------------------------------------------------------

TEST(ConflictCost, RequestorWinsBranches) {
  // D < x: commit, cost (k-1) D.
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorWins, 10.0, 4.0, 2, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorWins, 10.0, 4.0, 5, 100.0), 16.0);
  // D >= x: abort, cost k x + B.
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorWins, 10.0, 25.0, 2, 100.0),
      120.0);
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorWins, 10.0, 25.0, 5, 100.0),
      150.0);
}

TEST(ConflictCost, RequestorAbortsBranches) {
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorAborts, 10.0, 4.0, 2, 100.0), 4.0);
  // D >= x: abort the k-1 requestors, cost (k-1)(x + B).
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorAborts, 10.0, 25.0, 2, 100.0),
      110.0);
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorAborts, 10.0, 25.0, 4, 100.0),
      330.0);
}

TEST(ConflictCost, EqualityAborts) {
  // Section 4.2: at D == x the commit is missed.
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorWins, 10.0, 10.0, 2, 100.0),
      120.0);
}

TEST(ConflictCost, ZeroGraceIsImmediateAbort) {
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorWins, 0.0, 5.0, 2, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(
      conflict_cost(ResolutionMode::kRequestorAborts, 0.0, 5.0, 3, 100.0),
      200.0);
}

TEST(OfflineOptimal, BothModes) {
  // RW: min((k-1) D, B).
  EXPECT_DOUBLE_EQ(
      offline_optimal_cost(ResolutionMode::kRequestorWins, 30.0, 2, 100.0),
      30.0);
  EXPECT_DOUBLE_EQ(
      offline_optimal_cost(ResolutionMode::kRequestorWins, 300.0, 2, 100.0),
      100.0);
  EXPECT_DOUBLE_EQ(
      offline_optimal_cost(ResolutionMode::kRequestorWins, 30.0, 5, 100.0),
      100.0);
  // RA: (k-1) min(D, B).
  EXPECT_DOUBLE_EQ(
      offline_optimal_cost(ResolutionMode::kRequestorAborts, 30.0, 2, 100.0),
      30.0);
  EXPECT_DOUBLE_EQ(
      offline_optimal_cost(ResolutionMode::kRequestorAborts, 300.0, 4, 100.0),
      300.0);
}

// ---------------------------------------------------------------------------
// Expected cost closed forms
// ---------------------------------------------------------------------------

TEST(ExpectedCost, UniformWinsIsExactlyTwiceD) {
  // For the uniform strategy at k = 2, E[cost | D] = 2D for every D <= B —
  // the pointwise ratio is the constant 2 (proof of Theorem 5).
  const double B = 100.0;
  const auto view = make_view(UniformWinsDensity{B, 2});
  for (const double remaining : {5.0, 25.0, 60.0, 99.0}) {
    EXPECT_NEAR(expected_conflict_cost(ResolutionMode::kRequestorWins, view,
                                       remaining, 2, B),
                2.0 * remaining, 1e-6);
  }
  // Beyond the support: always abort, E = 2B; OPT = B.
  EXPECT_NEAR(expected_conflict_cost(ResolutionMode::kRequestorWins, view,
                                     10.0 * B, 2, B),
              2.0 * B, 1e-6);
}

TEST(ExpectedCost, ExpAbortsAtKTwoHasConstantRatio) {
  const double B = 50.0;
  const auto view = make_view(ExpAbortsDensity{B, 2});
  const double expected_ratio = kE / (kE - 1.0);
  for (const double remaining : {1.0, 10.0, 30.0, 49.0, 500.0}) {
    EXPECT_NEAR(pointwise_ratio(ResolutionMode::kRequestorAborts, view,
                                remaining, 2, B),
                expected_ratio, 1e-4)
        << "D = " << remaining;
  }
}

// ---------------------------------------------------------------------------
// Worst-case ratios match the theorems
// ---------------------------------------------------------------------------

class RatioSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ChainLengths, RatioSweep,
                         ::testing::Values(2, 3, 4, 8, 16),
                         [](const auto& param_info) {
                           return "k" + std::to_string(param_info.param);
                         });

TEST_P(RatioSweep, UniformWinsIsTwoCompetitive) {
  const int k = GetParam();
  const double B = 300.0;
  const auto view = make_view(UniformWinsDensity{B, k});
  EXPECT_NEAR(
      worst_case_ratio(ResolutionMode::kRequestorWins, view, k, B), 2.0, 5e-3);
}

TEST_P(RatioSweep, PowerWinsMatchesTheorem6) {
  const int k = GetParam();
  const double B = 300.0;
  const auto view = make_view(PowerWinsDensity{B, k});
  EXPECT_NEAR(worst_case_ratio(ResolutionMode::kRequestorWins, view, k, B),
              ratio_rand_wins_power(k), 5e-3);
}

TEST_P(RatioSweep, PowerBeatsUniformForLongChains) {
  const int k = GetParam();
  if (k == 2) GTEST_SKIP() << "identical densities at k = 2";
  EXPECT_LT(ratio_rand_wins_power(k), 2.0);
}

TEST_P(RatioSweep, ExpAbortsMatchesTheorems1And3) {
  const int k = GetParam();
  const double B = 300.0;
  const auto view = make_view(ExpAbortsDensity{B, k});
  EXPECT_NEAR(worst_case_ratio(ResolutionMode::kRequestorAborts, view, k, B),
              ratio_rand_aborts(k), 5e-3);
}

// ---------------------------------------------------------------------------
// Lagrangian structure of the mean-constrained densities: the pointwise
// ratio is linear in D with intercept 1.
// ---------------------------------------------------------------------------

TEST(LagrangianStructure, LogMeanWins) {
  const double B = 200.0;
  const auto view = make_view(LogMeanWinsDensity{B});
  const double lambda2 = 1.0 / (2.0 * B * kLn4Minus1);
  for (const double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double remaining = frac * B;
    EXPECT_NEAR(pointwise_ratio(ResolutionMode::kRequestorWins, view,
                                remaining, 2, B),
                1.0 + lambda2 * remaining, 1e-4)
        << "D = " << remaining;
  }
}

TEST(LagrangianStructure, PowerMeanWins) {
  const double B = 200.0;
  for (const int k : {3, 4, 8}) {
    const auto view = make_view(PowerMeanWinsDensity{B, k});
    const double r = growth_ratio(k);
    const double lambda2 = (k - 2.0) / (2.0 * B * (r - 2.0));
    const double support = B / (k - 1.0);
    for (const double frac : {0.2, 0.5, 0.8, 1.0}) {
      const double remaining = frac * support;
      EXPECT_NEAR(pointwise_ratio(ResolutionMode::kRequestorWins, view,
                                  remaining, k, B),
                  1.0 + lambda2 * remaining, 1e-4)
          << "k = " << k << ", D = " << remaining;
    }
  }
}

TEST(LagrangianStructure, ExpMeanAborts) {
  const double B = 200.0;
  for (const int k : {2, 3, 4, 8}) {
    const auto view = make_view(ExpMeanAbortsDensity{B, k});
    const double q = exp_inv(k);
    const double lambda2 =
        (k - 1.0) / (2.0 * B * ((k - 1.0) * (q - 1.0) - 1.0));
    const double support = B / (k - 1.0);
    for (const double frac : {0.2, 0.5, 0.8, 1.0}) {
      const double remaining = frac * support;
      EXPECT_NEAR(pointwise_ratio(ResolutionMode::kRequestorAborts, view,
                                  remaining, k, B),
                  1.0 + lambda2 * remaining, 1e-4)
          << "k = " << k << ", D = " << remaining;
    }
  }
}

TEST(LagrangianStructure, MeanRatioAtTheCorner) {
  // C2 = 1 + lambda_2 mu: feeding D = mu into the linear pointwise ratio
  // reproduces the closed-form constrained competitive ratio.
  const double B = 500.0;
  const double mu = 60.0;
  const auto view = make_view(LogMeanWinsDensity{B});
  EXPECT_NEAR(
      pointwise_ratio(ResolutionMode::kRequestorWins, view, mu, 2, B),
      ratio_rand_wins_mean(2, B, mu), 1e-4);
}

// ---------------------------------------------------------------------------
// Deterministic strategies (evaluated as point masses through the raw cost
// functions)
// ---------------------------------------------------------------------------

TEST(Deterministic, WinsWorstCaseMatchesTheorem4) {
  const double B = 120.0;
  for (const int k : {2, 3, 4, 8}) {
    const double grace = B / (k - 1.0);
    // Adversary plays D = x exactly (Theorem 4's proof).
    const double cost =
        conflict_cost(ResolutionMode::kRequestorWins, grace, grace, k, B);
    const double optimal =
        offline_optimal_cost(ResolutionMode::kRequestorWins, grace, k, B);
    EXPECT_NEAR(cost / optimal, ratio_det_wins(k), 1e-12) << "k = " << k;
  }
}

TEST(Deterministic, AbortsWorstCaseIsTwo) {
  const double B = 120.0;
  const double grace = B;  // classic ski rental: buy at B
  const double cost =
      conflict_cost(ResolutionMode::kRequestorAborts, grace, grace, 2, B);
  const double optimal =
      offline_optimal_cost(ResolutionMode::kRequestorAborts, grace, 2, B);
  EXPECT_NEAR(cost / optimal, 2.0, 1e-12);
}

}  // namespace
