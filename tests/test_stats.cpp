// Unit tests for streaming statistics, histograms, and the KS helper.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace {

using txc::sim::Histogram;
using txc::sim::Rng;
using txc::sim::RunningStats;
using txc::sim::Samples;

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_TRUE(std::isnan(stats.min()));
}

TEST(RunningStats, KnownSequence) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of the classic 2,4,4,4,5,5,7,9 set is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{1};
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram hist{0.0, 10.0, 10};
  hist.add(-1.0);   // underflow
  hist.add(0.0);    // bin 0
  hist.add(9.999);  // bin 9
  hist.add(10.0);   // overflow
  hist.add(5.5);    // bin 5
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.bin(0), 1u);
  EXPECT_EQ(hist.bin(9), 1u);
  EXPECT_EQ(hist.bin(5), 1u);
  EXPECT_EQ(hist.total(), 5u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram hist{0.0, 1.0, 100};
  Rng rng{2};
  for (int i = 0; i < 100000; ++i) hist.add(rng.uniform01());
  EXPECT_NEAR(hist.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(hist.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, RenderIsNonEmpty) {
  Histogram hist{0.0, 1.0, 4};
  hist.add(0.1);
  EXPECT_FALSE(hist.render().empty());
}

TEST(Samples, QuantileInterpolation) {
  Samples s;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(Samples, KsStatisticDetectsMatchAndMismatch) {
  Rng rng{3};
  Samples uniform;
  for (int i = 0; i < 20000; ++i) uniform.add(rng.uniform01());
  const double ks_match = uniform.ks_statistic([](double x) { return x; });
  EXPECT_LT(ks_match, 0.02);
  // The same samples against a mismatched CDF (x^2) must show a large gap.
  const double ks_mismatch =
      uniform.ks_statistic([](double x) { return x * x; });
  EXPECT_GT(ks_mismatch, 0.2);
}

}  // namespace
