// Compilation and smoke test of the umbrella header: every public module
// must be includable together, and the README's minimal usage snippet must
// work verbatim against it.
#include "txconflict.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace {

TEST(Umbrella, ReadmeSnippetCompilesAndRuns) {
  auto policy = txc::core::make_policy(txc::core::StrategyKind::kRandWins);

  txc::core::ConflictContext ctx;
  ctx.abort_cost = 200.0;
  ctx.chain_length = 2;
  ctx.mean_hint = 60.0;

  txc::sim::Rng rng{42};
  const double grace = policy->grace_period(ctx, rng);
  EXPECT_GE(grace, 0.0);
  EXPECT_LE(grace, 200.0);
}

TEST(Umbrella, HeaderDocExampleRuns) {
  auto policy = txc::core::make_policy(txc::core::StrategyKind::kRandWins);
  txc::htm::HtmConfig config;
  config.policy = policy;
  txc::htm::HtmSystem sim{config,
                          std::make_shared<txc::ds::TxAppWorkload>()};
  const auto stats = sim.run(1000);
  EXPECT_EQ(stats.commits, 1000u);
}

TEST(Umbrella, CrossModuleTypesInteroperate) {
  // One object from each layer, composed.
  txc::workload::ZipfSampler zipf{8, 1.0};
  txc::sim::Rng rng{7};
  txc::core::EwmaEstimator ewma{0.1};
  for (int i = 0; i < 100; ++i) {
    ewma.add(static_cast<double>(zipf.sample(rng)));
  }
  EXPECT_GE(ewma.mean(), 0.0);
  EXPECT_LT(ewma.mean(), 8.0);

  txc::stm::Stm stm{txc::core::make_policy(
      txc::core::StrategyKind::kRandAborts)};
  txc::stm::TxStack stack{stm, 16};
  EXPECT_TRUE(stack.push(1));
  EXPECT_EQ(stack.pop(), 1u);
}

}  // namespace
