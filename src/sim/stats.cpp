#include "sim/stats.hpp"

#include <sstream>

namespace txc::sim {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (x - lo_) / width_;
  if (offset >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(offset)];
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double inside = (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_low(i) + inside * width_;
    }
    cumulative = next;
  }
  return bin_low(counts_.size() - 1) + width_;
}

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out << "[" << bin_low(i) << ", " << bin_low(i) + width_ << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::quantile(double q) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const std::size_t upper = std::min(lower + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] * (1.0 - fraction) + sorted[upper] * fraction;
}

}  // namespace txc::sim
