// txconflict — streaming statistics used by tests and benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace txc::sim {

/// Plain-value snapshot of a statistics accumulator: the five numbers a
/// report or aggregator embeds per series (see RunningStats::summary()).
/// Kept as a dumb struct so tools can serialize it without pulling in the
/// accumulator state.
struct StatsSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  /// Snapshot for reports; an empty accumulator yields all-zero fields (not
  /// the NaN min/max of the accessors) so serializers need no special case.
  [[nodiscard]] StatsSummary summary() const noexcept {
    if (count_ == 0) return StatsSummary{};
    return StatsSummary{count_, mean(), stddev(), min_, max_, sum_};
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples land in
/// saturating under/overflow buckets so no sample is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Approximate quantile (linear interpolation inside the bin).
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Compact ASCII rendering, for bench harness output.
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// One-shot summary of a value series (convenience over RunningStats).
inline StatsSummary summarize(const std::vector<double>& values) noexcept {
  RunningStats stats;
  for (const double v : values) stats.add(v);
  return stats.summary();
}

/// Exact-quantile helper for moderate sample counts (sorts on demand).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

  /// Kolmogorov–Smirnov statistic against a CDF callable; used by sampler
  /// property tests.
  template <typename Cdf>
  [[nodiscard]] double ks_statistic(Cdf&& cdf) const {
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const double theoretical = cdf(sorted[i]);
      const double empirical_hi = static_cast<double>(i + 1) / n;
      const double empirical_lo = static_cast<double>(i) / n;
      worst = std::max(worst, std::abs(empirical_hi - theoretical));
      worst = std::max(worst, std::abs(theoretical - empirical_lo));
    }
    return worst;
  }

 private:
  std::vector<double> values_;
};

}  // namespace txc::sim
