// txconflict — JSON string escaping shared by the report writers.
//
// Both wire formats this repository emits (txc-bench/v1 run reports and
// txc-bench-series/v1 bench tables) escape strings with exactly these
// rules; keeping the single definition here prevents the two writers from
// drifting apart.
#pragma once

#include <cstdio>
#include <string>

namespace txc::sim {

/// Escape a string for embedding in a JSON document: quotes, backslashes,
/// and all control characters (named escapes where JSON has them, \u00XX
/// otherwise).  Non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace txc::sim
