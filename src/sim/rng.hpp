// txconflict — deterministic pseudo-random number generation.
//
// The whole repository runs on a single-threaded discrete-event simulator, so
// reproducibility is a hard requirement: every stochastic component draws from
// an explicitly seeded Rng instance, never from global state.  The generator
// is xoshiro256** (Blackman & Vigna), seeded via SplitMix64, which is the
// conventional pairing: SplitMix64 decorrelates low-entropy seeds before they
// reach the xoshiro state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace txc::sim {

/// SplitMix64 step: used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit PRNG (xoshiro256**).  Satisfies
/// std::uniform_random_bit_generator so it can also drive <random>
/// distributions, though the library-provided draws below are preferred since
/// their sequences are fixed across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  53 mantissa bits of entropy.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as input to log().
  double uniform01_open_left() noexcept { return 1.0 - uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential with the given mean (inverse-CDF).
  double exponential(double mean) noexcept {
    return -mean * std::log(uniform01_open_left());
  }

  /// Standard normal via Box–Muller (cached second variate).
  double normal_standard() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal_standard();
  }

  /// Geometric: number of Bernoulli(p) trials until first success, support
  /// {1, 2, ...}, mean 1/p.
  std::uint64_t geometric(double success_probability) noexcept;

  /// Poisson with the given mean (Knuth for small mean, normal approximation
  /// rejection for large mean).
  std::uint64_t poisson(double mean) noexcept;

  /// Split off an independently-seeded child stream (for per-core RNGs).
  Rng split() noexcept {
    std::uint64_t s = (*this)();
    return Rng{s ^ 0xA3EC647659359ACDULL};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace txc::sim
