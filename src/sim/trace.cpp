#include "sim/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace txc::sim {

const char* to_string(TraceCategory category) noexcept {
  switch (category) {
    case TraceCategory::kCore: return "core";
    case TraceCategory::kCoherence: return "coh";
    case TraceCategory::kTransaction: return "tx";
    case TraceCategory::kConflict: return "conflict";
    case TraceCategory::kPolicy: return "policy";
    case TraceCategory::kOther: return "other";
  }
  return "?";
}

void Trace::record(Tick time, TraceCategory category, std::int32_t actor,
                   std::string message) {
  if (!enabled_) return;
  TraceRecord rec{time, category, actor, std::move(message)};
  if (records_.size() < capacity_) {
    records_.push_back(std::move(rec));
  } else {
    records_[head_] = std::move(rec);
    head_ = (head_ + 1) % capacity_;
  }
}

const TraceRecord& Trace::at(std::size_t i) const {
  if (i >= records_.size()) throw std::out_of_range{"Trace::at"};
  return records_[(head_ + i) % records_.size()];
}

std::string Trace::dump() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TraceRecord& rec = at(i);
    out << rec.time << " [" << to_string(rec.category) << "]";
    if (rec.actor >= 0) out << " core" << rec.actor;
    out << " " << rec.message << "\n";
  }
  return out.str();
}

}  // namespace txc::sim
