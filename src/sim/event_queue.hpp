// txconflict — discrete-event simulation kernel.
//
// A single-threaded, deterministic event loop: events carry a timestamp in
// simulated cycles and a callback.  Ties are broken by insertion order, so two
// runs with the same seed produce byte-identical traces.  Cancellation is
// supported through generation handles rather than heap surgery: a cancelled
// event stays in the heap but its callback is skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace txc::sim {

using Tick = std::uint64_t;

/// Handle for cancelling a scheduled event.
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Tick when, Callback fn);

  /// Schedule `fn` `delay` ticks from now.
  EventHandle schedule_after(Tick delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event.  Returns true if the event had not yet fired.
  bool cancel(EventHandle handle);

  /// Run events until the queue drains or `limit` ticks elapse.
  /// Returns the number of callbacks executed.
  std::uint64_t run(Tick limit = ~Tick{0});

  /// Execute at most one event.  Returns false if the queue was empty or the
  /// next event lies beyond `limit`.
  bool step(Tick limit = ~Tick{0});

  [[nodiscard]] Tick now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_events_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    Tick when;
    std::uint64_t sequence;  // insertion order; tie-breaker for determinism
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  [[nodiscard]] bool is_cancelled(std::uint64_t id) const;

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<std::uint64_t> cancelled_;  // sorted small set of cancelled ids
  Tick now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_events_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace txc::sim
