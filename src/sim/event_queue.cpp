#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace txc::sim {

EventHandle EventQueue::schedule_at(Tick when, Callback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{when, next_sequence_++, id, std::move(fn)});
  ++live_events_;
  return EventHandle{id};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), handle.id);
  if (it != cancelled_.end() && *it == handle.id) return false;  // already cancelled
  if (handle.id >= next_id_) return false;                       // never scheduled
  cancelled_.insert(it, handle.id);
  if (live_events_ > 0) --live_events_;
  return true;
}

bool EventQueue::is_cancelled(std::uint64_t id) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), id);
}

bool EventQueue::step(Tick limit) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (top.when > limit) return false;
    if (is_cancelled(top.id)) {
      cancelled_.erase(std::lower_bound(cancelled_.begin(), cancelled_.end(), top.id));
      heap_.pop();
      continue;
    }
    // Move the callback out before popping: the callback may schedule.
    Entry entry{top.when, top.sequence, top.id,
                std::move(const_cast<Entry&>(top).fn)};
    heap_.pop();
    --live_events_;
    now_ = entry.when;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run(Tick limit) {
  std::uint64_t count = 0;
  while (step(limit)) ++count;
  if (now_ < limit && limit != ~Tick{0}) now_ = limit;
  return count;
}

}  // namespace txc::sim
