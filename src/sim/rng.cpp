#include "sim/rng.hpp"

namespace txc::sim {

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal_standard() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  const double u1 = uniform01_open_left();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

std::uint64_t Rng::geometric(double success_probability) noexcept {
  if (success_probability >= 1.0) return 1;
  if (success_probability <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  // Inverse CDF: ceil(log(U) / log(1-p)) with U in (0,1].
  const double u = uniform01_open_left();
  const double value = std::ceil(std::log(u) / std::log1p(-success_probability));
  return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until falling below e^-mean.
    const double threshold = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform01_open_left();
    while (product > threshold) {
      ++count;
      product *= uniform01_open_left();
    }
    return count;
  }
  // Split recursively: Poisson(a+b) = Poisson(a) + Poisson(b).  Keeps every
  // sub-draw in Knuth's numerically comfortable range without the usual
  // rejection machinery.
  const double half = mean / 2.0;
  return poisson(half) + poisson(mean - half);
}

}  // namespace txc::sim
