// txconflict — lightweight bounded event trace for debugging simulations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace txc::sim {

enum class TraceCategory : std::uint8_t {
  kCore,
  kCoherence,
  kTransaction,
  kConflict,
  kPolicy,
  kOther,
};

[[nodiscard]] const char* to_string(TraceCategory category) noexcept;

struct TraceRecord {
  Tick time = 0;
  TraceCategory category = TraceCategory::kOther;
  std::int32_t actor = -1;  // core / thread id, -1 when global
  std::string message;
};

/// Ring-buffer trace: keeps the most recent `capacity` records.  Disabled by
/// default so hot paths pay one branch.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void enable(bool on = true) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(Tick time, TraceCategory category, std::int32_t actor,
              std::string message);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const TraceRecord& at(std::size_t i) const;

  /// Render the trace oldest-first.
  [[nodiscard]] std::string dump() const;

  void clear() noexcept {
    records_.clear();
    head_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
  std::size_t head_ = 0;  // index of oldest record once the buffer wraps
  bool enabled_ = false;
};

}  // namespace txc::sim
