#include "stm/tl2.hpp"

#include <thread>

namespace txc::stm {

namespace {

constexpr std::uint64_t kLockBit = 1;

thread_local sim::Rng tl_rng{0xC0FFEE ^
                             std::hash<std::thread::id>{}(
                                 std::this_thread::get_id())};

/// One descriptor per thread, reused across transactions.  Enemies may hold
/// a pointer briefly after release; kills CAS kActive -> kAborted, so a
/// stale kill can at worst abort the thread's *next* attempt once — a
/// benign spurious abort (real systems version their descriptors).
thread_local TxDescriptor tl_descriptor;

bool locked(std::uint64_t versioned_lock) noexcept {
  return (versioned_lock & kLockBit) != 0;
}
std::uint64_t version_of(std::uint64_t versioned_lock) noexcept {
  return versioned_lock >> 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------------

std::uint64_t Tx::read(const Cell& cell) {
  // Remote kill check: a manager may have sacrificed us while we held locks
  // in an earlier commit attempt or while we were waiting.
  if (descriptor_->load_status() == TxStatus::kAborted) throw TxAbort{};

  // Write-own-read: serve from the write buffer.
  const auto buffered = write_set_.find(const_cast<Cell*>(&cell));
  if (buffered != write_set_.end()) return buffered->second;

  Stm::Stripe& stripe = stm_.stripe_for(&cell);
  // TL2 read protocol: sample the lock, read, re-sample; the stripe must be
  // unlocked and no newer than our read version on both sides.
  const std::uint64_t before =
      stripe.versioned_lock.load(std::memory_order_acquire);
  const std::uint64_t value = cell.value.load(std::memory_order_acquire);
  const std::uint64_t after =
      stripe.versioned_lock.load(std::memory_order_acquire);
  if (locked(before) || before != after ||
      version_of(before) > read_version_) {
    // Conflict with a concurrent writer: hand it to the contention manager,
    // then retry the read if the lock cleared in time.
    if (locked(before) && stm_.resolve_conflict(stripe, *this)) {
      return read(cell);
    }
    throw TxAbort{};
  }
  read_set_.push_back(&cell);
  // Karma-style managers rank transactions by work performed.
  descriptor_->priority.fetch_add(1, std::memory_order_relaxed);
  return value;
}

void Tx::write(Cell& cell, std::uint64_t value) { write_set_[&cell] = value; }

// ---------------------------------------------------------------------------
// Stm
// ---------------------------------------------------------------------------

Stm::Stm(std::shared_ptr<const core::GracePeriodPolicy> policy,
         std::size_t stripes)
    : cm_(std::make_shared<GracePolicyCm>(std::move(policy))),
      stripes_(stripes) {}

Stm::Stm(std::shared_ptr<const ContentionManager> cm, std::size_t stripes)
    : cm_(std::move(cm)), stripes_(stripes) {}

Stm::Stripe& Stm::stripe_for(const void* address) noexcept {
  // Mix the address bits; cells are at least 8 bytes apart.
  auto mixed = reinterpret_cast<std::uintptr_t>(address) >> 3;
  mixed ^= mixed >> 16;
  mixed *= 0x9E3779B97F4A7C15ULL;
  mixed ^= mixed >> 32;
  return stripes_[mixed % stripes_.size()];
}

bool Stm::resolve_conflict(Stripe& stripe, Tx& tx) {
  stats_.lock_waits.fetch_add(1, std::memory_order_relaxed);
  double scratch = -1.0;  // per-conflict budget for randomized managers
  std::uint64_t waits = 0;
  while (true) {
    if (!locked(stripe.versioned_lock.load(std::memory_order_acquire))) {
      return true;
    }
    if (tx.descriptor_->load_status() == TxStatus::kAborted) {
      return false;  // we were remotely killed while waiting
    }
    CmView view;
    view.self = tx.descriptor_;
    view.enemy = stripe.holder.load(std::memory_order_acquire);
    view.attempt = tx.attempt_;
    view.waits_so_far = waits;
    view.scratch = &scratch;
    switch (cm_->on_conflict(view, tl_rng)) {
      case CmDecision::kAbortSelf:
        return false;
      case CmDecision::kAbortEnemy: {
        TxDescriptor* enemy = stripe.holder.load(std::memory_order_acquire);
        if (enemy != nullptr && enemy->try_kill()) {
          stats_.remote_kills.fetch_add(1, std::memory_order_relaxed);
        }
        // Fall through to waiting: the victim notices at its next status
        // check and releases its locks.
        break;
      }
      case CmDecision::kWait:
        break;
    }
    const std::uint64_t quantum = cm_->wait_quantum(view);
    for (std::uint64_t spin = 0; spin < quantum; ++spin) {
      if (!locked(stripe.versioned_lock.load(std::memory_order_acquire))) {
        return true;
      }
    }
    ++waits;
  }
}

bool Stm::try_commit(Tx& tx) {
  if (tx.write_set_.empty()) {
    // Read-only: already validated; close the kill window.
    auto active = static_cast<std::uint32_t>(TxStatus::kActive);
    return tx.descriptor_->status.compare_exchange_strong(
        active, static_cast<std::uint32_t>(TxStatus::kCommitted),
        std::memory_order_acq_rel);
  }

  // Phase 1: lock the write set (any order; failure -> contention manager ->
  // self-abort, which also guarantees deadlock freedom).
  std::vector<Stripe*> acquired;
  acquired.reserve(tx.write_set_.size());
  const auto release_all = [&] {
    // Restore each stripe to unlocked with its pre-acquisition version.
    for (Stripe* stripe : acquired) {
      stripe->holder.store(nullptr, std::memory_order_release);
      const std::uint64_t current =
          stripe->versioned_lock.load(std::memory_order_relaxed);
      stripe->versioned_lock.store(version_of(current) << 1,
                                   std::memory_order_release);
    }
  };
  for (auto& [cell, value] : tx.write_set_) {
    Stripe& stripe = stripe_for(cell);
    bool already_ours = false;
    for (Stripe* held : acquired) already_ours |= (held == &stripe);
    if (already_ours) continue;
    while (true) {
      if (tx.descriptor_->load_status() == TxStatus::kAborted) {
        release_all();
        return false;  // remotely killed mid-acquisition
      }
      std::uint64_t expected =
          stripe.versioned_lock.load(std::memory_order_relaxed);
      if (!locked(expected) && version_of(expected) <= tx.read_version_) {
        if (stripe.versioned_lock.compare_exchange_weak(
                expected, expected | kLockBit, std::memory_order_acquire)) {
          stripe.holder.store(tx.descriptor_, std::memory_order_release);
          acquired.push_back(&stripe);
          break;
        }
        continue;
      }
      if (locked(expected)) {
        if (resolve_conflict(stripe, tx)) continue;
      }
      release_all();
      return false;  // stale stripe, grace expired, or manager said so
    }
  }

  // Close the kill window: only kActive transactions can be murdered, and
  // the write-back below must never race with a kill.
  auto active = static_cast<std::uint32_t>(TxStatus::kActive);
  if (!tx.descriptor_->status.compare_exchange_strong(
          active, static_cast<std::uint32_t>(TxStatus::kCommitting),
          std::memory_order_acq_rel)) {
    release_all();
    return false;  // killed just before the point of no return
  }

  // Phase 2: linearization point.
  const std::uint64_t write_version =
      clock_.fetch_add(1, std::memory_order_acq_rel) + 1;

  // Phase 3: validate the read set (skip when no one else committed since we
  // started — the TL2 fast path).
  if (write_version != tx.read_version_ + 1) {
    for (const Cell* cell : tx.read_set_) {
      const Stripe& stripe = stripe_for(cell);
      const std::uint64_t state =
          stripe.versioned_lock.load(std::memory_order_acquire);
      bool ours = false;
      for (Stripe* held : acquired) ours |= (held == &stripe);
      if ((locked(state) && !ours) || version_of(state) > tx.read_version_) {
        tx.descriptor_->status.store(
            static_cast<std::uint32_t>(TxStatus::kAborted),
            std::memory_order_release);
        release_all();
        return false;
      }
    }
  }

  // Phase 4: write back and release with the new version.
  for (auto& [cell, value] : tx.write_set_) {
    cell->value.store(value, std::memory_order_release);
  }
  for (Stripe* stripe : acquired) {
    stripe->holder.store(nullptr, std::memory_order_release);
    stripe->versioned_lock.store(write_version << 1,
                                 std::memory_order_release);
  }
  tx.descriptor_->status.store(
      static_cast<std::uint32_t>(TxStatus::kCommitted),
      std::memory_order_release);
  return true;
}

void Stm::atomically(const std::function<void(Tx&)>& body) {
  TxDescriptor& descriptor = tl_descriptor;
  // Seniority is assigned once per *transaction* and survives its retries:
  // Timestamp/Greedy rely on long-suffering transactions aging into
  // priority.  Karma work-credit likewise accumulates across attempts.
  descriptor.start_time.store(
      start_ticket_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  descriptor.priority.store(0, std::memory_order_relaxed);
  for (std::uint32_t attempt = 0;; ++attempt) {
    descriptor.status.store(static_cast<std::uint32_t>(TxStatus::kActive),
                            std::memory_order_release);
    Tx tx{*this, attempt, clock_.load(std::memory_order_acquire)};
    tx.descriptor_ = &descriptor;
    try {
      body(tx);
    } catch (const TxAbort&) {
      stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (try_commit(tx)) {
      stats_.commits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace txc::stm
