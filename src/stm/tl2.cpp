#include "stm/tl2.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>
#include <new>
#include <stdexcept>
#include <thread>

#include "conflict/grace.hpp"
#include "conflict/injection.hpp"
#include "conflict/spin_site.hpp"
#include "core/numa.hpp"
#include "mem/tx_pool.hpp"

namespace txc::stm {

namespace {

constexpr std::uint64_t kLockBit = 1;

thread_local sim::Rng tl_rng{0xC0FFEE ^
                             std::hash<std::thread::id>{}(
                                 std::this_thread::get_id())};

bool locked(std::uint64_t versioned_lock) noexcept {
  return (versioned_lock & kLockBit) != 0;
}
std::uint64_t version_of(std::uint64_t versioned_lock) noexcept {
  return versioned_lock >> 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------------

std::uint64_t Tx::read(const Cell& cell) {
  // Remote kill check: a manager may have sacrificed us while we held locks
  // in an earlier commit attempt or while we were waiting.
  if (descriptor_->load_status() == TxStatus::kAborted) {
    publish_priority();
    throw TxAbort{};
  }

  // Write-own-read: serve from the write buffer (skip the probe entirely for
  // the common read-before-write shape, where the buffer is still empty).
  if (!buffers_->write_set.empty()) {
    if (const std::uint64_t* buffered =
            buffers_->write_set.find(const_cast<Cell*>(&cell))) {
      return *buffered;
    }
  }

  Stm::Stripe& stripe = stm_.stripe_for(&cell);
  // TL2 read protocol: sample the lock, read, re-sample; the stripe must be
  // unlocked and no newer than our read version on both sides.
  const std::uint64_t before =
      stripe.versioned_lock.load(std::memory_order_acquire);
  const std::uint64_t value = cell.value.load(std::memory_order_acquire);
  const std::uint64_t after =
      stripe.versioned_lock.load(std::memory_order_acquire);
  if (locked(before) || before != after ||
      version_of(before) > read_version_) {
    // Placement telemetry first (one count per observed conflict event):
    // was this stripe last locked for a different cell than ours?
    stm_.note_conflict(stripe, &cell);
    // Conflict with a concurrent writer: hand it to the contention manager,
    // then retry the read if the lock cleared in time.
    if (locked(before) && stm_.resolve_conflict(stripe, *this)) {
      return read(cell);
    }
    publish_priority();
    throw TxAbort{};
  }
  // Deduplicated: re-reading a cell must not validate its stripe twice at
  // commit (nor double-count it in read-set statistics).
  buffers_->read_set.insert(&cell);
  // Karma-style managers rank transactions by work performed (every read
  // counts, repeated or not); published lazily by publish_priority().
  ++pending_priority_;
  ++reads_;
  return value;
}

void Tx::write(Cell& cell, std::uint64_t value) {
  buffers_->write_set.upsert(&cell) = value;
}

Cell* Tx::tx_alloc(mem::TxPool& pool) {
  // Same remote-kill check as read(): a killed transaction must stop
  // accruing pool blocks and unwind (the log below makes unwinding exact).
  if (descriptor_->load_status() == TxStatus::kAborted) {
    publish_priority();
    throw TxAbort{};
  }
  Cell* block = pool.speculative_alloc();
  if (block == nullptr) return nullptr;  // exhaustion: clean, no TxAbort
  buffers_->alloc_log.push_back(PoolLogEntry{&pool, block});
  return block;
}

void Tx::tx_free(mem::TxPool& pool, Cell* block) {
  assert(pool.owns(block));
  buffers_->free_log.push_back(PoolLogEntry{&pool, block});
}

// ---------------------------------------------------------------------------
// ReadTx
// ---------------------------------------------------------------------------

namespace {

/// How many times a snapshot read re-probes a locked stripe before giving
/// up on the attempt.  A locked stripe is not necessarily fatal: the holder
/// may have linearized *before* our clock sample and merely be writing back
/// a version we are allowed to see, so a short plain spin (deliberately not
/// an arbitrated spin site — the reader publishes nothing a manager could
/// weigh or kill) usually rides out the write-back window.
constexpr int kSnapshotLockProbes = 128;

}  // namespace

std::uint64_t ReadTx::read(const Cell& cell) {
  Stm::Stripe& stripe = stm_.stripe_for(&cell);
  std::uint64_t before = stripe.versioned_lock.load(std::memory_order_acquire);
  for (int probe = 0; locked(before) && probe < kSnapshotLockProbes; ++probe) {
    before = stripe.versioned_lock.load(std::memory_order_acquire);
  }
  if (!locked(before)) {
    const std::uint64_t value = cell.value.load(std::memory_order_acquire);
    const std::uint64_t after =
        stripe.versioned_lock.load(std::memory_order_acquire);
    if (before == after && version_of(before) <= read_version_) {
      ++reads_;
      return value;
    }
  }
  // Snapshot broken (a newer commit touched the stripe, or a writer parked
  // on it): restart the whole body on a fresh clock sample.  No arbitration
  // — the reader holds nothing and blocks no one.
  throw TxAbort{};
}

// ---------------------------------------------------------------------------
// Stm
// ---------------------------------------------------------------------------

namespace {

/// Smallest power of two >= requested (so stripe lookup is a mask, not a
/// 64-bit division — two divisions per transaction on the old path).
std::size_t round_up_pow2(std::size_t requested) noexcept {
  std::size_t size = 1;
  while (size < requested) size <<= 1;
  return size;
}

/// Constructor-argument gate: round_up_pow2(0) == 1 used to coerce a zero
/// stripe count into a one-stripe (100%-collision) table silently.
std::size_t checked_stripe_count(std::size_t requested) {
  if (requested == 0) {
    throw std::invalid_argument(
        "stm::Stm: stripes == 0 (would coerce to a one-stripe table where "
        "every cell conflicts with every other)");
  }
  return round_up_pow2(requested);
}

/// Default placement multiplier: the golden-ratio mixing constant, odd by
/// construction — coprime with every power-of-two table size, so
/// index -> (index * V) & mask is a bijection, and large enough that
/// adjacent elements land on well-separated stripes (no false sharing of
/// neighboring Stripe entries by neighboring cells).
constexpr std::uint64_t kDefaultPlacementStride = 0x9E3779B97F4A7C15ULL;

/// Cap for auto-sized region tables (spec.stripes == 0): a region of a
/// billion elements should not silently allocate a billion stripes.  Big
/// enough that every in-tree consumer stays in the shell-1 regime.
constexpr std::size_t kMaxAutoRegionStripes = std::size_t{1} << 20;

}  // namespace

Stm::StripeTable::StripeTable(std::size_t count)
    : data_(static_cast<Stripe*>(::operator new(count * sizeof(Stripe)))),
      count_(count) {
  // Placement-construct in page-sized chunks, round-robin across NUMA
  // nodes: the constructing write is the first touch, so each chunk's page
  // lands on the node of its toucher thread (inline on one node).
  constexpr std::size_t kChunkStripes = 4096 / sizeof(Stripe);
  const std::size_t chunks = (count + kChunkStripes - 1) / kChunkStripes;
  core::numa::first_touch_interleaved(chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * kChunkStripes;
    const std::size_t end = std::min(count_, begin + kChunkStripes);
    for (std::size_t index = begin; index < end; ++index) {
      new (&data_[index]) Stripe();
    }
  });
}

Stm::StripeTable::~StripeTable() {
  // Stripe is trivially destructible (atomics all the way down).
  ::operator delete(data_);
}

Stm::StripeTable& Stm::StripeTable::operator=(StripeTable&& other) noexcept {
  if (this != &other) {
    ::operator delete(data_);
    data_ = other.data_;
    count_ = other.count_;
    other.data_ = nullptr;
    other.count_ = 0;
  }
  return *this;
}

Stm::Stm(std::shared_ptr<const core::GracePeriodPolicy> policy,
         std::size_t stripes)
    // The historical STM regime: requestor-aborts, regardless of the
    // policy's own flavor (an explicit override, so e.g. a DELAY_TUNED
    // policy behaves here exactly as it always did).  Construct a
    // GraceArbiter without the override to let requestor-wins policies kill
    // the holder after their grace period.
    : Stm(std::make_shared<conflict::GraceArbiter>(
              std::move(policy), core::ResolutionMode::kRequestorAborts),
          stripes) {}

Stm::Stm(std::shared_ptr<const conflict::ConflictArbiter> arbiter,
         std::size_t stripes)
    : arbiter_(std::move(arbiter)),
      needs_seniority_(arbiter_->needs_seniority()),
      requested_stripes_(stripes),
      stripes_(checked_stripe_count(stripes)),
      stripe_mask_(stripes_.size() - 1) {}

void Stm::register_region(const RegionSpec& spec) {
  validate_region_spec(spec);  // shared with NOrec: both reject bad specs
  const auto base = reinterpret_cast<std::uintptr_t>(spec.base);
  const std::uintptr_t span = spec.elements * spec.stride_bytes;
  for (const Region& existing : regions_) {
    if (base < existing.base + existing.span &&
        existing.base < base + span) {
      throw std::invalid_argument(
          "stm::Stm::register_region: region overlaps one already "
          "registered (placement would be ambiguous)");
    }
  }
  Region region;
  region.base = base;
  region.span = span;
  region.stride = spec.stride_bytes;
  region.stride_is_pow2 =
      (spec.stride_bytes & (spec.stride_bytes - 1)) == 0;
  if (region.stride_is_pow2) {
    unsigned shift = 0;
    while ((std::size_t{1} << shift) < spec.stride_bytes) ++shift;
    region.stride_shift = shift;
  }
  region.placement_stride = spec.placement_stride != 0
                                ? spec.placement_stride
                                : kDefaultPlacementStride;
  // Auto sizing targets the collision-free regime: one stripe per element
  // (capped — a too-large region degrades to a bounded shell, reported by
  // stripe_geometry(), rather than an unbounded allocation).
  const std::size_t requested =
      spec.stripes != 0 ? spec.stripes
                        : std::min(spec.elements, kMaxAutoRegionStripes);
  region.table = StripeTable{round_up_pow2(requested)};
  region.mask = region.table.size() - 1;
  region.elements = spec.elements;
  regions_.push_back(std::move(region));
}

Stm::StripeGeometry Stm::stripe_geometry() const {
  StripeGeometry geometry;
  geometry.requested_stripes = requested_stripes_;
  geometry.hashed_stripes = stripes_.size();
  geometry.regions.reserve(regions_.size());
  for (const Region& region : regions_) {
    RegionGeometry entry;
    entry.base = reinterpret_cast<const void*>(region.base);
    entry.elements = region.elements;
    entry.stride_bytes = region.stride;
    entry.stripes = region.table.size();
    entry.placement_stride = region.placement_stride;
    entry.collision_shell =
        (region.elements + region.table.size() - 1) / region.table.size();
    geometry.regions.push_back(entry);
  }
  return geometry;
}

std::string Stm::describe_geometry() const {
  const StripeGeometry geometry = stripe_geometry();
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "hashed table %zu stripes (requested %zu); %zu region(s)",
                geometry.hashed_stripes, geometry.requested_stripes,
                geometry.regions.size());
  std::string description = buffer;
  for (const RegionGeometry& region : geometry.regions) {
    std::snprintf(buffer, sizeof(buffer),
                  "; region %zu elems x %zuB -> %zu stripes, stride "
                  "0x%llx, shell %zu",
                  region.elements, region.stride_bytes, region.stripes,
                  static_cast<unsigned long long>(region.placement_stride),
                  region.collision_shell);
    description += buffer;
  }
  return description;
}

TxBuffers& Stm::thread_buffers() noexcept {
  thread_local TxBuffers buffers;
  return buffers;
}

void Stm::begin_transaction(TxDescriptor& descriptor) noexcept {
  // Purely local arbiters never inspect seniority: skip the shared-ticket
  // RMW entirely (the descriptor still publishes for status/kill handling).
  if (!needs_seniority_) return;
  conflict::stamp_seniority(descriptor, start_ticket_);
}

Stm::Stripe& Stm::stripe_for(const void* address) noexcept {
  const auto addr = reinterpret_cast<std::uintptr_t>(address);
  // Region dispatch: a handful of contiguous structs, scanned linearly (no
  // registered regions = one empty-vector check).  The unsigned subtraction
  // makes the membership test a single compare per region.
  for (const Region& region : regions_) {
    const std::uintptr_t offset = addr - region.base;
    if (offset >= region.span) continue;
    const std::uint64_t index = region.stride_is_pow2
                                    ? offset >> region.stride_shift
                                    : offset / region.stride;
    // Deterministic coprime-stride placement: an odd multiplier is
    // invertible mod the power-of-two table, so index -> stripe is a
    // bijection — distinct elements hit distinct stripes up to capacity.
    return region.table.data()[(index * region.placement_stride) &
                               region.mask];
  }
  return stripes_.data()[mix_pointer(address) & stripe_mask_];
}

void Stm::note_conflict(const Stripe& stripe, const void* address) noexcept {
  const void* culprit = stripe.locked_for.load(std::memory_order_relaxed);
  if (culprit != nullptr && culprit != address) {
    stats_.false_conflicts.fetch_add(1, std::memory_order_relaxed);
    if (profile_ != nullptr) profile_->record_false_conflict();
  }
}

bool Stm::resolve_conflict(Stripe& stripe, Tx& tx) {
  // Arbiters may compare work credit (Karma/Polka); make ours visible.
  tx.publish_priority();
  stats_.lock_waits.fetch_add(1, std::memory_order_relaxed);
  // TL2's spin site: a held versioned write-lock stripe.  The holder
  // publishes its descriptor on the stripe while locked, so the enemy probe
  // reads stripe.holder and the kill protocol CASes that descriptor.
  struct StripeSite {
    Stm& stm;
    Stripe& stripe;
    Tx& tx;
    [[nodiscard]] constexpr bool suppress_feedback_after_kill() const noexcept {
      return true;
    }
    void prime(conflict::ConflictView& view) const noexcept {
      view.self = tx.descriptor_;
      view.can_abort_enemy = true;  // the descriptor kill protocol
      view.context.abort_cost = kAbortCostEstimate;
      view.context.chain_length = 2;
      view.context.attempt = tx.attempt_;
    }
    [[nodiscard]] bool resolved() const noexcept {
      return !locked(stripe.versioned_lock.load(std::memory_order_acquire));
    }
    [[nodiscard]] bool self_killed() const noexcept {
      return tx.descriptor_->load_status() == TxStatus::kAborted;
    }
    [[nodiscard]] const TxDescriptor* enemy() const noexcept {
      return stripe.holder.load(std::memory_order_acquire);
    }
    [[nodiscard]] bool kill() const noexcept {
      TxDescriptor* holder = stripe.holder.load(std::memory_order_acquire);
      if (holder == nullptr || !holder->try_kill()) return false;
      stm.stats_.remote_kills.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  } site{*this, stripe, tx};
  switch (conflict::drive_spin_site(*arbiter_, site, tl_rng)) {
    case conflict::SpinResult::kEnemyFinished:
      return true;  // lock cleared: retry the operation
    case conflict::SpinResult::kSelfAbort:
    case conflict::SpinResult::kSelfKilled:
      break;
  }
  return false;
}

bool Stm::try_commit(Tx& tx) {
  // About to become inspectable (stripes publish our descriptor as holder):
  // flush the attempt's accumulated work credit first.
  tx.publish_priority();
  TxBuffers& buffers = *tx.buffers_;
  if (buffers.write_set.empty()) {
    // Read-only: already validated; close the kill window.
    auto active = static_cast<std::uint32_t>(TxStatus::kActive);
    return tx.descriptor_->status.compare_exchange_strong(
        active, static_cast<std::uint32_t>(TxStatus::kCommitted),
        std::memory_order_acq_rel);
  }

  // Phase 1: lock the write set (any order; failure -> contention manager ->
  // self-abort, which also guarantees deadlock freedom).  The acquired list
  // lives in the thread's reusable commit scratch, not a fresh vector.
  auto& acquired = buffers.commit_scratch;
  const auto release_all = [&] {
    // Restore each stripe to unlocked with its pre-acquisition version.
    for (void* raw : acquired) {
      auto* stripe = static_cast<Stripe*>(raw);
      stripe->holder.store(nullptr, std::memory_order_release);
      const std::uint64_t current =
          stripe->versioned_lock.load(std::memory_order_relaxed);
      stripe->versioned_lock.store(version_of(current) << 1,
                                   std::memory_order_release);
    }
  };
  for (const auto& entry : buffers.write_set) {
    Stripe& stripe = stripe_for(entry.key);
    bool already_ours = false;
    for (void* held : acquired) already_ours |= (held == &stripe);
    if (already_ours) {
      // Two distinct write-set cells share one stripe: a placement
      // collision, counted deterministically (no concurrency required).
      // Regions with a table at least element-count sized never hit this.
      stats_.stripe_collisions.fetch_add(1, std::memory_order_relaxed);
      if (profile_ != nullptr) profile_->record_stripe_collision();
      continue;
    }
    while (true) {
      if (tx.descriptor_->load_status() == TxStatus::kAborted) {
        // Only a holder counts as a commit-state recovery: before the first
        // stripe lands this is an ordinary waiter-phase kill.
        if (!acquired.empty()) {
          stats_.kill_recoveries.fetch_add(1, std::memory_order_relaxed);
        }
        release_all();
        return false;  // remotely killed mid-acquisition
      }
      std::uint64_t expected =
          stripe.versioned_lock.load(std::memory_order_relaxed);
      if (!locked(expected) && version_of(expected) <= tx.read_version_) {
        if (stripe.versioned_lock.compare_exchange_weak(
                expected, expected | kLockBit, std::memory_order_acquire)) {
          stripe.holder.store(tx.descriptor_, std::memory_order_release);
          // Telemetry: who this stripe is locked FOR, so conflicting
          // probes can tell a shared cell from a shared-by-placement one.
          stripe.locked_for.store(entry.key, std::memory_order_relaxed);
          acquired.push_back(&stripe);
          break;
        }
        continue;
      }
      note_conflict(stripe, entry.key);  // held or bumped: classify it
      if (locked(expected)) {
        if (resolve_conflict(stripe, tx)) continue;
      }
      release_all();
      return false;  // stale stripe, grace expired, or manager said so
    }
  }

  // Scheduler-adversary seam: the whole write set is locked and every
  // stripe publishes our descriptor — a preemption adversary deschedules
  // the holder here, the widest moment a stall propagates to every
  // conflicting waiter (and their arbiters get to kill us).
  conflict::maybe_hook(conflict::HookPoint::kTl2CommitLocked);

  // Close the kill window: only kActive transactions can be murdered, and
  // the write-back below must never race with a kill.
  auto active = static_cast<std::uint32_t>(TxStatus::kActive);
  if (!tx.descriptor_->status.compare_exchange_strong(
          active, static_cast<std::uint32_t>(TxStatus::kCommitting),
          std::memory_order_acq_rel)) {
    stats_.kill_recoveries.fetch_add(1, std::memory_order_relaxed);
    release_all();
    return false;  // killed just before the point of no return
  }

  // Phase 2: linearization point.
  const std::uint64_t write_version =
      clock_.fetch_add(1, std::memory_order_acq_rel) + 1;

  // Phase 3: validate the (deduplicated) read set — skip when no one else
  // committed since we started, the TL2 fast path.
  if (write_version != tx.read_version_ + 1) {
    const bool valid = buffers.read_set.all_of([&](const Cell* cell) {
      const Stripe& stripe = stripe_for(cell);
      const std::uint64_t state =
          stripe.versioned_lock.load(std::memory_order_acquire);
      bool ours = false;
      for (void* held : acquired) ours |= (held == &stripe);
      const bool ok = !((locked(state) && !ours) ||
                        version_of(state) > tx.read_version_);
      if (!ok) note_conflict(stripe, cell);  // validation failure: classify
      return ok;
    });
    if (!valid) {
      tx.descriptor_->status.store(
          static_cast<std::uint32_t>(TxStatus::kAborted),
          std::memory_order_release);
      release_all();
      return false;
    }
  }

  // Phase 4: write back and release with the new version.
  for (const auto& entry : buffers.write_set) {
    entry.key->value.store(entry.value, std::memory_order_release);
  }
  for (void* raw : acquired) {
    auto* stripe = static_cast<Stripe*>(raw);
    stripe->holder.store(nullptr, std::memory_order_release);
    stripe->versioned_lock.store(write_version << 1,
                                 std::memory_order_release);
  }
  tx.descriptor_->status.store(
      static_cast<std::uint32_t>(TxStatus::kCommitted),
      std::memory_order_release);
  return true;
}

}  // namespace txc::stm
