// txconflict — commit/abort resolution of speculative pool operations.
//
// Substrate-agnostic by construction: both TL2 and NOrec log tx_alloc /
// tx_free into the thread's TxBuffers and call these two hooks from their
// atomically() loops — commit_pool_log after a successful try_commit
// (write-back done, epoch pin still held), rollback_pool_log on every
// unwind (TxAbort, arbiter kill at any injection point, or a user
// exception escaping the body).
#include "mem/tx_pool.hpp"
#include "stm/tx_buffers.hpp"

namespace txc::stm {

void commit_pool_log(TxBuffers& buffers) noexcept {
  for (const PoolLogEntry& entry : buffers.free_log) {
    entry.pool->publish_free(entry.block);
  }
  buffers.free_log.clear();
  buffers.alloc_log.clear();  // committed allocations simply stay live
}

void rollback_pool_log(TxBuffers& buffers) noexcept {
  for (const PoolLogEntry& entry : buffers.alloc_log) {
    entry.pool->recycle_aborted(entry.block);
  }
  buffers.alloc_log.clear();
  buffers.free_log.clear();  // deferred frees die with the attempt
}

}  // namespace txc::stm
