// txconflict — compatibility surface over the conflict-arbitration layer.
//
// The contention-management machinery that used to live here (descriptors,
// the decision interface, the Scherer–Scott managers, the grace-period
// adapter) was generalized into src/conflict/ so that one arbiter instance
// serves TL2, NOrec, the HTM fallback path, and the simulator alike.  This
// header keeps the historical txc::stm spellings alive for existing callers;
// new code should include conflict/ directly and use the txc::conflict
// names.  Note there is no TL2-only escape hatch left: needs_seniority() is
// part of the substrate-agnostic ConflictArbiter interface and every
// substrate that assigns seniority honors it.
#pragma once

#include "conflict/adaptive.hpp"
#include "conflict/arbiter.hpp"
#include "conflict/descriptor.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"

namespace txc::stm {

using conflict::kDescriptorSlabSize;
using conflict::thread_descriptor;
using conflict::TxDescriptor;
using conflict::TxStatus;

/// A contention manager is a conflict arbiter by another (historical) name.
using ContentionManager = conflict::ConflictArbiter;
using CmDecision = conflict::Decision;
using CmView = conflict::ConflictView;

using conflict::GreedyCm;
using conflict::KarmaCm;
using conflict::PoliteCm;
using conflict::PolkaCm;
using conflict::TimestampCm;

/// The paper's local decision as a contention manager — the historical
/// adapter name, preserving the pre-refactor contract: requestor-aborts
/// regardless of the wrapped policy's own flavor (under the classic adapter
/// an STM requestor only ever sacrificed itself).  New code should use
/// conflict::GraceArbiter directly, which is mode-aware: requestor-wins
/// policies kill the lock holder after their grace period.
class GracePolicyCm final : public conflict::GraceArbiter {
 public:
  explicit GracePolicyCm(
      std::shared_ptr<const core::GracePeriodPolicy> policy) noexcept
      : GraceArbiter(std::move(policy),
                     core::ResolutionMode::kRequestorAborts) {}
};

using conflict::CmKind;
using conflict::make_cm;
using conflict::to_string;

}  // namespace txc::stm
