// txconflict — DEPRECATED compatibility surface over the conflict-arbitration
// layer.
//
// The contention-management machinery that used to live here (descriptors,
// the decision interface, the Scherer–Scott managers, the grace-period
// adapter) was generalized into src/conflict/ so that one arbiter instance
// serves TL2, NOrec, the HTM fallback path, and the simulator alike.  Every
// in-repo caller has been migrated to the txc::conflict names; this header
// survives one deprecation cycle for external callers only.  Each remaining
// spelling carries [[deprecated]] pointing at its replacement —
// docs/ARCHITECTURE.md ("Retiring the stm/cm.hpp shim") has the migration
// table.  Note there is no TL2-only escape hatch left: needs_seniority() is
// part of the substrate-agnostic ConflictArbiter interface and every
// substrate that assigns seniority honors it.
#pragma once

#include <memory>

#include "conflict/adaptive.hpp"
#include "conflict/arbiter.hpp"
#include "conflict/descriptor.hpp"
#include "conflict/grace.hpp"
#include "conflict/managers.hpp"

namespace txc::stm {

// The descriptor vocabulary is not deprecated — stm/tl2.hpp re-exports it
// for the substrates' own code; these duplicates keep cm.hpp self-contained.
using conflict::kDescriptorSlabSize;
using conflict::thread_descriptor;
using conflict::TxDescriptor;
using conflict::TxStatus;

/// A contention manager is a conflict arbiter by another (historical) name.
using ContentionManager
    [[deprecated("use conflict::ConflictArbiter")]] = conflict::ConflictArbiter;
using CmDecision [[deprecated("use conflict::Decision")]] = conflict::Decision;
using CmView
    [[deprecated("use conflict::ConflictView")]] = conflict::ConflictView;

using PoliteCm [[deprecated("use conflict::PoliteCm")]] = conflict::PoliteCm;
using KarmaCm [[deprecated("use conflict::KarmaCm")]] = conflict::KarmaCm;
using TimestampCm
    [[deprecated("use conflict::TimestampCm")]] = conflict::TimestampCm;
using GreedyCm [[deprecated("use conflict::GreedyCm")]] = conflict::GreedyCm;
using PolkaCm [[deprecated("use conflict::PolkaCm")]] = conflict::PolkaCm;

/// The paper's local decision as a contention manager — the historical
/// adapter name, preserving the pre-refactor contract: requestor-aborts
/// regardless of the wrapped policy's own flavor (under the classic adapter
/// an STM requestor only ever sacrificed itself).  Use conflict::GraceArbiter
/// directly: mode-aware by default, with the explicit
/// core::ResolutionMode::kRequestorAborts override reproducing this class.
class [[deprecated(
    "use conflict::GraceArbiter(policy, core::ResolutionMode::"
    "kRequestorAborts)")]] GracePolicyCm final : public conflict::GraceArbiter {
 public:
  explicit GracePolicyCm(
      std::shared_ptr<const core::GracePeriodPolicy> policy) noexcept
      : GraceArbiter(std::move(policy),
                     core::ResolutionMode::kRequestorAborts) {}
};

using CmKind [[deprecated("use conflict::CmKind")]] = conflict::CmKind;

[[deprecated("use conflict::to_string")]] inline const char* to_string(
    conflict::CmKind kind) noexcept {
  return conflict::to_string(kind);
}

[[deprecated("use conflict::make_cm")]] inline std::shared_ptr<
    const conflict::ConflictArbiter>
make_cm(conflict::CmKind kind) {
  return conflict::make_cm(kind);
}

}  // namespace txc::stm
