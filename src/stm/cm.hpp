// txconflict — classic software-TM contention managers.
//
// The paper positions its grace-period policies against the STM contention-
// manager literature: "contention managers (for instance in software TM) are
// usually assumed to have global knowledge about the set of running
// transactions... by contrast, in our setting, decisions are entirely local"
// (Section 1, Implications).  To make that comparison concrete this module
// implements the canonical managers of Scherer & Scott (PODC 2005) — Polite,
// Karma, Timestamp, Greedy, Polka — adapted to the repository's TL2 write-
// lock conflicts, plus an adapter that runs any of the paper's local
// GracePeriodPolicy decisions as a contention manager.
//
// Conflict model: transactions publish a TxDescriptor while holding write
// locks; a transaction that hits a held lock sees the holder's descriptor
// (priority, start time, status) and the manager decides to WAIT a quantum,
// ABORT SELF, or ABORT THE ENEMY (a CAS on the enemy's status, honored by
// the holder before its write-back).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/policy.hpp"
#include "sim/rng.hpp"

namespace txc::stm {

/// Lifecycle of one transaction attempt.  kActive transactions can be killed
/// remotely; the kActive -> kCommitting transition closes the kill window
/// before write-back begins.
enum class TxStatus : std::uint32_t {
  kActive = 0,
  kCommitting = 1,
  kCommitted = 2,
  kAborted = 3,
};

/// Per-thread transaction descriptor, published on acquired write locks so
/// enemies can inspect and (attempt to) kill the holder.
struct TxDescriptor {
  std::atomic<std::uint32_t> status{
      static_cast<std::uint32_t>(TxStatus::kAborted)};
  /// Manager-specific priority (Karma/Polka: cumulative work; Greedy /
  /// Timestamp: not used — they order by start_time).
  std::atomic<std::uint64_t> priority{0};
  /// Monotone start stamp of the transaction's *first* attempt (retries keep
  /// it, so long-suffering transactions age into higher seniority).
  std::atomic<std::uint64_t> start_time{0};

  [[nodiscard]] TxStatus load_status() const noexcept {
    return static_cast<TxStatus>(status.load(std::memory_order_acquire));
  }
  /// Remote kill: succeeds only while the victim is still kActive.
  bool try_kill() noexcept {
    auto expected = static_cast<std::uint32_t>(TxStatus::kActive);
    return status.compare_exchange_strong(
        expected, static_cast<std::uint32_t>(TxStatus::kAborted),
        std::memory_order_acq_rel);
  }
};

/// Fixed slab backing every thread's TxDescriptor.  Stripes publish raw
/// descriptor pointers and enemies chase them after the holder released, so
/// descriptors must never be freed while any transaction might still probe
/// them; a static, cache-line-aligned slab gives each descriptor its own
/// line (remote status/priority reads do not false-share with a neighbor
/// thread's descriptor) and keeps publication entirely off the heap.
/// Threads past the slab capacity get an intentionally-leaked heap
/// descriptor: a one-time 64-byte allocation per overflow thread keeps the
/// never-freed invariant (a thread_local would be destroyed at thread exit,
/// exactly the use-after-free the slab exists to prevent) at the cost of
/// one alloc outside the steady-state zero-allocation guarantee.
inline constexpr std::size_t kDescriptorSlabSize = 256;

namespace detail {
struct alignas(64) PaddedTxDescriptor {
  TxDescriptor descriptor;
};
}  // namespace detail

/// The calling thread's slab-backed descriptor, assigned on first use and
/// reused across every transaction (and every Stm instance) of the thread.
[[nodiscard]] inline TxDescriptor& thread_descriptor() noexcept {
  static detail::PaddedTxDescriptor slab[kDescriptorSlabSize];
  static std::atomic<std::size_t> next_slot{0};
  thread_local TxDescriptor* mine = [] {
    const std::size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot < kDescriptorSlabSize) return &slab[slot].descriptor;
    return &(new detail::PaddedTxDescriptor)->descriptor;  // leaked by design
  }();
  return *mine;
}

/// What a manager decides at a conflict.
enum class CmDecision {
  kWait,        // spin one quantum, then re-evaluate
  kAbortSelf,   // sacrifice the requesting transaction
  kAbortEnemy,  // kill the lock holder (falls back to wait if the kill races)
};

/// Everything a manager sees at a conflict.  `enemy` may be null when the
/// holder released between detection and inspection.
struct CmView {
  const TxDescriptor* self = nullptr;
  const TxDescriptor* enemy = nullptr;
  std::uint32_t attempt = 0;       // self's abort count for this transaction
  std::uint64_t waits_so_far = 0;  // consecutive kWait rounds on this conflict
  /// Caller-owned per-conflict scratch, initialized to a negative value when
  /// the conflict is first detected.  Randomized managers use it to draw
  /// their budget exactly once per conflict (GracePolicyCm stores Delta).
  double* scratch = nullptr;
};

/// A contention-management algorithm.  Implementations must be thread-safe:
/// one instance is shared by every thread of an Stm.
class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  /// Decide one conflict round.
  ///
  /// \param view  the requester's view of the conflict: its own and the
  ///              enemy's descriptors, its attempt count, how many quanta it
  ///              has already waited on this conflict, and the per-conflict
  ///              scratch slot (see CmView::scratch).
  /// \param rng   per-thread deterministic RNG for randomized managers.
  /// \return kWait to spin one more wait_quantum(), kAbortSelf to sacrifice
  ///         the requester, kAbortEnemy to try_kill() the holder (the STM
  ///         falls back to waiting when that kill races a commit).
  [[nodiscard]] virtual CmDecision on_conflict(const CmView& view,
                                               sim::Rng& rng) const = 0;
  /// Spin iterations per kWait round.
  [[nodiscard]] virtual std::uint64_t wait_quantum(
      const CmView& view) const noexcept {
    (void)view;
    return 64;
  }
  /// Whether decisions consult descriptor seniority (start_time/priority).
  /// Managers that decide purely locally (GracePolicyCm) return false and
  /// spare every transaction one fetch_add on the shared start ticket.
  [[nodiscard]] virtual bool needs_seniority() const noexcept { return true; }
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Polite (Scherer & Scott): back off politely for a bounded number of
/// exponentially growing intervals, then get impolite and kill the enemy.
class PoliteCm final : public ContentionManager {
 public:
  explicit PoliteCm(std::uint64_t max_rounds = 8) noexcept
      : max_rounds_(max_rounds) {}
  [[nodiscard]] CmDecision on_conflict(const CmView& view,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::uint64_t wait_quantum(
      const CmView& view) const noexcept override;
  [[nodiscard]] std::string name() const override { return "Polite"; }

 private:
  std::uint64_t max_rounds_;
};

/// Karma: priority = cumulative work done (reads opened), kept across
/// aborts.  Kill the enemy once our priority plus the number of waits
/// exceeds its priority; wait otherwise.
class KarmaCm final : public ContentionManager {
 public:
  [[nodiscard]] CmDecision on_conflict(const CmView& view,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "Karma"; }
};

/// Timestamp: the older transaction (earlier first-attempt start) wins; the
/// younger waits, and after a patience budget sacrifices itself.
class TimestampCm final : public ContentionManager {
 public:
  explicit TimestampCm(std::uint64_t patience = 16) noexcept
      : patience_(patience) {}
  [[nodiscard]] CmDecision on_conflict(const CmView& view,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "Timestamp"; }

 private:
  std::uint64_t patience_;
};

/// Greedy (Guerraoui, Herlihy, Pochon): like Timestamp but never aborts
/// itself — the younger transaction waits until the older finishes or is
/// itself killed; the older kills on sight.  Priority inversion is bounded
/// because timestamps are unique and kept across retries.
class GreedyCm final : public ContentionManager {
 public:
  [[nodiscard]] CmDecision on_conflict(const CmView& view,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "Greedy"; }
};

/// Polka = Polite + Karma: Karma's priority gap sets how many exponentially
/// growing backoff rounds to tolerate before killing the enemy.
class PolkaCm final : public ContentionManager {
 public:
  [[nodiscard]] CmDecision on_conflict(const CmView& view,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::uint64_t wait_quantum(
      const CmView& view) const noexcept override;
  [[nodiscard]] std::string name() const override { return "Polka"; }
};

/// The paper's local decision as a contention manager: draw a grace period
/// Delta from the wrapped GracePeriodPolicy once per conflict, wait it out in
/// quanta, then abort self (requestor-aborts semantics — an STM requestor
/// cannot be aborted by the holder).  No global knowledge is consulted:
/// exactly the "local, immediate, unchangeable" regime of the paper.
class GracePolicyCm final : public ContentionManager {
 public:
  GracePolicyCm(std::shared_ptr<const core::GracePeriodPolicy> policy,
                double abort_cost_estimate = 256.0) noexcept
      : policy_(std::move(policy)), abort_cost_(abort_cost_estimate) {}
  [[nodiscard]] CmDecision on_conflict(const CmView& view,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::uint64_t wait_quantum(
      const CmView& view) const noexcept override;
  /// Decisions are "local, immediate, unchangeable": no global seniority.
  [[nodiscard]] bool needs_seniority() const noexcept override {
    return false;
  }
  [[nodiscard]] std::string name() const override {
    return "Grace(" + policy_->name() + ")";
  }

 private:
  std::shared_ptr<const core::GracePeriodPolicy> policy_;
  double abort_cost_;
};

/// The classic managers by name, for benches/CLIs (the paper's policies are
/// adapted separately, via GracePolicyCm over any core::make_policy result).
enum class CmKind { kPolite, kKarma, kTimestamp, kGreedy, kPolka };

/// Display name of a classic manager ("Polite", "Karma", ...).
[[nodiscard]] const char* to_string(CmKind kind) noexcept;

/// Build a classic manager with its default tuning; the instance is
/// thread-safe and meant to be shared by every thread of one Stm.
[[nodiscard]] std::shared_ptr<const ContentionManager> make_cm(CmKind kind);

}  // namespace txc::stm
