// txconflict — transactional containers on the TL2 STM public API.
//
// The paper's data structures (stack, queue) live on the HTM simulator; this
// module provides the same structures — plus an ordered set — as real
// multi-threaded containers composed from Stm::atomically.  They serve three
// roles: worked examples of the Tx API, linearizable fixtures for the
// multi-threaded test suite, and the workloads of the cm_comparison bench.
//
// All containers are bounded (fixed cell arrays): the STM manages conflict,
// not allocation.  Capacity exhaustion is reported, never UB.
//
// Every operation passes its lambda straight to the template
// Stm::atomically overload, so container transactions ride the
// zero-allocation fast path (no std::function, reusable per-thread
// TxBuffers — see stm/tx_buffers.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "stm/tl2.hpp"

namespace txc::stm {

/// Bounded transactional stack (LIFO).  The top index and every slot are
/// transactional cells; push/pop are single atomic transactions.
class TxStack {
 public:
  explicit TxStack(Stm& stm, std::size_t capacity)
      : stm_(stm), slots_(capacity) {}

  /// False if the stack was full.
  bool push(std::uint64_t value) {
    bool ok = false;
    stm_.atomically([&](Tx& tx) {
      const std::uint64_t top = tx.read(top_);
      if (top >= slots_.size()) {
        ok = false;
        return;
      }
      tx.write(slots_[top], value);
      tx.write(top_, top + 1);
      ok = true;
    });
    return ok;
  }

  /// Empty optional if the stack was empty.
  std::optional<std::uint64_t> pop() {
    std::optional<std::uint64_t> result;
    stm_.atomically([&](Tx& tx) {
      const std::uint64_t top = tx.read(top_);
      if (top == 0) {
        result.reset();
        return;
      }
      result = tx.read(slots_[top - 1]);
      tx.write(top_, top - 1);
    });
    return result;
  }

  [[nodiscard]] std::uint64_t size() {
    std::uint64_t size = 0;
    stm_.atomically([&](Tx& tx) { size = tx.read(top_); });
    return size;
  }

 private:
  Stm& stm_;
  Cell top_;
  std::vector<Cell> slots_;
};

/// Bounded transactional FIFO ring: head and tail counters advance
/// monotonically; slot index is counter mod capacity.
class TxQueue {
 public:
  explicit TxQueue(Stm& stm, std::size_t capacity)
      : stm_(stm), slots_(capacity) {}

  bool enqueue(std::uint64_t value) {
    bool ok = false;
    stm_.atomically([&](Tx& tx) {
      const std::uint64_t head = tx.read(head_);
      const std::uint64_t tail = tx.read(tail_);
      if (tail - head >= slots_.size()) {
        ok = false;
        return;
      }
      tx.write(slots_[tail % slots_.size()], value);
      tx.write(tail_, tail + 1);
      ok = true;
    });
    return ok;
  }

  std::optional<std::uint64_t> dequeue() {
    std::optional<std::uint64_t> result;
    stm_.atomically([&](Tx& tx) {
      const std::uint64_t head = tx.read(head_);
      const std::uint64_t tail = tx.read(tail_);
      if (head == tail) {
        result.reset();
        return;
      }
      result = tx.read(slots_[head % slots_.size()]);
      tx.write(head_, head + 1);
    });
    return result;
  }

  [[nodiscard]] std::uint64_t size() {
    std::uint64_t size = 0;
    stm_.atomically([&](Tx& tx) { size = tx.read(tail_) - tx.read(head_); });
    return size;
  }

 private:
  Stm& stm_;
  Cell head_;
  Cell tail_;
  std::vector<Cell> slots_;
};

/// Transactional ordered set over a bounded key universe [0, universe):
/// a presence bitmap (one cell per key) plus a size counter.  Contains-range
/// queries read a consistent snapshot — the property the HTM list workload
/// models and the classic STM "set" benchmark.
class TxSet {
 public:
  TxSet(Stm& stm, std::size_t universe)
      : stm_(stm), present_(universe) {}

  /// True if the key was inserted (false: already present).
  bool insert(std::uint64_t key) {
    bool inserted = false;
    stm_.atomically([&](Tx& tx) {
      if (tx.read(present_[key]) != 0) {
        inserted = false;
        return;
      }
      tx.write(present_[key], 1);
      tx.write(size_, tx.read(size_) + 1);
      inserted = true;
    });
    return inserted;
  }

  /// True if the key was removed (false: absent).
  bool erase(std::uint64_t key) {
    bool erased = false;
    stm_.atomically([&](Tx& tx) {
      if (tx.read(present_[key]) == 0) {
        erased = false;
        return;
      }
      tx.write(present_[key], 0);
      tx.write(size_, tx.read(size_) - 1);
      erased = true;
    });
    return erased;
  }

  [[nodiscard]] bool contains(std::uint64_t key) {
    bool found = false;
    stm_.atomically(
        [&](Tx& tx) { found = tx.read(present_[key]) != 0; });
    return found;
  }

  /// Atomic snapshot count of keys in [lo, hi).
  [[nodiscard]] std::uint64_t count_range(std::uint64_t lo, std::uint64_t hi) {
    std::uint64_t count = 0;
    stm_.atomically([&](Tx& tx) {
      count = 0;
      for (std::uint64_t key = lo; key < hi; ++key) {
        count += tx.read(present_[key]) != 0 ? 1 : 0;
      }
    });
    return count;
  }

  [[nodiscard]] std::uint64_t size() {
    std::uint64_t size = 0;
    stm_.atomically([&](Tx& tx) { size = tx.read(size_); });
    return size;
  }

 private:
  Stm& stm_;
  Cell size_;
  std::vector<Cell> present_;
};

}  // namespace txc::stm
