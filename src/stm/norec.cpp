#include "stm/norec.hpp"

#include <cassert>
#include <functional>
#include <thread>

#include "conflict/grace.hpp"
#include "conflict/injection.hpp"
#include "conflict/spin_site.hpp"
#include "mem/tx_pool.hpp"

namespace txc::stm {

namespace {

thread_local sim::Rng tl_rng{0x4E0EECULL ^
                             std::hash<std::thread::id>{}(
                                 std::this_thread::get_id())};

}  // namespace

Norec::Norec(std::shared_ptr<const core::GracePeriodPolicy> policy)
    : Norec(std::make_shared<conflict::GraceArbiter>(
          std::move(policy), core::ResolutionMode::kRequestorAborts)) {}

Norec::Norec(std::shared_ptr<const conflict::ConflictArbiter> arbiter)
    : arbiter_(std::move(arbiter)),
      needs_seniority_(arbiter_->needs_seniority()) {}

TxBuffers& Norec::thread_buffers() noexcept {
  thread_local TxBuffers buffers;
  return buffers;
}

void Norec::begin_transaction(TxDescriptor& descriptor) noexcept {
  // Purely local arbiters never inspect seniority: skip the shared-ticket
  // RMW entirely (the descriptor still publishes for status/kill handling).
  if (!needs_seniority_) return;
  conflict::stamp_seniority(descriptor, start_ticket_);
}

std::optional<std::uint64_t> Norec::await_even_contended(NorecTx& tx) {
  // Engaging arbitration: seniority arbiters may weigh our credit against
  // the committer's, so flush it first.
  tx.publish_priority();
  stats_.lock_waits.fetch_add(1, std::memory_order_relaxed);
  // NOrec's spin site: the odd global commit seqlock.  The committer
  // publishes its descriptor in committer_ for the odd window, so the enemy
  // probe and the kill protocol work exactly as on a TL2 stripe; the
  // resolved() re-probe latches the even value the caller resumes from.
  struct SeqlockSite {
    Norec& stm;
    NorecTx& tx;
    std::uint64_t state;  // last seqlock value observed by resolved()
    [[nodiscard]] constexpr bool suppress_feedback_after_kill() const noexcept {
      return true;
    }
    void prime(conflict::ConflictView& view) const noexcept {
      view.self = tx.descriptor_;
      view.can_abort_enemy = true;  // the committer-descriptor kill protocol
      view.context.abort_cost = kAbortCostEstimate;
      view.context.chain_length = 2;
      view.context.attempt = tx.attempt_;
    }
    [[nodiscard]] bool resolved() noexcept {
      state = stm.seqlock_.load(std::memory_order_acquire);
      return (state & 1) == 0;
    }
    [[nodiscard]] bool self_killed() const noexcept {
      return tx.descriptor_->load_status() == TxStatus::kAborted;
    }
    [[nodiscard]] const TxDescriptor* enemy() const noexcept {
      return stm.committer_.load(std::memory_order_acquire);
    }
    [[nodiscard]] bool kill() const noexcept {
      TxDescriptor* holder = stm.committer_.load(std::memory_order_acquire);
      if (holder == nullptr || !holder->try_kill()) return false;
      stm.stats_.remote_kills.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  } site{*this, tx, /*state=*/1};  // overwritten by the first resolved() probe
  switch (conflict::drive_spin_site(*arbiter_, site, tl_rng)) {
    case conflict::SpinResult::kEnemyFinished:
      return site.state;  // the even value the site latched
    case conflict::SpinResult::kSelfAbort:
    case conflict::SpinResult::kSelfKilled:
      break;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> Norec::validate(NorecTx& tx) {
  while (true) {
    const auto even = await_even(tx);
    if (!even.has_value()) return std::nullopt;
    const std::uint64_t base = *even;
    bool consistent = true;
    for (const ReadLogEntry& logged : tx.buffers_->read_log) {
      if (logged.cell->value.load(std::memory_order_acquire) != logged.value) {
        consistent = false;
        break;
      }
    }
    if (seqlock_.load(std::memory_order_acquire) != base) {
      continue;  // a commit raced the scan: re-validate against the new state
    }
    if (!consistent) return std::nullopt;
    return base;
  }
}

std::uint64_t NorecTx::read(const Cell& cell) {
  if (const std::uint64_t* buffered =
          buffers_->write_set.find(const_cast<Cell*>(&cell))) {
    return *buffered;
  }

  // NOrec read protocol: sample the value under a stable even seqlock; if
  // the clock moved since our snapshot, re-validate the whole read log and
  // advance the snapshot.
  while (true) {
    const auto even = stm_.await_even(*this);
    if (!even.has_value()) {
      publish_priority();  // Karma credit survives the abort
      throw TxAbort{};
    }
    const std::uint64_t base = *even;
    const std::uint64_t value = cell.value.load(std::memory_order_acquire);
    if (stm_.seqlock_.load(std::memory_order_acquire) != base) continue;
    if (base != snapshot_) {
      if (buffers_->read_log.empty()) {
        // Nothing logged yet, so there is nothing a newer commit could have
        // invalidated: adopt the current even state directly instead of
        // replaying an empty log through validate() — the common shape of a
        // first read landing just after someone else committed.  The value
        // above was sampled under this exact state (both seqlock probes saw
        // `base`), so it is already consistent with the new snapshot.
        snapshot_ = base;
      } else {
        const auto validated = stm_.validate(*this);
        if (!validated.has_value()) {
          publish_priority();
          throw TxAbort{};
        }
        snapshot_ = *validated;
        // The location may have changed before the new snapshot; re-read so
        // the log entry matches the validated state.
        continue;
      }
    }
    buffers_->read_log.push_back(ReadLogEntry{&cell, value});
    // Karma-style managers rank transactions by work performed; published
    // lazily by publish_priority() (see Tx::read).
    ++pending_priority_;
    ++reads_;
    return value;
  }
}

void NorecTx::write(Cell& cell, std::uint64_t value) {
  buffers_->write_set.upsert(&cell) = value;
}

Cell* NorecTx::tx_alloc(mem::TxPool& pool) {
  // A remotely-killed transaction must stop accruing pool blocks and
  // unwind; the log keeps the unwinding exact (same as Tx::tx_alloc).
  if (descriptor_->load_status() == TxStatus::kAborted) {
    publish_priority();
    throw TxAbort{};
  }
  Cell* block = pool.speculative_alloc();
  if (block == nullptr) return nullptr;  // exhaustion: clean, no TxAbort
  buffers_->alloc_log.push_back(PoolLogEntry{&pool, block});
  return block;
}

void NorecTx::tx_free(mem::TxPool& pool, Cell* block) {
  assert(pool.owns(block));
  buffers_->free_log.push_back(PoolLogEntry{&pool, block});
}

std::uint64_t NorecReadTx::read(const Cell& cell) {
  // Seqlock-reader protocol, one probe: the attempt is pinned to an even
  // seqlock value, so any committed write since makes the recheck fail.  A
  // failed recheck restarts the whole body on a fresh snapshot — cheaper
  // than replaying a value log, and the only way a reader with no log can
  // stay opaque.
  const std::uint64_t value = cell.value.load(std::memory_order_acquire);
  if (stm_.seqlock_.load(std::memory_order_acquire) != snapshot_) {
    throw TxAbort{};
  }
  ++reads_;
  return value;
}

bool Norec::try_commit(NorecTx& tx) {
  // About to become inspectable (the committer slot publishes our
  // descriptor): flush the attempt's accumulated work credit first.
  tx.publish_priority();
  TxBuffers& buffers = *tx.buffers_;
  if (buffers.write_set.empty()) return true;  // read-only: always consistent

  // Acquire the global lock at a state our reads are valid against.
  std::uint64_t base = tx.snapshot_;
  while (!seqlock_.compare_exchange_weak(base, base + 1,
                                         std::memory_order_acq_rel)) {
    // Someone committed (or is committing): re-validate, which also waits
    // out any in-flight committer, then retry from the validated state.
    const auto validated = validate(tx);
    if (!validated.has_value()) return false;
    tx.snapshot_ = *validated;
    base = tx.snapshot_;
  }

  // Exclusive.  Publish our descriptor next to the lock so waiters can
  // weigh us (priority/seniority) and deliver kAbortEnemy — this is the
  // extra commit-path store the committer-descriptor protocol costs
  // (measured in bench/micro_stm_fastpath.cpp).
  committer_.store(tx.descriptor_, std::memory_order_release);

  // Scheduler-adversary seam: seqlock odd, descriptor published, kill
  // window still open — a preemption adversary deschedules the committer
  // right here, stalling the whole substrate until a waiter's arbiter
  // kills us (the recovery below) or the stall ends.
  conflict::maybe_hook(conflict::HookPoint::kNorecOddWindow);

  // Close the kill window before write-back: a waiter's kill CAS
  // (kActive -> kAborted) that landed makes this CAS fail.  Nothing has
  // been written yet, so restoring the seqlock to its pre-acquisition even
  // value makes the odd excursion a no-op for every reader (values are
  // unchanged, and any other committer must still CAS from an even state).
  auto active = static_cast<std::uint32_t>(TxStatus::kActive);
  if (!tx.descriptor_->status.compare_exchange_strong(
          active, static_cast<std::uint32_t>(TxStatus::kCommitting),
          std::memory_order_acq_rel)) {
    stats_.kill_recoveries.fetch_add(1, std::memory_order_relaxed);
    committer_.store(nullptr, std::memory_order_release);
    seqlock_.store(base, std::memory_order_release);
    return false;  // killed just before the point of no return
  }

  // Write back and release with the next even value.
  for (const auto& entry : buffers.write_set) {
    entry.key->value.store(entry.value, std::memory_order_release);
  }
  committer_.store(nullptr, std::memory_order_release);
  seqlock_.store(base + 2, std::memory_order_release);
  tx.descriptor_->status.store(
      static_cast<std::uint32_t>(TxStatus::kCommitted),
      std::memory_order_release);
  return true;
}

}  // namespace txc::stm
