// txconflict — NOrec software transactional memory.
//
// A second, structurally different STM substrate (Dalessandro, Spear, Scott,
// PPoPP 2010): NO ownership RECords — a single global sequence lock plus
// value-based validation.  Where TL2 maps cells to striped version locks,
// NOrec logs the values it read and re-validates them whenever the global
// clock moves; commits serialize on the one lock.
//
// Why it is here: the paper's conflict decision is *where to wait and for how
// long*, and NOrec has exactly one wait point — the global commit lock.  A
// requestor that finds the lock held consults the same GracePeriodPolicy as
// the HTM simulator and TL2 (requestor-aborts flavor: it can only sacrifice
// itself), so the policies can be compared across three substrates with
// genuinely different conflict anatomies.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/policy.hpp"
#include "sim/rng.hpp"
#include "stm/tl2.hpp"  // Cell, TxAbort, StmStats

namespace txc::stm {

class Norec;

/// Per-attempt NOrec transaction context.
class NorecTx {
 public:
  /// Transactional read with value-based validation.
  [[nodiscard]] std::uint64_t read(const Cell& cell);

  /// Buffered transactional write.
  void write(Cell& cell, std::uint64_t value);

  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  friend class Norec;
  NorecTx(Norec& stm, std::uint32_t attempt, std::uint64_t snapshot)
      : stm_(stm), attempt_(attempt), snapshot_(snapshot) {}

  Norec& stm_;
  std::uint32_t attempt_;
  std::uint64_t snapshot_;  // even seqlock value this attempt is based on
  std::vector<std::pair<const Cell*, std::uint64_t>> read_log_;
  std::unordered_map<Cell*, std::uint64_t> write_set_;
};

class Norec {
 public:
  /// `policy` decides how long to wait for the global commit lock before
  /// self-aborting (requestor-aborts: the lock holder cannot be killed).
  explicit Norec(std::shared_ptr<const core::GracePeriodPolicy> policy);

  /// Run `body` as a transaction, retrying on aborts until it commits.
  void atomically(const std::function<void(NorecTx&)>& body);

  [[nodiscard]] const StmStats& stats() const noexcept { return stats_; }

  /// Direct read of a committed cell; safe only with no transactions in
  /// flight.
  [[nodiscard]] static std::uint64_t read_committed(const Cell& cell) {
    return cell.value.load(std::memory_order_relaxed);
  }

 private:
  friend class NorecTx;

  /// Wait for the seqlock to go even; returns the even value, or nullopt if
  /// the grace period expired first.
  [[nodiscard]] std::optional<std::uint64_t> await_even(std::uint32_t attempt);

  /// Value-based validation: re-read every logged location under a stable
  /// even seqlock.  Returns the seqlock value validated against, or nullopt
  /// on a value change (the transaction must abort).
  [[nodiscard]] std::optional<std::uint64_t> validate(NorecTx& tx);

  [[nodiscard]] bool try_commit(NorecTx& tx);

  std::shared_ptr<const core::GracePeriodPolicy> policy_;
  std::atomic<std::uint64_t> seqlock_{0};  // even: free; odd: committing
  StmStats stats_;
};

}  // namespace txc::stm
