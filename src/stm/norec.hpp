// txconflict — NOrec software transactional memory.
//
// A second, structurally different STM substrate (Dalessandro, Spear, Scott,
// PPoPP 2010): NO ownership RECords — a single global sequence lock plus
// value-based validation.  Where TL2 maps cells to striped version locks,
// NOrec logs the values it read and re-validates them whenever the global
// clock moves; commits serialize on the one lock.
//
// Why it is here: the paper's conflict decision is *where to wait and for how
// long*, and NOrec has exactly one wait point — the global commit lock.  A
// requestor that finds the lock held consults the same
// conflict::ConflictArbiter instance as TL2, the HTM fallback path, and the
// simulator, so arbitration schemes can be compared across substrates with
// genuinely different conflict anatomies.  NOrec's seqlock holder is
// anonymous (no descriptor is published and it cannot be killed), so the
// site sets ConflictView::can_abort_enemy = false, maps a kAbortEnemy
// verdict to waiting, and seniority-based arbiters degrade to polite
// spinning — the portable-degradation contract of the conflict layer.
//
// Hot path: like TL2, atomically() is a template (no std::function) and
// every attempt reuses the thread's TxBuffers — the value log and write set
// are cleared, never freed, between attempts, so steady-state transactions
// allocate nothing.  Transactions are flat (no nesting).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "conflict/arbiter.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "sim/rng.hpp"
#include "stm/tl2.hpp"  // Cell, TxAbort, StmStats
#include "stm/tx_buffers.hpp"

namespace txc::stm {

class Norec;

/// Per-attempt NOrec transaction context.  Borrows the thread's TxBuffers;
/// owns nothing.
class NorecTx {
 public:
  /// Transactional read with value-based validation.
  [[nodiscard]] std::uint64_t read(const Cell& cell);

  /// Buffered transactional write.
  void write(Cell& cell, std::uint64_t value);

  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  friend class Norec;
  NorecTx(Norec& stm, std::uint32_t attempt, std::uint64_t snapshot,
          TxBuffers* buffers) noexcept
      : stm_(stm), attempt_(attempt), snapshot_(snapshot), buffers_(buffers) {}

  Norec& stm_;
  std::uint32_t attempt_;
  std::uint64_t snapshot_;  // even seqlock value this attempt is based on
  TxBuffers* buffers_;
};

class Norec {
 public:
  /// `policy` decides how long to wait for the global commit lock before
  /// self-aborting (requestor-aborts: the lock holder cannot be killed);
  /// wrapped in a conflict::GraceArbiter.
  explicit Norec(std::shared_ptr<const core::GracePeriodPolicy> policy);

  /// Full arbitration mode: the seqlock wait point is decided by `arbiter`.
  /// The holder is anonymous, so kAbortEnemy verdicts degrade to waiting.
  explicit Norec(std::shared_ptr<const conflict::ConflictArbiter> arbiter);

  /// Run `body` as a transaction, retrying on aborts until it commits.
  /// Template fast path: direct body invocation, reusable thread buffers.
  template <typename Body>
  void atomically(Body&& body) {
    TxBuffers& buffers = thread_buffers();
    TxBuffersScope scope{buffers};  // debug: reject nested transactions
    core::AttemptProfile* const profile = profile_;
    for (std::uint32_t attempt = 0;; ++attempt) {
      buffers.clear();
      const std::uint64_t started = profile ? core::cycle_now() : 0;
      std::uint64_t snapshot = seqlock_.load(std::memory_order_acquire);
      while (snapshot & 1) {
        snapshot = seqlock_.load(std::memory_order_acquire);
      }
      NorecTx tx{*this, attempt, snapshot, &buffers};
      bool unwound = false;
      try {
        body(tx);
      } catch (const TxAbort&) {
        unwound = true;
      }
      if (!unwound && try_commit(tx)) {
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        if (profile) profile->record_commit(core::cycle_now() - started);
        return;
      }
      stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      if (profile) profile->record_abort(core::cycle_now() - started);
    }
  }

  /// Attach (or detach, with nullptr) a cycle-accurate attempt profile.
  /// Attach before spawning workers; the profile must outlive them.
  void attach_profile(core::AttemptProfile* profile) noexcept {
    profile_ = profile;
  }

  [[nodiscard]] const StmStats& stats() const noexcept { return stats_; }

  /// Direct read of a committed cell; safe only with no transactions in
  /// flight.
  [[nodiscard]] static std::uint64_t read_committed(const Cell& cell) {
    return cell.value.load(std::memory_order_relaxed);
  }

 private:
  friend class NorecTx;

  /// The calling thread's reusable transaction buffers (distinct from TL2's
  /// so interleaving substrates on one thread stays safe).
  [[nodiscard]] static TxBuffers& thread_buffers() noexcept;

  /// Wait for the seqlock to go even; returns the even value, or nullopt if
  /// the arbiter sacrificed the requestor first.  Resolved waits are
  /// reported back through ConflictArbiter::feedback.
  [[nodiscard]] std::optional<std::uint64_t> await_even(std::uint32_t attempt);

  /// Abort cost estimate B handed to the arbiter at every conflict.
  static constexpr double kAbortCostEstimate = 256.0;

  /// Value-based validation: re-read every logged location under a stable
  /// even seqlock.  Returns the seqlock value validated against, or nullopt
  /// on a value change (the transaction must abort).
  [[nodiscard]] std::optional<std::uint64_t> validate(NorecTx& tx);

  [[nodiscard]] bool try_commit(NorecTx& tx);

  std::shared_ptr<const conflict::ConflictArbiter> arbiter_;
  std::atomic<std::uint64_t> seqlock_{0};  // even: free; odd: committing
  StmStats stats_;
  core::AttemptProfile* profile_ = nullptr;
};

}  // namespace txc::stm
