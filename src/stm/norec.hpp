// txconflict — NOrec software transactional memory.
//
// A second, structurally different STM substrate (Dalessandro, Spear, Scott,
// PPoPP 2010): NO ownership RECords — a single global sequence lock plus
// value-based validation.  Where TL2 maps cells to striped version locks,
// NOrec logs the values it read and re-validates them whenever the global
// clock moves; commits serialize on the one lock.
//
// Why it is here: the paper's conflict decision is *where to wait and for how
// long*, and NOrec has exactly one wait point — the global commit lock.  A
// requestor that finds the lock held consults the same
// conflict::ConflictArbiter instance as TL2, the HTM fallback path, and the
// simulator, so arbitration schemes can be compared across substrates with
// genuinely different conflict anatomies.  The wait loop itself is the
// shared conflict::drive_spin_site() driver — the same decide/spin/feedback
// shape TL2 uses, specialized only in what it probes (the seqlock) and whom
// it kills (the published committer).
//
// The seqlock holder used to be anonymous, which degraded seniority
// arbiters (Karma, Greedy, Timestamp) to polite waiting and made
// kAbortEnemy impossible here.  The committer now publishes its
// conflict::TxDescriptor next to the seqlock for the duration of the odd
// window, so the whole roster differentiates on NOrec exactly as on TL2:
// waiters weigh the committer's priority/seniority and may deliver a kill
// CAS (kActive -> kAborted), which the committer observes at its own
// status check before write-back — nothing has been written yet, so it
// restores the seqlock to its pre-acquisition even value and unwinds.  The
// price is two extra relaxed-ish stores and one status CAS on the commit
// path, measured in bench/micro_stm_fastpath.cpp against a frozen
// anonymous-seqlock copy.
//
// Hot path: like TL2, atomically() is a template (no std::function) and
// every attempt reuses the thread's TxBuffers — the value log and write set
// are cleared, never freed, between attempts, so steady-state transactions
// allocate nothing.  Transactions are flat (no nesting).
//
// Declared-read-only traffic has its own tier: atomically_read() runs the
// body under a NorecReadTx snapshot context that keeps no value log (each
// read just re-checks the pinned seqlock), publishes no descriptor, and
// never consults the arbiter.  The mode is a compile-time contract
// (NorecReadTx has no write()), not a TxOptions hint.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "conflict/arbiter.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "sim/rng.hpp"
#include "stm/options.hpp"
#include "stm/tl2.hpp"  // Cell, TxAbort, StmStats
#include "stm/tx_buffers.hpp"

namespace txc::stm {

class Norec;

/// Per-attempt NOrec transaction context.  Borrows the thread's TxBuffers;
/// owns nothing.
class NorecTx {
 public:
  /// Transactional read with value-based validation.
  [[nodiscard]] std::uint64_t read(const Cell& cell);

  /// Buffered transactional write.
  void write(Cell& cell, std::uint64_t value);

  /// Speculative block allocation from `pool`: nullptr on exhaustion (clean
  /// in-transaction failure, no abort); recycled automatically if the
  /// attempt aborts.  Same contract as Tx::tx_alloc — the unified substrate
  /// API's allocation hook.
  [[nodiscard]] Cell* tx_alloc(mem::TxPool& pool);

  /// Deferred speculative free: published to the pool's limbo only after
  /// this attempt commits (post write-back); dropped on abort.  Same
  /// contract as Tx::tx_free.
  void tx_free(mem::TxPool& pool, Cell* block);

  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  friend class Norec;
  friend struct NorecTestPeek;  // white-box kill-protocol tests
  NorecTx(Norec& stm, std::uint32_t attempt, std::uint64_t snapshot,
          TxDescriptor* descriptor, TxBuffers* buffers) noexcept
      : stm_(stm),
        attempt_(attempt),
        snapshot_(snapshot),
        descriptor_(descriptor),
        buffers_(buffers) {}

  /// Flush locally-accumulated Karma work credit to the shared descriptor
  /// (see Tx::publish_priority — same lazy-publication scheme).
  void publish_priority() noexcept {
    conflict::publish_credit(*descriptor_, pending_priority_);
  }

  Norec& stm_;
  std::uint32_t attempt_;
  std::uint64_t snapshot_;  // even seqlock value this attempt is based on
  TxDescriptor* descriptor_;
  TxBuffers* buffers_;
  /// Work credit accumulated since the last publish_priority() flush (the
  /// flush zeroes it — credit moves to the shared descriptor).
  std::uint64_t pending_priority_ = 0;
  /// Total reads this attempt (never reset mid-attempt, unlike
  /// pending_priority_); flushed to StmStats::instrumented_reads once per
  /// attempt by atomically().
  std::uint64_t reads_ = 0;
};

/// Per-attempt context of a declared-read-only snapshot transaction
/// (Norec::atomically_read).  Exposes only read() — writing inside a read
/// transaction is a compile error, not a debug assert.
///
/// A NOrec snapshot reader needs no value log at all: the attempt is pinned
/// to one even seqlock value, and each read just re-checks that the seqlock
/// has not moved since.  If it has, some writer committed and the attempt
/// restarts on a fresh snapshot — no replay, no arbitration, no descriptor.
class NorecReadTx {
 public:
  /// Snapshot read: seqlock-validated in place, no read log.
  [[nodiscard]] std::uint64_t read(const Cell& cell);

  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  friend class Norec;
  NorecReadTx(Norec& stm, std::uint32_t attempt,
              std::uint64_t snapshot) noexcept
      : stm_(stm), attempt_(attempt), snapshot_(snapshot) {}

  Norec& stm_;
  std::uint32_t attempt_;
  std::uint64_t snapshot_;  // even seqlock value the attempt is pinned to
  std::uint64_t reads_ = 0;  // flushed to StmStats once per attempt
};

class Norec {
 public:
  /// The per-attempt transaction context type — the substrate-generic name
  /// generic code templates over (`typename Substrate::TxContext`).
  using TxContext = NorecTx;

  /// The declared-read-only snapshot context (`typename
  /// Substrate::ReadTxContext`): read() only, handed out by
  /// atomically_read().  A write under it does not compile.
  using ReadTxContext = NorecReadTx;

  /// `policy` decides how long to wait for the global commit lock before
  /// self-aborting (requestor-aborts: the lock holder cannot be killed);
  /// wrapped in a conflict::GraceArbiter.
  explicit Norec(std::shared_ptr<const core::GracePeriodPolicy> policy);

  /// Full arbitration mode: the seqlock wait point is decided by `arbiter`.
  /// The committer publishes its descriptor, so the full verdict set applies:
  /// waiters may weigh the committer's seniority and kill it mid-window.
  explicit Norec(std::shared_ptr<const conflict::ConflictArbiter> arbiter);

  /// Run `body` as a transaction, retrying on aborts until it commits.
  /// Thin forwarding shim over the TxOptions overload (default options).
  template <typename Body>
  void atomically(Body&& body) {
    atomically(TxOptions{}, std::forward<Body>(body));
  }

  /// Run `body` as a transaction under the declared `options`, retrying on
  /// aborts until it commits.  Template fast path: direct body invocation,
  /// reusable thread buffers.  (TxOptions is currently empty — the overload
  /// keeps the substrate-generic arity; declared-read-only work belongs on
  /// atomically_read().)
  template <typename Body>
  void atomically(const TxOptions& options, Body&& body) {
    (void)options;
    TxDescriptor& descriptor = thread_descriptor();
    TxBuffers& buffers = thread_buffers();
    TxBuffersScope scope{buffers};  // debug: reject nested transactions
    [[maybe_unused]] TxThreadScope thread_scope;  // debug: across substrates
    // Epoch pin for transactional pool reclamation (see Stm::atomically —
    // identical role; one relaxed load when no TxPool exists).
    mem::reclaim::EpochPinGuard epoch_pin;
    begin_transaction(descriptor);
    core::AttemptProfile* const profile = profile_;
    for (std::uint32_t attempt = 0;; ++attempt) {
      buffers.clear();
      const std::uint64_t started = profile ? core::cycle_now() : 0;
      // Open the kill window: the descriptor is only inspectable (and
      // killable) while published as the committer, but stale enemy
      // pointers may deliver spurious kills any time we are kActive; the
      // commit path tolerates both.
      descriptor.status.store(static_cast<std::uint32_t>(TxStatus::kActive),
                              std::memory_order_release);
      std::uint64_t snapshot = seqlock_.load(std::memory_order_acquire);
      while (snapshot & 1) {
        snapshot = seqlock_.load(std::memory_order_acquire);
      }
      NorecTx tx{*this, attempt, snapshot, &descriptor, &buffers};
      bool unwound = false;
      try {
        body(tx);
      } catch (const TxAbort&) {
        unwound = true;
      } catch (...) {
        // User exception escaping the atomic block: recycle this attempt's
        // speculative pool allocations before propagating (see
        // Stm::atomically).
        if (!buffers.alloc_log.empty() || !buffers.free_log.empty()) {
          rollback_pool_log(buffers);
        }
        throw;
      }
      if (!unwound && try_commit(tx)) {
        // Deferred pool frees publish only now — after write-back made the
        // freed blocks' unlinking globally visible (see Stm::atomically).
        if (!buffers.free_log.empty() || !buffers.alloc_log.empty()) {
          commit_pool_log(buffers);
        }
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        stats_.instrumented_reads.fetch_add(tx.reads_,
                                            std::memory_order_relaxed);
        if (profile) profile->record_commit(core::cycle_now() - started);
        return;
      }
      // Aborted attempt (body unwound, validation failed, or the committer
      // was killed in the odd window): recycle speculative allocations,
      // drop deferred frees.
      if (!buffers.alloc_log.empty() || !buffers.free_log.empty()) {
        rollback_pool_log(buffers);
      }
      stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      stats_.instrumented_reads.fetch_add(tx.reads_,
                                          std::memory_order_relaxed);
      if (profile) profile->record_abort(core::cycle_now() - started);
    }
  }

  /// Run `body` as a declared-read-only snapshot transaction, retrying until
  /// it completes on a stable snapshot.  The body receives a ReadTxContext —
  /// read() only; a write does not compile.
  ///
  /// The fast path this buys over an instrumented atomically(): no value
  /// log, no log replay when the seqlock moves (the attempt just restarts),
  /// no descriptor publication, no TxBuffers, and no arbiter involvement —
  /// a snapshot reader never enters the seqlock spin site.  Every value the
  /// body observes belongs to the single committed state at the pinned
  /// seqlock value (opacity); the body may re-run, same contract as
  /// atomically().
  template <typename Body>
  void atomically_read(Body&& body) {
    // Epoch pin: keeps pool blocks a snapshot pointer may reference mapped
    // and unrecycled until the reader finishes (see Stm::atomically_read).
    mem::reclaim::EpochPinGuard epoch_pin;
    core::AttemptProfile* const profile = profile_;
    for (std::uint32_t attempt = 0;; ++attempt) {
      const std::uint64_t started = profile ? core::cycle_now() : 0;
      // Pin the attempt to an even seqlock value.  An odd value is waited
      // out with a plain spin, deliberately not the arbitrated spin site:
      // the odd window is short (write-back only) and a snapshot reader
      // must stay invisible to the arbiter.
      std::uint64_t snapshot = seqlock_.load(std::memory_order_acquire);
      while (snapshot & 1) {
        snapshot = seqlock_.load(std::memory_order_acquire);
      }
      NorecReadTx tx{*this, attempt, snapshot};
      try {
        body(tx);
      } catch (const TxAbort&) {
        stats_.snapshot_restarts.fetch_add(1, std::memory_order_relaxed);
        stats_.snapshot_reads.fetch_add(tx.reads_, std::memory_order_relaxed);
        if (profile) profile->record_abort(core::cycle_now() - started);
        continue;
      }
      stats_.snapshot_commits.fetch_add(1, std::memory_order_relaxed);
      stats_.snapshot_reads.fetch_add(tx.reads_, std::memory_order_relaxed);
      if (profile) profile->record_commit(core::cycle_now() - started);
      return;
    }
  }

  /// Attach (or detach, with nullptr) a cycle-accurate attempt profile.
  /// Attach before spawning workers; the profile must outlive them.
  void attach_profile(core::AttemptProfile* profile) noexcept {
    profile_ = profile;
  }

  [[nodiscard]] const StmStats& stats() const noexcept { return stats_; }

  /// Region registration, accepted for API parity with stm::Stm and
  /// otherwise ignored: NOrec has no lock table to place — conflicts are
  /// value conflicts on the one global seqlock, so there is no placement to
  /// improve and nothing that could manufacture a false conflict
  /// (StmStats::false_conflicts and ::stripe_collisions stay zero by
  /// construction, which is exactly what makes NOrec the untouched control
  /// substrate in placement experiments).  Degenerate specs are rejected
  /// identically to TL2 (shared validate_region_spec), so a consumer
  /// tested on one substrate cannot smuggle a bad region past the other.
  void register_region(const RegionSpec& spec) { validate_region_spec(spec); }

  /// Direct read of a committed cell; safe only with no transactions in
  /// flight.
  [[nodiscard]] static std::uint64_t read_committed(const Cell& cell) {
    return cell.value.load(std::memory_order_relaxed);
  }

 private:
  friend class NorecTx;
  friend class NorecReadTx;
  friend struct NorecTestPeek;  // white-box kill-protocol tests

  /// The calling thread's reusable transaction buffers (distinct from TL2's
  /// so *sequential* interleaving of substrates on one thread stays safe;
  /// nesting across substrates is rejected — the thread's descriptor is
  /// shared, see TxThreadScope).
  [[nodiscard]] static TxBuffers& thread_buffers() noexcept;

  /// Stamp per-transaction seniority onto the thread's descriptor (skipped
  /// for purely local arbiters — see Stm::begin_transaction).
  void begin_transaction(TxDescriptor& descriptor) noexcept;

  /// Wait for the seqlock to go even; returns the even value, or nullopt if
  /// the arbiter sacrificed the requestor (or the requestor was remotely
  /// killed) first.  The quick path (seqlock already even — every read on
  /// an uncontended run) stays small enough to inline into read(); the
  /// contended tail runs the shared conflict::drive_spin_site driver, and
  /// resolved waits are reported back through ConflictArbiter::feedback.
  [[nodiscard]] std::optional<std::uint64_t> await_even(NorecTx& tx) {
    const std::uint64_t state = seqlock_.load(std::memory_order_acquire);
    if ((state & 1) == 0) return state;
    return await_even_contended(tx);
  }
  [[nodiscard]] std::optional<std::uint64_t> await_even_contended(NorecTx& tx);

  /// Abort cost estimate B handed to the arbiter at every conflict.
  static constexpr double kAbortCostEstimate = 256.0;

  /// Value-based validation: re-read every logged location under a stable
  /// even seqlock.  Returns the seqlock value validated against, or nullopt
  /// on a value change (the transaction must abort).
  [[nodiscard]] std::optional<std::uint64_t> validate(NorecTx& tx);

  [[nodiscard]] bool try_commit(NorecTx& tx);

  std::shared_ptr<const conflict::ConflictArbiter> arbiter_;
  /// arbiter_->needs_seniority(), cached at construction (see
  /// Stm::needs_seniority_).
  bool needs_seniority_ = true;
  std::atomic<std::uint64_t> seqlock_{0};  // even: free; odd: committing
  /// Descriptor of the in-flight committer, published while the seqlock is
  /// odd so waiters can weigh and kill it; null otherwise.  Points at slab
  /// storage (conflict::thread_descriptor), so chasing a stale pointer
  /// after release is safe — the worst outcome is a spurious kill of the
  /// owner's next attempt, which aborts and retries.
  std::atomic<TxDescriptor*> committer_{nullptr};
  std::atomic<std::uint64_t> start_ticket_{0};  // Timestamp/Greedy seniority
  StmStats stats_;
  core::AttemptProfile* profile_ = nullptr;
};

}  // namespace txc::stm
