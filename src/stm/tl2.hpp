// txconflict — a TL2-style software transactional memory with a grace-period
// contention manager.
//
// The paper's Figure 3 caption references a TL2 benchmark, and its Section 9
// names a full TM implementation as future work; this module demonstrates the
// conflict policies inside a real multi-threaded TM.  The design is the
// classic TL2 recipe (Dice, Shalev, Shavit 2006):
//   * a global version clock;
//   * a striped table of versioned write-locks (one word per stripe:
//     LSB = locked, upper bits = version);
//   * transactional reads validate stripe versions against the read
//     timestamp; writes are buffered;
//   * commit: acquire write locks, bump the clock, validate the read set,
//     write back, release with the new version.
//
// The contention-manager hook is where the paper plugs in: when a read or a
// lock acquisition hits a locked stripe, the transaction consults a
// core::GracePeriodPolicy for how long to keep waiting for the lock holder
// before sacrificing itself — the requestor-aborts flavor of the
// transactional conflict problem (in an STM the requestor cannot abort the
// lock holder remotely, so requestor-aborts is the natural mode).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/policy.hpp"
#include "sim/rng.hpp"
#include "stm/cm.hpp"

namespace txc::stm {

/// A transactionally-managed 64-bit cell.  Cells live wherever the user
/// wants; the STM maps them to lock stripes by address.
struct Cell {
  std::atomic<std::uint64_t> value{0};
};

struct StmStats {
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> lock_waits{0};    // contention-manager invocations
  std::atomic<std::uint64_t> remote_kills{0};  // enemies aborted by a manager
};

class Stm;

/// Thrown internally to unwind an attempt; user code never sees it.
struct TxAbort {};

/// Per-attempt transaction context.  Obtained from Stm::atomically.
class Tx {
 public:
  /// Transactional read with TL2 pre/post validation.
  [[nodiscard]] std::uint64_t read(const Cell& cell);

  /// Buffered transactional write.
  void write(Cell& cell, std::uint64_t value);

  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  friend class Stm;
  Tx(Stm& stm, std::uint32_t attempt, std::uint64_t read_version)
      : stm_(stm), attempt_(attempt), read_version_(read_version) {}

  Stm& stm_;
  std::uint32_t attempt_;
  std::uint64_t read_version_;
  TxDescriptor* descriptor_ = nullptr;
  std::vector<const Cell*> read_set_;
  std::unordered_map<Cell*, std::uint64_t> write_set_;
};

class Stm {
 public:
  /// `policy` decides how long a blocked transaction waits for a lock holder
  /// (in spin iterations ~ "cycles") before aborting itself — the paper's
  /// local grace-period regime, run through the GracePolicyCm adapter.
  explicit Stm(std::shared_ptr<const core::GracePeriodPolicy> policy,
               std::size_t stripes = 1 << 16);

  /// Full contention-manager mode: conflicts are resolved by `cm`, which may
  /// wait, abort the requestor, or remotely kill the lock holder (the classic
  /// global-knowledge managers of Scherer & Scott).
  explicit Stm(std::shared_ptr<const ContentionManager> cm,
               std::size_t stripes = 1 << 16);

  /// Run `body` as a transaction, retrying on aborts until it commits.
  void atomically(const std::function<void(Tx&)>& body);

  [[nodiscard]] const StmStats& stats() const noexcept { return stats_; }

  /// Direct (non-transactional) read of a committed cell value; safe only
  /// when no transactions are in flight (e.g. after joining threads).
  [[nodiscard]] static std::uint64_t read_committed(const Cell& cell) {
    return cell.value.load(std::memory_order_relaxed);
  }

 private:
  friend class Tx;

  struct Stripe {
    std::atomic<std::uint64_t> versioned_lock{0};  // LSB locked, rest version
    /// Descriptor of the lock holder, published while locked so contention
    /// managers can inspect and kill it.  Points at thread-local storage;
    /// only dereferenced while the stripe is locked (the holder is alive).
    std::atomic<TxDescriptor*> holder{nullptr};
  };

  [[nodiscard]] Stripe& stripe_for(const void* address) noexcept;
  [[nodiscard]] bool try_commit(Tx& tx);
  /// Run the contention manager against a held stripe until the lock clears
  /// (true: retry the operation) or the manager sacrifices the requestor /
  /// the requestor was remotely killed (false: abort).
  [[nodiscard]] bool resolve_conflict(Stripe& stripe, Tx& tx);

  std::shared_ptr<const ContentionManager> cm_;
  std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> start_ticket_{0};  // Timestamp/Greedy seniority
  StmStats stats_;
};

}  // namespace txc::stm
