// txconflict — a TL2-style software transactional memory with a grace-period
// contention manager.
//
// The paper's Figure 3 caption references a TL2 benchmark, and its Section 9
// names a full TM implementation as future work; this module demonstrates the
// conflict policies inside a real multi-threaded TM.  The design is the
// classic TL2 recipe (Dice, Shalev, Shavit 2006):
//   * a global version clock;
//   * a striped table of versioned write-locks (one word per stripe:
//     LSB = locked, upper bits = version);
//   * transactional reads validate stripe versions against the read
//     timestamp; writes are buffered;
//   * commit: acquire write locks, bump the clock, validate the read set,
//     write back, release with the new version.
//
// The conflict-arbitration hook is where the paper plugs in: when a read or
// a lock acquisition hits a locked stripe, the transaction builds a
// conflict::ConflictView (its own and the holder's descriptors, the abort
// cost estimate, how long it has waited) and asks the shared ConflictArbiter
// to wait a quantum, abort itself, or kill the holder; resolved conflicts
// are reported back through the arbiter's feedback channel so adaptive
// arbiters learn the transaction-length distribution online.  The
// policy-taking constructor wraps a core::GracePeriodPolicy in a
// requestor-aborts conflict::GraceArbiter — the paper's classic STM regime,
// where the requestor only ever sacrifices itself; pass an arbiter directly
// to run requestor-wins policies (which kill the holder after the grace
// period via the descriptor kill protocol) or any other arbitration scheme.
//
// Hot path: atomically() is a template over the transaction body (no
// std::function indirection) and every attempt runs on the calling thread's
// reusable TxBuffers — open-addressing flat read/write sets cleared, not
// freed, between attempts (stm/tx_buffers.hpp).  Steady-state transactions
// perform zero heap allocations; docs/ARCHITECTURE.md ("The zero-allocation
// STM fast path") has the memory-layout diagram.  Transactions are flat:
// nesting an atomically() inside a transaction body is not supported (the
// thread's buffers and descriptor are single-occupancy).
//
// Declared-read-only traffic has its own tier: atomically_read() runs the
// body under a ReadTx snapshot context (TL2's classic read-only mode) that
// accrues no read set, validates nothing at commit, publishes no
// descriptor, and never consults the arbiter — a snapshot reader never
// enters a spin site.  The mode is a compile-time contract (ReadTx has no
// write()), not an options hint.
//
// Lock-table placement: by default any address hashes onto one shared
// power-of-two stripe table (mix_pointer & mask) — compact, but unrelated
// hot cells can alias onto one stripe and manufacture conflicts no data
// race justifies.  A consumer that owns a contiguous cell array can
// register it via register_region(RegionSpec): the region gets a DEDICATED
// stripe table and deterministic coprime-stride placement — stripe =
// (element_index * V) mod table_size with V odd — so on the power-of-two
// table the map index -> stripe is a bijection and two distinct elements
// are PROVABLY on distinct stripes whenever the table is at least as large
// as the region (collision shell 1); an undersized table degrades to a
// bounded shell of ceil(elements/table) elements per stripe, reported by
// stripe_geometry().  Unregistered addresses keep the hashed fallback.
// False conflicts (a conflict whose stripe was last locked for a DIFFERENT
// cell) and write-set stripe collisions are counted in StmStats so the
// placement effect is attributable; docs/ARCHITECTURE.md ("Lock-table
// placement") has the math and the NUMA first-touch notes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "conflict/arbiter.hpp"
#include "conflict/descriptor.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "mem/reclaim.hpp"
#include "sim/rng.hpp"
#include "stm/cell.hpp"
#include "stm/options.hpp"
#include "stm/tx_buffers.hpp"

namespace txc::mem {
class TxPool;  // mem/tx_pool.hpp — tx_alloc/tx_free are defined in tl2.cpp
}  // namespace txc::mem

namespace txc::stm {

// The descriptor vocabulary is shared with every other conflict site; the
// txc::stm spellings are kept for the substrates' own code and callers.
// (Cell itself moved to the leaf header stm/cell.hpp so the memory layer can
// name it without a substrate dependency; it is still spelled stm::Cell.)
using conflict::thread_descriptor;
using conflict::TxDescriptor;
using conflict::TxStatus;

struct StmStats {
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> lock_waits{0};    // conflict-arbiter invocations
  std::atomic<std::uint64_t> remote_kills{0};  // enemies killed by the arbiter
  /// Attempts that observed a remote kill while holding commit-time state
  /// (TL2: write-locked stripes; NOrec: the odd seqlock) and unwound it
  /// cleanly before write-back — the recoveries the killable-committer
  /// protocol exists for.  On a single-substrate run this never exceeds
  /// remote_kills (kills landing on waiters or readers unwind without
  /// commit-time state).
  std::atomic<std::uint64_t> kill_recoveries{0};

  // -- Lock-table placement telemetry --------------------------------------

  /// Conflicts whose stripe was last write-locked on behalf of a DIFFERENT
  /// cell than the one being probed: the conflict is an artifact of
  /// lock-table placement (two disjoint addresses sharing one stripe), not
  /// of data contention.  Counted at every instrumented conflict site —
  /// read probe, commit lock acquisition, commit read-validation — by
  /// comparing the probed cell against the stripe's last-locked-for address
  /// (best-effort attribution: the culprit word is relaxed telemetry, see
  /// Stripe::locked_for).  NOrec has no lock table and leaves this at zero
  /// — every NOrec conflict is a real value conflict.
  std::atomic<std::uint64_t> false_conflicts{0};
  /// Commit attempts' write-set entries that mapped onto a stripe the same
  /// transaction had already locked for a DIFFERENT cell (the acquisition
  /// dedup hit).  Deterministic, unlike false_conflicts: counted whether or
  /// not anyone else is running — the direct measure of placement quality
  /// for a single transaction's footprint.  Zero by construction for
  /// regions whose table is at least element-count sized.
  std::atomic<std::uint64_t> stripe_collisions{0};

  // -- Declared-read-only snapshot fast path (atomically_read) -------------
  // Snapshot transactions are accounted separately from instrumented ones:
  // they never publish a descriptor, never consult the arbiter, and their
  // restarts are not aborts in the contention-management sense (no enemy,
  // no arbitration, no credit).  Keeping the ledgers apart is what lets a
  // read-mostly run show exactly how much traffic left the instrumented
  // path.

  /// atomically_read() bodies that ran to completion on a stable snapshot.
  std::atomic<std::uint64_t> snapshot_commits{0};
  /// Snapshot attempts restarted because a concurrent commit moved the
  /// clock/seqlock mid-body (the snapshot analog of an abort; never
  /// arbitrated — the reader just resamples and re-runs).
  std::atomic<std::uint64_t> snapshot_restarts{0};
  /// Reads served by the snapshot fast path: no read-set/log accrual, no
  /// commit-time validation.
  std::atomic<std::uint64_t> snapshot_reads{0};
  /// Reads served by instrumented contexts (Tx/NorecTx), aborted attempts
  /// included — the denominator for "how much read traffic still pays for
  /// read-set accrual".
  std::atomic<std::uint64_t> instrumented_reads{0};
};

class Stm;

/// Thrown internally to unwind an attempt; user code never sees it.
struct TxAbort {};

/// Per-attempt transaction context.  Obtained from Stm::atomically.  Holds
/// borrowed views of the thread's descriptor and TxBuffers; owns nothing.
class Tx {
 public:
  /// Transactional read with TL2 pre/post validation.
  [[nodiscard]] std::uint64_t read(const Cell& cell);

  /// Buffered transactional write.
  void write(Cell& cell, std::uint64_t value);

  /// Speculative block allocation from `pool`.  Returns the block's first
  /// cell, or nullptr on pool exhaustion (a clean in-transaction failure —
  /// no abort is thrown; the body decides, e.g. returns a full/false status
  /// and commits).  On abort — TxAbort, remote kill, or a user exception —
  /// the block is recycled automatically; on commit it stays live.  The
  /// block's cells are ordinary transactional cells: initialize them with
  /// write() so the initialization commits or vanishes with the attempt.
  [[nodiscard]] Cell* tx_alloc(mem::TxPool& pool);

  /// Speculative free of a pool block: deferred, published to the pool's
  /// limbo only after this attempt commits (post write-back); dropped if the
  /// attempt aborts.  `block` must be the pointer tx_alloc (or
  /// bootstrap_alloc) returned.  Double frees are detected by the pool and
  /// dropped (stats().double_free_rejects), never fatal.
  void tx_free(mem::TxPool& pool, Cell* block);

  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  friend class Stm;
  Tx(Stm& stm, std::uint32_t attempt, std::uint64_t read_version,
     TxDescriptor* descriptor, TxBuffers* buffers) noexcept
      : stm_(stm),
        attempt_(attempt),
        read_version_(read_version),
        descriptor_(descriptor),
        buffers_(buffers) {}

  /// Flush locally-accumulated Karma work credit to the shared descriptor.
  /// Reads bump a plain counter (no atomic RMW per read); the total is
  /// published at every point where another thread may inspect the
  /// descriptor — before lock acquisition, before consulting the contention
  /// manager, and before unwinding an attempt (credit survives aborts).
  void publish_priority() noexcept {
    conflict::publish_credit(*descriptor_, pending_priority_);
  }

  Stm& stm_;
  std::uint32_t attempt_;
  std::uint64_t read_version_;
  TxDescriptor* descriptor_;
  TxBuffers* buffers_;
  /// Work credit accumulated since the last publish_priority() flush (the
  /// flush zeroes it — credit moves to the shared descriptor).
  std::uint64_t pending_priority_ = 0;
  /// Total reads this attempt (never reset mid-attempt, unlike
  /// pending_priority_); flushed to StmStats::instrumented_reads once per
  /// attempt by atomically().
  std::uint64_t reads_ = 0;
};

/// Per-attempt context of a declared-read-only snapshot transaction
/// (Stm::atomically_read).  Exposes only read() — writing inside a read
/// transaction is a compile error, not a debug assert.
///
/// This is TL2's classic read-only mode (Dice, Shalev, Shavit 2006, §3.2):
/// each read is validated against the attempt's clock sample on the spot
/// (stripe unlocked, version <= read_version, stable across the value load),
/// so the whole body observes one committed state and nothing needs
/// re-validating at the end.  The context therefore carries no read set, no
/// descriptor, and no arbiter hook: a snapshot reader never publishes
/// anything another thread could inspect and never enters a spin site.
class ReadTx {
 public:
  /// Snapshot read: validated in place against the attempt's clock sample.
  [[nodiscard]] std::uint64_t read(const Cell& cell);

  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  friend class Stm;
  ReadTx(Stm& stm, std::uint32_t attempt, std::uint64_t read_version) noexcept
      : stm_(stm), attempt_(attempt), read_version_(read_version) {}

  Stm& stm_;
  std::uint32_t attempt_;
  std::uint64_t read_version_;
  std::uint64_t reads_ = 0;  // flushed to StmStats once per attempt
};

class Stm {
 public:
  /// The per-attempt transaction context type — the substrate-generic name
  /// generic code templates over (`typename Substrate::TxContext`).
  using TxContext = Tx;

  /// The declared-read-only snapshot context (`typename
  /// Substrate::ReadTxContext`): read() only, handed out by
  /// atomically_read().  A write under it does not compile.
  using ReadTxContext = ReadTx;

  /// `policy` decides how long a blocked transaction waits for a lock holder
  /// (in spin iterations ~ "cycles") before aborting itself — the paper's
  /// local grace-period regime, wrapped in a requestor-aborts
  /// conflict::GraceArbiter.  `stripes` (the hashed fallback table size) is
  /// rounded up to a power of two — observable via stripe_geometry(); 0 is
  /// rejected with std::invalid_argument (it used to coerce silently to 1,
  /// a 100%-collision table nobody ever wants).
  explicit Stm(std::shared_ptr<const core::GracePeriodPolicy> policy,
               std::size_t stripes = 1 << 16);

  /// Full arbitration mode: conflicts are resolved by `arbiter`, which may
  /// wait, abort the requestor, or remotely kill the lock holder (the
  /// classic global-knowledge managers of Scherer & Scott, a mode-aware
  /// GraceArbiter, the learning AdaptiveArbiter, ...).
  explicit Stm(std::shared_ptr<const conflict::ConflictArbiter> arbiter,
               std::size_t stripes = 1 << 16);

  /// Run `body` as a transaction, retrying on aborts until it commits.
  /// Thin forwarding shim over the TxOptions overload (default options).
  template <typename Body>
  void atomically(Body&& body) {
    atomically(TxOptions{}, std::forward<Body>(body));
  }

  /// Run `body` as a transaction under the declared `options`, retrying on
  /// aborts until it commits.  Template fast path: the body is invoked
  /// directly (no std::function) and read/write sets come from the calling
  /// thread's reusable TxBuffers.  (TxOptions is currently empty — the
  /// overload keeps the substrate-generic arity; declared-read-only work
  /// belongs on atomically_read(), where the promise is a compile-time
  /// contract and the snapshot fast path applies.)
  template <typename Body>
  void atomically(const TxOptions& options, Body&& body) {
    (void)options;
    TxDescriptor& descriptor = thread_descriptor();
    TxBuffers& buffers = thread_buffers();
    TxBuffersScope scope{buffers};  // debug: reject nested transactions
    [[maybe_unused]] TxThreadScope thread_scope;  // debug: across substrates
    // Epoch pin for transactional pool reclamation: while this transaction
    // is in flight, no pool block freed at or after the pinned epoch can be
    // recycled out from under a pointer the body may still dereference.
    // One relaxed load when no TxPool exists (mem/reclaim.hpp).
    mem::reclaim::EpochPinGuard epoch_pin;
    begin_transaction(descriptor);
    core::AttemptProfile* const profile = profile_;
    for (std::uint32_t attempt = 0;; ++attempt) {
      buffers.clear();
      const std::uint64_t started = profile ? core::cycle_now() : 0;
      descriptor.status.store(static_cast<std::uint32_t>(TxStatus::kActive),
                              std::memory_order_release);
      Tx tx{*this, attempt, clock_.load(std::memory_order_acquire),
            &descriptor, &buffers};
      bool unwound = false;
      try {
        body(tx);
      } catch (const TxAbort&) {
        unwound = true;
      } catch (...) {
        // A user exception escapes the atomic block: the attempt's buffered
        // writes are already dead, but speculative pool allocations must
        // not leak — recycle them before propagating.
        if (!buffers.alloc_log.empty() || !buffers.free_log.empty()) {
          rollback_pool_log(buffers);
        }
        throw;
      }
      if (!unwound && try_commit(tx)) {
        // Publish deferred pool frees only now: write-back completed and
        // the locks are released, so the freed blocks' unlinking is
        // globally visible before the blocks can be rehanded out.
        if (!buffers.free_log.empty() || !buffers.alloc_log.empty()) {
          commit_pool_log(buffers);
        }
        stats_.commits.fetch_add(1, std::memory_order_relaxed);
        stats_.instrumented_reads.fetch_add(tx.reads_,
                                            std::memory_order_relaxed);
        if (profile) profile->record_commit(core::cycle_now() - started);
        return;
      }
      // Aborted attempt (body unwound or commit failed, including arbiter
      // kills landing at any injection point): recycle this attempt's
      // speculative allocations and drop its deferred frees.
      if (!buffers.alloc_log.empty() || !buffers.free_log.empty()) {
        rollback_pool_log(buffers);
      }
      stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      stats_.instrumented_reads.fetch_add(tx.reads_,
                                          std::memory_order_relaxed);
      if (profile) profile->record_abort(core::cycle_now() - started);
    }
  }

  /// Run `body` as a declared-read-only snapshot transaction, retrying until
  /// it completes on a stable snapshot.  The body receives a ReadTxContext —
  /// read() only; a write does not compile.
  ///
  /// The fast path this buys over an instrumented atomically(): zero
  /// read-set accrual, no commit-time validation (each read validates in
  /// place against the attempt's clock sample), no descriptor publication,
  /// no TxBuffers, and no arbiter involvement — a snapshot reader never
  /// enters a spin site and never blocks or kills a writer.  The body may
  /// re-run (same contract as atomically()); every value it observes is
  /// consistent with the single committed state at the clock sample, so
  /// multi-cell invariants hold mid-body (opacity).
  template <typename Body>
  void atomically_read(Body&& body) {
    // Snapshot readers pin the reclamation epoch too: a pointer loaded from
    // a snapshot may dangle into a pool block whose free committed after
    // the snapshot was taken — the pin keeps the block's memory alive (its
    // cells readable; per-read validation rejects the stale values) until
    // the reader finishes.  Still zero-allocation and arbiter-free.
    mem::reclaim::EpochPinGuard epoch_pin;
    core::AttemptProfile* const profile = profile_;
    for (std::uint32_t attempt = 0;; ++attempt) {
      const std::uint64_t started = profile ? core::cycle_now() : 0;
      ReadTx tx{*this, attempt, clock_.load(std::memory_order_acquire)};
      try {
        body(tx);
      } catch (const TxAbort&) {
        stats_.snapshot_restarts.fetch_add(1, std::memory_order_relaxed);
        stats_.snapshot_reads.fetch_add(tx.reads_, std::memory_order_relaxed);
        if (profile) profile->record_abort(core::cycle_now() - started);
        continue;
      }
      stats_.snapshot_commits.fetch_add(1, std::memory_order_relaxed);
      stats_.snapshot_reads.fetch_add(tx.reads_, std::memory_order_relaxed);
      if (profile) profile->record_commit(core::cycle_now() - started);
      return;
    }
  }

  /// Attach (or detach, with nullptr) a cycle-accurate attempt profile.
  /// Not thread-safe against in-flight transactions: attach before spawning
  /// workers.  The profile must outlive every transaction that sees it.
  void attach_profile(core::AttemptProfile* profile) noexcept {
    profile_ = profile;
  }

  [[nodiscard]] const StmStats& stats() const noexcept { return stats_; }

  // -- Region-scoped lock-table placement ----------------------------------

  /// Register a contiguous cell array for deterministic lock placement: the
  /// region gets its own stripe table (NUMA-interleaved first-touch pages)
  /// and stripe indices computed from element indices via an odd multiplier
  /// — a bijection on the power-of-two table, so distinct elements get
  /// distinct stripes up to table capacity.  Addresses outside every
  /// registered region keep the hashed fallback table.
  ///
  /// Rejects (std::invalid_argument) degenerate specs — null base, zero
  /// elements/stride, an even placement_stride — and regions overlapping a
  /// previously registered one (overlap would make placement ambiguous).
  /// NOT thread-safe against in-flight transactions: register regions at
  /// setup time, before spawning workers (same contract as attach_profile).
  void register_region(const RegionSpec& spec);

  /// Geometry of one registered region's dedicated stripe table, as chosen
  /// (after rounding/defaulting) — the observable half of register_region.
  struct RegionGeometry {
    const void* base = nullptr;
    std::size_t elements = 0;
    std::size_t stride_bytes = 0;
    std::size_t stripes = 0;              // power-of-two table size
    std::uint64_t placement_stride = 0;   // the odd multiplier in use
    /// ceil(elements / stripes): the most elements any one stripe can host.
    /// 1 = distinct elements provably on distinct stripes.
    std::size_t collision_shell = 0;
  };

  /// The chosen lock-table geometry.  Exists because the constructor rounds
  /// `stripes` to a power of two and register_region defaults/rounds table
  /// sizes — this accessor makes every silent choice observable (tests and
  /// the geometry bench build placement-adversarial key sets from it).
  struct StripeGeometry {
    std::size_t requested_stripes = 0;  // the constructor argument, verbatim
    std::size_t hashed_stripes = 0;     // actual fallback table size (pow-2)
    std::vector<RegionGeometry> regions;
  };
  [[nodiscard]] StripeGeometry stripe_geometry() const;

  /// One-line human-readable geometry summary for stats dumps and bench
  /// banners.
  [[nodiscard]] std::string describe_geometry() const;

  /// Identity of the stripe `address` maps to (an opaque pointer: equal
  /// results == same lock).  Debug/test hook for proving aliasing and
  /// distinctness; not for hot paths.
  [[nodiscard]] const void* debug_stripe_of(const void* address) noexcept {
    return &stripe_for(address);
  }

  /// Direct (non-transactional) read of a committed cell value; safe only
  /// when no transactions are in flight (e.g. after joining threads).
  [[nodiscard]] static std::uint64_t read_committed(const Cell& cell) {
    return cell.value.load(std::memory_order_relaxed);
  }

 private:
  friend class Tx;
  friend class ReadTx;

  struct Stripe {
    std::atomic<std::uint64_t> versioned_lock{0};  // LSB locked, rest version
    /// Descriptor of the lock holder, published while locked so contention
    /// managers can inspect and kill it.  Points at slab storage
    /// (stm::thread_descriptor); only dereferenced while the stripe is
    /// locked (the holder is alive).
    std::atomic<TxDescriptor*> holder{nullptr};
    /// Telemetry: the cell this stripe was most recently write-locked FOR
    /// (set at acquisition, never cleared — "last locked for").  A conflict
    /// probe on a different cell than this word is a false conflict: the
    /// addresses are disjoint and only placement made them share a lock.
    /// Relaxed, best-effort attribution — a mid-race mismatch miscounts a
    /// conflict, never affects correctness.
    std::atomic<const void*> locked_for{nullptr};
  };

  /// Raw stripe storage with NUMA-interleaved first touch: construction is
  /// partitioned into page-sized chunks executed round-robin on node-pinned
  /// threads (core/numa.hpp), so no single node's memory controller owns
  /// all lock-word traffic.  A std::vector would defeat this — it
  /// value-initializes sequentially on the constructing thread, faulting
  /// every page onto one node.  Single-node machines construct inline.
  class StripeTable {
   public:
    StripeTable() = default;
    explicit StripeTable(std::size_t count);
    ~StripeTable();
    StripeTable(StripeTable&& other) noexcept
        : data_(other.data_), count_(other.count_) {
      other.data_ = nullptr;
      other.count_ = 0;
    }
    StripeTable& operator=(StripeTable&& other) noexcept;
    StripeTable(const StripeTable&) = delete;
    StripeTable& operator=(const StripeTable&) = delete;
    [[nodiscard]] Stripe* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }

   private:
    Stripe* data_ = nullptr;
    std::size_t count_ = 0;
  };

  /// One registered region: resolved placement parameters plus the
  /// dedicated table.  Kept flat so the stripe_for scan touches one
  /// contiguous struct per region.
  struct Region {
    std::uintptr_t base = 0;
    std::uintptr_t span = 0;  // elements * stride, in bytes
    std::size_t stride = 0;
    unsigned stride_shift = 0;  // valid when stride_is_pow2
    bool stride_is_pow2 = false;
    std::uint64_t placement_stride = 0;  // odd: bijective on the pow-2 table
    std::uint64_t mask = 0;              // table size - 1
    std::size_t elements = 0;
    StripeTable table;
  };

  /// The calling thread's reusable transaction buffers (shared across Stm
  /// instances — transactions are flat, so at most one is live per thread).
  [[nodiscard]] static TxBuffers& thread_buffers() noexcept;
  /// Stamp per-transaction seniority onto the thread's descriptor.
  void begin_transaction(TxDescriptor& descriptor) noexcept;
  [[nodiscard]] Stripe& stripe_for(const void* address) noexcept;
  /// Classify an observed conflict on `stripe` while probing `address`:
  /// when the stripe was last locked for a different cell, the conflict is
  /// a placement artifact — count it (stats + attached profile).
  void note_conflict(const Stripe& stripe, const void* address) noexcept;
  [[nodiscard]] bool try_commit(Tx& tx);
  /// Run the conflict arbiter against a held stripe until the lock clears
  /// (true: retry the operation) or the arbiter sacrifices the requestor /
  /// the requestor was remotely killed (false: abort).  The loop itself is
  /// the shared conflict::drive_spin_site driver (conflict/spin_site.hpp);
  /// this site contributes the stripe probes and the holder-descriptor kill
  /// protocol.  Resolved conflicts are reported back through
  /// ConflictArbiter::feedback.
  [[nodiscard]] bool resolve_conflict(Stripe& stripe, Tx& tx);

  /// Abort cost estimate B handed to the arbiter at every conflict (spin
  /// iterations; matches the historical GracePolicyCm default).
  static constexpr double kAbortCostEstimate = 256.0;

  std::shared_ptr<const conflict::ConflictArbiter> arbiter_;
  /// arbiter_->needs_seniority(), cached at construction: the answer never
  /// changes, and begin_transaction runs once per transaction — no reason
  /// to pay a virtual dispatch there.
  bool needs_seniority_ = true;
  std::size_t requested_stripes_ = 0;  // pre-rounding constructor argument
  StripeTable stripes_;  // hashed fallback; power-of-two, see stripe_mask_
  std::uint64_t stripe_mask_ = 0;
  /// Registered regions, scanned linearly in stripe_for (region counts are
  /// small — shards, not keys).  Mutated only by register_region, which is
  /// not thread-safe against in-flight transactions.
  std::vector<Region> regions_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> start_ticket_{0};  // Timestamp/Greedy seniority
  StmStats stats_;
  core::AttemptProfile* profile_ = nullptr;
};

}  // namespace txc::stm
