#include "stm/cm.hpp"

namespace txc::stm {

namespace {

/// Enemy vanished (released or never published): retrying the lock is all
/// that is needed — a single quantum wait re-checks.
bool enemy_gone(const CmView& view) noexcept {
  return view.enemy == nullptr ||
         view.enemy->load_status() != TxStatus::kActive;
}

}  // namespace

// ---------------------------------------------------------------------------
// Polite
// ---------------------------------------------------------------------------

CmDecision PoliteCm::on_conflict(const CmView& view, sim::Rng&) const {
  if (enemy_gone(view)) return CmDecision::kWait;
  return view.waits_so_far >= max_rounds_ ? CmDecision::kAbortEnemy
                                          : CmDecision::kWait;
}

std::uint64_t PoliteCm::wait_quantum(const CmView& view) const noexcept {
  // Exponential: 2^round quanta, capped at 2^max_rounds.
  const std::uint64_t round =
      view.waits_so_far < max_rounds_ ? view.waits_so_far : max_rounds_;
  return std::uint64_t{16} << round;
}

// ---------------------------------------------------------------------------
// Karma
// ---------------------------------------------------------------------------

CmDecision KarmaCm::on_conflict(const CmView& view, sim::Rng&) const {
  if (enemy_gone(view)) return CmDecision::kWait;
  const std::uint64_t mine =
      view.self->priority.load(std::memory_order_relaxed) + view.waits_so_far;
  const std::uint64_t theirs =
      view.enemy->priority.load(std::memory_order_relaxed);
  return mine > theirs ? CmDecision::kAbortEnemy : CmDecision::kWait;
}

// ---------------------------------------------------------------------------
// Timestamp
// ---------------------------------------------------------------------------

CmDecision TimestampCm::on_conflict(const CmView& view, sim::Rng&) const {
  if (enemy_gone(view)) return CmDecision::kWait;
  const std::uint64_t mine =
      view.self->start_time.load(std::memory_order_relaxed);
  const std::uint64_t theirs =
      view.enemy->start_time.load(std::memory_order_relaxed);
  if (mine < theirs) return CmDecision::kAbortEnemy;  // seniority wins
  return view.waits_so_far >= patience_ ? CmDecision::kAbortSelf
                                        : CmDecision::kWait;
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

CmDecision GreedyCm::on_conflict(const CmView& view, sim::Rng&) const {
  if (enemy_gone(view)) return CmDecision::kWait;
  const std::uint64_t mine =
      view.self->start_time.load(std::memory_order_relaxed);
  const std::uint64_t theirs =
      view.enemy->start_time.load(std::memory_order_relaxed);
  return mine < theirs ? CmDecision::kAbortEnemy : CmDecision::kWait;
}

// ---------------------------------------------------------------------------
// Polka
// ---------------------------------------------------------------------------

CmDecision PolkaCm::on_conflict(const CmView& view, sim::Rng&) const {
  if (enemy_gone(view)) return CmDecision::kWait;
  const std::uint64_t mine =
      view.self->priority.load(std::memory_order_relaxed);
  const std::uint64_t theirs =
      view.enemy->priority.load(std::memory_order_relaxed);
  const std::uint64_t gap = theirs > mine ? theirs - mine : 0;
  return view.waits_so_far > gap ? CmDecision::kAbortEnemy : CmDecision::kWait;
}

std::uint64_t PolkaCm::wait_quantum(const CmView& view) const noexcept {
  const std::uint64_t round =
      view.waits_so_far < 12 ? view.waits_so_far : 12;
  return std::uint64_t{16} << round;
}

// ---------------------------------------------------------------------------
// GracePolicyCm
// ---------------------------------------------------------------------------

CmDecision GracePolicyCm::on_conflict(const CmView& view,
                                      sim::Rng& rng) const {
  // Local decision: no enemy inspection at all.  The wrapped policy draws
  // Delta exactly once per conflict (cached in the caller's scratch); the
  // manager waits in quanta until Delta is exhausted, then self-aborts —
  // requestor-aborts semantics, the paper's STM case.
  double grace;
  if (view.scratch != nullptr && *view.scratch >= 0.0) {
    grace = *view.scratch;
  } else {
    core::ConflictContext context;
    context.abort_cost = abort_cost_;
    context.chain_length = 2;
    context.attempt = view.attempt;
    grace = policy_->grace_period(context, rng);
    if (view.scratch != nullptr) *view.scratch = grace;
  }
  const double waited = static_cast<double>(view.waits_so_far) *
                        static_cast<double>(wait_quantum(view));
  return waited < grace ? CmDecision::kWait : CmDecision::kAbortSelf;
}

std::uint64_t GracePolicyCm::wait_quantum(const CmView&) const noexcept {
  return 32;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

const char* to_string(CmKind kind) noexcept {
  switch (kind) {
    case CmKind::kPolite: return "Polite";
    case CmKind::kKarma: return "Karma";
    case CmKind::kTimestamp: return "Timestamp";
    case CmKind::kGreedy: return "Greedy";
    case CmKind::kPolka: return "Polka";
  }
  return "?";
}

std::shared_ptr<const ContentionManager> make_cm(CmKind kind) {
  switch (kind) {
    case CmKind::kPolite: return std::make_shared<PoliteCm>();
    case CmKind::kKarma: return std::make_shared<KarmaCm>();
    case CmKind::kTimestamp: return std::make_shared<TimestampCm>();
    case CmKind::kGreedy: return std::make_shared<GreedyCm>();
    case CmKind::kPolka: return std::make_shared<PolkaCm>();
  }
  return std::make_shared<PoliteCm>();
}

}  // namespace txc::stm
