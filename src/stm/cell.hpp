// txconflict — the transactional cell, as a dependency-free leaf header.
//
// Cell is the unit of transactional state shared by every substrate (TL2,
// NOrec, both snapshot read contexts) and, since the TxPool subsystem, by the
// memory layer too: a mem::TxPool hands out blocks of contiguous Cells, so
// mem/ needs the type without pulling in a whole substrate header.  stm/tl2.hpp
// includes and re-exports it, so substrate code and consumers keep spelling
// it stm::Cell exactly as before.
#pragma once

#include <atomic>
#include <cstdint>

namespace txc::stm {

/// A transactionally-managed 64-bit cell.  Cells live wherever the user
/// wants; the STM maps them to lock stripes by address.
struct Cell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace txc::stm
