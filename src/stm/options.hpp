// txconflict — the substrate-generic transaction options block.
//
// Both STM substrates (TL2's striped-lock design and NOrec's global seqlock)
// expose the same public transaction shape: atomically(options, body) with
// identical read/write/stats() signatures, so generic code — the sharded KV
// store in src/kv/, the cross-substrate stress suites — is written once,
// templated over the substrate, instead of special-casing Tl2 vs NOrec.
// TxOptions is the per-call half of that contract: declarative hints the
// caller knows statically about the transaction it is about to run.
//
// `read_only` is currently a declared hint: both substrates plumb it to the
// transaction context (and debug builds reject a write() inside a declared
// read-only body), but neither yet elides read-set accrual or validation.
// The MVCC-lite roadmap item (TL2 snapshot reads against the global version
// clock, NOrec seqlock-only validation) lands behind exactly this flag
// without another API change.
#pragma once

namespace txc::stm {

/// Declarative per-transaction hints, shared by every substrate.
struct TxOptions {
  /// The body promises not to call write().  Debug builds enforce the
  /// promise; release builds currently treat it as a no-op hint (see the
  /// MVCC-lite read-path item in ROADMAP.md for what it will buy).
  bool read_only = false;
};

/// Convenience instance for call sites: stm.atomically(kReadOnlyTx, body).
inline constexpr TxOptions kReadOnlyTx{/*read_only=*/true};

}  // namespace txc::stm
