// txconflict — the substrate-generic transaction options block and the
// region-registration vocabulary.
//
// Both STM substrates (TL2's striped-lock design and NOrec's global seqlock)
// expose the same public transaction shape, so generic code — the sharded KV
// store in src/kv/, the cross-substrate stress suites — is written once,
// templated over the substrate, instead of special-casing Tl2 vs NOrec.
// The surface splits by declared intent:
//
//   * `atomically(options, body)` hands the body a read/write
//     `Substrate::TxContext` — fully instrumented (read-set/log accrual,
//     commit-time validation, descriptor publication, arbitration).
//   * `atomically_read(body)` hands the body a read-only
//     `Substrate::ReadTxContext` — the MVCC-lite snapshot fast path (TL2:
//     per-read validation against the global version clock, zero read-set
//     accrual; NOrec: seqlock-only validation, no value log; neither
//     publishes a descriptor or enters a spin site).  The read-only promise
//     is part of the type: ReadTxContext has no write(), so breaking it is
//     a compile error, not a debug assert.
//
// TxOptions is the per-call half of the *instrumented* contract.  Its
// historical `read_only` hint is gone (superseded outright by
// atomically_read — the PR-8 before/after baselines are checked in under
// docs/results/); the struct survives empty as the extension point future
// per-transaction declarations slot into without touching every substrate
// signature.
//
// RegionSpec is the per-SUBSTRATE half: a consumer that owns a contiguous
// array of transactional cells declares it once via
// `substrate.register_region(spec)` and the substrate may use the shape to
// place locks deterministically.  TL2 builds a dedicated stripe table for
// the region (coprime-stride placement — see stm/tl2.hpp); NOrec accepts
// the registration for API parity and ignores it (no lock table exists —
// every conflict there is a real value conflict, which is what makes NOrec
// the untouched control in placement experiments).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace txc::stm {

/// Declarative per-transaction options, shared by every substrate.
/// Currently empty: the read_only hint this struct was born with is
/// superseded by atomically_read()'s compile-time contract.  Kept as the
/// extension point so `atomically(options, body)` keeps its arity when the
/// next declarative knob arrives.
struct TxOptions {};

/// One contiguous array of transactional cells, declared to a substrate via
/// register_region() so lock placement can be computed from element indices
/// instead of pointer hashes.  Registration is NOT thread-safe against
/// in-flight transactions: register regions at setup time, before spawning
/// workers (same contract as attach_profile).
struct RegionSpec {
  /// First element of the region (the address of element 0).
  const void* base = nullptr;
  /// Number of elements.
  std::size_t elements = 0;
  /// Distance in bytes between consecutive elements' addresses —
  /// sizeof(stm::Cell) for a dense cell array, larger when cells are
  /// embedded in records.
  std::size_t stride_bytes = sizeof(std::uint64_t);
  /// Dedicated stripe-table size for the region; rounded up to a power of
  /// two.  0 (the default) sizes the table to the element count, making
  /// distinct elements provably collision-free (collision shell 1).
  std::size_t stripes = 0;
  /// Placement multiplier V in `stripe = (element_index * V) mod table`.
  /// Must be odd (coprime with the power-of-two table, hence bijective on
  /// it); 0 selects the default golden-ratio constant.  Exposed so the
  /// geometry bench can sweep placement strides.
  std::uint64_t placement_stride = 0;
};

/// Shared RegionSpec validation — both substrates reject the same bad specs
/// (so a consumer tested on one substrate cannot smuggle a degenerate
/// region past the other).  Throws std::invalid_argument.
inline void validate_region_spec(const RegionSpec& spec) {
  if (spec.base == nullptr) {
    throw std::invalid_argument("stm::register_region: base is null");
  }
  if (spec.elements == 0) {
    throw std::invalid_argument("stm::register_region: elements == 0");
  }
  if (spec.stride_bytes == 0) {
    throw std::invalid_argument("stm::register_region: stride_bytes == 0");
  }
  if (spec.placement_stride != 0 && (spec.placement_stride & 1) == 0) {
    // An even multiplier is not invertible mod a power of two: placement
    // would fold the region onto half (or less) of the table and the
    // distinct-stripes guarantee would silently vanish.
    throw std::invalid_argument(
        "stm::register_region: placement_stride must be odd");
  }
}

}  // namespace txc::stm
