// txconflict — the substrate-generic transaction options block.
//
// Both STM substrates (TL2's striped-lock design and NOrec's global seqlock)
// expose the same public transaction shape, so generic code — the sharded KV
// store in src/kv/, the cross-substrate stress suites — is written once,
// templated over the substrate, instead of special-casing Tl2 vs NOrec.
// The surface splits by declared intent:
//
//   * `atomically(options, body)` hands the body a read/write
//     `Substrate::TxContext` — fully instrumented (read-set/log accrual,
//     commit-time validation, descriptor publication, arbitration).
//   * `atomically_read(body)` hands the body a read-only
//     `Substrate::ReadTxContext` — the MVCC-lite snapshot fast path (TL2:
//     per-read validation against the global version clock, zero read-set
//     accrual; NOrec: seqlock-only validation, no value log; neither
//     publishes a descriptor or enters a spin site).  The read-only promise
//     is part of the type: ReadTxContext has no write(), so breaking it is
//     a compile error, not a debug assert.
//
// TxOptions is the per-call half of the *instrumented* contract: declarative
// hints the caller knows statically about the transaction it is about to
// run.  Its `read_only` flag predates atomically_read and survives as the
// deprecated hint path only — it buys none of the snapshot fast path.
#pragma once

namespace txc::stm {

/// Declarative per-transaction hints, shared by every substrate.
struct TxOptions {
  /// The body promises not to call write().  Debug builds enforce the
  /// promise; release builds treat it as a no-op hint.  Deprecated path:
  /// superseded by atomically_read(), where the same promise is a
  /// compile-time contract and enables the snapshot fast path.  Kept so
  /// before/after comparisons (bench/micro_stm_fastpath.cpp) and staged
  /// migrations still have the hint-only behavior to measure against.
  bool read_only = false;
};

/// Convenience instance for call sites: stm.atomically(kReadOnlyTx, body).
/// Deprecated path — prefer stm.atomically_read(body).
inline constexpr TxOptions kReadOnlyTx{/*read_only=*/true};

}  // namespace txc::stm
