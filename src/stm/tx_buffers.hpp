// txconflict — reusable per-thread transaction buffers (the zero-allocation
// STM fast path).
//
// Before this header existed, every TL2/NOrec *attempt* constructed a fresh
// std::vector read set and std::unordered_map write set, so bench results
// measured allocator behavior as much as conflict policy.  TxBuffers bundles
// the hot-path containers all substrates need — an open-addressing flat map
// keyed by Cell*, a deduplicating flat pointer set, and small-inline-capacity
// logs — with one shared lifecycle: storage starts inline (no heap at all
// for small transactions), grows geometrically into the heap when a
// transaction outgrows it, and is *cleared, never freed* between attempts.
// After a short warm-up a thread reaches its high-water capacity and every
// later transaction runs without touching the allocator (proved by
// tests/test_stm_alloc.cpp against the global operator new).
//
// Clearing is O(1): the hash index is epoch-stamped (a bucket is live only if
// its epoch matches the container's), so clear() bumps the epoch and resets
// the entry count instead of scrubbing memory.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

namespace txc::mem {
class TxPool;  // mem/tx_pool.hpp
}  // namespace txc::mem

namespace txc::stm {

/// Mix pointer bits into a well-distributed hash (cells are >= 8B apart, so
/// the low 3 bits carry no information).  Same recipe as Stm::stripe_for.
[[nodiscard]] inline std::uint64_t mix_pointer(const void* pointer) noexcept {
  auto mixed = reinterpret_cast<std::uintptr_t>(pointer) >> 3;
  mixed ^= mixed >> 16;
  mixed *= 0x9E3779B97F4A7C15ULL;
  mixed ^= mixed >> 32;
  return mixed;
}

/// Vector with InlineCapacity elements of in-object storage and retained
/// (cleared-not-freed) heap growth.  Restricted to trivially copyable
/// payloads so growth is a memcpy and clear() need not run destructors.
template <typename T, std::size_t InlineCapacity>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec payloads must be trivially copyable");
  static_assert(InlineCapacity > 0);

 public:
  SmallVec() noexcept = default;
  ~SmallVec() {
    if (on_heap()) ::operator delete(data_);
  }
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  void push_back(const T& value) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = value;
  }

  [[nodiscard]] T& operator[](std::size_t index) noexcept {
    return data_[index];
  }
  [[nodiscard]] const T& operator[](std::size_t index) const noexcept {
    return data_[index];
  }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool on_heap() const noexcept {
    return data_ != inline_storage();
  }

  /// Forget the contents but keep the high-water storage.
  void clear() noexcept { size_ = 0; }

  /// Return to the pristine inline state (frees heap growth).  Not used on
  /// the hot path; lets long-lived threads drop a one-off giant transaction.
  void release() noexcept {
    if (on_heap()) {
      ::operator delete(data_);
      data_ = inline_storage();
      capacity_ = InlineCapacity;
    }
    size_ = 0;
  }

 private:
  void grow(std::size_t next_capacity) {
    T* bigger = static_cast<T*>(::operator new(next_capacity * sizeof(T)));
    std::memcpy(bigger, data_, size_ * sizeof(T));
    if (on_heap()) ::operator delete(data_);
    data_ = bigger;
    capacity_ = next_capacity;
  }

  [[nodiscard]] T* inline_storage() noexcept {
    return reinterpret_cast<T*>(inline_bytes_);
  }
  [[nodiscard]] const T* inline_storage() const noexcept {
    return reinterpret_cast<const T*>(inline_bytes_);
  }

  alignas(T) unsigned char inline_bytes_[InlineCapacity * sizeof(T)];
  T* data_ = inline_storage();
  std::size_t size_ = 0;
  std::size_t capacity_ = InlineCapacity;
};

/// Open-addressing hash map keyed by a pointer type, tuned for the STM write
/// set: entries live in a compact insertion-ordered SmallVec (so write-back
/// iterates contiguous memory), the hash index maps key -> entry slot with
/// linear probing, and clear() is O(1) via epoch stamping.  No erase — a
/// transaction only ever adds to its footprint.
template <typename Key, typename Value, std::size_t InlineCapacity>
class FlatPtrMap {
  static_assert(std::is_pointer_v<Key>, "FlatPtrMap keys are pointers");

 public:
  struct Entry {
    Key key;
    Value value;
  };

  FlatPtrMap() noexcept { reset_buckets(); }
  ~FlatPtrMap() {
    if (buckets_ != inline_buckets_) ::operator delete(buckets_);
  }
  FlatPtrMap(const FlatPtrMap&) = delete;
  FlatPtrMap& operator=(const FlatPtrMap&) = delete;

  /// Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] Value* find(Key key) noexcept {
    const std::size_t mask = bucket_count_ - 1;
    for (std::size_t probe = mix_pointer(key) & mask;;
         probe = (probe + 1) & mask) {
      Bucket& bucket = buckets_[probe];
      if (bucket.epoch != epoch_) return nullptr;  // empty this epoch
      Entry& entry = entries_[bucket.index];
      if (entry.key == key) return &entry.value;
    }
  }

  /// Value slot for `key`, inserting a default-constructed entry when absent
  /// (`inserted` reports which).  References stay valid until the map grows.
  [[nodiscard]] Value& upsert(Key key, bool* inserted = nullptr) {
    const std::size_t mask = bucket_count_ - 1;
    for (std::size_t probe = mix_pointer(key) & mask;;
         probe = (probe + 1) & mask) {
      Bucket& bucket = buckets_[probe];
      if (bucket.epoch != epoch_) {
        bucket.epoch = epoch_;
        bucket.index = static_cast<std::uint32_t>(entries_.size());
        entries_.push_back(Entry{key, Value{}});
        if (inserted != nullptr) *inserted = true;
        Value& slot = entries_[bucket.index].value;
        // Grow at 3/4 load so probes always terminate on an empty bucket.
        // The slot reference survives: growth moves buckets, not entries.
        if ((entries_.size() + 1) * 4 > bucket_count_ * 3) grow_buckets();
        return slot;
      }
      Entry& entry = entries_[bucket.index];
      if (entry.key == key) {
        if (inserted != nullptr) *inserted = false;
        return entry.value;
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return bucket_count_;
  }
  [[nodiscard]] Entry* begin() noexcept { return entries_.begin(); }
  [[nodiscard]] Entry* end() noexcept { return entries_.end(); }
  [[nodiscard]] const Entry* begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const Entry* end() const noexcept { return entries_.end(); }

  /// O(1): bump the epoch (stale buckets read as empty) and forget entries.
  void clear() noexcept {
    entries_.clear();
    if (++epoch_ == 0) {  // epoch wrapped: old stamps would alias as live
      std::memset(static_cast<void*>(buckets_), 0,
                  bucket_count_ * sizeof(Bucket));
      epoch_ = 1;
    }
  }

  /// Back to the pristine inline state (frees heap growth).
  void release() noexcept {
    entries_.release();
    if (buckets_ != inline_buckets_) {
      ::operator delete(buckets_);
      buckets_ = inline_buckets_;
      bucket_count_ = kInlineBuckets;
    }
    reset_buckets();
  }

 private:
  // Two buckets per inline entry keeps the inline load factor under 1/2.
  static constexpr std::size_t kInlineBuckets = 2 * InlineCapacity;
  static_assert((InlineCapacity & (InlineCapacity - 1)) == 0,
                "InlineCapacity must be a power of two");

  struct Bucket {
    std::uint32_t index;  // into entries_
    std::uint32_t epoch;  // live iff equal to the map's current epoch
  };

  void reset_buckets() noexcept {
    std::memset(static_cast<void*>(buckets_), 0,
                bucket_count_ * sizeof(Bucket));
    epoch_ = 1;
  }

  void grow_buckets() {
    const std::size_t next_count = bucket_count_ * 2;
    auto* bigger =
        static_cast<Bucket*>(::operator new(next_count * sizeof(Bucket)));
    std::memset(static_cast<void*>(bigger), 0, next_count * sizeof(Bucket));
    const std::size_t mask = next_count - 1;
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
      std::size_t probe = mix_pointer(entries_[i].key) & mask;
      while (bigger[probe].epoch == 1) probe = (probe + 1) & mask;
      bigger[probe] = Bucket{i, 1};
    }
    if (buckets_ != inline_buckets_) ::operator delete(buckets_);
    buckets_ = bigger;
    bucket_count_ = next_count;
    epoch_ = 1;
  }

  SmallVec<Entry, InlineCapacity> entries_;
  Bucket inline_buckets_[kInlineBuckets];
  Bucket* buckets_ = inline_buckets_;
  std::size_t bucket_count_ = kInlineBuckets;
  std::uint32_t epoch_ = 1;
};

/// Deduplicating pointer set on FlatPtrMap: insert() reports first-time
/// membership; iteration yields keys in first-insertion order.  Used for the
/// TL2 read set, where repeated reads of one cell must validate one stripe
/// once at commit, not once per read.
template <typename Key, std::size_t InlineCapacity>
class FlatPtrSet {
  struct Empty {};

 public:
  /// True when `key` was newly inserted (false: already a member).
  bool insert(Key key) {
    bool inserted = false;
    (void)map_.upsert(key, &inserted);
    return inserted;
  }

  [[nodiscard]] bool contains(Key key) noexcept {
    return map_.find(key) != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  void clear() noexcept { map_.clear(); }
  void release() noexcept { map_.release(); }

  /// Iterate members in insertion order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& entry : map_) fn(entry.key);
  }

  /// True iff `fn` holds for every member; stops at the first false (the
  /// commit-validation shape: one stale stripe aborts, no point scanning on).
  template <typename Fn>
  [[nodiscard]] bool all_of(Fn&& fn) const {
    for (const auto& entry : map_) {
      if (!fn(entry.key)) return false;
    }
    return true;
  }

 private:
  FlatPtrMap<Key, Empty, InlineCapacity> map_;
};

struct Cell;  // defined in stm/cell.hpp

/// One NOrec value-log record: the location and the value it held when read.
struct ReadLogEntry {
  const Cell* cell;
  std::uint64_t value;
};

/// One speculative pool operation (tx_alloc / tx_free): which pool, which
/// block.  Logged during the attempt, resolved at commit or abort —
/// identically on both substrates (stm/tx_alloc.cpp).
struct PoolLogEntry {
  mem::TxPool* pool;
  Cell* block;
};

/// The reusable per-thread transaction context shared by the STM substrates.
/// Each substrate's atomically() fetches its thread's TxBuffers once per
/// transaction, calls clear() before every attempt, and never frees between
/// attempts — the buffers carry their high-water capacity for the thread's
/// lifetime.  Inline capacities cover the repository's workloads (containers,
/// benches: a handful of cells per transaction); a count_range over hundreds
/// of cells grows once and stays grown.
struct TxBuffers {
  /// Buffered writes (TL2 and NOrec): cell -> pending value.
  FlatPtrMap<Cell*, std::uint64_t, 32> write_set;
  /// TL2 read set: stripes to validate at commit, deduplicated.
  FlatPtrSet<const Cell*, 64> read_set;
  /// NOrec value log: (cell, observed value), append-only within an attempt.
  SmallVec<ReadLogEntry, 64> read_log;
  /// TL2 commit scratch: acquired stripes (stored as void* because Stripe is
  /// private to Stm; only tl2.cpp reads it back).
  SmallVec<void*, 32> commit_scratch;
  /// Speculative pool allocations this attempt (tx_alloc): on commit the
  /// blocks simply stay live; on abort every entry is recycled back to its
  /// pool (never published — no grace period needed).
  SmallVec<PoolLogEntry, 8> alloc_log;
  /// Speculative pool frees this attempt (tx_free): published to the pools'
  /// limbo only after a successful commit's write-back; dropped on abort.
  SmallVec<PoolLogEntry, 8> free_log;
  /// Debug-only occupancy marker: set while an atomically() owns these
  /// buffers so a nested transaction on the same thread asserts instead of
  /// silently corrupting the outer attempt's read/write sets.
  bool in_use = false;

  /// Forget the previous attempt; keep all storage.
  void clear() noexcept {
    write_set.clear();
    read_set.clear();
    read_log.clear();
    commit_scratch.clear();
    alloc_log.clear();
    free_log.clear();
  }

  /// Free heap growth and return to the all-inline state.
  void release() noexcept {
    write_set.release();
    read_set.release();
    read_log.release();
    commit_scratch.release();
    alloc_log.release();
    free_log.release();
  }
};

/// Commit-time resolution of an attempt's pool logs: publish every deferred
/// free (blocks enter limbo under the current epoch pin) and retire both
/// logs.  Call only after the substrate's try_commit wrote back and
/// released — the freed blocks' unlinking writes must be globally visible
/// before the blocks can ever be rehanded out.  Defined in stm/tx_alloc.cpp.
void commit_pool_log(TxBuffers& buffers) noexcept;

/// Abort-time resolution: recycle every speculative allocation straight back
/// to its pool (the abort discarded all buffered writes, so no pointer to
/// the block was ever published) and drop the deferred frees.  Defined in
/// stm/tx_alloc.cpp.
void rollback_pool_log(TxBuffers& buffers) noexcept;

/// RAII occupancy guard for TxBuffers (debug builds only; compiles to
/// nothing under NDEBUG).  Catches the unsupported nested-transaction shape
/// loudly — exception-safe, since user exceptions may unwind atomically().
class TxBuffersScope {
 public:
#ifndef NDEBUG
  explicit TxBuffersScope(TxBuffers& buffers) noexcept : buffers_(buffers) {
    assert(!buffers_.in_use &&
           "nested atomically() on one thread is not supported (flat "
           "transactions only)");
    buffers_.in_use = true;
  }
  ~TxBuffersScope() { buffers_.in_use = false; }

 private:
  TxBuffers& buffers_;
#else
  explicit TxBuffersScope(TxBuffers&) noexcept {}
#endif
  TxBuffersScope(const TxBuffersScope&) = delete;
  TxBuffersScope& operator=(const TxBuffersScope&) = delete;
};

/// RAII cross-substrate occupancy guard (debug builds only).
/// TxBuffersScope cannot catch a TL2 transaction nested inside a NOrec body
/// (or vice versa) — each substrate has its own thread-local TxBuffers —
/// but the thread's conflict::TxDescriptor is shared by both, and the inner
/// transaction's lifecycle leaves it kCommitted, so the outer commit's
/// kActive -> kCommitting CAS could never succeed: a silent livelock.
/// This guard rejects *any* nesting on the thread, across substrates.
class TxThreadScope {
 public:
#ifndef NDEBUG
  TxThreadScope() noexcept {
    assert(!in_transaction() &&
           "nesting a transaction inside another transaction's body is not "
           "supported, even across substrates (the thread's conflict "
           "descriptor is single-occupancy)");
    in_transaction() = true;
  }
  ~TxThreadScope() { in_transaction() = false; }
#else
  TxThreadScope() noexcept = default;
#endif
  TxThreadScope(const TxThreadScope&) = delete;
  TxThreadScope& operator=(const TxThreadScope&) = delete;

#ifndef NDEBUG
 private:
  static bool& in_transaction() noexcept {
    thread_local bool flag = false;
    return flag;
  }
#endif
};

}  // namespace txc::stm
