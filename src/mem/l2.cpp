#include "mem/l2.hpp"

#include <cassert>

namespace txc::mem {

SharedL2::SharedL2(const L2Config& config)
    : config_(config),
      entries_(static_cast<std::size_t>(config.banks) * config.sets_per_bank *
               config.ways) {
  assert(config_.banks >= 1 && config_.sets_per_bank >= 1 &&
         config_.ways >= 1);
}

std::size_t SharedL2::set_base(LineId line) const noexcept {
  const std::uint32_t bank = bank_of(line);
  const std::uint64_t set = (line / config_.banks) % config_.sets_per_bank;
  return (static_cast<std::size_t>(bank) * config_.sets_per_bank +
          static_cast<std::size_t>(set)) *
         config_.ways;
}

L2Access SharedL2::access(LineId line) {
  const std::size_t base = set_base(line);
  Entry* victim = &entries_[base];
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    Entry& entry = entries_[base + way];
    if (entry.valid && entry.line == line) {
      entry.lru_stamp = ++lru_clock_;
      ++stats_.hits;
      return L2Access{.hit = true};
    }
    // Victim preference: any invalid way, else the LRU valid way.
    if (!victim->valid) continue;
    if (!entry.valid || entry.lru_stamp < victim->lru_stamp) victim = &entry;
  }
  ++stats_.misses;
  L2Access result;
  if (victim->valid) {
    ++stats_.evictions;
    result.evicted_valid = true;
    result.evicted_line = victim->line;
  }
  victim->line = line;
  victim->valid = true;
  victim->lru_stamp = ++lru_clock_;
  return result;
}

bool SharedL2::contains(LineId line) const noexcept {
  const std::size_t base = set_base(line);
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    const Entry& entry = entries_[base + way];
    if (entry.valid && entry.line == line) return true;
  }
  return false;
}

void SharedL2::invalidate(LineId line) noexcept {
  const std::size_t base = set_base(line);
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    Entry& entry = entries_[base + way];
    if (entry.valid && entry.line == line) {
      entry.valid = false;
      return;
    }
  }
}

}  // namespace txc::mem
