// txconflict — directory-based MSI coherence state.
//
// Mirrors the setup the paper used in Graphite: "We extend Graphite's
// directory-based MSI cache coherence protocol for private-L1 shared-L2 cache
// hierarchy ... the L1 cache controller logic is modified, while the
// directory logic did not have to be modified in any way."  The directory
// tracks, per line, which cores hold it and in which global state; the HTM
// layer asks it who must be invalidated or downgraded on each request.
#pragma once

#include <bitset>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/cache.hpp"

namespace txc::mem {

inline constexpr std::uint32_t kMaxCores = 64;

enum class DirectoryState : std::uint8_t { kUncached, kShared, kModified };

struct DirectoryEntry {
  DirectoryState state = DirectoryState::kUncached;
  std::bitset<kMaxCores> sharers;
  CoreId owner = 0;  // meaningful only in kModified
};

struct DirectoryStats {
  std::uint64_t lookups = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t downgrades = 0;
};

class Directory {
 public:
  explicit Directory(std::uint32_t cores) : cores_(cores) {}

  /// The entry for a line (created on demand, Uncached).
  [[nodiscard]] DirectoryEntry& entry(LineId line) {
    ++stats_.lookups;
    return entries_[line];
  }
  [[nodiscard]] const DirectoryEntry* find(LineId line) const {
    const auto it = entries_.find(line);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Cores other than `requestor` that hold the line (any state).
  [[nodiscard]] std::vector<CoreId> holders_excluding(LineId line,
                                                      CoreId requestor) const;

  /// Record that `core` now holds `line` shared.
  void add_sharer(LineId line, CoreId core);
  /// Record that `core` now exclusively owns `line`.
  void set_owner(LineId line, CoreId core);
  /// Remove `core` from the line (invalidation / eviction / abort).
  void remove(LineId line, CoreId core);

  void count_invalidation() noexcept { ++stats_.invalidations; }
  void count_downgrade() noexcept { ++stats_.downgrades; }

  [[nodiscard]] const DirectoryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t cores() const noexcept { return cores_; }

  /// Protocol invariant check (used by tests): a Modified line has exactly
  /// one holder; a Shared line has at least one sharer and no owner flag.
  [[nodiscard]] bool invariants_hold() const;

 private:
  std::uint32_t cores_;
  std::unordered_map<LineId, DirectoryEntry> entries_;
  DirectoryStats stats_;
};

}  // namespace txc::mem
