#include "mem/tx_pool.hpp"

namespace txc::mem {

namespace {

using lockfree::TaggedIndex;

/// Shard count: power of two, 1 for tiny pools (deterministic exhaustion in
/// tests), growing with capacity up to 64 (enough to spread allocator
/// traffic across a large machine without fragmenting small pools).
std::size_t pick_shard_count(std::size_t capacity) noexcept {
  std::size_t shards = 1;
  while (shards < 64 && shards * 16 <= capacity) shards <<= 1;
  return shards;
}

}  // namespace

TxPool::TxPool(std::size_t capacity, std::size_t cells_per_block)
    : capacity_(capacity),
      cells_per_block_(cells_per_block == 0 ? 1 : cells_per_block),
      shard_mask_(pick_shard_count(capacity) - 1),
      cells_(capacity_ * cells_per_block_),
      link_(capacity_),
      stamp_(capacity_),
      state_(capacity_),
      shards_(shard_mask_ + 1) {
  // Seed the free lists round-robin so every shard starts stocked.
  for (std::size_t index = 0; index < capacity_; ++index) {
    push(shards_[index & shard_mask_], static_cast<std::uint32_t>(index));
  }
  reclaim::pool_created();
}

TxPool::~TxPool() { reclaim::pool_destroyed(); }

std::uint32_t TxPool::pop(ListHead& list) noexcept {
  std::uint64_t raw = list.head.load(std::memory_order_acquire);
  while (true) {
    const TaggedIndex head{raw};
    if (head.null()) return TaggedIndex::kNull;
    // The tag CAS below rejects the exchange if anyone else popped first, so
    // a stale next read here can never be installed (classic ABA guard).
    const std::uint32_t next =
        link_[head.index()].load(std::memory_order_relaxed);
    if (list.head.compare_exchange_weak(raw, head.advanced_to(next).raw(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      return head.index();
    }
  }
}

void TxPool::push(ListHead& list, std::uint32_t index) noexcept {
  std::uint64_t raw = list.head.load(std::memory_order_relaxed);
  while (true) {
    const TaggedIndex head{raw};
    link_[index].store(head.index(), std::memory_order_relaxed);
    if (list.head.compare_exchange_weak(raw, head.advanced_to(index).raw(),
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

std::uint32_t TxPool::take_all(ListHead& list) noexcept {
  std::uint64_t raw = list.head.load(std::memory_order_acquire);
  while (true) {
    const TaggedIndex head{raw};
    if (head.null()) return TaggedIndex::kNull;
    if (list.head.compare_exchange_weak(
            raw, head.advanced_to(TaggedIndex::kNull).raw(),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      return head.index();
    }
  }
}

std::size_t TxPool::home_shard() const noexcept {
  const auto id =
      reinterpret_cast<std::uintptr_t>(&conflict::thread_descriptor());
  // Descriptors are 64-byte aligned slab slots: shift the dead bits out,
  // then golden-ratio mix so consecutive slots land on different shards.
  return static_cast<std::size_t>(
             ((id >> 6) * 0x9E3779B97F4A7C15ULL) >> 32) &
         shard_mask_;
}

stm::Cell* TxPool::speculative_alloc() noexcept {
  const std::size_t home = home_shard();
  std::uint32_t index = pop(shards_[home]);
  if (index == TaggedIndex::kNull) index = slow_alloc(home);
  if (index == TaggedIndex::kNull) return nullptr;
  // The block is privately owned between pop and the free that returns it,
  // so the state transition needs no CAS here.
  state_[index].store(kLive, std::memory_order_relaxed);
  live_.fetch_add(1, std::memory_order_acq_rel);
  stats_.allocs.fetch_add(1, std::memory_order_relaxed);
  return block_at(index);
}

void TxPool::publish_free(stm::Cell* block) noexcept {
  const auto index = static_cast<std::uint32_t>(index_of(block));
  std::uint8_t expected = kLive;
  if (!state_[index].compare_exchange_strong(expected, kLimbo,
                                             std::memory_order_acq_rel)) {
    stats_.double_free_rejects.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The stamp may understate the true publication epoch by one (the epoch
  // can advance between this read and the push) — the freer is pinned, so
  // by exactly one; the +3 grace rule absorbs it (mem/reclaim.hpp).
  const std::uint64_t stamp = reclaim::current_epoch();
  stamp_[index].store(stamp, std::memory_order_relaxed);
  live_.fetch_sub(1, std::memory_order_acq_rel);
  stats_.frees.fetch_add(1, std::memory_order_relaxed);
  push(limbo_[stamp & 3], index);
}

void TxPool::recycle_aborted(stm::Cell* block) noexcept {
  const auto index = static_cast<std::uint32_t>(index_of(block));
  std::uint8_t expected = kLive;
  if (!state_[index].compare_exchange_strong(expected, kFree,
                                             std::memory_order_acq_rel)) {
    stats_.double_free_rejects.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  live_.fetch_sub(1, std::memory_order_acq_rel);
  stats_.abort_recycles.fetch_add(1, std::memory_order_relaxed);
  push(shards_[home_shard()], index);
}

std::size_t TxPool::reclaim_stale(std::size_t home) noexcept {
  const std::uint64_t current = reclaim::current_epoch();
  std::uint32_t chain = take_all(limbo_[(current + 1) & 3]);
  std::size_t reclaimed = 0;
  while (chain != TaggedIndex::kNull) {
    const std::uint32_t next = link_[chain].load(std::memory_order_relaxed);
    const std::uint64_t freed_at = stamp_[chain].load(std::memory_order_relaxed);
    if (freed_at + 3 <= current) {
      state_[chain].store(kFree, std::memory_order_release);
      push(shards_[home], chain);
      ++reclaimed;
    } else {
      // A racing freer pushed this after our epoch read (its stamp is
      // current + 1, aliasing the drained bucket) — re-defer, grace intact.
      push(limbo_[freed_at & 3], chain);
    }
    chain = next;
  }
  if (reclaimed != 0) {
    stats_.reclaimed.fetch_add(reclaimed, std::memory_order_relaxed);
  }
  return reclaimed;
}

std::uint32_t TxPool::slow_alloc(std::size_t home) noexcept {
  // Bounded: a pinned caller can advance the epoch at most once (after that
  // its own pin blocks try_advance), so this loop runs at most two full
  // rounds in-transaction and four when quiescent.
  for (int round = 0; round < 4; ++round) {
    if (reclaim_stale(home) != 0) {
      const std::uint32_t index = pop(shards_[home]);
      if (index != TaggedIndex::kNull) return index;
    }
    for (std::size_t offset = 1; offset <= shard_mask_; ++offset) {
      const std::uint32_t index = pop(shards_[(home + offset) & shard_mask_]);
      if (index != TaggedIndex::kNull) return index;
    }
    if (!reclaim::try_advance()) break;
    stats_.epoch_advances.fetch_add(1, std::memory_order_relaxed);
  }
  // Last chance after the final advance (or advance failure).
  reclaim_stale(home);
  for (std::size_t offset = 0; offset <= shard_mask_; ++offset) {
    const std::uint32_t index = pop(shards_[(home + offset) & shard_mask_]);
    if (index != TaggedIndex::kNull) return index;
  }
  stats_.exhaustion_failures.fetch_add(1, std::memory_order_relaxed);
  return TaggedIndex::kNull;
}

std::size_t TxPool::quiesce_reclaim() noexcept {
  const std::size_t home = home_shard();
  std::size_t total = 0;
  // Four advances cycle every limbo bucket past its grace; a few extra
  // rounds cover stamps pushed mid-call.  Advancement can still be blocked
  // by a pinned thread — then the caller was not actually quiescent and the
  // remaining blocks stay safely in limbo.
  for (int round = 0; round < 8; ++round) {
    total += reclaim_stale(home);
    if (!reclaim::try_advance()) break;
    stats_.epoch_advances.fetch_add(1, std::memory_order_relaxed);
  }
  total += reclaim_stale(home);
  return total;
}

std::size_t TxPool::free_blocks() const noexcept {
  std::size_t count = 0;
  for (const auto& state : state_) {
    if (state.load(std::memory_order_acquire) == kFree) ++count;
  }
  return count;
}

std::size_t TxPool::limbo_blocks() const noexcept {
  std::size_t count = 0;
  for (const auto& state : state_) {
    if (state.load(std::memory_order_acquire) == kLimbo) ++count;
  }
  return count;
}

}  // namespace txc::mem
