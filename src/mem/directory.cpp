#include "mem/directory.hpp"

#include <cassert>

namespace txc::mem {

std::vector<CoreId> Directory::holders_excluding(LineId line,
                                                 CoreId requestor) const {
  std::vector<CoreId> result;
  const DirectoryEntry* record = find(line);
  if (record == nullptr || record->state == DirectoryState::kUncached) {
    return result;
  }
  for (CoreId core = 0; core < cores_; ++core) {
    if (core != requestor && record->sharers.test(core)) result.push_back(core);
  }
  return result;
}

void Directory::add_sharer(LineId line, CoreId core) {
  DirectoryEntry& record = entry(line);
  record.sharers.set(core);
  if (record.state == DirectoryState::kModified && record.owner != core) {
    // Owner was downgraded by this read; the line is now shared.
    record.state = DirectoryState::kShared;
  } else if (record.state == DirectoryState::kUncached) {
    record.state = DirectoryState::kShared;
  } else if (record.state == DirectoryState::kModified && record.owner == core) {
    // Owner re-reading its own modified line: unchanged.
  } else {
    record.state = DirectoryState::kShared;
  }
}

void Directory::set_owner(LineId line, CoreId core) {
  DirectoryEntry& record = entry(line);
  record.sharers.reset();
  record.sharers.set(core);
  record.owner = core;
  record.state = DirectoryState::kModified;
}

void Directory::remove(LineId line, CoreId core) {
  DirectoryEntry& record = entry(line);
  record.sharers.reset(core);
  if (record.sharers.none()) {
    record.state = DirectoryState::kUncached;
  } else if (record.state == DirectoryState::kModified && record.owner == core) {
    record.state = DirectoryState::kShared;
  }
}

bool Directory::invariants_hold() const {
  for (const auto& [line, record] : entries_) {
    switch (record.state) {
      case DirectoryState::kUncached:
        if (record.sharers.any()) return false;
        break;
      case DirectoryState::kShared:
        if (record.sharers.none()) return false;
        break;
      case DirectoryState::kModified:
        if (record.sharers.count() != 1) return false;
        if (!record.sharers.test(record.owner)) return false;
        break;
    }
  }
  return true;
}

}  // namespace txc::mem
