// txconflict — a fixed-size-block pool with constant-time transactional
// allocate/free and epoch-based reclamation.
//
// The design follows Blelloch & Wei, "Concurrent Fixed-Size Allocation and
// Free in Constant Time": all blocks live in one contiguous arena carved
// into equal-size blocks of transactional cells, free blocks are kept on
// sharded lock-free lists (tagged-index CAS, same ABA scheme as
// src/lockfree/), and a freed block passes through a limbo stage governed
// by the global reclamation epoch (mem/reclaim.hpp) before it may be handed
// out again.  Every operation is O(1) except the slow allocation path,
// which drains limbo and steals across shards — still bounded by the shard
// count, never by the pool size.
//
// Transactional semantics live one layer up (stm/: tx_alloc logs the block
// and recycles it on abort; tx_free defers to commit); the pool itself
// exposes the three primitive transitions those hooks need:
//
//     speculative_alloc()   free list -> kLive      (tx_alloc)
//     recycle_aborted(b)    kLive -> kFree, no grace (abort: never published)
//     publish_free(b)       kLive -> kLimbo, stamped (commit, after
//                           write-back; recycled only after the epoch grace)
//
// Why limbo links are OUT-OF-BAND: freed blocks are chained through the
// separate link_ array, never through their payload cells.  A snapshot
// reader (atomically_read) that obtained a pointer before the unlinking
// commit may still load the block's cells during the grace period; those
// loads must see real (if stale) cell values so per-read validation can
// reject them — a free-list pointer scribbled over the payload would be a
// torn value the validator might accept.
//
// State machine per block (state_ array, CAS-guarded):
//
//     kFree --speculative_alloc--> kLive --publish_free--> kLimbo
//       ^                            |                        |
//       +-------recycle_aborted------+     (grace: global epoch >= stamp+3)
//       +-----------------reclaim_stale---------------------+
//
// A publish_free/recycle_aborted whose CAS from kLive fails is a
// double-free: counted (stats().double_free_rejects) and dropped, never
// asserted — the rejection path itself is unit-tested in Debug builds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "conflict/descriptor.hpp"
#include "lockfree/stack.hpp"  // TaggedIndex
#include "mem/reclaim.hpp"
#include "stm/cell.hpp"
#include "stm/options.hpp"  // RegionSpec

namespace txc::mem {

/// Fixed-size-block pool of stm::Cell arrays.  Thread-safe for all
/// alloc/free transitions; audits (free_blocks etc.) are quiescent-only.
class TxPool {
 public:
  struct Stats {
    std::atomic<std::uint64_t> allocs{0};
    /// Speculative allocations returned to the free list because their
    /// transaction aborted (no grace needed — the block was never visible).
    std::atomic<std::uint64_t> abort_recycles{0};
    /// Frees published at commit (blocks entering limbo).
    std::atomic<std::uint64_t> frees{0};
    /// Limbo blocks whose grace elapsed and returned to the free lists.
    std::atomic<std::uint64_t> reclaimed{0};
    /// speculative_alloc calls that returned nullptr: the free lists, limbo
    /// drain, and shard steal all came up empty.  Includes the legitimate
    /// case where capacity exists but every free block is still in grace.
    std::atomic<std::uint64_t> exhaustion_failures{0};
    /// kLive CAS failures in publish_free/recycle_aborted — double frees,
    /// counted and dropped.
    std::atomic<std::uint64_t> double_free_rejects{0};
    /// Successful reclaim::try_advance calls driven by this pool.
    std::atomic<std::uint64_t> epoch_advances{0};
  };

  /// A pool of `capacity` blocks, each `cells_per_block` consecutive
  /// stm::Cells.  Registers itself with the reclamation layer (pin guards
  /// engage while any pool exists).
  TxPool(std::size_t capacity, std::size_t cells_per_block);
  ~TxPool();

  TxPool(const TxPool&) = delete;
  TxPool& operator=(const TxPool&) = delete;

  // -- Geometry --------------------------------------------------------------

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t cells_per_block() const noexcept {
    return cells_per_block_;
  }

  /// First cell of block `index`.
  [[nodiscard]] stm::Cell* block_at(std::size_t index) noexcept {
    return cells_.data() + index * cells_per_block_;
  }
  /// Block index of a cell pointer anywhere inside the block.
  [[nodiscard]] std::size_t index_of(const stm::Cell* cell) const noexcept {
    return static_cast<std::size_t>(cell - cells_.data()) / cells_per_block_;
  }
  /// Whether `cell` points into this pool's arena.
  [[nodiscard]] bool owns(const stm::Cell* cell) const noexcept {
    return cell >= cells_.data() && cell < cells_.data() + cells_.size();
  }

  /// The arena as a substrate region: register with
  /// `substrate.register_region(pool.region_spec())` so node accesses are
  /// placed deterministically (distinct cells on distinct stripes —
  /// false-conflict-free by construction).
  [[nodiscard]] stm::RegionSpec region_spec() const noexcept {
    stm::RegionSpec spec;
    spec.base = cells_.data();
    spec.elements = cells_.size();
    spec.stride_bytes = sizeof(stm::Cell);
    return spec;
  }

  // -- Alloc/free transitions (see state machine above) ----------------------

  /// Take a free block (kFree -> kLive).  Returns nullptr on exhaustion —
  /// the clean no-throw failure contract (satellite of ISSUE 10; same shape
  /// as ShardedKvStore's shard-full status).  Exhaustion includes the case
  /// where freed blocks exist but their grace has not elapsed; a retry in a
  /// LATER transaction (or after quiesce_reclaim) may succeed.
  [[nodiscard]] stm::Cell* speculative_alloc() noexcept;

  /// Setup-time alias of speculative_alloc for non-transactional
  /// bootstrapping (e.g. a queue's initial dummy node).
  [[nodiscard]] stm::Cell* bootstrap_alloc() noexcept {
    return speculative_alloc();
  }

  /// Commit-time free (kLive -> kLimbo): stamp with the current epoch and
  /// park in limbo until the grace elapses.  Called by the substrates'
  /// commit hook AFTER write-back, while still epoch-pinned.
  void publish_free(stm::Cell* block) noexcept;

  /// Abort-time recycle (kLive -> kFree, immediately reusable): the block
  /// was allocated by the aborting attempt and never published — no other
  /// thread can hold a pointer to it, so it skips limbo entirely.
  void recycle_aborted(stm::Cell* block) noexcept;

  // -- Quiescent maintenance + audits ----------------------------------------

  /// Drive epoch advancement and limbo draining from a quiescent caller
  /// (no transactions in flight, caller not pinned).  Returns the number of
  /// blocks reclaimed.  The in-transaction slow path cannot fully drain
  /// limbo (a pinned thread blocks advancement past its own epoch + 1);
  /// this can.
  std::size_t quiesce_reclaim() noexcept;

  /// Quiescent audits: block counts by state.  free + limbo + live ==
  /// capacity is the conservation invariant the stress suites assert.
  [[nodiscard]] std::size_t free_blocks() const noexcept;
  [[nodiscard]] std::size_t limbo_blocks() const noexcept;
  [[nodiscard]] std::size_t live_blocks() const noexcept {
    return live_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  enum BlockState : std::uint8_t { kFree = 0, kLive = 1, kLimbo = 2 };

  /// One lock-free LIFO of block indices (free-list shard or limbo bucket),
  /// chained through link_.  Padded: shard heads are the pool's hottest
  /// contended words.
  struct alignas(64) ListHead {
    std::atomic<std::uint64_t> head{
        lockfree::TaggedIndex{0, lockfree::TaggedIndex::kNull}.raw()};
  };

  [[nodiscard]] std::uint32_t pop(ListHead& list) noexcept;
  void push(ListHead& list, std::uint32_t index) noexcept;
  /// Detach a whole list; returns the first index of the chain (link_
  /// continues it) or kNull.
  [[nodiscard]] std::uint32_t take_all(ListHead& list) noexcept;

  /// The calling thread's preferred free-list shard (stable per thread:
  /// hashed from its descriptor address).
  [[nodiscard]] std::size_t home_shard() const noexcept;

  /// Drain the drainable limbo bucket into shard `home`; per-block stamp
  /// guard re-defers blocks whose grace has not elapsed.  Returns blocks
  /// reclaimed.
  std::size_t reclaim_stale(std::size_t home) noexcept;

  /// Slow allocation: limbo drain, cross-shard steal, opportunistic epoch
  /// advance.  Returns a block index or kNull (exhaustion).
  [[nodiscard]] std::uint32_t slow_alloc(std::size_t home) noexcept;

  std::size_t capacity_;
  std::size_t cells_per_block_;
  std::size_t shard_mask_;  // shard count - 1 (power of two)

  /// The arena: capacity * cells_per_block cells, contiguous so one
  /// RegionSpec covers every node.
  std::vector<stm::Cell> cells_;
  /// Free/limbo chaining, out-of-band (one slot per block; see header
  /// comment for why links never go through payload cells).
  std::vector<std::atomic<std::uint32_t>> link_;
  /// Epoch stamp of the block's last publish_free.
  std::vector<std::atomic<std::uint64_t>> stamp_;
  /// Per-block state machine word.
  std::vector<std::atomic<std::uint8_t>> state_;

  std::vector<ListHead> shards_;
  /// Limbo buckets indexed stamp & 3; at global epoch E only bucket
  /// (E + 1) & 3 is drainable (see mem/reclaim.hpp for the arithmetic).
  ListHead limbo_[4];

  std::atomic<std::size_t> live_{0};
  Stats stats_;
};

}  // namespace txc::mem
