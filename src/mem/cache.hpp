// txconflict — private L1 cache with transactional bits.
//
// Algorithm 1 of the paper: "Use a MESI cache coherence protocol, except each
// cache line has an additional bit.  This additional bit is set if the cache
// line is used by a transaction; in this case the cache line is called
// transactional and it resides in the transactional cache."
//
// The cache is set-associative with LRU replacement.  Evicting a
// transactional line must abort the owning transaction (Algorithm 1 line 4);
// the cache reports the eviction and the HTM layer performs the abort.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace txc::mem {

using LineId = std::uint64_t;
using CoreId = std::uint32_t;

/// Local MSI state of a cached line (Exclusive is folded into Modified: the
/// simulator does not model silent E->M upgrades, which have no bearing on
/// conflict timing).
enum class LineState : std::uint8_t { kInvalid, kShared, kModified };

[[nodiscard]] constexpr const char* to_string(LineState state) noexcept {
  switch (state) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kModified: return "M";
  }
  return "?";
}

struct CacheLine {
  LineId line = 0;
  LineState state = LineState::kInvalid;
  bool tx_read = false;   // in the current transaction's read set
  bool tx_write = false;  // in the current transaction's write set
  std::uint64_t lru_stamp = 0;

  [[nodiscard]] bool transactional() const noexcept {
    return tx_read || tx_write;
  }
  [[nodiscard]] bool valid() const noexcept {
    return state != LineState::kInvalid;
  }
};

struct CacheConfig {
  std::uint32_t sets = 64;
  std::uint32_t ways = 8;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t tx_evictions = 0;  // capacity aborts
};

/// Result of reserving a slot for a line: if a transactional victim had to be
/// evicted the HTM layer must abort the local transaction.
struct InsertResult {
  CacheLine* slot = nullptr;
  bool evicted_valid = false;          // a resident line was displaced
  bool evicted_transactional = false;  // ... and it was transactional
  LineId evicted_line = 0;
};

class L1Cache {
 public:
  explicit L1Cache(const CacheConfig& config = {});

  /// Look up a line; returns nullptr on miss.  Touches LRU on hit.
  [[nodiscard]] CacheLine* find(LineId line) noexcept;
  [[nodiscard]] const CacheLine* find(LineId line) const noexcept;

  /// Reserve a slot for `line` (which must not be present), evicting the LRU
  /// way of its set if needed.  The returned slot is initialized Invalid with
  /// the new tag; the caller sets state/bits.
  InsertResult insert(LineId line);

  /// Drop a line entirely (remote invalidation).
  void invalidate(LineId line) noexcept;

  /// M -> S downgrade (remote read of a dirty line).
  void downgrade(LineId line) noexcept;

  /// Clear all transactional bits (commit) or invalidate every transactional
  /// line (abort; Algorithm 1 line 5).
  void commit_transaction() noexcept;
  void abort_transaction() noexcept;

  /// Transactional lines currently resident (for directory cleanup on abort).
  [[nodiscard]] std::vector<LineId> transactional_lines() const;

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::size_t set_index(LineId line) const noexcept {
    return static_cast<std::size_t>(line % config_.sets);
  }

  CacheConfig config_;
  std::vector<CacheLine> lines_;  // sets * ways, set-major
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace txc::mem
