// txconflict — shared, banked L2 tag store.
//
// The paper's Graphite configuration is a "private-L1 shared-L2 cache
// hierarchy".  The base simulator models only the private L1s and treats
// every miss as a flat remote round trip; this module restores the shared L2
// tier so the latency ladder is L1 hit < L2 hit < memory, and so L2 capacity
// pressure exists: the hierarchy is inclusive, so an L2 eviction
// back-invalidates every L1 copy of the victim line — and if one of those
// copies was transactional, the HTM layer must abort that transaction
// (a second source of capacity aborts, present in all real HTMs).
//
// The L2 is a tag store only: committed data values live in the simulator's
// memory map, which is exact; what the L2 contributes is *timing* (hit/miss
// classification) and *occupancy* (who gets evicted when).
#pragma once

#include <cstdint>
#include <vector>

#include "mem/cache.hpp"

namespace txc::mem {

struct L2Config {
  std::uint32_t banks = 4;          // address-interleaved banks
  std::uint32_t sets_per_bank = 256;
  std::uint32_t ways = 8;
};

struct L2Stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t back_invalidations = 0;  // L1 copies dropped by L2 eviction

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Result of touching a line in the L2: whether it hit, and which resident
/// line (if any) was displaced to make room.  The caller owns propagating the
/// eviction to the L1s (inclusion).
struct L2Access {
  bool hit = false;
  bool evicted_valid = false;
  LineId evicted_line = 0;
};

class SharedL2 {
 public:
  explicit SharedL2(const L2Config& config = {});

  /// Touch `line`: on hit, refresh LRU; on miss, allocate (evicting the LRU
  /// way of the set if full).
  L2Access access(LineId line);

  /// Whether `line` is currently resident (no LRU side effect).
  [[nodiscard]] bool contains(LineId line) const noexcept;

  /// Drop a line (e.g. tests, or future dirty-writeback modelling).
  void invalidate(LineId line) noexcept;

  /// Bank an address maps to — also the NoC home-slice index when the L2 is
  /// distributed across tiles.
  [[nodiscard]] std::uint32_t bank_of(LineId line) const noexcept {
    return static_cast<std::uint32_t>(line % config_.banks);
  }

  void count_back_invalidation() noexcept { ++stats_.back_invalidations; }

  [[nodiscard]] const L2Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const L2Config& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t capacity_lines() const noexcept {
    return static_cast<std::uint64_t>(config_.banks) * config_.sets_per_bank *
           config_.ways;
  }

 private:
  struct Entry {
    LineId line = 0;
    bool valid = false;
    std::uint64_t lru_stamp = 0;
  };

  /// Flat index of the first way of the set holding `line`.
  [[nodiscard]] std::size_t set_base(LineId line) const noexcept;

  L2Config config_;
  std::vector<Entry> entries_;  // banks * sets * ways, set-major
  std::uint64_t lru_clock_ = 0;
  L2Stats stats_;
};

}  // namespace txc::mem
