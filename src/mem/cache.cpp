#include "mem/cache.hpp"

#include <cassert>

namespace txc::mem {

L1Cache::L1Cache(const CacheConfig& config)
    : config_(config),
      lines_(static_cast<std::size_t>(config.sets) * config.ways) {
  assert(config.sets > 0 && config.ways > 0);
}

CacheLine* L1Cache::find(LineId line) noexcept {
  const std::size_t base = set_index(line) * config_.ways;
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    CacheLine& candidate = lines_[base + way];
    if (candidate.valid() && candidate.line == line) {
      candidate.lru_stamp = ++lru_clock_;
      ++stats_.hits;
      return &candidate;
    }
  }
  ++stats_.misses;
  return nullptr;
}

const CacheLine* L1Cache::find(LineId line) const noexcept {
  const std::size_t base = set_index(line) * config_.ways;
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    const CacheLine& candidate = lines_[base + way];
    if (candidate.valid() && candidate.line == line) return &candidate;
  }
  return nullptr;
}

InsertResult L1Cache::insert(LineId line) {
  const std::size_t base = set_index(line) * config_.ways;
  CacheLine* victim = nullptr;
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    CacheLine& candidate = lines_[base + way];
    if (!candidate.valid()) {
      victim = &candidate;
      break;
    }
    if (victim == nullptr || candidate.lru_stamp < victim->lru_stamp) {
      victim = &candidate;
    }
  }
  InsertResult result;
  result.slot = victim;
  if (victim->valid()) {
    ++stats_.evictions;
    result.evicted_valid = true;
    result.evicted_line = victim->line;
    if (victim->transactional()) {
      ++stats_.tx_evictions;
      result.evicted_transactional = true;
    }
  }
  victim->line = line;
  victim->state = LineState::kInvalid;
  victim->tx_read = false;
  victim->tx_write = false;
  victim->lru_stamp = ++lru_clock_;
  return result;
}

void L1Cache::invalidate(LineId line) noexcept {
  if (CacheLine* entry = find(line)) {
    entry->state = LineState::kInvalid;
    entry->tx_read = false;
    entry->tx_write = false;
  }
}

void L1Cache::downgrade(LineId line) noexcept {
  if (CacheLine* entry = find(line)) {
    if (entry->state == LineState::kModified) entry->state = LineState::kShared;
  }
}

void L1Cache::commit_transaction() noexcept {
  // Algorithm 1 commit phase: "clear additional bits in all transactional
  // cache lines"; the data stays cached.
  for (CacheLine& entry : lines_) {
    entry.tx_read = false;
    entry.tx_write = false;
  }
}

void L1Cache::abort_transaction() noexcept {
  // Algorithm 1 line 5: "if transaction is aborted, invalidate all
  // transactional cache lines".
  for (CacheLine& entry : lines_) {
    if (entry.transactional()) {
      entry.state = LineState::kInvalid;
      entry.tx_read = false;
      entry.tx_write = false;
    }
  }
}

std::vector<LineId> L1Cache::transactional_lines() const {
  std::vector<LineId> result;
  for (const CacheLine& entry : lines_) {
    if (entry.valid() && entry.transactional()) result.push_back(entry.line);
  }
  return result;
}

}  // namespace txc::mem
