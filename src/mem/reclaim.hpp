// txconflict — epoch-based reclamation for transactional pools.
//
// The grace-period machinery behind mem::TxPool (Blelloch & Wei-style
// constant-time pool alloc/free).  A single global epoch counter advances
// only when every pinned thread has announced the current epoch; a freed
// block stamped with epoch e may be recycled once the global epoch reaches
// e + 3 (see below), guaranteeing that no snapshot reader or in-flight
// transaction that could still hold a pre-free pointer can dereference a
// reused block.
//
// Pinning rides the conflict-layer descriptor slab: TxDescriptor carries a
// reclaim_epoch slot, so the reclaimer's scan walks the exact same
// cache-line-per-thread table the arbiters already probe, and threads that
// never touch a pool never pay more than one relaxed load per transaction
// (the pin guard disengages while no pool exists).
//
// Why e + 3 and not e + 1?  Two independent one-epoch slacks stack:
//   1. The freeing thread stamps a block with a *fresh* read of the global
//      epoch, but the epoch may advance concurrently, so the stamp can
//      understate the true publication epoch by one (the freer itself is
//      pinned, bounding the slack at exactly one).
//   2. A reader's pin announcement races the advancer's scan the same way:
//      a thread pinned at e' may have sampled its snapshot just before the
//      advance to e' was observable, i.e. while pointers stamped e' - 1
//      were still reachable.
// A block stamped e is therefore safe only once no thread can be pinned at
// an epoch <= e + 1, which the advance protocol guarantees at global epoch
// >= e + 3 (advancing to e + 2 required every pinned slot to read e + 1 or
// later... and to e + 3 required >= e + 2).  TxPool keeps four limbo
// buckets indexed stamp & 3 so the bucket drained at epoch E — (E + 1) & 3
// — can only contain stamps <= E - 3 (plus freshly-pushed stamps E + 1
// from a racing freer, which a per-block stamp guard re-defers).
#pragma once

#include <atomic>
#include <cstdint>

#include "conflict/descriptor.hpp"

namespace txc::mem::reclaim {

namespace detail {
struct State {
  /// Global reclamation epoch.  Starts at 2 so that `slot == 0` can mean
  /// "not pinned" and freshly-stamped blocks never alias the quiescent
  /// value even after the -3 grace arithmetic.
  std::atomic<std::uint64_t> epoch{2};
  /// Count of live TxPools.  While zero, EpochPinGuard is a single relaxed
  /// load — threads that never allocate transactionally pay nothing.
  std::atomic<std::uint32_t> pools{0};
};

[[nodiscard]] inline State& state() noexcept {
  static State instance;
  return instance;
}

/// Pin nesting depth: atomically() bodies may open snapshot reads
/// (atomically_read) or nest; only the outermost guard owns the slot.
[[nodiscard]] inline int& pin_depth() noexcept {
  thread_local int depth = 0;
  return depth;
}
}  // namespace detail

[[nodiscard]] inline std::uint64_t current_epoch() noexcept {
  return detail::state().epoch.load(std::memory_order_acquire);
}

[[nodiscard]] inline bool pools_active() noexcept {
  return detail::state().pools.load(std::memory_order_relaxed) != 0;
}

/// TxPool construction/destruction bookkeeping.
inline void pool_created() noexcept {
  detail::state().pools.fetch_add(1, std::memory_order_acq_rel);
}
inline void pool_destroyed() noexcept {
  detail::state().pools.fetch_sub(1, std::memory_order_acq_rel);
}

/// RAII epoch pin for one transactional section (one atomically() /
/// atomically_read() call).  While pinned, no block freed at or after the
/// announced epoch minus one can be recycled, so every pointer the section
/// can reach stays dereferenceable (values may be stale — the substrates'
/// validation handles that — but the load itself is safe).
///
/// The announce loop is the classic store / seq_cst fence / re-check dance:
/// without the re-check, an advancer whose scan raced the store could move
/// the epoch past the announced value without seeing the pin.  Re-announcing
/// until the global is stable bounds the advancer's slack at one epoch,
/// which the +3 grace rule absorbs.
class EpochPinGuard {
 public:
  EpochPinGuard() noexcept {
    if (!pools_active()) return;
    engaged_ = true;
    if (detail::pin_depth()++ > 0) return;  // outer pin already stands
    auto& slot = conflict::thread_descriptor().reclaim_epoch;
    auto& epoch = detail::state().epoch;
    std::uint64_t observed = epoch.load(std::memory_order_relaxed);
    while (true) {
      slot.store(observed, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::uint64_t current = epoch.load(std::memory_order_relaxed);
      if (current == observed) break;
      observed = current;
    }
  }

  EpochPinGuard(const EpochPinGuard&) = delete;
  EpochPinGuard& operator=(const EpochPinGuard&) = delete;

  ~EpochPinGuard() {
    if (!engaged_) return;
    if (--detail::pin_depth() == 0) {
      conflict::thread_descriptor().reclaim_epoch.store(
          0, std::memory_order_release);
    }
  }

 private:
  bool engaged_ = false;
};

/// Try to advance the global epoch by one.  Fails (returns false) when any
/// thread is pinned in an epoch other than the current one — including the
/// caller itself if pinned at current - 1 — or when another advancer won the
/// CAS.  Callers treat failure as "grace not yet elapsed" and retry later;
/// TxPool's slow allocation path drives this opportunistically.
[[nodiscard]] inline bool try_advance() noexcept {
  auto& epoch = detail::state().epoch;
  const std::uint64_t current = epoch.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  bool blocked = false;
  conflict::for_each_thread_descriptor(
      [&](const conflict::TxDescriptor& descriptor) {
        const std::uint64_t pinned =
            descriptor.reclaim_epoch.load(std::memory_order_acquire);
        if (pinned != 0 && pinned != current) blocked = true;
      });
  if (blocked) return false;
  std::uint64_t expected = current;
  return epoch.compare_exchange_strong(expected, current + 1,
                                       std::memory_order_acq_rel);
}

}  // namespace txc::mem::reclaim
