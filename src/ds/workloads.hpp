// txconflict — the benchmark applications of Section 8.2, expressed as
// transaction programs for the HTM simulator.
//
// "We experiment with two contended data structures implemented using HTM in
// this setting: a stack and a queue, as well as a simple transactional
// application.  The stack and the queue use lock-free designs as 'slow path'
// backups.  The stack and the queue simply alternate inserts and deletes.
// The transactional application executes transactions which need to jointly
// acquire and modify two out of a set of 64 objects in order to commit."
//
// Memory layout (LineIds):
//   0            stack top / queue head pointer
//   1            queue tail pointer
//   16..79       the 64 objects of the transactional application
//   4096 + ...   per-core node pools (effectively private)
#pragma once

#include <cstdint>
#include <vector>

#include "htm/htm.hpp"

namespace txc::ds {

using htm::CoreId;
using htm::LineId;
using htm::Transaction;
using htm::TxOp;
using htm::Workload;

inline constexpr LineId kStackTopLine = 0;
inline constexpr LineId kQueueHeadLine = 0;
inline constexpr LineId kQueueTailLine = 1;
inline constexpr LineId kObjectBaseLine = 16;
inline constexpr std::uint32_t kObjectCount = 64;
inline constexpr LineId kNodePoolBase = 4096;
inline constexpr std::uint32_t kNodePoolSize = 64;

/// Transactional stack: every operation reads and updates the top-of-stack
/// pointer, so all cores contend on one line.  Pushes also initialize a node
/// line from the core's private pool.  Operations alternate push/pop.
class StackWorkload final : public Workload {
 public:
  struct Params {
    std::uint64_t work_cycles = 12;  // payload work inside the transaction
    std::uint64_t think_cycles = 8;  // non-transactional gap between ops
  };
  explicit StackWorkload(std::uint32_t cores) : StackWorkload(cores, Params{}) {}
  StackWorkload(std::uint32_t cores, Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::uint64_t think_time(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "stack"; }

 private:
  Params params_;
  std::vector<std::uint64_t> op_counter_;
};

/// Transactional queue: enqueues touch the tail pointer, dequeues the head
/// pointer, so the two operation classes contend in separate groups.
/// Operations alternate enqueue/dequeue.
class QueueWorkload final : public Workload {
 public:
  struct Params {
    std::uint64_t work_cycles = 12;
    std::uint64_t think_cycles = 8;
  };
  explicit QueueWorkload(std::uint32_t cores) : QueueWorkload(cores, Params{}) {}
  QueueWorkload(std::uint32_t cores, Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::uint64_t think_time(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "queue"; }

 private:
  Params params_;
  std::vector<std::uint64_t> op_counter_;
};

/// The transactional application: acquire and modify two distinct objects out
/// of 64, with payload work of uniform length.
class TxAppWorkload final : public Workload {
 public:
  struct Params {
    std::uint64_t mean_work_cycles = 60;  // uniform in [mean/2, 3*mean/2]
    std::uint64_t think_cycles = 10;
    std::uint32_t objects = kObjectCount;
  };
  TxAppWorkload() : TxAppWorkload(Params{}) {}
  explicit TxAppWorkload(Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::uint64_t think_time(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "txapp"; }

 private:
  Params params_;
};

/// The bimodal transactional application: same access pattern, but lengths
/// alternate between short and very long transactions (Figure 3, bottom
/// right).
class BimodalTxAppWorkload final : public Workload {
 public:
  struct Params {
    std::uint64_t short_work_cycles = 30;
    std::uint64_t long_work_cycles = 3000;
    std::uint64_t think_cycles = 10;
    std::uint32_t objects = kObjectCount;
  };
  explicit BimodalTxAppWorkload(std::uint32_t cores) : BimodalTxAppWorkload(cores, Params{}) {}
  BimodalTxAppWorkload(std::uint32_t cores, Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::uint64_t think_time(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "bimodal-txapp"; }

 private:
  Params params_;
  std::vector<std::uint64_t> op_counter_;
};

/// Maximum-contention shared counter: every transaction increments the same
/// line.  Used by correctness tests (the committed value must equal the
/// number of commits) and as the STM comparison workload.
class CounterWorkload final : public Workload {
 public:
  struct Params {
    std::uint64_t work_cycles = 5;
    LineId counter_line = 8;
  };
  CounterWorkload() : CounterWorkload(Params{}) {}
  explicit CounterWorkload(Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "counter"; }
  [[nodiscard]] LineId counter_line() const noexcept {
    return params_.counter_line;
  }

 private:
  Params params_;
};

}  // namespace txc::ds
