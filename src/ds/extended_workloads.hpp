// txconflict — extended benchmark workloads beyond the paper's Section 8.2
// set: a bank-transfer application (the canonical TM correctness demo, with a
// conservation invariant tests can audit), a Zipf-skewed variant of the
// transactional application (hot-spot contention), a read-mostly workload
// (read-only transactions commit without write acquisition), and a
// linked-list traversal (long read chains, prefix conflicts).
//
// Memory layout (LineIds) — disjoint from workloads.hpp:
//   256..255+accounts   bank accounts
//   512..511+length     linked-list nodes
//   1024..1023+objects  read-mostly object array
#pragma once

#include <cstdint>

#include "ds/workloads.hpp"
#include "workload/zipf.hpp"

namespace txc::ds {

inline constexpr LineId kAccountBaseLine = 256;
inline constexpr LineId kListBaseLine = 512;
inline constexpr LineId kReadArrayBaseLine = 1024;

/// Bank transfers: read two distinct accounts, compute, then move `amount`
/// from one to the other (RMW -amount / RMW +amount).  The sum of all
/// accounts is invariant — the classic TM atomicity audit.
class BankWorkload final : public Workload {
 public:
  struct Params {
    std::uint32_t accounts = 128;
    std::uint64_t amount = 1;
    std::uint64_t work_cycles = 20;
    std::uint64_t think_cycles = 10;
  };
  BankWorkload();
  explicit BankWorkload(Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core,
                                             sim::Rng& rng) override;
  [[nodiscard]] std::uint64_t think_time(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "bank"; }
  [[nodiscard]] std::uint32_t accounts() const noexcept {
    return params_.accounts;
  }

 private:
  Params params_;
};

/// The 2-of-N transactional application with Zipf-skewed object selection:
/// s = 0 reproduces the paper's uniform pick, larger s concentrates the
/// conflicts on a few hot objects (longer chains, higher k).
class ZipfTxAppWorkload final : public Workload {
 public:
  struct Params {
    std::uint32_t objects = kObjectCount;
    double skew = 0.8;  // Zipf exponent
    std::uint64_t mean_work_cycles = 60;
    std::uint64_t think_cycles = 10;
  };
  ZipfTxAppWorkload();
  explicit ZipfTxAppWorkload(Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core,
                                             sim::Rng& rng) override;
  [[nodiscard]] std::uint64_t think_time(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "zipf-txapp"; }

 private:
  Params params_;
  workload::ZipfSampler sampler_;
};

/// Read-mostly array scans: read `reads_per_tx` random lines; with
/// probability `write_fraction` also RMW one of them.  Read-only
/// transactions have an empty write set and commit without any exclusive
/// acquisition, so the abort rate is carried entirely by the writers.
class ReadMostlyWorkload final : public Workload {
 public:
  struct Params {
    std::uint32_t objects = 256;
    std::uint32_t reads_per_tx = 8;
    double write_fraction = 0.1;
    std::uint64_t work_cycles = 15;
    std::uint64_t think_cycles = 5;
  };
  ReadMostlyWorkload();
  explicit ReadMostlyWorkload(Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core,
                                             sim::Rng& rng) override;
  [[nodiscard]] std::uint64_t think_time(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "read-mostly"; }

 private:
  Params params_;
};

/// Sorted-linked-list insertion: walk the first `position` nodes read-only,
/// then update the node at the insertion point.  Long read chains mean (a)
/// long transactions whose remaining time varies with the insertion point
/// and (b) conflicts whenever a writer updates a node inside another
/// walker's prefix — the read-write conflict pattern of list/tree indexes.
class ListWorkload final : public Workload {
 public:
  struct Params {
    std::uint32_t length = 32;
    std::uint64_t per_node_work = 4;  // comparison cost at each node
    std::uint64_t think_cycles = 10;
  };
  ListWorkload();
  explicit ListWorkload(Params params);

  [[nodiscard]] Transaction next_transaction(CoreId core,
                                             sim::Rng& rng) override;
  [[nodiscard]] std::uint64_t think_time(CoreId core, sim::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "list"; }

 private:
  Params params_;
};

}  // namespace txc::ds
