// txconflict — a transactional Michael–Scott queue over a TxPool.
//
// The transactional twin of lockfree::MichaelScottQueue (the Alistarh et al.
// comparison subject: the same FIFO contract, lock-free CAS loops replaced
// by one atomic block per operation).  Nodes are fixed-size TxPool blocks —
// two cells: [0] the value, [1] the next-handle — allocated with
// tx_alloc/tx_free so memory management inherits the substrate's speculative
// semantics for free: an aborted enqueue's node is recycled, a dequeued
// dummy is reclaimed only after commit plus the epoch grace, and a snapshot
// reader chasing a stale handle can always dereference it safely.
//
// Links are HANDLES, not pointers: block index + 1, with 0 as null, stored
// in ordinary transactional cells.  The pool's arena is registered as a
// stm::RegionSpec at construction, so every node cell gets its own
// deterministic stripe — two transactions touching different nodes are
// false-conflict-free by construction (TL2; NOrec needs no placement).
//
// Because head/tail/next manipulation is transactional, none of the MS
// helping dances survive: an enqueue links tail->next and swings the tail
// in one atomic step, a dequeue advances head and frees the old dummy in
// one atomic step, and the queue is always in a consistent state between
// commits.  What remains of Michael–Scott is the dummy-node shape itself,
// which keeps enqueue and dequeue on disjoint cells whenever the queue is
// non-empty — an enqueue and a dequeue then touch {tail, last.next} vs
// {head, dummy.next} and commit without conflicting.
//
// Capacity contract: enqueue returns false when the pool cannot supply a
// node (clean failure, no throw — TxPool's exhaustion contract).  Note the
// grace period: a just-dequeued node becomes reusable only a few epochs
// later, so a full/drain cycle at exact capacity may need a retry or an
// intervening quiesce_reclaim() (see mem/reclaim.hpp on self-advancement).
//
// Lifetime: register_region has no deregistration, so the queue (and its
// pool) must outlive the substrate's last transaction — create them with
// matching lifetimes, queue after substrate.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/tx_pool.hpp"
#include "stm/cell.hpp"

namespace txc::ds {

/// Bounded transactional FIFO queue of uint64 values, templated over the
/// substrate (stm::Stm or stm::Norec — anything with the unified API).
template <typename Substrate>
class TxMichaelScottQueue {
 public:
  /// A queue holding up to `capacity` values; the pool carries one extra
  /// block for the resident dummy node.
  TxMichaelScottQueue(Substrate& stm, std::size_t capacity)
      : stm_(stm), pool_(capacity + 1, kCellsPerNode) {
    stm_.register_region(pool_.region_spec());
    stm::Cell* dummy = pool_.bootstrap_alloc();  // cannot fail: fresh pool
    dummy[kNext].value.store(0, std::memory_order_relaxed);
    head_.value.store(encode(dummy), std::memory_order_relaxed);
    tail_.value.store(encode(dummy), std::memory_order_relaxed);
  }

  TxMichaelScottQueue(const TxMichaelScottQueue&) = delete;
  TxMichaelScottQueue& operator=(const TxMichaelScottQueue&) = delete;

  /// Enqueue a value; returns false when the pool cannot supply a node
  /// (queue full, or freed nodes still in the reclamation grace).
  bool enqueue(std::uint64_t value) {
    bool ok = false;
    stm_.atomically([&](typename Substrate::TxContext& tx) {
      ok = false;  // the body may re-run after an abort
      stm::Cell* node = tx.tx_alloc(pool_);
      if (node == nullptr) return;  // exhaustion: commit as a no-op
      const std::uint64_t handle = encode(node);
      tx.write(node[kValue], value);
      tx.write(node[kNext], 0);
      stm::Cell* last = decode(tx.read(tail_));
      tx.write(last[kNext], handle);
      tx.write(tail_, handle);
      ok = true;
    });
    return ok;
  }

  /// Dequeue the oldest value, or nullopt when empty.  The retired dummy is
  /// freed transactionally: published to the pool's limbo only if this
  /// commit wins.
  std::optional<std::uint64_t> dequeue() {
    std::optional<std::uint64_t> result;
    stm_.atomically([&](typename Substrate::TxContext& tx) {
      result.reset();  // the body may re-run after an abort
      stm::Cell* dummy = decode(tx.read(head_));
      const std::uint64_t next = tx.read(dummy[kNext]);
      if (next == 0) return;  // empty
      stm::Cell* node = decode(next);
      result = tx.read(node[kValue]);
      // The dequeued node becomes the new dummy; the old dummy retires.
      tx.write(head_, next);
      tx.tx_free(pool_, dummy);
    });
    return result;
  }

  /// Snapshot emptiness probe (atomically_read): exercises exactly the
  /// reader-vs-reclamation protocol — the dummy handle read from the
  /// snapshot may point at a block another thread freed since, and the
  /// reader's epoch pin is what keeps that dereference safe.
  [[nodiscard]] bool empty() {
    bool result = true;
    stm_.atomically_read([&](typename Substrate::ReadTxContext& tx) {
      stm::Cell* dummy = decode(tx.read(head_));
      result = tx.read(dummy[kNext]) == 0;
    });
    return result;
  }

  /// The backing pool, exposed for stats and conservation audits.
  [[nodiscard]] mem::TxPool& pool() noexcept { return pool_; }

 private:
  static constexpr std::size_t kValue = 0;
  static constexpr std::size_t kNext = 1;
  static constexpr std::size_t kCellsPerNode = 2;

  /// Handles: block index + 1, 0 = null — stable across the pool's arena,
  /// cheap to store in a cell.
  [[nodiscard]] std::uint64_t encode(const stm::Cell* block) const noexcept {
    return static_cast<std::uint64_t>(pool_.index_of(block)) + 1;
  }
  [[nodiscard]] stm::Cell* decode(std::uint64_t handle) noexcept {
    return pool_.block_at(static_cast<std::size_t>(handle - 1));
  }

  Substrate& stm_;
  mem::TxPool pool_;
  stm::Cell head_;  // handle of the dummy node
  stm::Cell tail_;  // handle of the last node (== head_ when empty)
};

}  // namespace txc::ds
