// txconflict — a transactional Treiber stack over a TxPool.
//
// The transactional twin of lockfree::TreiberStack (see tx_queue.hpp for
// the design notes shared by both structures: TxPool nodes, handle links,
// region-registered placement, speculative alloc/free semantics, the
// capacity/grace contract, and the lifetime rule).  A node is two cells —
// [0] the value, [1] the next-handle — and the whole structure is one head
// cell: push links the new node in front of the current head, pop unlinks
// and frees it, each in one atomic block.  Unlike the lock-free original
// there is no ABA to defend against — commit-time validation already
// rejects any interleaving a tag would catch.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/tx_pool.hpp"
#include "stm/cell.hpp"

namespace txc::ds {

/// Bounded transactional LIFO stack of uint64 values, templated over the
/// substrate (stm::Stm or stm::Norec — anything with the unified API).
template <typename Substrate>
class TxTreiberStack {
 public:
  TxTreiberStack(Substrate& stm, std::size_t capacity)
      : stm_(stm), pool_(capacity, kCellsPerNode) {
    stm_.register_region(pool_.region_spec());
    head_.value.store(0, std::memory_order_relaxed);  // 0 = null handle
  }

  TxTreiberStack(const TxTreiberStack&) = delete;
  TxTreiberStack& operator=(const TxTreiberStack&) = delete;

  /// Push a value; returns false when the pool cannot supply a node (stack
  /// full, or freed nodes still in the reclamation grace).
  bool push(std::uint64_t value) {
    bool ok = false;
    stm_.atomically([&](typename Substrate::TxContext& tx) {
      ok = false;  // the body may re-run after an abort
      stm::Cell* node = tx.tx_alloc(pool_);
      if (node == nullptr) return;  // exhaustion: commit as a no-op
      tx.write(node[kValue], value);
      tx.write(node[kNext], tx.read(head_));
      tx.write(head_, encode(node));
      ok = true;
    });
    return ok;
  }

  /// Pop the most recently pushed value, or nullopt when empty.  The popped
  /// node is freed transactionally (published to limbo only on commit).
  std::optional<std::uint64_t> pop() {
    std::optional<std::uint64_t> result;
    stm_.atomically([&](typename Substrate::TxContext& tx) {
      result.reset();  // the body may re-run after an abort
      const std::uint64_t top = tx.read(head_);
      if (top == 0) return;  // empty
      stm::Cell* node = decode(top);
      result = tx.read(node[kValue]);
      tx.write(head_, tx.read(node[kNext]));
      tx.tx_free(pool_, node);
    });
    return result;
  }

  /// Snapshot emptiness probe (atomically_read — see
  /// TxMichaelScottQueue::empty on why this exercises the
  /// reader-vs-reclamation protocol).
  [[nodiscard]] bool empty() {
    bool result = true;
    stm_.atomically_read([&](typename Substrate::ReadTxContext& tx) {
      result = tx.read(head_) == 0;
    });
    return result;
  }

  /// The backing pool, exposed for stats and conservation audits.
  [[nodiscard]] mem::TxPool& pool() noexcept { return pool_; }

 private:
  static constexpr std::size_t kValue = 0;
  static constexpr std::size_t kNext = 1;
  static constexpr std::size_t kCellsPerNode = 2;

  [[nodiscard]] std::uint64_t encode(const stm::Cell* block) const noexcept {
    return static_cast<std::uint64_t>(pool_.index_of(block)) + 1;
  }
  [[nodiscard]] stm::Cell* decode(std::uint64_t handle) noexcept {
    return pool_.block_at(static_cast<std::size_t>(handle - 1));
  }

  Substrate& stm_;
  mem::TxPool pool_;
  stm::Cell head_;  // handle of the top node, 0 when empty
};

}  // namespace txc::ds
