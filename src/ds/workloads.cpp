#include "ds/workloads.hpp"

namespace txc::ds {

namespace {

LineId node_line(CoreId core, std::uint64_t counter) {
  return kNodePoolBase + static_cast<LineId>(core) * kNodePoolSize +
         (counter % kNodePoolSize);
}

}  // namespace

// ---------------------------------------------------------------------------
// Stack
// ---------------------------------------------------------------------------

StackWorkload::StackWorkload(std::uint32_t cores, Params params)
    : params_(params), op_counter_(cores, 0) {}

Transaction StackWorkload::next_transaction(CoreId core, sim::Rng&) {
  const std::uint64_t count = op_counter_[core]++;
  const bool is_push = (count % 2 == 0);
  Transaction tx;
  if (is_push) {
    // push: read top, link the new node to it, swing top to the node.
    tx.push_back({TxOp::Kind::kRead, kStackTopLine, 0, 0});
    tx.push_back({TxOp::Kind::kWrite, node_line(core, count), count, 0});
    tx.push_back({TxOp::Kind::kWork, 0, 0, params_.work_cycles});
    tx.push_back({TxOp::Kind::kRmw, kStackTopLine, 1, 0});
  } else {
    // pop: read top, read the node it points to, swing top back.
    tx.push_back({TxOp::Kind::kRead, kStackTopLine, 0, 0});
    tx.push_back({TxOp::Kind::kRead, node_line(core, count), 0, 0});
    tx.push_back({TxOp::Kind::kWork, 0, 0, params_.work_cycles});
    tx.push_back({TxOp::Kind::kRmw, kStackTopLine,
                  static_cast<std::uint64_t>(-1), 0});
  }
  return tx;
}

std::uint64_t StackWorkload::think_time(CoreId, sim::Rng&) {
  return params_.think_cycles;
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

QueueWorkload::QueueWorkload(std::uint32_t cores, Params params)
    : params_(params), op_counter_(cores, 0) {}

Transaction QueueWorkload::next_transaction(CoreId core, sim::Rng&) {
  const std::uint64_t count = op_counter_[core]++;
  const bool is_enqueue = (count % 2 == 0);
  Transaction tx;
  if (is_enqueue) {
    tx.push_back({TxOp::Kind::kRead, kQueueTailLine, 0, 0});
    tx.push_back({TxOp::Kind::kWrite, node_line(core, count), count, 0});
    tx.push_back({TxOp::Kind::kWork, 0, 0, params_.work_cycles});
    tx.push_back({TxOp::Kind::kRmw, kQueueTailLine, 1, 0});
  } else {
    tx.push_back({TxOp::Kind::kRead, kQueueHeadLine, 0, 0});
    tx.push_back({TxOp::Kind::kRead, node_line(core, count), 0, 0});
    tx.push_back({TxOp::Kind::kWork, 0, 0, params_.work_cycles});
    tx.push_back({TxOp::Kind::kRmw, kQueueHeadLine, 1, 0});
  }
  return tx;
}

std::uint64_t QueueWorkload::think_time(CoreId, sim::Rng&) {
  return params_.think_cycles;
}

// ---------------------------------------------------------------------------
// Transactional application
// ---------------------------------------------------------------------------

TxAppWorkload::TxAppWorkload(Params params) : params_(params) {}

Transaction TxAppWorkload::next_transaction(CoreId, sim::Rng& rng) {
  const auto first =
      static_cast<std::uint32_t>(rng.uniform_below(params_.objects));
  auto second =
      static_cast<std::uint32_t>(rng.uniform_below(params_.objects - 1));
  if (second >= first) ++second;  // distinct objects
  const std::uint64_t work = params_.mean_work_cycles / 2 +
                             rng.uniform_below(params_.mean_work_cycles + 1);
  Transaction tx;
  tx.push_back({TxOp::Kind::kRead, kObjectBaseLine + first, 0, 0});
  tx.push_back({TxOp::Kind::kRead, kObjectBaseLine + second, 0, 0});
  tx.push_back({TxOp::Kind::kWork, 0, 0, work});
  tx.push_back({TxOp::Kind::kRmw, kObjectBaseLine + first, 1, 0});
  tx.push_back({TxOp::Kind::kRmw, kObjectBaseLine + second, 1, 0});
  return tx;
}

std::uint64_t TxAppWorkload::think_time(CoreId, sim::Rng&) {
  return params_.think_cycles;
}

// ---------------------------------------------------------------------------
// Bimodal transactional application
// ---------------------------------------------------------------------------

BimodalTxAppWorkload::BimodalTxAppWorkload(std::uint32_t cores, Params params)
    : params_(params), op_counter_(cores, 0) {}

Transaction BimodalTxAppWorkload::next_transaction(CoreId core, sim::Rng& rng) {
  const std::uint64_t count = op_counter_[core]++;
  const bool is_long = (count % 2 == 1);
  const std::uint64_t work =
      is_long ? params_.long_work_cycles : params_.short_work_cycles;
  const auto first =
      static_cast<std::uint32_t>(rng.uniform_below(params_.objects));
  auto second =
      static_cast<std::uint32_t>(rng.uniform_below(params_.objects - 1));
  if (second >= first) ++second;
  Transaction tx;
  tx.push_back({TxOp::Kind::kRead, kObjectBaseLine + first, 0, 0});
  tx.push_back({TxOp::Kind::kRead, kObjectBaseLine + second, 0, 0});
  tx.push_back({TxOp::Kind::kWork, 0, 0, work});
  tx.push_back({TxOp::Kind::kRmw, kObjectBaseLine + first, 1, 0});
  tx.push_back({TxOp::Kind::kRmw, kObjectBaseLine + second, 1, 0});
  return tx;
}

std::uint64_t BimodalTxAppWorkload::think_time(CoreId, sim::Rng&) {
  return params_.think_cycles;
}

// ---------------------------------------------------------------------------
// Shared counter
// ---------------------------------------------------------------------------

CounterWorkload::CounterWorkload(Params params) : params_(params) {}

Transaction CounterWorkload::next_transaction(CoreId, sim::Rng&) {
  Transaction tx;
  tx.push_back({TxOp::Kind::kRead, params_.counter_line, 0, 0});
  tx.push_back({TxOp::Kind::kWork, 0, 0, params_.work_cycles});
  tx.push_back({TxOp::Kind::kRmw, params_.counter_line, 1, 0});
  return tx;
}

}  // namespace txc::ds
