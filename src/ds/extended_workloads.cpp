#include "ds/extended_workloads.hpp"

#include <algorithm>

namespace txc::ds {

// ---------------------------------------------------------------------------
// Bank
// ---------------------------------------------------------------------------

BankWorkload::BankWorkload() : BankWorkload(Params{}) {}
BankWorkload::BankWorkload(Params params) : params_(params) {}

Transaction BankWorkload::next_transaction(CoreId, sim::Rng& rng) {
  const auto from = static_cast<std::uint32_t>(
      rng.uniform_below(params_.accounts));
  auto to = static_cast<std::uint32_t>(
      rng.uniform_below(params_.accounts - 1));
  if (to >= from) ++to;  // distinct accounts, uniform over ordered pairs
  Transaction tx;
  tx.push_back({TxOp::Kind::kRead, kAccountBaseLine + from, 0, 0});
  tx.push_back({TxOp::Kind::kRead, kAccountBaseLine + to, 0, 0});
  tx.push_back({TxOp::Kind::kWork, 0, 0, params_.work_cycles});
  // Two's-complement delta: the sum over all accounts stays invariant.
  tx.push_back({TxOp::Kind::kRmw, kAccountBaseLine + from,
                static_cast<std::uint64_t>(-static_cast<std::int64_t>(
                    params_.amount)),
                0});
  tx.push_back({TxOp::Kind::kRmw, kAccountBaseLine + to, params_.amount, 0});
  return tx;
}

std::uint64_t BankWorkload::think_time(CoreId, sim::Rng&) {
  return params_.think_cycles;
}

// ---------------------------------------------------------------------------
// Zipf-skewed transactional application
// ---------------------------------------------------------------------------

ZipfTxAppWorkload::ZipfTxAppWorkload() : ZipfTxAppWorkload(Params{}) {}
ZipfTxAppWorkload::ZipfTxAppWorkload(Params params)
    : params_(params), sampler_(params.objects, params.skew) {}

Transaction ZipfTxAppWorkload::next_transaction(CoreId, sim::Rng& rng) {
  const std::uint32_t first = sampler_.sample(rng);
  std::uint32_t second = first;
  while (second == first) second = sampler_.sample(rng);
  const std::uint64_t work = rng.uniform_below(params_.mean_work_cycles) +
                             params_.mean_work_cycles / 2;
  Transaction tx;
  tx.push_back({TxOp::Kind::kRead, kObjectBaseLine + first, 0, 0});
  tx.push_back({TxOp::Kind::kRead, kObjectBaseLine + second, 0, 0});
  tx.push_back({TxOp::Kind::kWork, 0, 0, work});
  tx.push_back({TxOp::Kind::kRmw, kObjectBaseLine + first, 1, 0});
  tx.push_back({TxOp::Kind::kRmw, kObjectBaseLine + second, 1, 0});
  return tx;
}

std::uint64_t ZipfTxAppWorkload::think_time(CoreId, sim::Rng&) {
  return params_.think_cycles;
}

// ---------------------------------------------------------------------------
// Read-mostly
// ---------------------------------------------------------------------------

ReadMostlyWorkload::ReadMostlyWorkload() : ReadMostlyWorkload(Params{}) {}
ReadMostlyWorkload::ReadMostlyWorkload(Params params) : params_(params) {}

Transaction ReadMostlyWorkload::next_transaction(CoreId, sim::Rng& rng) {
  Transaction tx;
  LineId last = kReadArrayBaseLine;
  for (std::uint32_t i = 0; i < params_.reads_per_tx; ++i) {
    last = kReadArrayBaseLine + rng.uniform_below(params_.objects);
    tx.push_back({TxOp::Kind::kRead, last, 0, 0});
  }
  tx.push_back({TxOp::Kind::kWork, 0, 0, params_.work_cycles});
  if (rng.bernoulli(params_.write_fraction)) {
    tx.push_back({TxOp::Kind::kRmw, last, 1, 0});
  }
  return tx;
}

std::uint64_t ReadMostlyWorkload::think_time(CoreId, sim::Rng&) {
  return params_.think_cycles;
}

// ---------------------------------------------------------------------------
// Linked list
// ---------------------------------------------------------------------------

ListWorkload::ListWorkload() : ListWorkload(Params{}) {}
ListWorkload::ListWorkload(Params params) : params_(params) {}

Transaction ListWorkload::next_transaction(CoreId, sim::Rng& rng) {
  const auto position = static_cast<std::uint32_t>(
      rng.uniform_below(params_.length));
  Transaction tx;
  for (std::uint32_t i = 0; i <= position; ++i) {
    tx.push_back({TxOp::Kind::kRead, kListBaseLine + i, 0, 0});
    if (params_.per_node_work > 0) {
      tx.push_back({TxOp::Kind::kWork, 0, 0, params_.per_node_work});
    }
  }
  tx.push_back({TxOp::Kind::kRmw, kListBaseLine + position, 1, 0});
  return tx;
}

std::uint64_t ListWorkload::think_time(CoreId, sim::Rng&) {
  return params_.think_cycles;
}

}  // namespace txc::ds
