// txconflict — numeric helpers shared by the strategy densities.
#pragma once

#include <cmath>
#include <functional>

namespace txc::core {

/// ln(4) - 1 = 2 ln 2 - 1, the normalizer of the mean-constrained
/// requestor-wins density at chain length k = 2 (Theorem 5).
inline constexpr double kLn4Minus1 = 0.38629436111989061883;

/// Euler's number.
inline constexpr double kE = 2.71828182845904523536;

/// growth_ratio(k) = (k/(k-1))^(k-1): the quantity written
/// k^(k-1)/(k-1)^(k-1) in Theorems 4-6.  Monotone increasing from
/// exactly 2 at k = 2 towards e as k -> infinity.  Computed in log space so it
/// stays finite for every k >= 2 (the paper's raw k^(k-1) overflows doubles
/// near k = 150).
[[nodiscard]] double growth_ratio(int chain_length) noexcept;

/// d/dk limit helper: lim_{k->2} (growth_ratio(k) - 2)/(k - 2) = ln4 - 1.
/// Exposed only for tests that pin the k = 2 continuity of Theorem 6.
[[nodiscard]] double growth_ratio_slope_at_two() noexcept;

/// exp(1/(k-1)), the analogous quantity for requestor-aborts (Theorem 3).
[[nodiscard]] double exp_inv(int chain_length) noexcept;

/// Composite-Simpson quadrature of `f` over [lo, hi] with `panels` panels
/// (rounded up to even).  The densities are smooth, so fixed-panel Simpson at
/// a couple thousand panels reaches ~1e-12 relative error.
[[nodiscard]] double integrate(const std::function<double(double)>& f, double lo,
                               double hi, int panels = 2048);

/// Invert a monotone-nondecreasing CDF by bisection: returns x in [lo, hi]
/// with cdf(x) ~= target.
[[nodiscard]] double invert_monotone(const std::function<double(double)>& cdf,
                                     double target, double lo, double hi,
                                     int iterations = 200);

}  // namespace txc::core
