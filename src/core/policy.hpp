// txconflict — the grace-period policy interface.
//
// This is the public API a transactional system calls at conflict time.  The
// decision is local, immediate and unchangeable (Section 1 "Implications"):
// the policy sees only the abort cost B, the conflict chain length k, an
// optional profiled mean of transaction lengths, and the receiver's restart
// count.  It returns the grace period Delta; the system then either aborts the
// receiver (requestor wins) or the requestors (requestor aborts) when the
// period expires without a commit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/densities.hpp"
#include "core/estimators.hpp"
#include "sim/rng.hpp"

namespace txc::core {

/// Everything a local decision is allowed to see at conflict time.
struct ConflictContext {
  /// Abort cost B: in practice the time the receiver has already been
  /// running plus a fixed cleanup cost (Section 4, footnote 1).
  double abort_cost = 1.0;
  /// Conflict chain length k >= 2 (receiver + transitively waiting
  /// requestors).
  int chain_length = 2;
  /// Profiled mean of the underlying transaction-length distribution, when a
  /// profiler is attached (Section 5.2).
  std::optional<double> mean_hint;
  /// Number of times the receiver transaction has already aborted; consumed
  /// by the BackoffPolicy progress decorator (Section 7).
  std::uint32_t attempt = 0;
  /// Remaining running time D of the transaction at risk, when the caller is
  /// an omniscient harness (simulators/benches only — no real system knows
  /// this).  Consumed by OraclePolicy to realize the offline optimum.
  std::optional<double> remaining_hint;
};

/// What actually happened after a grace-period decision; fed back to the
/// policy so adaptive strategies can learn from (censored) observations.
struct ConflictOutcome {
  /// True if the transaction at risk committed within the grace period.
  bool committed = false;
  /// The grace period the policy granted.
  double grace = 0.0;
  /// Time actually waited: the at-risk transaction's observed remaining time
  /// on commit (an exact sample of D), or the full grace period on expiry
  /// (a censored sample: D > grace).
  double waited = 0.0;
  int chain_length = 2;
};

/// A grace-period decision procedure.  Implementations must be deterministic
/// given (context, rng) so simulator runs are reproducible.
class GracePeriodPolicy {
 public:
  virtual ~GracePeriodPolicy() = default;

  /// Grace period Delta >= 0 for this conflict.  Delta == 0 means abort
  /// immediately.
  ///
  /// \param context  the local view of the conflict (see ConflictContext);
  ///                 the policy must not consult anything beyond it.
  /// \param rng      deterministic RNG stream; randomized policies draw
  ///                 their waiting time from it, deterministic ones ignore
  ///                 it.  Same (context, rng state) => same Delta.
  [[nodiscard]] virtual double grace_period(const ConflictContext& context,
                                            sim::Rng& rng) const = 0;

  /// Which conflict resolution flavor the policy's analysis assumes.
  [[nodiscard]] virtual ResolutionMode mode() const noexcept = 0;

  /// Per-conflict resolution flavor.  Defaults to mode(); policies that
  /// switch flavors by context (HybridPolicy switches on the chain length)
  /// override this, and harnesses that can honor both flavors should prefer
  /// it over mode().
  [[nodiscard]] virtual ResolutionMode mode_for(
      const ConflictContext& context) const noexcept {
    (void)context;
    return mode();
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Outcome feedback (optional).  Called by the transactional system when a
  /// granted grace period resolves; the default implementation ignores it.
  /// Adaptive policies use this to learn the length distribution online.
  virtual void observe(const ConflictOutcome& outcome) const noexcept {
    (void)outcome;
  }
};

/// Always abort immediately (the paper's NO_DELAY baseline).
class NoDelayPolicy final : public GracePeriodPolicy {
 public:
  explicit NoDelayPolicy(
      ResolutionMode mode = ResolutionMode::kRequestorWins) noexcept
      : mode_(mode) {}
  [[nodiscard]] double grace_period(const ConflictContext&,
                                    sim::Rng&) const override {
    return 0.0;
  }
  [[nodiscard]] ResolutionMode mode() const noexcept override { return mode_; }
  [[nodiscard]] std::string name() const override { return "NO_DELAY"; }

 private:
  ResolutionMode mode_;
};

/// Fixed, hand-tuned delay (the paper's DELAY_TUNED baseline: the operator
/// knows the workload and sets the delay to the measured fast-path length).
class FixedDelayPolicy final : public GracePeriodPolicy {
 public:
  FixedDelayPolicy(double delay,
                   ResolutionMode mode = ResolutionMode::kRequestorWins) noexcept
      : delay_(delay), mode_(mode) {}
  [[nodiscard]] double grace_period(const ConflictContext&,
                                    sim::Rng&) const override {
    return delay_;
  }
  [[nodiscard]] ResolutionMode mode() const noexcept override { return mode_; }
  [[nodiscard]] std::string name() const override { return "DELAY_TUNED"; }

 private:
  double delay_;
  ResolutionMode mode_;
};

/// Theorem 4: deterministic requestor wins, wait exactly B/(k-1).
class DeterministicWinsPolicy final : public GracePeriodPolicy {
 public:
  [[nodiscard]] double grace_period(const ConflictContext& context,
                                    sim::Rng&) const override {
    return context.abort_cost / (context.chain_length - 1.0);
  }
  [[nodiscard]] ResolutionMode mode() const noexcept override {
    return ResolutionMode::kRequestorWins;
  }
  [[nodiscard]] std::string name() const override { return "DET_WINS"; }
};

/// Classic deterministic ski rental for requestor aborts: wait exactly B.
class DeterministicAbortsPolicy final : public GracePeriodPolicy {
 public:
  [[nodiscard]] double grace_period(const ConflictContext& context,
                                    sim::Rng&) const override {
    return context.abort_cost;
  }
  [[nodiscard]] ResolutionMode mode() const noexcept override {
    return ResolutionMode::kRequestorAborts;
  }
  [[nodiscard]] std::string name() const override { return "DET_ABORTS"; }
};

/// Randomized requestor-wins policy.  Without a mean hint it samples the
/// uniform density (Theorem 5; 2-competitive, the paper's DELAY_RAND).  With
/// `use_power_density` it instead samples the Theorem 6 unconstrained density
/// (ratio r/(r-1), strictly better for k >= 3).  With a mean hint below the
/// applicability threshold it samples the mean-constrained density.
class RandomizedWinsPolicy final : public GracePeriodPolicy {
 public:
  explicit RandomizedWinsPolicy(bool use_mean_hint = true,
                                bool use_power_density = false) noexcept
      : use_mean_hint_(use_mean_hint), use_power_density_(use_power_density) {}

  [[nodiscard]] double grace_period(const ConflictContext& context,
                                    sim::Rng& rng) const override;
  [[nodiscard]] ResolutionMode mode() const noexcept override {
    return ResolutionMode::kRequestorWins;
  }
  [[nodiscard]] std::string name() const override;

 private:
  bool use_mean_hint_;
  bool use_power_density_;
};

/// Randomized requestor-aborts policy (Theorems 1/2/3).
class RandomizedAbortsPolicy final : public GracePeriodPolicy {
 public:
  explicit RandomizedAbortsPolicy(bool use_mean_hint = true) noexcept
      : use_mean_hint_(use_mean_hint) {}

  [[nodiscard]] double grace_period(const ConflictContext& context,
                                    sim::Rng& rng) const override;
  [[nodiscard]] ResolutionMode mode() const noexcept override {
    return ResolutionMode::kRequestorAborts;
  }
  [[nodiscard]] std::string name() const override;

 private:
  bool use_mean_hint_;
};

/// Section 1 "Implications" / Section 5.3: requestor aborts wins at k = 2,
/// requestor wins is preferable for longer chains.  The hybrid policy selects
/// per conflict; systems that can honor both flavors query `mode_for` to know
/// which side to abort.
class HybridPolicy final : public GracePeriodPolicy {
 public:
  explicit HybridPolicy(bool use_mean_hint = true) noexcept
      : wins_(use_mean_hint), aborts_(use_mean_hint) {}

  [[nodiscard]] static ResolutionMode mode_for(int chain_length) noexcept {
    return chain_length <= 2 ? ResolutionMode::kRequestorAborts
                             : ResolutionMode::kRequestorWins;
  }

  [[nodiscard]] double grace_period(const ConflictContext& context,
                                    sim::Rng& rng) const override {
    return mode_for(context.chain_length) == ResolutionMode::kRequestorAborts
               ? aborts_.grace_period(context, rng)
               : wins_.grace_period(context, rng);
  }
  /// Reports the k = 2 choice; callers with chain information should prefer
  /// `mode_for`.
  [[nodiscard]] ResolutionMode mode() const noexcept override {
    return ResolutionMode::kRequestorAborts;
  }
  [[nodiscard]] ResolutionMode mode_for(
      const ConflictContext& context) const noexcept override {
    return mode_for(context.chain_length);
  }
  [[nodiscard]] std::string name() const override { return "HYBRID"; }

 private:
  RandomizedWinsPolicy wins_;
  RandomizedAbortsPolicy aborts_;
};

/// Offline optimum (benches and competitive-ratio baselines only): reads the
/// at-risk transaction's true remaining time D from the context and waits for
/// it exactly when letting it commit is cheaper than aborting — the
/// perfect-information comparator OPT of Sections 4-6.
///   Requestor wins:   wait D iff (k-1)·D <= B, else abort now.
///   Requestor aborts: wait D iff D <= B, else abort now.
/// Falls back to NO_DELAY when the harness supplies no remaining_hint.
class OraclePolicy final : public GracePeriodPolicy {
 public:
  explicit OraclePolicy(
      ResolutionMode mode = ResolutionMode::kRequestorWins) noexcept
      : mode_(mode) {}

  [[nodiscard]] double grace_period(const ConflictContext& context,
                                    sim::Rng&) const override {
    if (!context.remaining_hint.has_value()) return 0.0;
    const double remaining = *context.remaining_hint;
    const double weighted =
        mode_ == ResolutionMode::kRequestorWins
            ? remaining * (context.chain_length - 1.0)
            : remaining;
    // +1 so the discrete simulator's deadline lands after the commit.
    return weighted <= context.abort_cost ? remaining + 1.0 : 0.0;
  }
  [[nodiscard]] ResolutionMode mode() const noexcept override { return mode_; }
  [[nodiscard]] std::string name() const override { return "ORACLE"; }

 private:
  ResolutionMode mode_;
};

/// Self-calibrating version of the paper's hand-tuned baseline: instead of an
/// operator measuring the fast-path transaction length offline, the policy
/// learns it from outcome feedback (exact samples on commit-within-grace,
/// censored samples on expiry) and plays the current estimate as its fixed
/// delay.  Until enough feedback accumulated it bootstraps with an initial
/// delay.  This is the natural "deployable DELAY_TUNED" the paper's Section 9
/// gestures at; its value shows on bimodal loads, where a static tuned delay
/// collapses but the estimator tracks the mixture.
class AdaptiveTunedPolicy final : public GracePeriodPolicy {
 public:
  struct Params {
    double alpha = 0.05;           // EWMA weight per observation
    double initial_delay = 50.0;   // bootstrap before feedback arrives
    std::size_t min_samples = 16;  // feedback needed before trusting the mean
    /// Safety cap as a multiple of B/(k-1) (never wait past the point where
    /// aborting is certainly cheaper; 1.0 matches the deterministic optimum).
    double cap_fraction = 1.0;
  };

  /// Default-constructs with Params{} (defined out of line: a nested class's
  /// default member initializers cannot be referenced inside the enclosing
  /// class definition).
  AdaptiveTunedPolicy();
  explicit AdaptiveTunedPolicy(
      Params params,
      ResolutionMode mode = ResolutionMode::kRequestorWins) noexcept
      : params_(params), mode_(mode), estimator_(params.alpha, params.initial_delay) {}

  [[nodiscard]] double grace_period(const ConflictContext& context,
                                    sim::Rng& rng) const override;
  [[nodiscard]] ResolutionMode mode() const noexcept override { return mode_; }
  [[nodiscard]] std::string name() const override { return "DELAY_ADAPTIVE"; }
  void observe(const ConflictOutcome& outcome) const noexcept override;

  /// Current learned delay (tests/benches).
  [[nodiscard]] double learned_delay() const noexcept {
    return estimator_.mean();
  }
  [[nodiscard]] std::size_t feedback_samples() const noexcept {
    return estimator_.count();
  }

 private:
  Params params_;
  ResolutionMode mode_;
  /// Policies are shared const across the simulator; the learning state is
  /// logically cache, hence mutable.  The simulator is single-threaded, so
  /// no synchronization is needed (real deployments would shard per core).
  mutable CensoredMeanEstimator estimator_;
};

/// Section 7 progress decorator: multiplies the abort cost B seen by the
/// wrapped policy by growth^attempt, making a repeatedly-aborted transaction
/// ever less likely to abort (Corollary 2 analyses growth = 2).
class BackoffPolicy final : public GracePeriodPolicy {
 public:
  BackoffPolicy(std::shared_ptr<const GracePeriodPolicy> inner,
                double growth = 2.0, std::uint32_t max_doublings = 32) noexcept
      : inner_(std::move(inner)),
        growth_(growth),
        max_doublings_(max_doublings) {}

  [[nodiscard]] double grace_period(const ConflictContext& context,
                                    sim::Rng& rng) const override;
  [[nodiscard]] ResolutionMode mode() const noexcept override {
    return inner_->mode();
  }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+BACKOFF";
  }

 private:
  std::shared_ptr<const GracePeriodPolicy> inner_;
  double growth_;
  std::uint32_t max_doublings_;
};

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

/// Strategy names used by benches/examples; mirrors DESIGN.md and the paper's
/// Figure 2/3 legends.
enum class StrategyKind {
  kNoDelay,        // NO_DELAY
  kFixedTuned,     // DELAY_TUNED (delay supplied separately)
  kDetWins,        // DET (Theorem 4)
  kDetAborts,      // classic deterministic ski rental
  kRandWins,       // RRW (Theorem 5, uniform)
  kRandWinsMean,   // RRW(mu)
  kRandWinsPower,  // Theorem 6 unconstrained optimum
  kRandAborts,     // RRA (Theorems 1/3)
  kRandAbortsMean, // RRA(mu)
  kHybrid,         // Section 5.3 hybrid
  kOracle,         // offline optimum (simulator-only remaining_hint)
  kAdaptiveTuned,  // self-calibrating DELAY_TUNED (outcome feedback)
};

/// Stable legend label for a strategy ("NO_DELAY", "RRW", "HYBRID", ...);
/// matches the column names printed by the figure benches.
[[nodiscard]] const char* to_string(StrategyKind kind) noexcept;

/// Build a policy by legend name.
///
/// \param kind         which strategy to instantiate (see StrategyKind).
/// \param tuned_delay  the operator-measured fixed delay; consumed only by
///                     kFixedTuned (DELAY_TUNED), ignored otherwise.
/// \return a shareable const policy — implementations are either stateless
///         or internally synchronized for the simulator's single-threaded
///         use, so one instance can serve many harness runs.
[[nodiscard]] std::shared_ptr<const GracePeriodPolicy> make_policy(
    StrategyKind kind, double tuned_delay = 0.0);

}  // namespace txc::core
